# Empty compiler generated dependencies file for energy_fpga_test.
# This may be replaced when dependencies are built.
