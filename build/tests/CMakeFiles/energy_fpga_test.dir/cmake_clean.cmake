file(REMOVE_RECURSE
  "CMakeFiles/energy_fpga_test.dir/energy_fpga_test.cc.o"
  "CMakeFiles/energy_fpga_test.dir/energy_fpga_test.cc.o.d"
  "energy_fpga_test"
  "energy_fpga_test.pdb"
  "energy_fpga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_fpga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
