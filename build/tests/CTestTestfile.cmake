# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/emu_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_test[1]_include.cmake")
include("/root/repo/build/tests/energy_fpga_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/distance_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
