file(REMOVE_RECURSE
  "../bench/fig07_hand_count_sweep"
  "../bench/fig07_hand_count_sweep.pdb"
  "CMakeFiles/fig07_hand_count_sweep.dir/fig07_hand_count_sweep.cc.o"
  "CMakeFiles/fig07_hand_count_sweep.dir/fig07_hand_count_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_hand_count_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
