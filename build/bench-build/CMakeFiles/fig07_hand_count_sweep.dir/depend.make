# Empty dependencies file for fig07_hand_count_sweep.
# This may be replaced when dependencies are built.
