# Empty dependencies file for ablation_distance_limit.
# This may be replaced when dependencies are built.
