file(REMOVE_RECURSE
  "../bench/ablation_distance_limit"
  "../bench/ablation_distance_limit.pdb"
  "CMakeFiles/ablation_distance_limit.dir/ablation_distance_limit.cc.o"
  "CMakeFiles/ablation_distance_limit.dir/ablation_distance_limit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distance_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
