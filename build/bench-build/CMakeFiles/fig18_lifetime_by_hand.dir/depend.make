# Empty dependencies file for fig18_lifetime_by_hand.
# This may be replaced when dependencies are built.
