file(REMOVE_RECURSE
  "../bench/fig18_lifetime_by_hand"
  "../bench/fig18_lifetime_by_hand.pdb"
  "CMakeFiles/fig18_lifetime_by_hand.dir/fig18_lifetime_by_hand.cc.o"
  "CMakeFiles/fig18_lifetime_by_hand.dir/fig18_lifetime_by_hand.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_lifetime_by_hand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
