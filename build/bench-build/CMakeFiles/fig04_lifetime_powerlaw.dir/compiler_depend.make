# Empty compiler generated dependencies file for fig04_lifetime_powerlaw.
# This may be replaced when dependencies are built.
