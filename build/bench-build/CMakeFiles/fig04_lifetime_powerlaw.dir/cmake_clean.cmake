file(REMOVE_RECURSE
  "../bench/fig04_lifetime_powerlaw"
  "../bench/fig04_lifetime_powerlaw.pdb"
  "CMakeFiles/fig04_lifetime_powerlaw.dir/fig04_lifetime_powerlaw.cc.o"
  "CMakeFiles/fig04_lifetime_powerlaw.dir/fig04_lifetime_powerlaw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_lifetime_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
