file(REMOVE_RECURSE
  "../bench/table1_recovery_info"
  "../bench/table1_recovery_info.pdb"
  "CMakeFiles/table1_recovery_info.dir/table1_recovery_info.cc.o"
  "CMakeFiles/table1_recovery_info.dir/table1_recovery_info.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_recovery_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
