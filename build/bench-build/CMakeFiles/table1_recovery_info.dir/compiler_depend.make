# Empty compiler generated dependencies file for table1_recovery_info.
# This may be replaced when dependencies are built.
