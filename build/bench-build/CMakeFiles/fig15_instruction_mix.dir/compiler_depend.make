# Empty compiler generated dependencies file for fig15_instruction_mix.
# This may be replaced when dependencies are built.
