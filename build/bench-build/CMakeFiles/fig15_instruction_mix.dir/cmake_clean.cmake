file(REMOVE_RECURSE
  "../bench/fig15_instruction_mix"
  "../bench/fig15_instruction_mix.pdb"
  "CMakeFiles/fig15_instruction_mix.dir/fig15_instruction_mix.cc.o"
  "CMakeFiles/fig15_instruction_mix.dir/fig15_instruction_mix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
