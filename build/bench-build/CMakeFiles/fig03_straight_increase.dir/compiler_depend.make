# Empty compiler generated dependencies file for fig03_straight_increase.
# This may be replaced when dependencies are built.
