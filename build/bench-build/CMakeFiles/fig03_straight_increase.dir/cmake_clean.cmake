file(REMOVE_RECURSE
  "../bench/fig03_straight_increase"
  "../bench/fig03_straight_increase.pdb"
  "CMakeFiles/fig03_straight_increase.dir/fig03_straight_increase.cc.o"
  "CMakeFiles/fig03_straight_increase.dir/fig03_straight_increase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_straight_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
