# Empty compiler generated dependencies file for ablation_hand_quota.
# This may be replaced when dependencies are built.
