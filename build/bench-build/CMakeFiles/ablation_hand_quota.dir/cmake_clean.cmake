file(REMOVE_RECURSE
  "../bench/ablation_hand_quota"
  "../bench/ablation_hand_quota.pdb"
  "CMakeFiles/ablation_hand_quota.dir/ablation_hand_quota.cc.o"
  "CMakeFiles/ablation_hand_quota.dir/ablation_hand_quota.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hand_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
