file(REMOVE_RECURSE
  "../bench/fig13_performance"
  "../bench/fig13_performance.pdb"
  "CMakeFiles/fig13_performance.dir/fig13_performance.cc.o"
  "CMakeFiles/fig13_performance.dir/fig13_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
