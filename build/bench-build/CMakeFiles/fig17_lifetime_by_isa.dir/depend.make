# Empty dependencies file for fig17_lifetime_by_isa.
# This may be replaced when dependencies are built.
