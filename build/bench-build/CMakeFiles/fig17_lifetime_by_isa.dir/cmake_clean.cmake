file(REMOVE_RECURSE
  "../bench/fig17_lifetime_by_isa"
  "../bench/fig17_lifetime_by_isa.pdb"
  "CMakeFiles/fig17_lifetime_by_isa.dir/fig17_lifetime_by_isa.cc.o"
  "CMakeFiles/fig17_lifetime_by_isa.dir/fig17_lifetime_by_isa.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_lifetime_by_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
