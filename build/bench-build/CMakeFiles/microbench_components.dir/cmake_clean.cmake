file(REMOVE_RECURSE
  "../bench/microbench_components"
  "../bench/microbench_components.pdb"
  "CMakeFiles/microbench_components.dir/microbench_components.cc.o"
  "CMakeFiles/microbench_components.dir/microbench_components.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
