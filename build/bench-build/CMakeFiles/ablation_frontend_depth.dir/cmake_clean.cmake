file(REMOVE_RECURSE
  "../bench/ablation_frontend_depth"
  "../bench/ablation_frontend_depth.pdb"
  "CMakeFiles/ablation_frontend_depth.dir/ablation_frontend_depth.cc.o"
  "CMakeFiles/ablation_frontend_depth.dir/ablation_frontend_depth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frontend_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
