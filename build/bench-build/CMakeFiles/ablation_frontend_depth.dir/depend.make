# Empty dependencies file for ablation_frontend_depth.
# This may be replaced when dependencies are built.
