file(REMOVE_RECURSE
  "../bench/fig14_energy"
  "../bench/fig14_energy.pdb"
  "CMakeFiles/fig14_energy.dir/fig14_energy.cc.o"
  "CMakeFiles/fig14_energy.dir/fig14_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
