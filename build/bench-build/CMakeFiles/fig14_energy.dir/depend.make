# Empty dependencies file for fig14_energy.
# This may be replaced when dependencies are built.
