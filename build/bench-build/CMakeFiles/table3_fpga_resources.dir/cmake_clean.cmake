file(REMOVE_RECURSE
  "../bench/table3_fpga_resources"
  "../bench/table3_fpga_resources.pdb"
  "CMakeFiles/table3_fpga_resources.dir/table3_fpga_resources.cc.o"
  "CMakeFiles/table3_fpga_resources.dir/table3_fpga_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fpga_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
