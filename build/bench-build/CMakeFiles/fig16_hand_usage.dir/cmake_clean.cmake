file(REMOVE_RECURSE
  "../bench/fig16_hand_usage"
  "../bench/fig16_hand_usage.pdb"
  "CMakeFiles/fig16_hand_usage.dir/fig16_hand_usage.cc.o"
  "CMakeFiles/fig16_hand_usage.dir/fig16_hand_usage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_hand_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
