# Empty dependencies file for fig16_hand_usage.
# This may be replaced when dependencies are built.
