file(REMOVE_RECURSE
  "CMakeFiles/ch_ir.dir/analysis.cc.o"
  "CMakeFiles/ch_ir.dir/analysis.cc.o.d"
  "CMakeFiles/ch_ir.dir/vcode.cc.o"
  "CMakeFiles/ch_ir.dir/vcode.cc.o.d"
  "libch_ir.a"
  "libch_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
