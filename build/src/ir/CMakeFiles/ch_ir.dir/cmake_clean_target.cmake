file(REMOVE_RECURSE
  "libch_ir.a"
)
