# Empty dependencies file for ch_ir.
# This may be replaced when dependencies are built.
