file(REMOVE_RECURSE
  "CMakeFiles/ch_fpga.dir/resource_model.cc.o"
  "CMakeFiles/ch_fpga.dir/resource_model.cc.o.d"
  "libch_fpga.a"
  "libch_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
