# Empty compiler generated dependencies file for ch_fpga.
# This may be replaced when dependencies are built.
