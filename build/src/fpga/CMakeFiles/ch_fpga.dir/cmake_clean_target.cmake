file(REMOVE_RECURSE
  "libch_fpga.a"
)
