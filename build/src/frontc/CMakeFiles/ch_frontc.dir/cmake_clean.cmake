file(REMOVE_RECURSE
  "CMakeFiles/ch_frontc.dir/ast.cc.o"
  "CMakeFiles/ch_frontc.dir/ast.cc.o.d"
  "CMakeFiles/ch_frontc.dir/codegen.cc.o"
  "CMakeFiles/ch_frontc.dir/codegen.cc.o.d"
  "CMakeFiles/ch_frontc.dir/lexer.cc.o"
  "CMakeFiles/ch_frontc.dir/lexer.cc.o.d"
  "CMakeFiles/ch_frontc.dir/parser.cc.o"
  "CMakeFiles/ch_frontc.dir/parser.cc.o.d"
  "libch_frontc.a"
  "libch_frontc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_frontc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
