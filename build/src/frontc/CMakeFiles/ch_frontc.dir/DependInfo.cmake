
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontc/ast.cc" "src/frontc/CMakeFiles/ch_frontc.dir/ast.cc.o" "gcc" "src/frontc/CMakeFiles/ch_frontc.dir/ast.cc.o.d"
  "/root/repo/src/frontc/codegen.cc" "src/frontc/CMakeFiles/ch_frontc.dir/codegen.cc.o" "gcc" "src/frontc/CMakeFiles/ch_frontc.dir/codegen.cc.o.d"
  "/root/repo/src/frontc/lexer.cc" "src/frontc/CMakeFiles/ch_frontc.dir/lexer.cc.o" "gcc" "src/frontc/CMakeFiles/ch_frontc.dir/lexer.cc.o.d"
  "/root/repo/src/frontc/parser.cc" "src/frontc/CMakeFiles/ch_frontc.dir/parser.cc.o" "gcc" "src/frontc/CMakeFiles/ch_frontc.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ch_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
