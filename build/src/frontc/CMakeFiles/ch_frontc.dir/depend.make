# Empty dependencies file for ch_frontc.
# This may be replaced when dependencies are built.
