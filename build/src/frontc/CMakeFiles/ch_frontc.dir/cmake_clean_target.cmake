file(REMOVE_RECURSE
  "libch_frontc.a"
)
