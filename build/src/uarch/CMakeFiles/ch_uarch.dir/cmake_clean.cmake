file(REMOVE_RECURSE
  "CMakeFiles/ch_uarch.dir/branch_pred.cc.o"
  "CMakeFiles/ch_uarch.dir/branch_pred.cc.o.d"
  "CMakeFiles/ch_uarch.dir/cache.cc.o"
  "CMakeFiles/ch_uarch.dir/cache.cc.o.d"
  "CMakeFiles/ch_uarch.dir/config.cc.o"
  "CMakeFiles/ch_uarch.dir/config.cc.o.d"
  "CMakeFiles/ch_uarch.dir/core.cc.o"
  "CMakeFiles/ch_uarch.dir/core.cc.o.d"
  "CMakeFiles/ch_uarch.dir/sim.cc.o"
  "CMakeFiles/ch_uarch.dir/sim.cc.o.d"
  "libch_uarch.a"
  "libch_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
