file(REMOVE_RECURSE
  "libch_uarch.a"
)
