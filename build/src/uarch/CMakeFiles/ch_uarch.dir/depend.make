# Empty dependencies file for ch_uarch.
# This may be replaced when dependencies are built.
