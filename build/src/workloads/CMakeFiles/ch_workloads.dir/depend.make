# Empty dependencies file for ch_workloads.
# This may be replaced when dependencies are built.
