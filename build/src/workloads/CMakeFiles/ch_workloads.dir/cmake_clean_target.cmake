file(REMOVE_RECURSE
  "libch_workloads.a"
)
