file(REMOVE_RECURSE
  "CMakeFiles/ch_workloads.dir/workloads.cc.o"
  "CMakeFiles/ch_workloads.dir/workloads.cc.o.d"
  "libch_workloads.a"
  "libch_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
