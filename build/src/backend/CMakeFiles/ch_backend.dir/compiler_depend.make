# Empty compiler generated dependencies file for ch_backend.
# This may be replaced when dependencies are built.
