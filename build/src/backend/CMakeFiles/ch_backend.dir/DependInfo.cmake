
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/distance_sched.cc" "src/backend/CMakeFiles/ch_backend.dir/distance_sched.cc.o" "gcc" "src/backend/CMakeFiles/ch_backend.dir/distance_sched.cc.o.d"
  "/root/repo/src/backend/driver.cc" "src/backend/CMakeFiles/ch_backend.dir/driver.cc.o" "gcc" "src/backend/CMakeFiles/ch_backend.dir/driver.cc.o.d"
  "/root/repo/src/backend/hand_assign.cc" "src/backend/CMakeFiles/ch_backend.dir/hand_assign.cc.o" "gcc" "src/backend/CMakeFiles/ch_backend.dir/hand_assign.cc.o.d"
  "/root/repo/src/backend/riscv.cc" "src/backend/CMakeFiles/ch_backend.dir/riscv.cc.o" "gcc" "src/backend/CMakeFiles/ch_backend.dir/riscv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/ch_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ch_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontc/CMakeFiles/ch_frontc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
