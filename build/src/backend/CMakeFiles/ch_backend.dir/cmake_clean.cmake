file(REMOVE_RECURSE
  "CMakeFiles/ch_backend.dir/distance_sched.cc.o"
  "CMakeFiles/ch_backend.dir/distance_sched.cc.o.d"
  "CMakeFiles/ch_backend.dir/driver.cc.o"
  "CMakeFiles/ch_backend.dir/driver.cc.o.d"
  "CMakeFiles/ch_backend.dir/hand_assign.cc.o"
  "CMakeFiles/ch_backend.dir/hand_assign.cc.o.d"
  "CMakeFiles/ch_backend.dir/riscv.cc.o"
  "CMakeFiles/ch_backend.dir/riscv.cc.o.d"
  "libch_backend.a"
  "libch_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
