file(REMOVE_RECURSE
  "libch_backend.a"
)
