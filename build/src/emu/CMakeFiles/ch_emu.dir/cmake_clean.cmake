file(REMOVE_RECURSE
  "CMakeFiles/ch_emu.dir/emulator.cc.o"
  "CMakeFiles/ch_emu.dir/emulator.cc.o.d"
  "libch_emu.a"
  "libch_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
