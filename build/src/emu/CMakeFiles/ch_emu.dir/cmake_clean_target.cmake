file(REMOVE_RECURSE
  "libch_emu.a"
)
