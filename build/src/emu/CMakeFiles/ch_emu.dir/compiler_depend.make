# Empty compiler generated dependencies file for ch_emu.
# This may be replaced when dependencies are built.
