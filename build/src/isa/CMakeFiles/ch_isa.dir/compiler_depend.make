# Empty compiler generated dependencies file for ch_isa.
# This may be replaced when dependencies are built.
