file(REMOVE_RECURSE
  "libch_isa.a"
)
