file(REMOVE_RECURSE
  "CMakeFiles/ch_isa.dir/encoding.cc.o"
  "CMakeFiles/ch_isa.dir/encoding.cc.o.d"
  "CMakeFiles/ch_isa.dir/opinfo.cc.o"
  "CMakeFiles/ch_isa.dir/opinfo.cc.o.d"
  "libch_isa.a"
  "libch_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
