# Empty compiler generated dependencies file for ch_asm.
# This may be replaced when dependencies are built.
