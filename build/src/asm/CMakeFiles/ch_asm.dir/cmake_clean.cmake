file(REMOVE_RECURSE
  "CMakeFiles/ch_asm.dir/assembler.cc.o"
  "CMakeFiles/ch_asm.dir/assembler.cc.o.d"
  "CMakeFiles/ch_asm.dir/module_builder.cc.o"
  "CMakeFiles/ch_asm.dir/module_builder.cc.o.d"
  "libch_asm.a"
  "libch_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
