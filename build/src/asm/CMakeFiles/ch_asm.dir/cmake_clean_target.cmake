file(REMOVE_RECURSE
  "libch_asm.a"
)
