file(REMOVE_RECURSE
  "libch_energy.a"
)
