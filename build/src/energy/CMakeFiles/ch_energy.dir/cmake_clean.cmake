file(REMOVE_RECURSE
  "CMakeFiles/ch_energy.dir/energy_model.cc.o"
  "CMakeFiles/ch_energy.dir/energy_model.cc.o.d"
  "libch_energy.a"
  "libch_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
