# Empty dependencies file for ch_energy.
# This may be replaced when dependencies are built.
