file(REMOVE_RECURSE
  "CMakeFiles/ch_trace.dir/analyzers.cc.o"
  "CMakeFiles/ch_trace.dir/analyzers.cc.o.d"
  "libch_trace.a"
  "libch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
