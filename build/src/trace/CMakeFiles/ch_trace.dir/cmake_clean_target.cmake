file(REMOVE_RECURSE
  "libch_trace.a"
)
