# Empty compiler generated dependencies file for ch_trace.
# This may be replaced when dependencies are built.
