# Empty dependencies file for widths_explorer.
# This may be replaced when dependencies are built.
