file(REMOVE_RECURSE
  "CMakeFiles/widths_explorer.dir/widths_explorer.cpp.o"
  "CMakeFiles/widths_explorer.dir/widths_explorer.cpp.o.d"
  "widths_explorer"
  "widths_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widths_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
