
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compiler_tour.cpp" "examples/CMakeFiles/compiler_tour.dir/compiler_tour.cpp.o" "gcc" "examples/CMakeFiles/compiler_tour.dir/compiler_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/ch_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/ch_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ch_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontc/CMakeFiles/ch_frontc.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/ch_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/ch_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ch_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ch_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ch_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
