file(REMOVE_RECURSE
  "CMakeFiles/compiler_tour.dir/compiler_tour.cpp.o"
  "CMakeFiles/compiler_tour.dir/compiler_tour.cpp.o.d"
  "compiler_tour"
  "compiler_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
