/**
 * @file
 * Fig. 14: energy relative to the 4-fetch RISC-V model, with the
 * per-component stack. The paper's headline: Clockhands saves 7.4% at
 * 8-fetch, 17.5% at 12-fetch, and 24.4% at 16-fetch, and RISC-V's total
 * grows to 7.83x from 4-fetch to 16-fetch.
 */

#include "bench_util.h"
#include "energy/energy_model.h"
#include "uarch/sim.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 14", "energy vs 4-fetch RISC-V, component stack");
    const int widths[] = {4, 6, 8, 12, 16};
    const uint64_t cap = benchMaxInsts(~0ull);
    if (cap != ~0ull) {
        std::printf("WARNING: CH_BENCH_MAXINSTS caps runs at equal "
                    "instruction counts, which is not equal work across "
                    "ISAs; ratios will be skewed.\n");
    }

    // Sum energies across the corpus (the paper aggregates similarly).
    double total[3][5] = {};
    EnergyBreakdown comp[3][5] = {};
    for (const auto& w : workloads()) {
        for (int wi = 0; wi < 5; ++wi) {
            MachineConfig cfg = MachineConfig::preset(widths[wi]);
            int ii = 0;
            for (Isa isa :
                 {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
                SimResult r =
                    simulate(compiledWorkload(w.name, isa), cfg, cap);
                EnergyBreakdown e = computeEnergy(cfg, isa, r.stats);
                total[ii][wi] += e.total();
                for (int c = 0; c < static_cast<int>(EnergyComp::kCount);
                     ++c) {
                    comp[ii][wi].comp[c] += e.comp[c];
                }
                ++ii;
            }
        }
    }

    const double base = total[0][0];
    TextTable t;
    t.header({"isa", "4f", "6f", "8f", "12f", "16f"});
    const char* names[3] = {"RISC-V", "STRAIGHT", "Clockhands"};
    for (int ii = 0; ii < 3; ++ii) {
        std::vector<std::string> row = {names[ii]};
        for (int wi = 0; wi < 5; ++wi)
            row.push_back(fmtDouble(total[ii][wi] / base, 2));
        t.row(row);
    }
    t.print();
    std::printf("paper:    R 1.00/1.97/2.86/4.94/7.83   "
                "S 1.21/2.19/3.02/4.62/6.70   C 1.06/1.93/2.65/4.08/5.92\n");

    std::printf("\nClockhands saving vs RISC-V (paper: 7.4%% @8f, "
                "17.5%% @12f, 24.4%% @16f):\n");
    for (int wi = 2; wi < 5; ++wi) {
        std::printf("  %df: %.1f%%\n", widths[wi],
                    100.0 * (1.0 - total[2][wi] / total[0][wi]));
    }

    std::printf("\ncomponent stack at 8-fetch (share of each ISA's "
                "total):\n");
    TextTable ct;
    ct.header({"component", "RISC-V", "STRAIGHT", "Clockhands"});
    for (int c = 0; c < static_cast<int>(EnergyComp::kCount); ++c) {
        std::vector<std::string> row = {
            std::string(energyCompName(static_cast<EnergyComp>(c)))};
        for (int ii = 0; ii < 3; ++ii)
            row.push_back(fmtPercent(comp[ii][2].comp[c] / total[ii][2]));
        ct.row(row);
    }
    ct.print();
    return 0;
}
