/**
 * @file
 * Fig. 14: energy relative to the 4-fetch RISC-V model, with the
 * per-component stack. The paper's headline: Clockhands saves 7.4% at
 * 8-fetch, 17.5% at 12-fetch, and 24.4% at 16-fetch, and RISC-V's total
 * grows to 7.83x from 4-fetch to 16-fetch.
 *
 * Each job simulates one (workload, ISA, width) point and reports the
 * energy components as derived values in its metrics record.
 */

#include "bench_util.h"
#include "energy/energy_model.h"
#include "uarch/sim.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig14_energy");
    benchHeader("Fig 14", "energy vs 4-fetch RISC-V, component stack");
    const int widths[] = {4, 6, 8, 12, 16};
    const uint64_t cap = benchMaxInsts(~0ull);
    if (cap != ~0ull) {
        std::printf("WARNING: CH_BENCH_MAXINSTS caps runs at equal "
                    "instruction counts, which is not equal work across "
                    "ISAs; ratios will be skewed.\n");
    }

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (int wi = 0; wi < 5; ++wi) {
            for (Isa isa :
                 {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
                JobSpec spec;
                spec.id = w.name + "/" + shortIsa(isa) + "/" +
                          std::to_string(widths[wi]) + "f";
                spec.workload = w.name;
                spec.isa = isa;
                spec.cfg = MachineConfig::preset(widths[wi]);
                spec.maxInsts = cap;
                runner.add(spec, [](const JobContext& job) {
                    JobMetrics m = simJob(job);
                    StatGroup stats;
                    for (const auto& [name, v] : m.counters)
                        stats.counter(name).set(v);
                    EnergyBreakdown e = computeEnergy(job.spec.cfg,
                                                      job.spec.isa,
                                                      stats);
                    m.values["energy.total"] = e.total();
                    for (int c = 0;
                         c < static_cast<int>(EnergyComp::kCount); ++c) {
                        m.values[std::string("energy.") +
                                 std::string(energyCompName(
                                     static_cast<EnergyComp>(c)))] =
                            e.comp[c];
                    }
                    return m;
                });
            }
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    // Sum energies across the corpus (the paper aggregates similarly).
    double total[3][5] = {};
    EnergyBreakdown comp[3][5] = {};
    size_t job = 0;
    for (size_t wl = 0; wl < workloads().size(); ++wl) {
        for (int wi = 0; wi < 5; ++wi) {
            for (int ii = 0; ii < 3; ++ii) {
                const auto& vals = results[job++].metrics.values;
                total[ii][wi] += vals.at("energy.total");
                for (int c = 0;
                     c < static_cast<int>(EnergyComp::kCount); ++c) {
                    comp[ii][wi].comp[c] += vals.at(
                        std::string("energy.") +
                        std::string(energyCompName(
                            static_cast<EnergyComp>(c))));
                }
            }
        }
    }

    const double base = total[0][0];
    TextTable t;
    t.header({"isa", "4f", "6f", "8f", "12f", "16f"});
    const char* names[3] = {"RISC-V", "STRAIGHT", "Clockhands"};
    for (int ii = 0; ii < 3; ++ii) {
        std::vector<std::string> row = {names[ii]};
        for (int wi = 0; wi < 5; ++wi)
            row.push_back(fmtDouble(total[ii][wi] / base, 2));
        t.row(row);
    }
    t.print();
    std::printf("paper:    R 1.00/1.97/2.86/4.94/7.83   "
                "S 1.21/2.19/3.02/4.62/6.70   C 1.06/1.93/2.65/4.08/5.92\n");

    std::printf("\nClockhands saving vs RISC-V (paper: 7.4%% @8f, "
                "17.5%% @12f, 24.4%% @16f):\n");
    for (int wi = 2; wi < 5; ++wi) {
        std::printf("  %df: %.1f%%\n", widths[wi],
                    100.0 * (1.0 - total[2][wi] / total[0][wi]));
    }

    std::printf("\ncomponent stack at 8-fetch (share of each ISA's "
                "total):\n");
    TextTable ct;
    ct.header({"component", "RISC-V", "STRAIGHT", "Clockhands"});
    for (int c = 0; c < static_cast<int>(EnergyComp::kCount); ++c) {
        std::vector<std::string> row = {
            std::string(energyCompName(static_cast<EnergyComp>(c)))};
        for (int ii = 0; ii < 3; ++ii)
            row.push_back(fmtPercent(comp[ii][2].comp[c] / total[ii][2]));
        ct.row(row);
    }
    ct.print();
    benchWriteMetrics(ctx, results);
    return 0;
}
