/**
 * @file
 * google-benchmark microbenchmarks for the infrastructure itself: the
 * TAGE predictor, BTB, cache model, encoders, the functional emulator,
 * and the compiler. These guard the simulation throughput that makes the
 * figure harness practical.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "backend/backend.h"
#include "common/prng.h"
#include "emu/emulator.h"
#include "isa/encoding.h"
#include "uarch/branch_pred.h"
#include "uarch/cache.h"

namespace ch {
namespace {

void
BM_TagePredictUpdate(benchmark::State& state)
{
    Tage tage;
    Prng prng(1);
    uint64_t pc = 0x1000;
    for (auto _ : state) {
        const bool taken = (prng.next() & 7) != 0;
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.update(pc, taken);
        pc = 0x1000 + (prng.next() & 0xff) * 4;
    }
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_BtbLookupInsert(benchmark::State& state)
{
    Btb btb(8192, 4);
    Prng prng(2);
    for (auto _ : state) {
        const uint64_t pc = (prng.next() & 0xffff) * 4;
        if (btb.lookup(pc) == 0)
            btb.insert(pc, pc + 16);
    }
}
BENCHMARK(BM_BtbLookupInsert);

void
BM_CacheAccess(benchmark::State& state)
{
    Cache cache(128, 8, 64);
    Prng prng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(prng.next() & 0x3ffff));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_EncodeDecodeRoundTrip(benchmark::State& state)
{
    const Isa isa = static_cast<Isa>(state.range(0));
    Inst inst;
    inst.op = Op::ADDI;
    inst.dst = isa == Isa::Clockhands ? HandT : 10;
    inst.src1 = isa == Isa::Riscv ? 11 : 1;
    inst.src1Hand = HandT;
    inst.imm = 42;
    for (auto _ : state) {
        const uint32_t w = encode(isa, inst);
        benchmark::DoNotOptimize(decode(isa, w));
    }
}
BENCHMARK(BM_EncodeDecodeRoundTrip)->Arg(0)->Arg(1)->Arg(2);

void
BM_EmulatorThroughput(benchmark::State& state)
{
    const Isa isa = static_cast<Isa>(state.range(0));
    Program p = compileMiniC(R"(
        int main() {
            long acc = 0;
            long i;
            for (i = 0; i < 1000000000; i = i + 1)
                acc = acc + (i ^ (i >> 3));
            return (int)(acc & 63);
        }
    )", isa);
    Emulator emu(p);
    for (auto _ : state) {
        emu.run(10000, nullptr);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EmulatorThroughput)->Arg(0)->Arg(1)->Arg(2);

void
BM_CompileMiniC(benchmark::State& state)
{
    const char* src = R"(
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            long acc = 0;
            for (long i = 0; i < 10; ++i) acc += fib(i);
            return (int)acc;
        }
    )";
    const Isa isa = static_cast<Isa>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(compileMiniC(src, isa));
    }
}
BENCHMARK(BM_CompileMiniC)->Arg(0)->Arg(1)->Arg(2);

void
BM_AssembleText(benchmark::State& state)
{
    const std::string src = R"(
        .data
    arr: .zero 40
        .text
        la a0, arr
        li a1, 10
        addi a5, zero, 0
    loop:
        sw a5, 0(a0)
        addiw a5, a5, 1
        addi a0, a0, 4
        bne a1, a5, loop
        ecall zero, zero, 0
    )";
    for (auto _ : state) {
        benchmark::DoNotOptimize(assemble(Isa::Riscv, src));
    }
}
BENCHMARK(BM_AssembleText);

} // namespace
} // namespace ch

BENCHMARK_MAIN();
