/**
 * @file
 * Fig. 7: remaining loop-constant relay mv instructions as a function of
 * the number of hands (1..8), normalized to the STRAIGHT count (1 hand =
 * 100%), with and without one hand reserved for SP/args. The paper finds
 * four hands remove 94.9% of the relays, and reserving one hand for SP
 * costs only another 0.7%.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig07_hand_count_sweep");
    benchHeader("Fig 7", "remaining relay mv vs number of hands");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        JobSpec spec;
        spec.id = w.name + "/R/cross-depth";
        spec.workload = w.name;
        spec.isa = Isa::Riscv;
        spec.maxInsts = cap;
        runner.add(spec, [](const JobContext& job) {
            RelayAnalyzer ra(*job.program);
            RunResult run = runProgram(*job.program, job.spec.maxInsts,
                                       &ra);
            RelayReport rep = ra.finish();
            JobMetrics m;
            m.exited = run.exited;
            m.exitCode = run.exitCode;
            m.insts = rep.totalInsts;
            m.counters["relay.mv_loop_constant"] = rep.mvLoopConstant;
            for (int d = 0; d < 32; ++d) {
                if (rep.crossDepth[d]) {
                    char key[40];
                    std::snprintf(key, sizeof(key),
                                  "relay.cross_depth.%02d", d);
                    m.counters[key] = rep.crossDepth[d];
                }
            }
            return m;
        });
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    // Aggregate the loop-crossing-depth histogram over the corpus.
    RelayReport agg;
    for (const JobResult& r : results) {
        agg.mvLoopConstant += r.metrics.counters.at(
            "relay.mv_loop_constant");
        for (int d = 0; d < 32; ++d) {
            char key[40];
            std::snprintf(key, sizeof(key), "relay.cross_depth.%02d", d);
            auto it = r.metrics.counters.find(key);
            if (it != r.metrics.counters.end())
                agg.crossDepth[d] += it->second;
        }
    }

    TextTable t;
    t.header({"hands", "all general purpose", "one hand for SP/args"});
    const double base =
        static_cast<double>(agg.remainingWithHands(1, false));
    for (int h = 1; h <= 8; ++h) {
        t.row({std::to_string(h),
               fmtPercent(agg.remainingWithHands(h, false) / base),
               fmtPercent(agg.remainingWithHands(h, true) / base)});
    }
    t.print();
    std::printf("\npaper: 4 hands leave 5.1%% (94.9%% eliminated); "
                "8 hands only 1.3%% more; SP reservation costs ~0.7%%\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
