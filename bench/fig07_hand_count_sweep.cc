/**
 * @file
 * Fig. 7: remaining loop-constant relay mv instructions as a function of
 * the number of hands (1..8), normalized to the STRAIGHT count (1 hand =
 * 100%), with and without one hand reserved for SP/args. The paper finds
 * four hands remove 94.9% of the relays, and reserving one hand for SP
 * costs only another 0.7%.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 7", "remaining relay mv vs number of hands");

    // Aggregate the loop-crossing-depth histogram over the corpus.
    RelayReport agg;
    const uint64_t cap = benchMaxInsts(~0ull);
    for (const auto& w : workloads()) {
        const Program& p = compiledWorkload(w.name, Isa::Riscv);
        RelayAnalyzer ra(p);
        runProgram(p, cap, &ra);
        RelayReport rep = ra.finish();
        agg.mvLoopConstant += rep.mvLoopConstant;
        for (int d = 0; d < 32; ++d)
            agg.crossDepth[d] += rep.crossDepth[d];
    }

    TextTable t;
    t.header({"hands", "all general purpose", "one hand for SP/args"});
    const double base =
        static_cast<double>(agg.remainingWithHands(1, false));
    for (int h = 1; h <= 8; ++h) {
        t.row({std::to_string(h),
               fmtPercent(agg.remainingWithHands(h, false) / base),
               fmtPercent(agg.remainingWithHands(h, true) / base)});
    }
    t.print();
    std::printf("\npaper: 4 hands leave 5.1%% (94.9%% eliminated); "
                "8 hands only 1.3%% more; SP reservation costs ~0.7%%\n");
    return 0;
}
