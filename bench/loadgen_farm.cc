/**
 * @file
 * Load generator for the simulation farm (docs/SERVICE.md). The bench
 * self-hosts a FarmServer on a temporary Unix socket with a fresh
 * persistent store, drives a 2-workload x 3-ISA x 3-width grid through
 * FarmClient, and reports:
 *
 *   - cold-store throughput (every job simulated) and per-job latency,
 *   - warm-store throughput (every job served from disk), the warm
 *     latency distribution (p50/p99), and the cold->warm speedup,
 *   - worker scaling: cold-grid throughput at 1, 2 and 4 workers,
 *     each against its own fresh store.
 *
 * Every number here is a host wall-clock observation, so the metrics
 * files carry only the deterministic shape (job counts, summed cycles,
 * ok flags) by default; latency/throughput values land there under
 * --host-metrics (they always print in the table).
 *
 * CI gates (exit 1 when violated, all optional):
 *   --max-p99-ratio R        warm p99 latency must be <= R x p50
 *   --min-warm-speedup X     warm throughput must be >= X x cold
 *   --require-monotone-scaling
 *                            1->2->4 workers must not lose throughput
 *                            (10% noise tolerance pairwise, and 4
 *                            workers must beat 1 outright). The strict
 *                            form only applies up to the host's core
 *                            count: once workers exceed cores the grid
 *                            is time-sliced, not parallel, so the gate
 *                            degrades to an oversubscription-overhead
 *                            bound (>= 70% of the previous point).
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ftw.h>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace ch;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

int
rmCallback(const char* path, const struct stat*, int, struct FTW*)
{
    return ::remove(path);
}

void
removeTree(const std::string& path)
{
    ::nftw(path.c_str(), rmCallback, 16, FTW_DEPTH | FTW_PHYS);
}

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/chfarm-loadgen-XXXXXX";
    if (!::mkdtemp(tmpl))
        fatal("loadgen_farm: mkdtemp failed");
    return tmpl;
}

/** FarmServer on a temp Unix socket, serving from a second thread. */
class LocalFarm
{
  public:
    LocalFarm(const std::string& dir, int workers,
              const std::string& storeDir)
    {
        service::FarmOptions opt;
        opt.socket = dir + "/farm-" + std::to_string(workers) + ".sock";
        opt.workers = workers;
        opt.storeDir = storeDir;
        opt.useStore = true;
        address_ = opt.socket;
        server_ = std::make_unique<service::FarmServer>(std::move(opt));
        server_->start();
        thread_ = std::thread([this] { server_->serve(); });
    }

    ~LocalFarm()
    {
        server_->requestStop();
        thread_.join();
    }

    const std::string& address() const { return address_; }

  private:
    std::string address_;
    std::unique_ptr<service::FarmServer> server_;
    std::thread thread_;
};

/** The fixed grid every phase runs: 2 workloads x 3 ISAs x 3 widths. */
std::vector<JobSpec>
buildGrid(uint64_t cap)
{
    std::vector<JobSpec> specs;
    for (const char* wl : {"coremark", "mcf"}) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            for (int fw : {4, 6, 8}) {
                JobSpec spec;
                spec.workload = wl;
                spec.isa = isa;
                spec.cfg = MachineConfig::preset(fw);
                spec.maxInsts = cap;
                spec.id = std::string(wl) + "/" + shortIsa(isa) + "/" +
                          std::to_string(fw) + "f";
                spec.seed = jobSeed(spec);
                specs.push_back(std::move(spec));
            }
        }
    }
    return specs;
}

struct PhaseStats {
    double wallS = 0;
    double jobsPerS = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    uint64_t cyclesTotal = 0;
    size_t jobs = 0;
    size_t failed = 0;
};

/** Run @p specs through the farm once; per-job latency = accept->result. */
PhaseStats
runPhase(const std::string& address, const std::vector<JobSpec>& specs)
{
    PhaseStats st;
    st.jobs = specs.size();
    std::vector<std::chrono::steady_clock::time_point> accepted(
        specs.size());
    std::vector<double> latMs;
    latMs.reserve(specs.size());

    service::FarmClient client(address);
    const auto t0 = std::chrono::steady_clock::now();
    client.runJobs(
        specs, {},
        [&](size_t i, JobResult r) {
            latMs.push_back(
                1e3 *
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - accepted[i])
                    .count());
            if (r.ok)
                st.cyclesTotal += r.metrics.cycles;
            else
                ++st.failed;
        },
        [&](size_t i) { accepted[i] = std::chrono::steady_clock::now(); });
    st.wallS = secondsSince(t0);
    st.jobsPerS = st.wallS > 0 ? specs.size() / st.wallS : 0;

    std::sort(latMs.begin(), latMs.end());
    if (!latMs.empty()) {
        st.p50Ms = latMs[latMs.size() / 2];
        st.p99Ms = latMs[std::min(latMs.size() - 1,
                                  latMs.size() * 99 / 100)];
    }
    return st;
}

/** Synthetic metrics row for one phase (host values gated). */
JobResult
phaseRow(const BenchContext& ctx, const std::string& id,
         const PhaseStats& st)
{
    JobResult r;
    r.spec.id = id;
    r.spec.workload = "farm-grid";
    r.spec.isa = Isa::Riscv;
    r.ok = st.failed == 0;
    if (!r.ok)
        r.error = std::to_string(st.failed) + " farm jobs failed";
    r.metrics.exited = true;
    r.metrics.counters["farm.jobs"] = st.jobs;
    r.metrics.counters["farm.failed"] = st.failed;
    r.metrics.counters["cycles.total"] = st.cyclesTotal;
    if (ctx.hostMetrics) {
        r.metrics.values["wall.ms"] = 1e3 * st.wallS;
        r.metrics.values["jobs.per.s"] = st.jobsPerS;
        r.metrics.values["latency.p50.ms"] = st.p50Ms;
        r.metrics.values["latency.p99.ms"] = st.p99Ms;
    }
    return r;
}

double
parsePositiveDouble(const char* what, const char* s)
{
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE || !(v > 0)) {
        std::fprintf(stderr,
                     "error: %s expects a positive number, got '%s'\n",
                     what, s);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    // Bench-specific gate flags; strip them before the shared parse.
    double maxP99Ratio = 0, minWarmSpeedup = 0;
    bool requireMonotone = false;
    std::vector<char*> passArgv;
    passArgv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--max-p99-ratio")
            maxP99Ratio = parsePositiveDouble("--max-p99-ratio", next());
        else if (arg == "--min-warm-speedup")
            minWarmSpeedup =
                parsePositiveDouble("--min-warm-speedup", next());
        else if (arg == "--require-monotone-scaling")
            requireMonotone = true;
        else
            passArgv.push_back(argv[i]);
    }
    BenchContext ctx = benchInit(static_cast<int>(passArgv.size()),
                                 passArgv.data(), "loadgen_farm");
    if (ctx.runner.executor) {
        // This bench *is* the farm client; pointing it at another farm
        // would measure that daemon, not the self-hosted one.
        std::fprintf(stderr,
                     "error: loadgen_farm does not support --farm\n");
        return 2;
    }
    benchHeader("Loadgen", "simulation-farm latency and scaling");
    const uint64_t cap = benchMaxInsts(200'000);
    const std::vector<JobSpec> specs = buildGrid(cap);

    const std::string tmp = makeTempDir();
    std::vector<JobResult> rows;

    // Phase 1+2: cold then warm against the same 2-worker farm/store.
    PhaseStats cold, warm;
    {
        LocalFarm farm(tmp, 2, tmp + "/store-main");
        std::printf("[cold] %zu jobs, 2 workers, fresh store...\n",
                    specs.size());
        cold = runPhase(farm.address(), specs);
        std::printf("[warm] same grid, store now populated...\n");
        warm = runPhase(farm.address(), specs);
    }
    rows.push_back(phaseRow(ctx, "cold/w2", cold));
    rows.push_back(phaseRow(ctx, "warm/w2", warm));

    // Phase 3: cold-grid throughput at 1, 2, 4 workers (fresh store
    // each, so every point simulates the same amount of work).
    const int workerPoints[] = {1, 2, 4};
    PhaseStats scale[3];
    for (size_t i = 0; i < 3; ++i) {
        const int w = workerPoints[i];
        const std::string store =
            tmp + "/store-w" + std::to_string(w);
        std::printf("[scale] %zu jobs, %d worker%s, fresh store...\n",
                    specs.size(), w, w == 1 ? "" : "s");
        LocalFarm farm(tmp, w, store);
        scale[i] = runPhase(farm.address(), specs);
        rows.push_back(phaseRow(
            ctx, "scale/w" + std::to_string(w), scale[i]));
    }
    removeTree(tmp);

    const double warmSpeedup =
        warm.wallS > 0 ? cold.wallS / warm.wallS : 0;
    const double p99Ratio =
        warm.p50Ms > 0 ? warm.p99Ms / warm.p50Ms : 0;

    TextTable t;
    t.header({"phase", "workers", "jobs", "wall ms", "jobs/s",
              "p50 ms", "p99 ms"});
    const auto addRow = [&](const char* phase, int w,
                            const PhaseStats& st) {
        t.row({phase, std::to_string(w), std::to_string(st.jobs),
               fmtDouble(1e3 * st.wallS, 1), fmtDouble(st.jobsPerS, 2),
               fmtDouble(st.p50Ms, 2), fmtDouble(st.p99Ms, 2)});
    };
    addRow("cold", 2, cold);
    addRow("warm", 2, warm);
    for (size_t i = 0; i < 3; ++i)
        addRow("scale", workerPoints[i], scale[i]);
    t.print();

    std::printf("\nwarm store: %.2fx throughput vs cold "
                "(%.2f -> %.2f jobs/s), p99/p50 latency ratio %.2f\n",
                warmSpeedup, cold.jobsPerS, warm.jobsPerS, p99Ratio);
    std::printf("worker scaling (cold grid): 1w %.2f, 2w %.2f, "
                "4w %.2f jobs/s\n",
                scale[0].jobsPerS, scale[1].jobsPerS, scale[2].jobsPerS);
    benchWriteMetrics(ctx, rows);

    for (const JobResult& r : rows) {
        if (!r.ok) {
            std::fprintf(stderr, "error: phase %s: %s\n",
                         r.spec.id.c_str(), r.error.c_str());
            return 1;
        }
    }
    if (maxP99Ratio > 0 && p99Ratio > maxP99Ratio) {
        std::fprintf(stderr,
                     "error: warm p99/p50 latency ratio %.2f exceeds "
                     "--max-p99-ratio %.2f\n", p99Ratio, maxP99Ratio);
        return 1;
    }
    if (minWarmSpeedup > 0 && warmSpeedup < minWarmSpeedup) {
        std::fprintf(stderr,
                     "error: warm speedup %.2fx below "
                     "--min-warm-speedup %.2fx\n",
                     warmSpeedup, minWarmSpeedup);
        return 1;
    }
    if (requireMonotone) {
        const unsigned cores =
            std::max(1u, std::thread::hardware_concurrency());
        bool ok = true;
        for (size_t i = 1; i < 3; ++i) {
            const double prev = scale[i - 1].jobsPerS;
            const double cur = scale[i].jobsPerS;
            // Parallel speedup is only physical while workers fit in
            // cores; past that, only bound the oversubscription cost.
            const double floor =
                static_cast<unsigned>(workerPoints[i]) <= cores ? 0.9
                                                                : 0.7;
            if (cur < floor * prev)
                ok = false;
        }
        if (cores >= 4 && scale[2].jobsPerS <= scale[0].jobsPerS)
            ok = false;
        if (!ok) {
            std::fprintf(stderr,
                         "error: worker scaling not monotone "
                         "(%u cores): 1w %.2f, 2w %.2f, 4w %.2f "
                         "jobs/s\n",
                         cores, scale[0].jobsPerS, scale[1].jobsPerS,
                         scale[2].jobsPerS);
            return 1;
        }
    }
    return 0;
}
