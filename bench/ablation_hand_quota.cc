/**
 * @file
 * Ablation: per-hand physical-register quota split. Table 2 weights the
 * split by hand usage (t gets 48/64 of the growth, u 9/64, v 5/64,
 * s 2/64). This compares it with a naive equal split, which starves the
 * write-heavy t hand and triggers ring-wraparound stalls.
 */

#include "bench_util.h"
#include "uarch/sim.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "ablation_hand_quota");
    benchHeader("Ablation", "Clockhands hand-quota split (Table 2 vs "
                            "equal)");
    const uint64_t cap = benchMaxInsts(3'000'000);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (int width : {8, 16}) {
            for (bool equal : {false, true}) {
                JobSpec spec;
                spec.id = w.name + "/C/" + std::to_string(width) + "f/" +
                          (equal ? "equal" : "table2");
                spec.workload = w.name;
                spec.isa = Isa::Clockhands;
                spec.cfg = MachineConfig::preset(width);
                spec.cfg.equalHandQuota = equal;
                spec.maxInsts = cap;
                runner.addSim(spec);
            }
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "width", "Table-2 cycles", "equal-split cycles",
              "equal/Table2"});
    size_t job = 0;
    for (const auto& w : workloads()) {
        for (int width : {8, 16}) {
            const uint64_t weighted = results[job++].metrics.cycles;
            const uint64_t equal = results[job++].metrics.cycles;
            t.row({w.name, std::to_string(width),
                   std::to_string(weighted), std::to_string(equal),
                   fmtDouble(static_cast<double>(equal) / weighted, 3)});
        }
    }
    t.print();
    std::printf("\nexpectation: the equal split is never faster; the "
                "usage-weighted Table 2 split keeps the hot t hand from "
                "stalling allocation\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
