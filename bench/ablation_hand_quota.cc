/**
 * @file
 * Ablation: per-hand physical-register quota split. Table 2 weights the
 * split by hand usage (t gets 48/64 of the growth, u 9/64, v 5/64,
 * s 2/64). This compares it with a naive equal split, which starves the
 * write-heavy t hand and triggers ring-wraparound stalls.
 */

#include "bench_util.h"
#include "uarch/sim.h"

using namespace ch;

int
main()
{
    benchHeader("Ablation", "Clockhands hand-quota split (Table 2 vs "
                            "equal)");
    const uint64_t cap = benchMaxInsts(3'000'000);

    TextTable t;
    t.header({"benchmark", "width", "Table-2 cycles", "equal-split cycles",
              "equal/Table2"});
    for (const auto& w : workloads()) {
        for (int width : {8, 16}) {
            MachineConfig weighted = MachineConfig::preset(width);
            MachineConfig equal = MachineConfig::preset(width);
            equal.equalHandQuota = true;
            SimResult a = simulate(
                compiledWorkload(w.name, Isa::Clockhands), weighted, cap);
            SimResult b = simulate(
                compiledWorkload(w.name, Isa::Clockhands), equal, cap);
            t.row({w.name, std::to_string(width),
                   std::to_string(a.cycles), std::to_string(b.cycles),
                   fmtDouble(static_cast<double>(b.cycles) / a.cycles,
                             3)});
        }
    }
    t.print();
    std::printf("\nexpectation: the equal split is never faster; the "
                "usage-weighted Table 2 split keeps the hot t hand from "
                "stalling allocation\n");
    return 0;
}
