/**
 * @file
 * Fig. 16: how often each Clockhands hand is read and written, normalized
 * by executed instructions. The paper observes: t is written most; v is
 * written rarely but read often (loop constants); s is written very
 * rarely but read a lot (SP/arguments), except in call-heavy mcf.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 16", "Clockhands per-hand read/write breakdown");
    const uint64_t cap = benchMaxInsts(~0ull);

    TextTable t;
    t.header({"benchmark", "s rd", "s wr", "t rd", "t wr", "u rd", "u wr",
              "v rd", "v wr", "no-dst"});
    for (const auto& w : workloads()) {
        HandUsageAnalyzer hu;
        runProgram(compiledWorkload(w.name, Isa::Clockhands), cap, &hu);
        const double n = static_cast<double>(hu.total());
        auto pct = [&](uint64_t v) { return fmtPercent(v / n); };
        t.row({w.name, pct(hu.reads(HandS)), pct(hu.writes(HandS)),
               pct(hu.reads(HandT)), pct(hu.writes(HandT)),
               pct(hu.reads(HandU)), pct(hu.writes(HandU)),
               pct(hu.reads(HandV)), pct(hu.writes(HandV)),
               pct(hu.noDst())});
    }
    t.print();
    std::printf("\npaper: t written most; v written rarely / read often "
                "(loop constants); s read-heavy, written most in mcf "
                "(function arguments)\n");
    return 0;
}
