/**
 * @file
 * Fig. 16: how often each Clockhands hand is read and written, normalized
 * by executed instructions. The paper observes: t is written most; v is
 * written rarely but read often (loop constants); s is written very
 * rarely but read a lot (SP/arguments), except in call-heavy mcf.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

namespace {
const char* kHandNames[kNumHands] = {"t", "u", "v", "s"};
}

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig16_hand_usage");
    benchHeader("Fig 16", "Clockhands per-hand read/write breakdown");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        JobSpec spec;
        spec.id = w.name + "/C/hand-usage";
        spec.workload = w.name;
        spec.isa = Isa::Clockhands;
        spec.maxInsts = cap;
        runner.add(spec, [](const JobContext& job) {
            HandUsageAnalyzer hu;
            RunResult run = runProgram(*job.program, job.spec.maxInsts,
                                       &hu);
            JobMetrics m;
            m.exited = run.exited;
            m.exitCode = run.exitCode;
            m.insts = hu.total();
            for (int h = 0; h < kNumHands; ++h) {
                m.counters[std::string("hand.") + kHandNames[h] +
                           ".reads"] = hu.reads(h);
                m.counters[std::string("hand.") + kHandNames[h] +
                           ".writes"] = hu.writes(h);
            }
            m.counters["hand.no_dst"] = hu.noDst();
            return m;
        });
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "s rd", "s wr", "t rd", "t wr", "u rd", "u wr",
              "v rd", "v wr", "no-dst"});
    for (const JobResult& r : results) {
        const JobMetrics& m = r.metrics;
        const double n = static_cast<double>(m.insts);
        auto pct = [&](const std::string& key) {
            return fmtPercent(m.counters.at(key) / n);
        };
        std::vector<std::string> row = {r.spec.workload};
        for (int h : {HandS, HandT, HandU, HandV}) {
            row.push_back(pct(std::string("hand.") + kHandNames[h] +
                              ".reads"));
            row.push_back(pct(std::string("hand.") + kHandNames[h] +
                              ".writes"));
        }
        row.push_back(pct("hand.no_dst"));
        t.row(row);
    }
    t.print();
    std::printf("\npaper: t written most; v written rarely / read often "
                "(loop constants); s read-heavy, written most in mcf "
                "(function arguments)\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
