/**
 * @file
 * Fig. 3: lower bound of the inevitable STRAIGHT instruction increase
 * when converting RISC traces, split into the paper's three causes:
 * nop at convergence points, mv for max-distance relays, and mv for loop
 * constants. The paper reports ~35% on average over SPEC (14% loop
 * constants + 14% max distance + 6% nop).
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 3", "inevitable STRAIGHT instruction increase "
                         "(lower bound from RISC traces)");
    TextTable t;
    t.header({"benchmark", "nop", "mv-MaxDist", "mv-LoopConst", "total"});

    double sumFrac = 0;
    const uint64_t cap = benchMaxInsts(~0ull);
    for (const auto& w : workloads()) {
        const Program& p = compiledWorkload(w.name, Isa::Riscv);
        RelayAnalyzer ra(p);
        runProgram(p, cap, &ra);
        RelayReport rep = ra.finish();
        const double n = static_cast<double>(rep.totalInsts);
        t.row({w.name, fmtPercent(rep.nopConvergence / n),
               fmtPercent(rep.mvMaxDistance / n),
               fmtPercent(rep.mvLoopConstant / n),
               fmtPercent(rep.increaseFraction())});
        sumFrac += rep.increaseFraction();
    }
    t.row({"average", "", "", "",
           fmtPercent(sumFrac / workloads().size())});
    t.print();
    std::printf("\npaper: average ~35%% (6%% nop + 14%% mv-MaxDistance "
                "+ 14%% mv-LoopConstant) over SPEC CPU\n");
    return 0;
}
