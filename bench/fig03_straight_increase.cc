/**
 * @file
 * Fig. 3: lower bound of the inevitable STRAIGHT instruction increase
 * when converting RISC traces, split into the paper's three causes:
 * nop at convergence points, mv for max-distance relays, and mv for loop
 * constants. The paper reports ~35% on average over SPEC (14% loop
 * constants + 14% max distance + 6% nop).
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig03_straight_increase");
    benchHeader("Fig 3", "inevitable STRAIGHT instruction increase "
                         "(lower bound from RISC traces)");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        JobSpec spec;
        spec.id = w.name + "/R/relay";
        spec.workload = w.name;
        spec.isa = Isa::Riscv;
        spec.maxInsts = cap;
        runner.add(spec, [](const JobContext& job) {
            RelayAnalyzer ra(*job.program);
            RunResult run = runProgram(*job.program, job.spec.maxInsts,
                                       &ra);
            RelayReport rep = ra.finish();
            JobMetrics m;
            m.exited = run.exited;
            m.exitCode = run.exitCode;
            m.insts = rep.totalInsts;
            m.counters["relay.nop_convergence"] = rep.nopConvergence;
            m.counters["relay.mv_max_distance"] = rep.mvMaxDistance;
            m.counters["relay.mv_loop_constant"] = rep.mvLoopConstant;
            m.values["relay.increase_fraction"] = rep.increaseFraction();
            return m;
        });
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "nop", "mv-MaxDist", "mv-LoopConst", "total"});
    double sumFrac = 0;
    for (const JobResult& r : results) {
        const JobMetrics& m = r.metrics;
        const double n = static_cast<double>(m.insts);
        t.row({r.spec.workload,
               fmtPercent(m.counters.at("relay.nop_convergence") / n),
               fmtPercent(m.counters.at("relay.mv_max_distance") / n),
               fmtPercent(m.counters.at("relay.mv_loop_constant") / n),
               fmtPercent(m.values.at("relay.increase_fraction"))});
        sumFrac += m.values.at("relay.increase_fraction");
    }
    t.row({"average", "", "", "",
           fmtPercent(sumFrac / workloads().size())});
    t.print();
    std::printf("\npaper: average ~35%% (6%% nop + 14%% mv-MaxDistance "
                "+ 14%% mv-LoopConstant) over SPEC CPU\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
