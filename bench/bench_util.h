#ifndef CH_BENCH_BENCH_UTIL_H
#define CH_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the figure/table regeneration harness. Each bench
 * binary reproduces one table or figure of the paper (see EXPERIMENTS.md
 * for the index and the paper-vs-measured record).
 *
 * The environment variable CH_BENCH_MAXINSTS caps the per-run instruction
 * count (default: full workload for analyzers, a few million for the
 * timing sweeps) so the whole harness finishes in minutes.
 */

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <string>

#include "common/table.h"
#include "emu/emulator.h"
#include "workloads/workloads.h"

namespace ch {

inline uint64_t
benchMaxInsts(uint64_t fallback)
{
    const char* env = std::getenv("CH_BENCH_MAXINSTS");
    if (env && *env)
        return std::strtoull(env, nullptr, 0);
    return fallback;
}

inline void
benchHeader(const char* figure, const char* what)
{
    std::printf("==================================================\n");
    std::printf("%s: %s\n", figure, what);
    std::printf("==================================================\n");
}

inline const char*
shortIsa(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return "R";
      case Isa::Straight: return "S";
      case Isa::Clockhands: return "C";
    }
    return "?";
}

} // namespace ch

#endif // CH_BENCH_BENCH_UTIL_H
