#ifndef CH_BENCH_BENCH_UTIL_H
#define CH_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the figure/table regeneration harness. Each bench
 * binary reproduces one table or figure of the paper (see EXPERIMENTS.md
 * for the index and the paper-vs-measured record).
 *
 * Every binary runs its sweep on the SweepRunner thread pool and writes
 * a machine-readable metrics file next to the human-readable table.
 * Knobs (flag overrides environment):
 *
 *   --jobs N / CH_BENCH_JOBS        worker threads (default: all cores)
 *   --metrics-dir D / CH_BENCH_METRICS_DIR   output dir (default: ".")
 *   --pipe-trace D / CH_PIPE_TRACE  write one Kanata trace per sweep job
 *                                   into directory D (docs/OBSERVABILITY.md)
 *   --progress / CH_BENCH_PROGRESS=1         per-job lines on stderr
 *   --host-metrics / CH_BENCH_HOST_METRICS=1 include wall-time/RSS in
 *                                            the metrics files (breaks
 *                                            byte-for-byte determinism)
 *   --no-trace-cache                re-emulate every timing job instead
 *                                   of capture-once/replay-many
 *                                   (docs/PERFORMANCE.md); metrics are
 *                                   byte-identical either way
 *   --verify-stats / CH_VERIFY_STATS=1  add the static verifier's
 *                                   dead-write/pressure statistics as
 *                                   verify.* counters on every sim job
 *                                   (docs/VERIFIER.md); off by default
 *                                   and byte-identical when off
 *   --core-model M / CH_CORE_MODEL  fidelity-ladder rung for every sim
 *                                   job: detailed (default), fast, or
 *                                   analytic (docs/FIDELITY.md); the
 *                                   detailed default is byte-identical
 *                                   to earlier binaries
 *   --sample-interval N             enable interval-sampled timing with
 *                                   N-instruction intervals
 *                                   (docs/PERFORMANCE.md, "Sampled
 *                                   simulation"); off by default
 *   --sample-len N                  measured window per interval
 *                                   (default: interval/10, min 1)
 *   --warmup N                      detailed warmup before each measured
 *                                   window (default: the sample length,
 *                                   clamped to fit the interval)
 *   --sample-shards K / CH_SAMPLE_SHARDS   partition the sampled
 *                                   intervals into K parallel shards
 *                                   (docs/PERFORMANCE.md, "Shard-
 *                                   parallel sampling"); K=1 (default)
 *                                   is byte-identical to earlier
 *                                   binaries, K>1 is deterministic for
 *                                   fixed K. The flag requires
 *                                   --sample-interval; the environment
 *                                   variable is ignored when sampling
 *                                   is off (it is a CI matrix knob)
 *   --shard-warmup N                per-shard functional re-warming
 *                                   before its first interval (default:
 *                                   one full interval); requires
 *                                   --sample-interval
 *   --farm ADDR / CH_FARM           run every sim job on a chfarmd
 *                                   daemon at ADDR (Unix path or
 *                                   host:port, docs/SERVICE.md) instead
 *                                   of the local thread pool; metrics
 *                                   are byte-identical either way. The
 *                                   daemon is pinged at parse time, so
 *                                   a dead farm exits 2 immediately.
 *                                   Incompatible with --pipe-trace and
 *                                   --verify-stats (exit 2).
 *   --store / CH_STORE=1            persistent content-addressed result
 *                                   + trace store (docs/SERVICE.md): a
 *                                   repeated sweep point is a disk read
 *                                   with zero simulations, byte-
 *                                   identical metrics either way
 *   --store-dir D / CH_STORE_DIR    store root (default
 *                                   ~/.cache/clockhands); implies
 *                                   --store when given as a flag
 *   CH_TRACE_CACHE_MB               trace-cache memory budget in MiB
 *                                   (default 1024; past it, jobs fall
 *                                   back to re-emulation with a note —
 *                                   or, with --store, to LRU eviction)
 *   CH_BENCH_MAXINSTS               per-run instruction cap
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <errno.h>
#include <string>

#include "common/table.h"
#include "emu/emulator.h"
#include "runner/metrics.h"
#include "runner/runner.h"
#include "service/farm.h"
#include "service/store.h"
#include "workloads/workloads.h"

namespace ch {

/**
 * CH_BENCH_MAXINSTS with strict parsing: a garbage value used to
 * strtoull() to 0 and silently turn every sweep into a no-op; now any
 * non-numeric or out-of-range value aborts with a clear error.
 */
inline uint64_t
benchMaxInsts(uint64_t fallback)
{
    const char* env = std::getenv("CH_BENCH_MAXINSTS");
    if (!env || !*env)
        return fallback;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-')) {
        std::fprintf(stderr,
                     "error: CH_BENCH_MAXINSTS='%s' is not a "
                     "non-negative instruction count\n", env);
        std::exit(2);
    }
    return v;
}

/** Per-binary harness state returned by benchInit(). */
struct BenchContext {
    std::string name;        ///< bench binary name (metrics file stem)
    RunnerOptions runner;
    std::string metricsDir = ".";
    bool hostMetrics = false;
};

namespace benchdetail {

inline int
parsePositiveInt(const char* what, const char* s)
{
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || v <= 0 ||
        v > 4096) {
        std::fprintf(stderr, "error: %s expects a positive thread "
                             "count, got '%s'\n", what, s);
        std::exit(2);
    }
    return static_cast<int>(v);
}

/**
 * Strict positive instruction count for the --sample-* and --warmup
 * flags:
 * like CH_BENCH_MAXINSTS, a garbage value must abort at parse time
 * (exit 2), never silently become 0 and change what gets simulated.
 */
inline uint64_t
parseInstCount(const char* what, const char* s)
{
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0' || errno == ERANGE ||
        std::strchr(s, '-') || v == 0) {
        std::fprintf(stderr, "error: %s expects a positive instruction "
                             "count, got '%s'\n", what, s);
        std::exit(2);
    }
    return v;
}

/**
 * Strict --sample-shards / CH_SAMPLE_SHARDS parsing: a shard count must
 * land in [1, 64] (more shards than any supported host has threads
 * would only shrink each shard's interval run below usefulness), and a
 * garbage value aborts at parse time like every other knob.
 */
inline int
parseShardCount(const char* what, const char* s)
{
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || v < 1 || v > 64) {
        std::fprintf(stderr, "error: %s expects a shard count in "
                             "[1, 64], got '%s'\n", what, s);
        std::exit(2);
    }
    return static_cast<int>(v);
}

inline bool
envFlag(const char* name)
{
    const char* env = std::getenv(name);
    return env && *env && std::strcmp(env, "0") != 0;
}

/** Strict --core-model / CH_CORE_MODEL parsing (exit 2 on a typo, so a
 *  misspelled rung never silently runs the detailed default). */
inline CoreModelKind
parseCoreModelArg(const char* what, const char* s)
{
    CoreModelKind kind = CoreModelKind::Detailed;
    if (!s || !parseCoreModel(s, &kind)) {
        std::fprintf(stderr, "error: %s expects detailed, fast or "
                             "analytic, got '%s'\n", what,
                     s ? s : "");
        std::exit(2);
    }
    return kind;
}

/**
 * Validate an output directory at parse time: create it if missing and
 * verify it is writable. Before this check, a bad --metrics-dir only
 * surfaced after the whole sweep had run (writeMetricsFiles throwing
 * away minutes of simulation); now it fails immediately with exit 2.
 */
inline std::string
requireWritableDir(const char* what, const char* path)
{
    if (!path || !*path) {
        std::fprintf(stderr, "error: %s expects a directory path\n",
                     what);
        std::exit(2);
    }
    struct stat st;
    if (::stat(path, &st) == 0) {
        if (!S_ISDIR(st.st_mode)) {
            std::fprintf(stderr, "error: %s '%s' exists but is not a "
                                 "directory\n", what, path);
            std::exit(2);
        }
    } else if (::mkdir(path, 0777) != 0) {
        std::fprintf(stderr, "error: %s '%s' cannot be created: %s\n",
                     what, path, std::strerror(errno));
        std::exit(2);
    }
    if (::access(path, W_OK) != 0) {
        std::fprintf(stderr, "error: %s '%s' is not writable\n", what,
                     path);
        std::exit(2);
    }
    return path;
}

} // namespace benchdetail

/**
 * Parse the shared harness flags/environment. Call once at the top of
 * each bench main(); unknown arguments are an error so typos don't
 * silently run the default sweep.
 */
inline BenchContext
benchInit(int argc, char** argv, const char* name)
{
    BenchContext ctx;
    ctx.name = name;
    ctx.runner.tag = name;
    ctx.runner.jobs = 0;
    if (const char* env = std::getenv("CH_BENCH_JOBS"); env && *env)
        ctx.runner.jobs = benchdetail::parsePositiveInt("CH_BENCH_JOBS",
                                                        env);
    if (const char* env = std::getenv("CH_BENCH_METRICS_DIR");
        env && *env) {
        ctx.metricsDir =
            benchdetail::requireWritableDir("CH_BENCH_METRICS_DIR", env);
    }
    if (const char* env = std::getenv("CH_PIPE_TRACE"); env && *env) {
        // Map the single-run env var onto per-job trace files so the
        // parallel sweep jobs never interleave into one stream.
        ctx.runner.pipeTraceDir =
            benchdetail::requireWritableDir("CH_PIPE_TRACE", env);
    }
    ctx.runner.progress = benchdetail::envFlag("CH_BENCH_PROGRESS");
    ctx.runner.verifyStats = benchdetail::envFlag("CH_VERIFY_STATS");
    ctx.hostMetrics = benchdetail::envFlag("CH_BENCH_HOST_METRICS");
    if (const char* env = std::getenv("CH_CORE_MODEL"); env && *env) {
        ctx.runner.coreModel =
            benchdetail::parseCoreModelArg("CH_CORE_MODEL", env);
    }

    std::string farmAddr;
    bool useStore = false;
    std::string storeDir;
    if (const char* env = std::getenv("CH_FARM"); env && *env)
        farmAddr = env;
    useStore = benchdetail::envFlag("CH_STORE");

    // CH_SAMPLE_SHARDS is validated eagerly (a typo must not silently
    // run unsharded) but applied only when sampling is enabled: it is a
    // CI matrix knob set process-wide, including for benches that never
    // sample.
    int envShards = 0;
    if (const char* env = std::getenv("CH_SAMPLE_SHARDS"); env && *env)
        envShards = benchdetail::parseShardCount("CH_SAMPLE_SHARDS", env);

    bool sampleLenSet = false;
    bool warmupSet = false;
    bool shardsSet = false;
    bool shardWarmupSet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            ctx.runner.jobs =
                benchdetail::parsePositiveInt("--jobs", next());
        } else if (arg == "--metrics-dir") {
            ctx.metricsDir =
                benchdetail::requireWritableDir("--metrics-dir", next());
        } else if (arg == "--pipe-trace") {
            ctx.runner.pipeTraceDir =
                benchdetail::requireWritableDir("--pipe-trace", next());
        } else if (arg == "--progress") {
            ctx.runner.progress = true;
        } else if (arg == "--host-metrics") {
            ctx.hostMetrics = true;
        } else if (arg == "--no-trace-cache") {
            ctx.runner.traceCache = false;
        } else if (arg == "--verify-stats") {
            ctx.runner.verifyStats = true;
        } else if (arg == "--core-model") {
            ctx.runner.coreModel =
                benchdetail::parseCoreModelArg("--core-model", next());
        } else if (arg == "--sample-interval") {
            ctx.runner.sampling.intervalInsts =
                benchdetail::parseInstCount("--sample-interval", next());
        } else if (arg == "--sample-len") {
            ctx.runner.sampling.sampleInsts =
                benchdetail::parseInstCount("--sample-len", next());
            sampleLenSet = true;
        } else if (arg == "--warmup") {
            ctx.runner.sampling.warmupInsts =
                benchdetail::parseInstCount("--warmup", next());
            warmupSet = true;
        } else if (arg == "--sample-shards") {
            ctx.runner.sampling.shards =
                benchdetail::parseShardCount("--sample-shards", next());
            shardsSet = true;
        } else if (arg == "--shard-warmup") {
            ctx.runner.sampling.shardWarmupInsts =
                benchdetail::parseInstCount("--shard-warmup", next());
            shardWarmupSet = true;
        } else if (arg == "--farm") {
            farmAddr = next();
            if (farmAddr.empty()) {
                std::fprintf(stderr, "error: --farm expects a socket "
                                     "address\n");
                std::exit(2);
            }
        } else if (arg == "--store") {
            useStore = true;
        } else if (arg == "--store-dir") {
            const char* dir = next();
            if (!dir || !*dir) {
                std::fprintf(stderr, "error: --store-dir expects a "
                                     "directory path\n");
                std::exit(2);
            }
            storeDir = dir;
            useStore = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--jobs N] [--metrics-dir DIR] "
                        "[--pipe-trace DIR] [--progress] "
                        "[--host-metrics] [--no-trace-cache] "
                        "[--verify-stats] "
                        "[--core-model detailed|fast|analytic] "
                        "[--farm ADDR] [--store] [--store-dir DIR] "
                        "[--sample-interval N [--sample-len N] "
                        "[--warmup N] [--sample-shards K] "
                        "[--shard-warmup N]]\n", name);
            std::exit(0);
        } else {
            std::fprintf(stderr, "error: unknown argument '%s' "
                                 "(try --help)\n", arg.c_str());
            std::exit(2);
        }
    }

    // Resolve and validate the sampling knobs at parse time, like
    // --metrics-dir: a malformed combination must exit 2 here, not fail
    // an assertion after the sweep started.
    SamplingConfig& sc = ctx.runner.sampling;
    if (sc.intervalInsts == 0) {
        if (sampleLenSet || warmupSet || shardsSet || shardWarmupSet) {
            std::fprintf(stderr, "error: --sample-len/--warmup/"
                                 "--sample-shards/--shard-warmup "
                                 "require --sample-interval\n");
            std::exit(2);
        }
    } else {
        if (!shardsSet && envShards > 0)
            sc.shards = envShards;
        if (!sampleLenSet)
            sc.sampleInsts = std::max<uint64_t>(1, sc.intervalInsts / 10);
        if (sc.sampleInsts > sc.intervalInsts) {
            std::fprintf(stderr,
                         "error: --sample-len %" PRIu64 " exceeds "
                         "--sample-interval %" PRIu64 "\n",
                         sc.sampleInsts, sc.intervalInsts);
            std::exit(2);
        }
        if (!warmupSet) {
            sc.warmupInsts = std::min<uint64_t>(
                sc.sampleInsts, sc.intervalInsts - sc.sampleInsts);
        }
        if (sc.warmupInsts > sc.intervalInsts - sc.sampleInsts) {
            std::fprintf(stderr,
                         "error: --warmup %" PRIu64 " + --sample-len %"
                         PRIu64 " exceed --sample-interval %" PRIu64
                         "\n", sc.warmupInsts, sc.sampleInsts,
                         sc.intervalInsts);
            std::exit(2);
        }
        // Sampling measures stall-accounted cycle deltas; the analytic
        // rung has neither cycles-as-they-happen nor stall accounting.
        if (ctx.runner.coreModel == CoreModelKind::Analytic) {
            std::fprintf(stderr, "error: --sample-interval cannot be "
                                 "combined with --core-model "
                                 "analytic\n");
            std::exit(2);
        }
    }

    // Farm/store wiring, validated at parse time like --metrics-dir: a
    // dead daemon or an unwritable store root must exit 2 before any
    // simulation starts, not fail the sweep mid-run.
    if (!farmAddr.empty()) {
        if (!ctx.runner.pipeTraceDir.empty()) {
            std::fprintf(stderr, "error: --farm cannot be combined "
                                 "with --pipe-trace (traces would be "
                                 "written on the farm host)\n");
            std::exit(2);
        }
        if (ctx.runner.verifyStats) {
            std::fprintf(stderr, "error: --farm cannot be combined "
                                 "with --verify-stats (farm workers "
                                 "run plain simulation jobs)\n");
            std::exit(2);
        }
        try {
            service::attachFarm(ctx.runner, farmAddr);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: --farm %s: %s\n",
                         farmAddr.c_str(), e.what());
            std::exit(2);
        }
    }
    if (useStore) {
        try {
            service::attachStore(ctx.runner, storeDir);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: --store: %s\n", e.what());
            std::exit(2);
        }
    }
    return ctx;
}

/** Write <metricsDir>/<name>.{json,csv} and report where they went. */
inline void
benchWriteMetrics(const BenchContext& ctx,
                  const std::vector<JobResult>& results)
{
    MetricsOptions opt;
    opt.bench = ctx.name;
    opt.hostMetrics = ctx.hostMetrics;
    const std::string path = writeMetricsFiles(ctx.metricsDir, opt,
                                               results);
    std::printf("\nmetrics: %s (+ .csv)\n", path.c_str());
}

/** Abort if any sweep job failed; bench tables must not be partial. */
inline void
benchRequireOk(const std::vector<JobResult>& results)
{
    bool ok = true;
    for (const auto& r : results) {
        if (!r.ok) {
            std::fprintf(stderr, "error: job %s failed: %s\n",
                         r.spec.id.c_str(), r.error.c_str());
            ok = false;
        }
    }
    if (!ok)
        std::exit(1);
}

inline void
benchHeader(const char* figure, const char* what)
{
    std::printf("==================================================\n");
    std::printf("%s: %s\n", figure, what);
    std::printf("==================================================\n");
}

inline const char*
shortIsa(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return "R";
      case Isa::Straight: return "S";
      case Isa::Clockhands: return "C";
    }
    return "?";
}

} // namespace ch

#endif // CH_BENCH_BENCH_UTIL_H
