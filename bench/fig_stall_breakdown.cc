/**
 * @file
 * Stall-cycle breakdown: top-down attribution of every simulated cycle
 * (retiring / frontend-latency / frontend-bandwidth / bad-speculation /
 * backend-memory / backend-core) per (workload x ISA) on the 8-fetch
 * machine, printed as percentages of total cycles. A second table shows
 * the Clockhands-specific counters: per-hand write/read mix, register-
 * window (distance) dispatch stalls, and junk-slot reads. Category
 * definitions live in docs/OBSERVABILITY.md; the categories sum exactly
 * to sim.cycles by construction (enforced by tests/pipetrace_test.cc).
 */

#include "bench_util.h"
#include "uarch/sim.h"
#include "uarch/stall_account.h"

using namespace ch;

namespace {

double
pct(uint64_t part, uint64_t whole)
{
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
}

uint64_t
counter(const JobMetrics& m, const std::string& name)
{
    auto it = m.counters.find(name);
    return it == m.counters.end() ? 0 : it->second;
}

} // namespace

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig_stall_breakdown");
    benchHeader("Stall breakdown",
                "where the cycles go, 5 workloads x 3 ISAs, 8-fetch");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + shortIsa(isa) + "/8f";
            spec.workload = w.name;
            spec.isa = isa;
            spec.cfg = MachineConfig::preset(8);
            spec.maxInsts = cap;
            runner.addSim(spec);
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "isa", "ipc", "retire%", "fe-lat%", "fe-bw%",
              "badspec%", "be-mem%", "be-core%"});
    for (const auto& r : results) {
        const JobMetrics& m = r.metrics;
        std::vector<std::string> row = {
            r.spec.workload,
            std::string(1, r.spec.id[r.spec.workload.size() + 1]),
            fmtDouble(m.ipc(), 3)};
        for (int cat = 0; cat < kNumStallCats; ++cat) {
            row.push_back(fmtDouble(
                pct(counter(m, stallCatCounterName(cat)), m.cycles), 1));
        }
        t.row(row);
    }
    t.print();

    std::printf("\nClockhands detail (8-fetch):\n");
    TextTable ch;
    ch.header({"benchmark", "wr t/u/v/s %", "rd t/u/v/s %", "distWin",
               "junkRd"});
    for (const auto& r : results) {
        if (r.spec.isa != Isa::Clockhands)
            continue;
        const JobMetrics& m = r.metrics;
        uint64_t wr[kNumHands], rd[kNumHands];
        uint64_t wrTotal = 0, rdTotal = 0;
        for (int h = 0; h < kNumHands; ++h) {
            wr[h] = counter(m, std::string("hand.") +
                                   handName(static_cast<uint8_t>(h)) +
                                   ".writes");
            rd[h] = counter(m, std::string("hand.") +
                                   handName(static_cast<uint8_t>(h)) +
                                   ".reads");
            wrTotal += wr[h];
            rdTotal += rd[h];
        }
        auto mix = [&](const uint64_t* v, uint64_t total) {
            std::string s;
            for (int h = 0; h < kNumHands; ++h) {
                if (h)
                    s += "/";
                s += fmtDouble(pct(v[h], total), 0);
            }
            return s;
        };
        ch.row({r.spec.workload, mix(wr, wrTotal), mix(rd, rdTotal),
                std::to_string(counter(m, "stall.distanceWindow")),
                std::to_string(counter(m, "read.junkSlots"))});
    }
    ch.print();

    benchWriteMetrics(ctx, results);
    return 0;
}
