/**
 * @file
 * Fig. 18: Clockhands register-lifetime distributions per hand. The
 * paper: t holds short-lived values (~100 instructions), u longer, v
 * (loop constants) longest, and s is bimodal -- short in call-heavy mcf,
 * long elsewhere.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 18", "Clockhands lifetime CCDF per hand");
    const uint64_t cap = benchMaxInsts(~0ull);

    for (const auto& w : workloads()) {
        LifetimeAnalyzer lt(Isa::Clockhands);
        runProgram(compiledWorkload(w.name, Isa::Clockhands), cap, &lt);
        lt.finish();
        const uint64_t n = lt.totalInsts();
        std::printf("\n%s:\n", w.name.c_str());
        TextTable t;
        t.header({"lifetime >=", "t", "u", "v", "s"});
        const int hands[4] = {HandT, HandU, HandV, HandS};
        for (int k = 0; k <= 18; k += 2) {
            std::vector<std::string> row = {"2^" + std::to_string(k)};
            for (int h : hands) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2e",
                              lt.perHand(h).ccdf(k, n));
                row.push_back(buf);
            }
            t.row(row);
        }
        t.print();
        // Median-ish summary: definitions per hand.
        std::printf("  definitions: t=%lu u=%lu v=%lu s=%lu\n",
                    (unsigned long)lt.perHand(HandT).definitions(),
                    (unsigned long)lt.perHand(HandU).definitions(),
                    (unsigned long)lt.perHand(HandV).definitions(),
                    (unsigned long)lt.perHand(HandS).definitions());
    }
    std::printf("\npaper: t short-lived (~100 insts), u longer, v longest "
                "(loop constants); s short in mcf (frequent calls), long "
                "elsewhere\n");
    return 0;
}
