/**
 * @file
 * Fig. 18: Clockhands register-lifetime distributions per hand. The
 * paper: t holds short-lived values (~100 instructions), u longer, v
 * (loop constants) longest, and s is bimodal -- short in call-heavy mcf,
 * long elsewhere.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

namespace {
const char* kHandNames[kNumHands] = {"t", "u", "v", "s"};
}

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig18_lifetime_by_hand");
    benchHeader("Fig 18", "Clockhands lifetime CCDF per hand");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        JobSpec spec;
        spec.id = w.name + "/C/hand-lifetime";
        spec.workload = w.name;
        spec.isa = Isa::Clockhands;
        spec.maxInsts = cap;
        runner.add(spec, [](const JobContext& job) {
            LifetimeAnalyzer lt(Isa::Clockhands);
            RunResult run = runProgram(*job.program, job.spec.maxInsts,
                                       &lt);
            lt.finish();
            JobMetrics m;
            m.exited = run.exited;
            m.exitCode = run.exitCode;
            m.insts = lt.totalInsts();
            for (int h = 0; h < kNumHands; ++h) {
                const std::string prefix =
                    std::string("hand.") + kHandNames[h];
                m.counters[prefix + ".defs"] =
                    lt.perHand(h).definitions();
                for (int k = 0; k <= 18; ++k) {
                    char key[48];
                    std::snprintf(key, sizeof(key), "%s.ge_2^%02d",
                                  prefix.c_str(), k);
                    m.counters[key] = lt.perHand(h).atLeast(k);
                }
            }
            return m;
        });
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    for (const JobResult& r : results) {
        const JobMetrics& m = r.metrics;
        const double n = static_cast<double>(m.insts);
        std::printf("\n%s:\n", r.spec.workload.c_str());
        TextTable t;
        t.header({"lifetime >=", "t", "u", "v", "s"});
        const int hands[4] = {HandT, HandU, HandV, HandS};
        for (int k = 0; k <= 18; k += 2) {
            std::vector<std::string> row = {"2^" + std::to_string(k)};
            for (int h : hands) {
                char key[48];
                std::snprintf(key, sizeof(key), "hand.%s.ge_2^%02d",
                              kHandNames[h], k);
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2e",
                              m.counters.at(key) / n);
                row.push_back(buf);
            }
            t.row(row);
        }
        t.print();
        // Median-ish summary: definitions per hand.
        std::printf("  definitions: t=%lu u=%lu v=%lu s=%lu\n",
                    (unsigned long)m.counters.at("hand.t.defs"),
                    (unsigned long)m.counters.at("hand.u.defs"),
                    (unsigned long)m.counters.at("hand.v.defs"),
                    (unsigned long)m.counters.at("hand.s.defs"));
    }
    std::printf("\npaper: t short-lived (~100 insts), u longer, v longest "
                "(loop constants); s short in mcf (frequent calls), long "
                "elsewhere\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
