/**
 * @file
 * Fig. 17: register-lifetime distributions per ISA. The paper observes:
 * STRAIGHT's distribution is truncated at its maximum reference distance
 * (the ring recycles registers), while RISC-V and Clockhands have similar
 * long tails -- Clockhands handles long-lived values.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig17_lifetime_by_isa");
    benchHeader("Fig 17", "register lifetime CCDF per ISA");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + shortIsa(isa) + "/lifetime";
            spec.workload = w.name;
            spec.isa = isa;
            spec.maxInsts = cap;
            runner.add(spec, [](const JobContext& job) {
                LifetimeAnalyzer lt(job.spec.isa);
                RunResult run = runProgram(*job.program,
                                           job.spec.maxInsts, &lt);
                lt.finish();
                JobMetrics m;
                m.exited = run.exited;
                m.exitCode = run.exitCode;
                m.insts = lt.totalInsts();
                for (int k = 0; k <= 20; ++k) {
                    char key[32];
                    std::snprintf(key, sizeof(key), "lifetime.ge_2^%02d",
                                  k);
                    m.counters[key] = lt.overall().atLeast(k);
                }
                return m;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    size_t job = 0;
    for (const auto& w : workloads()) {
        const JobMetrics* m[3];
        for (int i = 0; i < 3; ++i)
            m[i] = &results[job++].metrics;
        std::printf("\n%s:\n", w.name.c_str());
        TextTable t;
        t.header({"lifetime >=", "RISC-V", "STRAIGHT", "Clockhands"});
        for (int k = 0; k <= 20; k += 2) {
            char key[32];
            std::snprintf(key, sizeof(key), "lifetime.ge_2^%02d", k);
            std::vector<std::string> row = {"2^" + std::to_string(k)};
            for (int i = 0; i < 3; ++i) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2e",
                              static_cast<double>(
                                  m[i]->counters.at(key)) /
                                  static_cast<double>(m[i]->insts));
                row.push_back(buf);
            }
            t.row(row);
        }
        t.print();
    }
    std::printf("\npaper: STRAIGHT cuts off at its max reference distance "
                "(~2^7); RISC-V and Clockhands show similar long tails\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
