/**
 * @file
 * Fig. 17: register-lifetime distributions per ISA. The paper observes:
 * STRAIGHT's distribution is truncated at its maximum reference distance
 * (the ring recycles registers), while RISC-V and Clockhands have similar
 * long tails -- Clockhands handles long-lived values.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 17", "register lifetime CCDF per ISA");
    const uint64_t cap = benchMaxInsts(~0ull);

    for (const auto& w : workloads()) {
        LifetimeAnalyzer lt[3] = {LifetimeAnalyzer(Isa::Riscv),
                                  LifetimeAnalyzer(Isa::Straight),
                                  LifetimeAnalyzer(Isa::Clockhands)};
        uint64_t totals[3];
        int ii = 0;
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            runProgram(compiledWorkload(w.name, isa), cap, &lt[ii]);
            lt[ii].finish();
            totals[ii] = lt[ii].totalInsts();
            ++ii;
        }
        std::printf("\n%s:\n", w.name.c_str());
        TextTable t;
        t.header({"lifetime >=", "RISC-V", "STRAIGHT", "Clockhands"});
        for (int k = 0; k <= 20; k += 2) {
            std::vector<std::string> row = {"2^" + std::to_string(k)};
            for (int i = 0; i < 3; ++i) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2e",
                              lt[i].overall().ccdf(k, totals[i]));
                row.push_back(buf);
            }
            t.row(row);
        }
        t.print();
    }
    std::printf("\npaper: STRAIGHT cuts off at its max reference distance "
                "(~2^7); RISC-V and Clockhands show similar long tails\n");
    return 0;
}
