/**
 * @file
 * Speedup-vs-error curves for interval-sampled timing simulation
 * (docs/PERFORMANCE.md, "Sampled simulation") on the 5-workload x 3-ISA
 * corpus. For every (workload, ISA) pair the bench times the full
 * committed stream once as the reference, then re-times it under several
 * cap-scaled sampling configurations — including a functional-warming-off
 * ablation — and reports, per point: sampled vs reference IPC, the
 * relative error, whether the reported 95% CI covers the reference, and
 * (host-side) the wall-clock speedup of sampling and of the pure warming
 * pass.
 *
 * The primary configuration is additionally re-run shard-parallel at
 * K=2 and K=4 (docs/PERFORMANCE.md, "Shard-parallel sampling"),
 * reporting per-K the IPC delta vs the K=1 schedule, the error vs the
 * reference, and (host-side) the wall-clock speedup over the K=1
 * sampled run.
 *
 * All error/coverage numbers are deterministic and always land in the
 * ch-sweep-metrics-v1 files; wall-clock speedups are host observations
 * and appear there only under --host-metrics (they always print in the
 * table). `--max-relerr P` makes the bench exit 1 when the corpus mean
 * relative IPC error of the primary configuration exceeds P percent —
 * CI runs it with --max-relerr 5. `--min-shard-speedup X` exits 1 when
 * the K=4 geomean speedup over K=1 falls below X; like loadgen_farm's
 * scaling gate it only applies in full on hosts with >= 4 cores (below
 * that the four shard threads time-slice one core and the bound relaxes
 * to "not catastrophically slower", 0.5x). Run it with --jobs 1 when
 * gating: concurrent sweep jobs would contend with the shard threads
 * and turn the speedup measurement into scheduler noise.
 */

#include <chrono>
#include <cmath>
#include <thread>

#include "bench_util.h"
#include "trace/trace_buffer.h"
#include "uarch/sampling.h"
#include "uarch/sim.h"

using namespace ch;

namespace {

/** Sampling configurations swept per corpus point; interval = cap/div. */
struct SampleVariant {
    const char* tag;
    uint64_t div;
    bool warming;
};

constexpr SampleVariant kVariants[] = {
    {"i40", 40, true},    // primary: 40 intervals, 5% measured
    {"i20", 20, true},    // coarser: 20 longer intervals
    {"i10", 10, true},    // coarsest: 10 long intervals
    {"i40nw", 40, false}, // primary without functional warming
};
constexpr size_t kNumVariants = sizeof(kVariants) / sizeof(kVariants[0]);
constexpr size_t kPrimary = 0;
constexpr size_t kNoWarm = 3;

/** Shard counts the primary configuration is re-run at (K=1 is the
 *  primary variant itself). */
constexpr int kShardCounts[] = {2, 4};
constexpr size_t kNumShardCounts =
    sizeof(kShardCounts) / sizeof(kShardCounts[0]);
constexpr size_t kShard4 = 1;

SamplingConfig
variantConfig(const SampleVariant& v, uint64_t cap)
{
    SamplingConfig sc;
    sc.intervalInsts = std::max<uint64_t>(1, cap / v.div);
    sc.sampleInsts = std::max<uint64_t>(1, sc.intervalInsts / 20);
    // The detailed warmup must refill the ROB-deep backend the warming
    // pass cannot carry (or every window starts under-committed and the
    // estimate biases high), but it need not scale with the window: twice
    // the preset-8 ROB is plenty.
    sc.warmupInsts =
        std::min<uint64_t>(2048, sc.intervalInsts - sc.sampleInsts);
    sc.functionalWarming = v.warming;
    return sc;
}

/** Routes the replayed stream into the warming path only. */
class WarmSink : public TraceSink
{
  public:
    explicit WarmSink(CycleSim& core) : core_(core) {}
    void onInst(const DynInst& di) override { core_.warmInst(di); }

  private:
    CycleSim& core_;
};

struct VariantResult {
    double ipc = 0;
    double ci95 = 0;
    double relErr = 0;     ///< |sampled - ref| / ref
    bool covered = false;  ///< |sampled - ref| <= ci95
    uint64_t intervals = 0;
    double wallS = 0;      ///< host
};

struct ShardResult {
    double ipc = 0;
    double relErr = 0;   ///< |sampled - ref| / ref
    double deltaK1 = 0;  ///< |sampled - K=1 sampled| / K=1 sampled
    double wallS = 0;    ///< host
};

struct Row {
    std::string workload;
    Isa isa = Isa::Riscv;
    uint64_t insts = 0;
    double refIpc = 0;
    VariantResult variant[kNumVariants];
    ShardResult shard[kNumShardCounts];
    double refWallS = 0;   ///< host: full detailed replay
    double warmWallS = 0;  ///< host: pure warming pass over the stream
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

Row
measure(const JobContext& job, uint64_t cap)
{
    Row row;
    row.workload = job.spec.workload;
    row.isa = job.spec.isa;

    TraceBuffer local;
    const std::shared_ptr<const TraceBuffer> cached =
        job.traces ? job.traces->get(job.spec.workload, job.spec.isa,
                                     cap, *job.program)
                   : nullptr;
    const TraceBuffer* trace = cached.get();
    if (!trace) {
        const RunResult run = runProgram(*job.program, cap, &local);
        local.setRunOutcome(run.exited, run.exitCode);
        trace = &local;
    }

    const MachineConfig cfg = MachineConfig::preset(8);

    auto t0 = std::chrono::steady_clock::now();
    const SimResult ref = simulateReplay(*trace, row.isa, cfg);
    row.refWallS = secondsSince(t0);
    row.insts = ref.insts;
    row.refIpc = ref.ipc();

    // Pure functional warming over the whole stream: the fast path the
    // skipped portions of every interval run at.
    {
        CycleSim warmCore(cfg, row.isa);
        WarmSink sink(warmCore);
        t0 = std::chrono::steady_clock::now();
        trace->replay(sink);
        row.warmWallS = secondsSince(t0);
    }

    for (size_t v = 0; v < kNumVariants; ++v) {
        MachineConfig scfg = cfg;
        scfg.sampling = variantConfig(kVariants[v], cap);
        t0 = std::chrono::steady_clock::now();
        const SimResult s =
            simulateSampled(*trace, row.isa, scfg, scfg.sampling);
        VariantResult& out = row.variant[v];
        out.wallS = secondsSince(t0);
        out.ipc = s.ipc();
        out.ci95 = s.sample.ipcCi95;
        out.intervals = s.sample.intervals;
        const double diff = std::fabs(out.ipc - row.refIpc);
        out.relErr = row.refIpc > 0 ? diff / row.refIpc : 0;
        out.covered = diff <= out.ci95;
    }

    // Shard sweep: the primary configuration again at K=2 and K=4. The
    // schedule changes with K (each shard draws its own window
    // placements), so the IPC moves; the delta vs the K=1 run of the
    // same configuration is the cost of that re-draw.
    const VariantResult& k1 = row.variant[kPrimary];
    for (size_t k = 0; k < kNumShardCounts; ++k) {
        MachineConfig scfg = cfg;
        scfg.sampling = variantConfig(kVariants[kPrimary], cap);
        scfg.sampling.shards = kShardCounts[k];
        t0 = std::chrono::steady_clock::now();
        const SimResult s =
            simulateSampled(*trace, row.isa, scfg, scfg.sampling);
        ShardResult& out = row.shard[k];
        out.wallS = secondsSince(t0);
        out.ipc = s.ipc();
        out.relErr = row.refIpc > 0
                         ? std::fabs(out.ipc - row.refIpc) / row.refIpc
                         : 0;
        out.deltaK1 = k1.ipc > 0
                          ? std::fabs(out.ipc - k1.ipc) / k1.ipc
                          : 0;
    }
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    // --max-relerr / --min-shard-speedup are bench-specific; strip them
    // before the shared parse.
    double maxRelErrPct = 0;
    bool haveThreshold = false;
    double minShardSpeedup = 0;
    bool haveShardGate = false;
    std::vector<char*> passArgv;
    passArgv.push_back(argv[0]);
    const auto parsePositive = [](const char* flag, const char* s,
                                  double* out) {
        errno = 0;
        char* end = nullptr;
        *out = std::strtod(s, &end);
        if (end == s || *end != '\0' || errno == ERANGE || !(*out > 0)) {
            std::fprintf(stderr,
                         "error: %s expects a positive number, got "
                         "'%s'\n", flag, s);
            return false;
        }
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-relerr") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --max-relerr needs an argument\n");
                return 2;
            }
            if (!parsePositive("--max-relerr", argv[++i], &maxRelErrPct))
                return 2;
            haveThreshold = true;
        } else if (std::strcmp(argv[i], "--min-shard-speedup") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --min-shard-speedup needs "
                                     "an argument\n");
                return 2;
            }
            if (!parsePositive("--min-shard-speedup", argv[++i],
                               &minShardSpeedup))
                return 2;
            haveShardGate = true;
        } else {
            passArgv.push_back(argv[i]);
        }
    }
    BenchContext ctx = benchInit(static_cast<int>(passArgv.size()),
                                 passArgv.data(), "microbench_sampling");
    benchHeader("Microbench", "sampled-simulation speedup vs error");
    const uint64_t cap = benchMaxInsts(2'000'000);

    SweepRunner runner(ctx.runner);
    std::vector<Row> rows(workloads().size() * 3);
    size_t slot = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + shortIsa(isa) + "/sampling";
            spec.workload = w.name;
            spec.isa = isa;
            spec.maxInsts = cap;
            Row* out = &rows[slot++];
            runner.add(spec, [out, cap, &ctx](const JobContext& job) {
                *out = measure(job, cap);
                const VariantResult& p = out->variant[kPrimary];
                JobMetrics m;
                m.exited = true;
                m.insts = out->insts;
                m.counters["sample.intervals"] = p.intervals;
                m.values["ref.ipc"] = out->refIpc;
                m.values["sample.ipc"] = p.ipc;
                m.values["sample.ipc.ci95"] = p.ci95;
                m.values["sample.relerr"] = p.relErr;
                m.values["sample.covered"] = p.covered ? 1 : 0;
                m.values["sample.nowarm.relerr"] =
                    out->variant[kNoWarm].relErr;
                for (size_t k = 0; k < kNumShardCounts; ++k) {
                    const ShardResult& sh = out->shard[k];
                    const std::string key =
                        "sample.shard" + std::to_string(kShardCounts[k]);
                    m.values[key + ".ipc"] = sh.ipc;
                    m.values[key + ".relerr"] = sh.relErr;
                    m.values[key + ".delta"] = sh.deltaK1;
                }
                if (ctx.hostMetrics) {
                    m.values["sample.speedup"] =
                        p.wallS > 0 ? out->refWallS / p.wallS : 0;
                    m.values["warm.speedup"] =
                        out->warmWallS > 0
                            ? out->refWallS / out->warmWallS
                            : 0;
                    for (size_t k = 0; k < kNumShardCounts; ++k) {
                        const ShardResult& sh = out->shard[k];
                        m.values["sample.shard" +
                                 std::to_string(kShardCounts[k]) +
                                 ".speedup"] =
                            sh.wallS > 0 ? p.wallS / sh.wallS : 0;
                    }
                }
                return m;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "isa", "ref IPC", "smp IPC", "err%", "ci95%",
              "cover", "nowarm err%", "s4 err%", "s4 spdup",
              "smp speedup", "warm speedup"});
    double errSum = 0, noWarmErrSum = 0;
    double speedupLogSum = 0, warmLogSum = 0;
    int covered = 0;
    for (const Row& r : rows) {
        const VariantResult& p = r.variant[kPrimary];
        const double speedup = p.wallS > 0 ? r.refWallS / p.wallS : 0;
        const double warmSpeedup =
            r.warmWallS > 0 ? r.refWallS / r.warmWallS : 0;
        const ShardResult& s4 = r.shard[kShard4];
        const double s4Speedup = s4.wallS > 0 ? p.wallS / s4.wallS : 0;
        errSum += p.relErr;
        noWarmErrSum += r.variant[kNoWarm].relErr;
        covered += p.covered ? 1 : 0;
        if (speedup > 0)
            speedupLogSum += std::log(speedup);
        if (warmSpeedup > 0)
            warmLogSum += std::log(warmSpeedup);
        t.row({r.workload, shortIsa(r.isa), fmtDouble(r.refIpc, 3),
               fmtDouble(p.ipc, 3), fmtDouble(100 * p.relErr, 2),
               fmtDouble(r.refIpc > 0 ? 100 * p.ci95 / r.refIpc : 0, 2),
               p.covered ? "yes" : "NO",
               fmtDouble(100 * r.variant[kNoWarm].relErr, 2),
               fmtDouble(100 * s4.relErr, 2), fmtDouble(s4Speedup, 2),
               fmtDouble(speedup, 2), fmtDouble(warmSpeedup, 1)});
    }
    t.print();

    const double n = static_cast<double>(rows.size());
    std::printf("\nspeedup-vs-error curve (all variants):\n");
    for (size_t v = 0; v < kNumVariants; ++v) {
        double err = 0, logSum = 0;
        int cov = 0;
        for (const Row& r : rows) {
            err += r.variant[v].relErr;
            cov += r.variant[v].covered ? 1 : 0;
            const double sp = r.variant[v].wallS > 0
                                  ? r.refWallS / r.variant[v].wallS
                                  : 0;
            if (sp > 0)
                logSum += std::log(sp);
        }
        std::printf("  %-6s mean |IPC err| %5.2f%%, CI covers %2d/%zu, "
                    "geomean speedup %.2fx\n",
                    kVariants[v].tag, 100 * err / n, cov, rows.size(),
                    std::exp(logSum / n));
    }

    std::printf("\nshard scaling (primary config, speedup vs the K=1 "
                "sampled run):\n");
    double shardGeomean[kNumShardCounts] = {};
    for (size_t k = 0; k < kNumShardCounts; ++k) {
        double err = 0, delta = 0, logSum = 0;
        for (const Row& r : rows) {
            const ShardResult& sh = r.shard[k];
            err += sh.relErr;
            delta += sh.deltaK1;
            const double sp =
                sh.wallS > 0 ? r.variant[kPrimary].wallS / sh.wallS : 0;
            if (sp > 0)
                logSum += std::log(sp);
        }
        shardGeomean[k] = std::exp(logSum / n);
        std::printf("  K=%d    mean |IPC err| %5.2f%%, mean |delta vs "
                    "K=1| %5.2f%%, geomean speedup %.2fx\n",
                    kShardCounts[k], 100 * err / n, 100 * delta / n,
                    shardGeomean[k]);
    }

    const double meanErrPct = 100 * errSum / n;
    std::printf("\nprimary config (interval=cap/40, 5%% measured): "
                "mean |IPC err| %.2f%%, CI covers reference on %d/%zu "
                "points, warming-off mean err %.2f%%\n",
                meanErrPct, covered, rows.size(),
                100 * noWarmErrSum / n);
    std::printf("host wall-clock (table always, metrics files under "
                "--host-metrics): sampled timing geomean speedup %.2fx, "
                "pure warming pass geomean %.1fx vs detailed replay\n",
                std::exp(speedupLogSum / n), std::exp(warmLogSum / n));
    benchWriteMetrics(ctx, results);

    if (haveThreshold && meanErrPct > maxRelErrPct) {
        std::fprintf(stderr,
                     "error: mean sampled IPC error %.2f%% exceeds "
                     "--max-relerr %.2f%%\n", meanErrPct, maxRelErrPct);
        return 1;
    }
    if (haveShardGate) {
        // Like loadgen_farm's scaling gate: the full bound only applies
        // where the four shard threads can actually run in parallel. On
        // smaller hosts they time-slice, so only require that sharding
        // is not catastrophically slower than the serial schedule.
        const unsigned cores = std::thread::hardware_concurrency();
        const double bound = cores >= 4 ? minShardSpeedup : 0.5;
        if (shardGeomean[kShard4] < bound) {
            std::fprintf(stderr,
                         "error: K=4 shard geomean speedup %.2fx is "
                         "below --min-shard-speedup %.2fx (%u cores, "
                         "effective bound %.2fx)\n",
                         shardGeomean[kShard4], minShardSpeedup, cores,
                         bound);
            return 1;
        }
    }
    return 0;
}
