/**
 * @file
 * Table 3: FPGA resource usage of the physical-register-allocation stage
 * and the overall soft core, for front-end widths 4/8/16 (structural
 * model calibrated to the paper's RSD synthesis results; see
 * src/fpga/resource_model.h).
 */

#include "bench_util.h"
#include "fpga/resource_model.h"

using namespace ch;

int
main()
{
    benchHeader("Table 3", "FPGA resource usage (RSD-calibrated model)");
    TextTable t;
    t.header({"width", "architecture", "alloc LUTs", "alloc FFs",
              "total LUTs", "total FFs"});
    for (int w : {4, 8, 16}) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            FpgaResources r = estimateFpga(isa, w);
            t.row({std::to_string(w) + "-way",
                   std::string(isaName(isa)),
                   std::to_string(r.lutAllocStage),
                   std::to_string(r.ffAllocStage),
                   std::to_string(r.lutTotal),
                   std::to_string(r.ffTotal)});
        }
    }
    t.print();

    std::printf("\nallocation-stage LUT ratio (RISC / Clockhands):\n");
    for (int w : {4, 6, 8, 12, 16}) {
        FpgaResources r = estimateFpga(Isa::Riscv, w);
        FpgaResources c = estimateFpga(Isa::Clockhands, w);
        std::printf("  %2d-way: %.1fx\n", w,
                    static_cast<double>(r.lutAllocStage) /
                        c.lutAllocStage);
    }
    std::printf("\npaper: Clockhands alloc stage needs a small fraction "
                "of RISC's LUTs at every width, while overall cores are "
                "comparable\n");
    return 0;
}
