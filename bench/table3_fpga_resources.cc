/**
 * @file
 * Table 3: FPGA resource usage of the physical-register-allocation stage
 * and the overall soft core, for front-end widths 4/8/16 (structural
 * model calibrated to the paper's RSD synthesis results; see
 * src/fpga/resource_model.h).
 */

#include "bench_util.h"
#include "fpga/resource_model.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "table3_fpga_resources");
    benchHeader("Table 3", "FPGA resource usage (RSD-calibrated model)");

    SweepRunner runner(ctx.runner);
    for (int w : {4, 6, 8, 12, 16}) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = std::string(shortIsa(isa)) + "/" +
                      std::to_string(w) + "-way";
            spec.isa = isa;
            const int width = w;
            runner.add(spec, [width](const JobContext& job) {
                FpgaResources r = estimateFpga(job.spec.isa, width);
                JobMetrics m;
                m.counters["fpga.lut_alloc_stage"] = r.lutAllocStage;
                m.counters["fpga.ff_alloc_stage"] = r.ffAllocStage;
                m.counters["fpga.lut_total"] = r.lutTotal;
                m.counters["fpga.ff_total"] = r.ffTotal;
                return m;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    auto at = [&](int wi, int ii, const char* key) {
        return results[wi * 3 + ii].metrics.counters.at(key);
    };
    const int widths[] = {4, 6, 8, 12, 16};

    TextTable t;
    t.header({"width", "architecture", "alloc LUTs", "alloc FFs",
              "total LUTs", "total FFs"});
    for (int wi = 0; wi < 5; ++wi) {
        if (widths[wi] != 4 && widths[wi] != 8 && widths[wi] != 16)
            continue;
        int ii = 0;
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            t.row({std::to_string(widths[wi]) + "-way",
                   std::string(isaName(isa)),
                   std::to_string(at(wi, ii, "fpga.lut_alloc_stage")),
                   std::to_string(at(wi, ii, "fpga.ff_alloc_stage")),
                   std::to_string(at(wi, ii, "fpga.lut_total")),
                   std::to_string(at(wi, ii, "fpga.ff_total"))});
            ++ii;
        }
    }
    t.print();

    std::printf("\nallocation-stage LUT ratio (RISC / Clockhands):\n");
    for (int wi = 0; wi < 5; ++wi) {
        std::printf("  %2d-way: %.1fx\n", widths[wi],
                    static_cast<double>(
                        at(wi, 0, "fpga.lut_alloc_stage")) /
                        at(wi, 2, "fpga.lut_alloc_stage"));
    }
    std::printf("\npaper: Clockhands alloc stage needs a small fraction "
                "of RISC's LUTs at every width, while overall cores are "
                "comparable\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
