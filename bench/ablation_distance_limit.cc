/**
 * @file
 * Ablation: STRAIGHT's maximum reference distance M. Section 2.2.3 shows
 * relay count ~ O(log P / M); sweeping M on the trace analyzer makes that
 * trade-off concrete (larger M means fewer relays but a bigger register
 * file and wider operand fields).
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "ablation_distance_limit");
    benchHeader("Ablation", "STRAIGHT max reference distance (M) sweep");
    const uint64_t cap = benchMaxInsts(~0ull);
    const int ms[] = {16, 32, 64, 126, 256, 512};

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (int m : ms) {
            JobSpec spec;
            spec.id = w.name + "/R/M=" + std::to_string(m);
            spec.workload = w.name;
            spec.isa = Isa::Riscv;
            spec.maxInsts = cap;
            const int limit = m;
            runner.add(spec, [limit](const JobContext& job) {
                RelayAnalyzer ra(*job.program, limit);
                RunResult run = runProgram(*job.program,
                                           job.spec.maxInsts, &ra);
                RelayReport rep = ra.finish();
                JobMetrics metrics;
                metrics.exited = run.exited;
                metrics.exitCode = run.exitCode;
                metrics.insts = rep.totalInsts;
                metrics.counters["relay.mv_max_distance"] =
                    rep.mvMaxDistance;
                metrics.values["relay.max_distance_fraction"] =
                    static_cast<double>(rep.mvMaxDistance) /
                    rep.totalInsts;
                return metrics;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    std::vector<std::string> head = {"benchmark"};
    for (int m : ms)
        head.push_back("M=" + std::to_string(m));
    t.header(head);
    size_t job = 0;
    for (const auto& w : workloads()) {
        std::vector<std::string> row = {w.name};
        for (size_t mi = 0; mi < std::size(ms); ++mi) {
            row.push_back(fmtPercent(results[job++].metrics.values.at(
                "relay.max_distance_fraction")));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nmax-distance relay fraction of executed instructions; "
                "expectation: roughly halves as M doubles (the paper's "
                "O(1/M) analysis), motivating Clockhands' per-hand "
                "lifetime classes over one bigger ring\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
