/**
 * @file
 * Ablation: STRAIGHT's maximum reference distance M. Section 2.2.3 shows
 * relay count ~ O(log P / M); sweeping M on the trace analyzer makes that
 * trade-off concrete (larger M means fewer relays but a bigger register
 * file and wider operand fields).
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Ablation", "STRAIGHT max reference distance (M) sweep");
    const uint64_t cap = benchMaxInsts(~0ull);
    const int ms[] = {16, 32, 64, 126, 256, 512};

    TextTable t;
    std::vector<std::string> head = {"benchmark"};
    for (int m : ms)
        head.push_back("M=" + std::to_string(m));
    t.header(head);

    for (const auto& w : workloads()) {
        std::vector<std::string> row = {w.name};
        const Program& p = compiledWorkload(w.name, Isa::Riscv);
        for (int m : ms) {
            RelayAnalyzer ra(p, m);
            runProgram(p, cap, &ra);
            RelayReport rep = ra.finish();
            row.push_back(fmtPercent(
                static_cast<double>(rep.mvMaxDistance) / rep.totalInsts));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nmax-distance relay fraction of executed instructions; "
                "expectation: roughly halves as M doubles (the paper's "
                "O(1/M) analysis), motivating Clockhands' per-hand "
                "lifetime classes over one bigger ring\n");
    return 0;
}
