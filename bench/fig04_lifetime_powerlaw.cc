/**
 * @file
 * Fig. 4: definition frequency of registers with lifetime >= k
 * instructions, measured on RISC traces. The paper shows an ~1/N power
 * law: lifetimes >= 1000 occur with frequency ~1e-3.
 */

#include <cmath>

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 4", "register lifetime power law (RISC traces)");
    TextTable t;
    std::vector<std::string> head = {"lifetime >="};
    for (const auto& w : workloads())
        head.push_back(w.name);
    t.header(head);

    std::vector<LifetimeAnalyzer> analyzers;
    std::vector<uint64_t> totals;
    const uint64_t cap = benchMaxInsts(~0ull);
    for (const auto& w : workloads()) {
        LifetimeAnalyzer lt(Isa::Riscv);
        const Program& p = compiledWorkload(w.name, Isa::Riscv);
        runProgram(p, cap, &lt);
        lt.finish();
        totals.push_back(lt.totalInsts());
        analyzers.push_back(std::move(lt));
    }

    for (int k = 0; k <= 22; k += 2) {
        std::vector<std::string> row = {"2^" + std::to_string(k)};
        for (size_t i = 0; i < analyzers.size(); ++i) {
            const double f = analyzers[i].overall().ccdf(k, totals[i]);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2e", f);
            row.push_back(buf);
        }
        t.row(row);
    }
    t.print();

    // Power-law slope check: log-log slope between 2^6 and 2^16.
    std::printf("\nlog-log slope between 2^6 and 2^16 (paper: ~ -1):\n");
    for (size_t i = 0; i < analyzers.size(); ++i) {
        const double f6 = analyzers[i].overall().ccdf(6, totals[i]);
        const double f16 = analyzers[i].overall().ccdf(16, totals[i]);
        if (f6 > 0 && f16 > 0) {
            const double slope =
                (std::log2(f16) - std::log2(f6)) / (16.0 - 6.0);
            std::printf("  %-10s %.2f\n", workloads()[i].name.c_str(),
                        slope);
        }
    }
    return 0;
}
