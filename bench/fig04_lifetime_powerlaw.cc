/**
 * @file
 * Fig. 4: definition frequency of registers with lifetime >= k
 * instructions, measured on RISC traces. The paper shows an ~1/N power
 * law: lifetimes >= 1000 occur with frequency ~1e-3.
 */

#include <cmath>

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig04_lifetime_powerlaw");
    benchHeader("Fig 4", "register lifetime power law (RISC traces)");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        JobSpec spec;
        spec.id = w.name + "/R/lifetime";
        spec.workload = w.name;
        spec.isa = Isa::Riscv;
        spec.maxInsts = cap;
        runner.add(spec, [](const JobContext& job) {
            LifetimeAnalyzer lt(Isa::Riscv);
            RunResult run = runProgram(*job.program, job.spec.maxInsts,
                                       &lt);
            lt.finish();
            JobMetrics m;
            m.exited = run.exited;
            m.exitCode = run.exitCode;
            m.insts = lt.totalInsts();
            for (int k = 0; k <= 22; ++k) {
                char key[32];
                std::snprintf(key, sizeof(key), "lifetime.ge_2^%02d", k);
                m.counters[key] = lt.overall().atLeast(k);
            }
            return m;
        });
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    auto ccdf = [&](size_t i, int k) {
        char key[32];
        std::snprintf(key, sizeof(key), "lifetime.ge_2^%02d", k);
        return static_cast<double>(results[i].metrics.counters.at(key)) /
               static_cast<double>(results[i].metrics.insts);
    };

    TextTable t;
    std::vector<std::string> head = {"lifetime >="};
    for (const auto& w : workloads())
        head.push_back(w.name);
    t.header(head);
    for (int k = 0; k <= 22; k += 2) {
        std::vector<std::string> row = {"2^" + std::to_string(k)};
        for (size_t i = 0; i < results.size(); ++i) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2e", ccdf(i, k));
            row.push_back(buf);
        }
        t.row(row);
    }
    t.print();

    // Power-law slope check: log-log slope between 2^6 and 2^16.
    std::printf("\nlog-log slope between 2^6 and 2^16 (paper: ~ -1):\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const double f6 = ccdf(i, 6);
        const double f16 = ccdf(i, 16);
        if (f6 > 0 && f16 > 0) {
            const double slope =
                (std::log2(f16) - std::log2(f6)) / (16.0 - 6.0);
            std::printf("  %-10s %.2f\n", workloads()[i].name.c_str(),
                        slope);
        }
    }
    benchWriteMetrics(ctx, results);
    return 0;
}
