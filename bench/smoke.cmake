# Bench smoke check, run as one ctest per bench binary (label
# `bench-smoke`): execute the binary with a small instruction cap and
# fail on a nonzero exit or an empty/missing metrics file, so figure
# regressions surface in CI instead of at paper-regeneration time.
#
# Inputs: -DBIN=<binary> -DNAME=<bench name> -DOUT=<metrics dir>
#         [-DEXTRA_ARGS=<;-list>] [-DSKIP_METRICS=ON]

set(ENV{CH_BENCH_MAXINSTS} 50000)
set(ENV{CH_BENCH_METRICS_DIR} ${OUT})

execute_process(
    COMMAND ${BIN} ${EXTRA_ARGS}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${NAME} exited with ${rc}\n${out}\n${err}")
endif()

if(NOT SKIP_METRICS)
    foreach(ext json csv)
        set(f ${OUT}/${NAME}.${ext})
        if(NOT EXISTS ${f})
            message(FATAL_ERROR "${NAME} wrote no metrics file ${f}")
        endif()
        file(SIZE ${f} size)
        if(size EQUAL 0)
            message(FATAL_ERROR "${NAME} wrote empty metrics file ${f}")
        endif()
    endforeach()
endif()
