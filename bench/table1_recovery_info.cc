/**
 * @file
 * Table 1: recovery-information (checkpoint) size per architecture. The
 * paper: RISC ~570 bits (63 mappings x ~9 bits), STRAIGHT ~70 bits (one
 * RP + 64-bit SP), Clockhands ~36 bits (four RPs).
 */

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "table1_recovery_info");
    benchHeader("Table 1", "checkpoint (recovery information) size");

    SweepRunner runner(ctx.runner);
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        JobSpec spec;
        spec.id = std::string(shortIsa(isa)) + "/checkpoint-bits";
        spec.isa = isa;
        runner.add(spec, [](const JobContext& job) {
            JobMetrics m;
            m.counters["checkpoint.bits"] = checkpointBits(job.spec.isa);
            return m;
        });
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"architecture", "formula", "bits"});
    const char* formulas[3] = {"63 x ~9 bits", "~9 bits + 64 bits (SP)",
                               "4 x ~9 bits"};
    const char* names[3] = {"Conventional RISC", "STRAIGHT",
                            "Clockhands"};
    for (int i = 0; i < 3; ++i) {
        t.row({names[i], formulas[i],
               std::to_string(
                   results[i].metrics.counters.at("checkpoint.bits"))});
    }
    t.print();
    std::printf("\npaper: ~570 / ~70 / ~36 bits\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
