/**
 * @file
 * Table 1: recovery-information (checkpoint) size per architecture. The
 * paper: RISC ~570 bits (63 mappings x ~9 bits), STRAIGHT ~70 bits (one
 * RP + 64-bit SP), Clockhands ~36 bits (four RPs).
 */

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace ch;

int
main()
{
    benchHeader("Table 1", "checkpoint (recovery information) size");
    TextTable t;
    t.header({"architecture", "formula", "bits"});
    t.row({"Conventional RISC", "63 x ~9 bits",
           std::to_string(checkpointBits(Isa::Riscv))});
    t.row({"STRAIGHT", "~9 bits + 64 bits (SP)",
           std::to_string(checkpointBits(Isa::Straight))});
    t.row({"Clockhands", "4 x ~9 bits",
           std::to_string(checkpointBits(Isa::Clockhands))});
    t.print();
    std::printf("\npaper: ~570 / ~70 / ~36 bits\n");
    return 0;
}
