/**
 * @file
 * Fig. 13: relative performance (1 / cycles) of RISC-V, STRAIGHT, and
 * Clockhands across the 4/6/8/12/16-fetch machines of Table 2, per
 * benchmark, normalized to the 4-fetch RISC-V model. The paper reports
 * Clockhands at 97.3..101.6% of RISC-V and 6.5..9.9% above STRAIGHT.
 *
 * All 75 (workload x ISA x width) simulations run on the SweepRunner
 * thread pool; `--jobs N` / CH_BENCH_JOBS picks the parallelism.
 */

#include <cmath>

#include "bench_util.h"
#include "uarch/sim.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig13_performance");
    benchHeader("Fig 13", "relative performance, 3 ISAs x 5 widths");
    const int widths[] = {4, 6, 8, 12, 16};
    const uint64_t cap = benchMaxInsts(~0ull);
    if (cap != ~0ull) {
        std::printf("WARNING: CH_BENCH_MAXINSTS caps runs at equal "
                    "instruction counts, which is not equal work across "
                    "ISAs; ratios will be skewed.\n");
    }

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (int wi = 0; wi < 5; ++wi) {
            for (Isa isa :
                 {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
                JobSpec spec;
                spec.id = w.name + "/" + shortIsa(isa) + "/" +
                          std::to_string(widths[wi]) + "f";
                spec.workload = w.name;
                spec.isa = isa;
                spec.cfg = MachineConfig::preset(widths[wi]);
                spec.maxInsts = cap;
                runner.addSim(spec);
            }
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    // perf[wl][isa][width] = 1/cycles, normalized per workload.
    TextTable t;
    t.header({"benchmark", "isa", "4f", "6f", "8f", "12f", "16f"});

    double geoC[5] = {1, 1, 1, 1, 1};
    double geoS[5] = {1, 1, 1, 1, 1};
    size_t job = 0;
    for (const auto& w : workloads()) {
        double cycles[3][5];
        for (int wi = 0; wi < 5; ++wi) {
            for (int ii = 0; ii < 3; ++ii) {
                cycles[ii][wi] = static_cast<double>(
                    results[job++].metrics.cycles);
            }
        }
        const double base = cycles[0][0];
        const char* names[3] = {"R", "S", "C"};
        for (int ii = 0; ii < 3; ++ii) {
            std::vector<std::string> row = {w.name, names[ii]};
            for (int wi = 0; wi < 5; ++wi)
                row.push_back(fmtDouble(base / cycles[ii][wi], 3));
            t.row(row);
        }
        for (int wi = 0; wi < 5; ++wi) {
            geoC[wi] *= cycles[0][wi] / cycles[2][wi];
            geoS[wi] *= cycles[1][wi] / cycles[2][wi];
        }
    }
    t.print();

    const double n = static_cast<double>(workloads().size());
    std::printf("\nClockhands vs RISC-V (geomean %%, paper: 97.9/97.3/"
                "98.9/100.0/101.6):\n  ");
    for (int wi = 0; wi < 5; ++wi)
        std::printf("%.1f%% ", 100.0 * std::pow(geoC[wi], 1.0 / n));
    std::printf("\nClockhands vs STRAIGHT (geomean speedup %%, paper: "
                "+9.9/+7.6/+6.6/+6.5/+7.2):\n  ");
    for (int wi = 0; wi < 5; ++wi) {
        std::printf("%+.1f%% ",
                    100.0 * (std::pow(geoS[wi], 1.0 / n) - 1.0));
    }
    std::printf("\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
