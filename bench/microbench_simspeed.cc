/**
 * @file
 * Host-side simulator-throughput microbenchmark: emulator MIPS, trace
 * capture/replay MIPS, and CycleSim KIPS for every (workload x ISA)
 * pair, plus the projected wall-clock speedup of a capture-once/
 * replay-many timing grid (docs/PERFORMANCE.md).
 *
 * Emits the standard ch-sweep-metrics-v1 files so the repo's perf
 * trajectory accumulates host throughput numbers; the timing values are
 * host observations, so they only appear in the metrics files under
 * `--host-metrics` (deterministic counters are always present).
 */

#include <chrono>

#include "bench_util.h"
#include "emu/emulator.h"
#include "runner/trace_cache.h"
#include "trace/trace_buffer.h"
#include "uarch/sim.h"

using namespace ch;

namespace {

/** Discards the stream; isolates emulation/replay cost from sink cost. */
class NullSink : public TraceSink
{
  public:
    void onInst(const DynInst&) override {}
};

struct Row {
    std::string workload;
    Isa isa = Isa::Riscv;
    uint64_t insts = 0;
    uint64_t traceBytes = 0;
    double emuSwitchMips = 0;   ///< switch interpreter, no sink
    double emuThreadedMips = 0; ///< threaded-code engine, no sink
    double emuSpeedup = 0;      ///< threaded over switch
    double captureMips = 0;   ///< emulate into a TraceBuffer
    double replayMips = 0;    ///< replay into a null sink
    double simDirectKips = 0; ///< emulate + CycleSim (the pre-cache path)
    double simReplayKips = 0; ///< replay + CycleSim (the cached path)
    double gridSpeedup4 = 0;  ///< 4-config grid: direct vs capture+replay
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

Row
measure(const Program& prog, const std::string& workload, Isa isa,
        uint64_t cap)
{
    Row row;
    row.workload = workload;
    row.isa = isa;

    // Both engines, no sink: the ratio is the headline of the threaded
    // rewrite (docs/EMULATOR.md), so measure it in one process where
    // the two runs see the same host conditions.
    auto t0 = std::chrono::steady_clock::now();
    {
        Emulator sw(prog, EmuEngine::Switch);
        sw.run(cap, nullptr);
    }
    const double tEmuSwitch = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    Emulator th(prog, EmuEngine::Threaded);
    const RunResult plain = th.run(cap, nullptr);
    const double tEmu = secondsSince(t0);
    row.insts = plain.instCount;

    TraceBuffer trace;
    t0 = std::chrono::steady_clock::now();
    const RunResult captured = runProgram(prog, cap, &trace);
    const double tCapture = secondsSince(t0);
    trace.setRunOutcome(captured.exited, captured.exitCode);
    row.traceBytes = trace.byteSize();

    NullSink null;
    t0 = std::chrono::steady_clock::now();
    trace.replay(null);
    const double tReplay = secondsSince(t0);

    const MachineConfig cfg = MachineConfig::preset(8);
    t0 = std::chrono::steady_clock::now();
    const SimResult direct = simulate(prog, cfg, cap);
    const double tSimDirect = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    const SimResult replayed = simulateReplay(trace, isa, cfg);
    const double tSimReplay = secondsSince(t0);
    CH_ASSERT(direct.cycles == replayed.cycles,
              "replayed timing diverged from direct timing: ", workload);

    const double insts = static_cast<double>(row.insts);
    auto mips = [insts](double s) { return s > 0 ? insts / s / 1e6 : 0; };
    row.emuSwitchMips = mips(tEmuSwitch);
    row.emuThreadedMips = mips(tEmu);
    row.emuSpeedup = tEmu > 0 ? tEmuSwitch / tEmu : 0;
    row.captureMips = mips(tCapture);
    row.replayMips = mips(tReplay);
    row.simDirectKips = tSimDirect > 0 ? insts / tSimDirect / 1e3 : 0;
    row.simReplayKips = tSimReplay > 0 ? insts / tSimReplay / 1e3 : 0;
    // A K-config grid pays capture once, then K replayed timings,
    // against K direct (emulate + time) runs.
    const double gridDirect = 4 * tSimDirect;
    const double gridReplay = tCapture + 4 * tSimReplay;
    row.gridSpeedup4 = gridReplay > 0 ? gridDirect / gridReplay : 0;
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "microbench_simspeed");
    benchHeader("Microbench", "emulator/trace/CycleSim host throughput");
    const uint64_t cap = benchMaxInsts(2'000'000);

    SweepRunner runner(ctx.runner);
    std::vector<Row> rows(workloads().size() * 3);
    size_t slot = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + shortIsa(isa) + "/simspeed";
            spec.workload = w.name;
            spec.isa = isa;
            spec.maxInsts = cap;
            Row* out = &rows[slot++];
            runner.add(spec, [out, cap, &ctx](const JobContext& job) {
                *out = measure(*job.program, job.spec.workload,
                               job.spec.isa, cap);
                JobMetrics m;
                m.exited = true;
                m.insts = out->insts;
                m.counters["trace.bytes"] = out->traceBytes;
                if (ctx.hostMetrics) {
                    m.values["emu.switch.mips"] = out->emuSwitchMips;
                    m.values["emu.threaded.mips"] = out->emuThreadedMips;
                    m.values["emu.threaded.speedup"] = out->emuSpeedup;
                    m.values["capture.mips"] = out->captureMips;
                    m.values["replay.mips"] = out->replayMips;
                    m.values["sim.direct.kips"] = out->simDirectKips;
                    m.values["sim.replay.kips"] = out->simReplayKips;
                    m.values["grid4.speedup"] = out->gridSpeedup4;
                }
                return m;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "isa", "insts", "B/inst", "emu sw MIPS",
              "emu thr MIPS", "emu speedup", "capture MIPS", "replay MIPS",
              "sim KIPS", "replay KIPS", "grid4 speedup"});
    for (const Row& r : rows) {
        t.row({r.workload, shortIsa(r.isa), std::to_string(r.insts),
               fmtDouble(r.insts ? static_cast<double>(r.traceBytes) /
                                       static_cast<double>(r.insts)
                                 : 0,
                         2),
               fmtDouble(r.emuSwitchMips, 1),
               fmtDouble(r.emuThreadedMips, 1),
               fmtDouble(r.emuSpeedup, 2), fmtDouble(r.captureMips, 1),
               fmtDouble(r.replayMips, 1), fmtDouble(r.simDirectKips, 0),
               fmtDouble(r.simReplayKips, 0),
               fmtDouble(r.gridSpeedup4, 2)});
    }
    t.print();
    std::printf("\nemu speedup = threaded-code engine over the switch "
                "interpreter (same process, no sink); grid4 speedup = "
                "wall-clock of 4 direct (emulate+time) config points over "
                "capture-once + 4 replayed points; host timing values land "
                "in the metrics files only under --host-metrics\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
