/**
 * @file
 * Ablation: sensitivity to rename-stage depth. The paper credits part of
 * Clockhands' performance to faster misprediction recovery (5-cycle vs
 * 7-cycle front end). Here the same RISC binary runs with 0..4 extra
 * rename stages, isolating the per-squash cost from all ISA differences.
 */

#include "bench_util.h"
#include "uarch/sim.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "ablation_frontend_depth");
    benchHeader("Ablation", "front-end (rename) depth vs performance");
    const uint64_t cap = benchMaxInsts(3'000'000);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (int extra = 0; extra <= 4; ++extra) {
            JobSpec spec;
            spec.id = w.name + "/R/rename+" + std::to_string(extra);
            spec.workload = w.name;
            spec.isa = Isa::Riscv;
            spec.cfg = MachineConfig::preset(8);
            spec.cfg.renameStagesOverride = extra;
            spec.maxInsts = cap;
            runner.addSim(spec);
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "+0", "+1", "+2 (RISC)", "+3", "+4",
              "mispred/Kinst"});
    size_t job = 0;
    for (const auto& w : workloads()) {
        std::vector<std::string> row = {w.name};
        double baseCycles = 0;
        double mpki = 0;
        for (int extra = 0; extra <= 4; ++extra) {
            const JobMetrics& m = results[job++].metrics;
            if (extra == 0) {
                baseCycles = static_cast<double>(m.cycles);
                mpki = 1000.0 *
                       static_cast<double>(
                           m.counters.count("branch.mispredicts")
                               ? m.counters.at("branch.mispredicts")
                               : 0) /
                       static_cast<double>(m.insts);
            }
            row.push_back(fmtDouble(m.cycles / baseCycles, 3));
        }
        row.push_back(fmtDouble(mpki, 2));
        t.row(row);
    }
    t.print();
    std::printf("\nexpectation: cycles grow with depth, steeper for "
                "benchmarks with higher mispredict rates -- the recovery "
                "advantage the rename-free ISAs enjoy\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
