/**
 * @file
 * Ablation: sensitivity to rename-stage depth. The paper credits part of
 * Clockhands' performance to faster misprediction recovery (5-cycle vs
 * 7-cycle front end). Here the same RISC binary runs with 0..4 extra
 * rename stages, isolating the per-squash cost from all ISA differences.
 */

#include "bench_util.h"
#include "uarch/sim.h"

using namespace ch;

int
main()
{
    benchHeader("Ablation", "front-end (rename) depth vs performance");
    const uint64_t cap = benchMaxInsts(3'000'000);

    TextTable t;
    t.header({"benchmark", "+0", "+1", "+2 (RISC)", "+3", "+4",
              "mispred/Kinst"});
    for (const auto& w : workloads()) {
        std::vector<std::string> row = {w.name};
        double baseCycles = 0;
        double mpki = 0;
        for (int extra = 0; extra <= 4; ++extra) {
            MachineConfig cfg = MachineConfig::preset(8);
            cfg.renameStagesOverride = extra;
            SimResult r =
                simulate(compiledWorkload(w.name, Isa::Riscv), cfg, cap);
            if (extra == 0) {
                baseCycles = static_cast<double>(r.cycles);
                mpki = 1000.0 *
                       static_cast<double>(
                           r.stats.value("branch.mispredicts")) /
                       static_cast<double>(r.insts);
            }
            row.push_back(fmtDouble(r.cycles / baseCycles, 3));
        }
        row.push_back(fmtDouble(mpki, 2));
        t.row(row);
    }
    t.print();
    std::printf("\nexpectation: cycles grow with depth, steeper for "
                "benchmarks with higher mispredict rates -- the recovery "
                "advantage the rename-free ISAs enjoy\n");
    return 0;
}
