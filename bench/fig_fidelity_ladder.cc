/**
 * @file
 * Cross-validation of the fidelity ladder (docs/FIDELITY.md) on the
 * 5-workload x 3-ISA corpus: for every corpus point the committed
 * trace is replayed through the detailed CycleSim (the reference), the
 * fast in-order model, and the analytic zero-execution predictor, and
 * the cheaper rungs' IPC is compared against detailed.
 *
 * Per-point error is |rung - detailed| / detailed; the headline number
 * is the arithmetic mean over all corpus points (per rung), matching
 * the accuracy contract stated in docs/FIDELITY.md. `--max-relerr P`
 * makes the bench exit 1 when the FAST rung's mean error exceeds P
 * percent — CI runs it with --max-relerr 10 (the acceptance bar). The
 * analytic rung's error is reported but never gated here; its per-loop
 * bar lives in fig_static_ipc.
 *
 * Wall-clock MIPS per rung (and the fast/detailed speedup) are
 * host-side observations, so they are printed and emitted only under
 * --host-metrics; the deterministic metrics files carry cycles/IPC/
 * error alone.
 */

#include <chrono>
#include <cmath>

#include "bench_util.h"
#include "analyze/analytic_model.h"
#include "trace/trace_buffer.h"
#include "uarch/core_model.h"

using namespace ch;

namespace {

struct Rung {
    uint64_t cycles = 0;
    double ipc = 0;
    double mips = 0;   ///< host-side, replay wall time only
};

struct Row {
    std::string workload;
    Isa isa = Isa::Riscv;
    uint64_t insts = 0;
    Rung detailed, fast, analytic;
    double fastErr = 0;      ///< |fast - detailed| / detailed
    double analyticErr = 0;
};

double
relErr(double rung, double ref)
{
    return ref > 0 ? std::fabs(rung - ref) / ref : 1.0;
}

/** Replays @p trace through the @p kind rung, timing the replay. */
Rung
runRung(const TraceBuffer& trace, Isa isa, MachineConfig cfg,
        CoreModelKind kind)
{
    cfg.coreModel = kind;
    std::unique_ptr<CoreModel> core = makeCoreModel(cfg, isa);
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult res = core->replayResult(trace);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count();
    Rung r;
    r.cycles = res.cycles;
    r.ipc = res.cycles ? static_cast<double>(res.insts) / res.cycles : 0;
    r.mips = sec > 0 ? static_cast<double>(res.insts) / (sec * 1e6) : 0;
    return r;
}

Row
measure(const JobContext& job, uint64_t cap)
{
    Row row;
    row.workload = job.spec.workload;
    row.isa = job.spec.isa;

    const MachineConfig cfg = MachineConfig::preset(8);

    TraceBuffer local;
    const std::shared_ptr<const TraceBuffer> cached =
        job.traces ? job.traces->get(job.spec.workload, job.spec.isa,
                                     cap, *job.program)
                   : nullptr;
    const TraceBuffer* trace = cached.get();
    if (!trace) {
        const RunResult run = runProgram(*job.program, cap, &local);
        local.setRunOutcome(run.exited, run.exitCode);
        trace = &local;
    }
    row.insts = trace->instCount();

    // Two timed repetitions per rung, interleaved, keeping the faster
    // one: host clocks sag over a sequential sweep, and a single pass
    // would systematically flatter whichever rung ran first. Timing is
    // deterministic, so the repeat changes no cycle count.
    for (int rep = 0; rep < 2; ++rep) {
        Rung det = runRung(*trace, row.isa, cfg, CoreModelKind::Detailed);
        Rung fast = runRung(*trace, row.isa, cfg, CoreModelKind::Fast);
        if (det.mips > row.detailed.mips)
            row.detailed = det;
        if (fast.mips > row.fast.mips)
            row.fast = fast;

        // The analytic rung is not a makeCoreModel() product (it needs
        // the static program, which lives a library above), so it goes
        // through its own entry point; replay here only counts dynamic
        // loop visits.
        const auto t0 = std::chrono::steady_clock::now();
        const SimResult res =
            analyze::simulateAnalytic(*job.program, cfg, trace, cap);
        const auto t1 = std::chrono::steady_clock::now();
        const double sec =
            std::chrono::duration<double>(t1 - t0).count();
        Rung ana;
        ana.cycles = res.cycles;
        ana.ipc =
            res.cycles ? static_cast<double>(res.insts) / res.cycles : 0;
        ana.mips =
            sec > 0 ? static_cast<double>(res.insts) / (sec * 1e6) : 0;
        if (ana.mips > row.analytic.mips)
            row.analytic = ana;
    }

    row.fastErr = relErr(row.fast.ipc, row.detailed.ipc);
    row.analyticErr = relErr(row.analytic.ipc, row.detailed.ipc);
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    // --max-relerr is bench-specific; strip it before the shared parse.
    double maxRelErrPct = 0;
    bool haveThreshold = false;
    std::vector<char*> passArgv;
    passArgv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-relerr") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --max-relerr needs an argument\n");
                return 2;
            }
            const char* s = argv[++i];
            errno = 0;
            char* end = nullptr;
            maxRelErrPct = std::strtod(s, &end);
            if (end == s || *end != '\0' || errno == ERANGE ||
                !(maxRelErrPct > 0)) {
                std::fprintf(stderr,
                             "error: --max-relerr expects a positive "
                             "percentage, got '%s'\n", s);
                return 2;
            }
            haveThreshold = true;
        } else {
            passArgv.push_back(argv[i]);
        }
    }
    BenchContext ctx = benchInit(static_cast<int>(passArgv.size()),
                                 passArgv.data(), "fig_fidelity_ladder");
    benchHeader("Fidelity ladder", "fast/analytic rung IPC vs the "
                                   "detailed CycleSim reference");
    const uint64_t cap = benchMaxInsts(2'000'000);
    const bool host = ctx.hostMetrics;

    SweepRunner runner(ctx.runner);
    std::vector<Row> rows(workloads().size() * 3);
    size_t slot = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + shortIsa(isa) + "/ladder";
            spec.workload = w.name;
            spec.isa = isa;
            spec.maxInsts = cap;
            Row* out = &rows[slot++];
            runner.add(spec, [out, cap, host](const JobContext& job) {
                *out = measure(job, cap);
                JobMetrics m;
                m.exited = true;
                m.insts = out->insts;
                m.cycles = out->detailed.cycles;
                m.counters["detailed.cycles"] = out->detailed.cycles;
                m.counters["fast.cycles"] = out->fast.cycles;
                m.counters["analytic.cycles"] = out->analytic.cycles;
                m.values["detailed.ipc"] = out->detailed.ipc;
                m.values["fast.ipc"] = out->fast.ipc;
                m.values["analytic.ipc"] = out->analytic.ipc;
                m.values["fast.relerr"] = out->fastErr;
                m.values["analytic.relerr"] = out->analyticErr;
                if (host) {
                    m.values["detailed.mips"] = out->detailed.mips;
                    m.values["fast.mips"] = out->fast.mips;
                    m.values["analytic.mips"] = out->analytic.mips;
                    m.values["fast.speedup"] =
                        out->detailed.mips > 0
                            ? out->fast.mips / out->detailed.mips
                            : 0;
                }
                return m;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    if (host) {
        t.header({"benchmark", "isa", "insts", "det IPC", "fast IPC",
                  "fast err%", "ana IPC", "ana err%", "det MIPS",
                  "fast MIPS", "speedup"});
    } else {
        t.header({"benchmark", "isa", "insts", "det IPC", "fast IPC",
                  "fast err%", "ana IPC", "ana err%"});
    }
    double fastSum = 0, anaSum = 0, speedupMin = 0;
    double fastWorst = 0;
    bool first = true;
    for (const Row& r : rows) {
        std::vector<std::string> cells{
            r.workload, shortIsa(r.isa), std::to_string(r.insts),
            fmtDouble(r.detailed.ipc, 3), fmtDouble(r.fast.ipc, 3),
            fmtDouble(100 * r.fastErr, 2), fmtDouble(r.analytic.ipc, 3),
            fmtDouble(100 * r.analyticErr, 2)};
        if (host) {
            const double speedup = r.detailed.mips > 0
                                       ? r.fast.mips / r.detailed.mips
                                       : 0;
            cells.push_back(fmtDouble(r.detailed.mips, 1));
            cells.push_back(fmtDouble(r.fast.mips, 1));
            cells.push_back(fmtDouble(speedup, 1));
            speedupMin = first ? speedup : std::min(speedupMin, speedup);
        }
        t.row(cells);
        fastSum += r.fastErr;
        anaSum += r.analyticErr;
        fastWorst = std::max(fastWorst, r.fastErr);
        first = false;
    }
    t.print();

    const double n = static_cast<double>(rows.size());
    const double fastMeanPct = 100 * fastSum / n;
    const double anaMeanPct = 100 * anaSum / n;
    std::printf("\n%zu corpus points: fast mean |IPC err| %.2f%% "
                "(worst %.2f%%), analytic mean %.2f%%\n",
                rows.size(), fastMeanPct, 100 * fastWorst, anaMeanPct);
    if (host)
        std::printf("fast-vs-detailed speedup: min %.1fx\n", speedupMin);
    benchWriteMetrics(ctx, results);

    if (haveThreshold && fastMeanPct > maxRelErrPct) {
        std::fprintf(stderr,
                     "error: fast-model mean IPC error %.2f%% exceeds "
                     "--max-relerr %.2f%%\n", fastMeanPct, maxRelErrPct);
        return 1;
    }
    return 0;
}
