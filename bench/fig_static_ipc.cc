/**
 * @file
 * Cross-validation of the static throughput analyzer (src/analyze,
 * docs/ANALYZER.md) against CycleSim on the 5-workload x 3-ISA corpus.
 *
 * For every corpus point the bench (1) runs chanalyze's model to get a
 * predicted steady-state IPC per natural loop, (2) replays the
 * committed trace through CycleSim with a PipeObserver probe that
 * attributes commit-cycle deltas to the innermost static loop
 * containing each instruction, and (3) compares predicted vs measured
 * IPC for every *hot* loop — innermost, call-free, and covering at
 * least 1% of committed instructions (callee cycles and cold loops are
 * outside the analyzer's steady-state model; see docs/ANALYZER.md for
 * the blind-spot list).
 *
 * Per-loop error uses the symmetric ratio max(p,m)/min(p,m) - 1, so
 * over- and under-prediction weigh equally. `--max-relerr P` makes the
 * bench exit 1 when the corpus-wide geomean error exceeds P percent —
 * CI runs it with --max-relerr 15 (the acceptance bar).
 */

#include <cmath>

#include "bench_util.h"
#include "analyze/analyze.h"
#include "trace/trace_buffer.h"
#include "uarch/core.h"
#include "uarch/pipe_trace.h"

using namespace ch;

namespace {

/** Committed insts a loop needs (share of total) to count as hot. */
constexpr double kHotShare = 0.01;
constexpr uint64_t kHotMinInsts = 1000;

/** Tolerated |committed - iterations*body| share before a loop is
 *  declared irregular (internal control flow) and left out. */
constexpr double kIrregularTol = 0.10;

/**
 * Attributes each committed instruction's commit-cycle delta to the
 * innermost static loop containing it. In steady state the sum of
 * deltas over a loop's body is exactly the cycles the machine spent
 * retiring that loop, so insts/cycles is its measured IPC.
 */
class LoopIpcProbe : public PipeObserver
{
  public:
    LoopIpcProbe(const Program& prog,
                 const std::vector<analyze::LoopReport>& loops)
        : textBase_(prog.textBase),
          cycles_(loops.size(), 0),
          insts_(loops.size(), 0),
          iters_(loops.size(), 0)
    {
        headOf_.reserve(loops.size());
        for (const analyze::LoopReport& lp : loops)
            headOf_.push_back(lp.headInst);
        loopOf_.assign(prog.numInsts(), -1);
        for (size_t l = 0; l < loops.size(); ++l) {
            for (const int i : loops[l].body) {
                const int cur = loopOf_[static_cast<size_t>(i)];
                if (cur < 0 ||
                    loops[l].depth >
                        loops[static_cast<size_t>(cur)].depth) {
                    loopOf_[static_cast<size_t>(i)] =
                        static_cast<int>(l);
                }
            }
        }
    }

    void
    onTimedInst(const DynInst& di, const PipeTimes& t) override
    {
        const size_t idx = (di.pc - textBase_) / 4;
        const int l = idx < loopOf_.size() ? loopOf_[idx] : -1;
        if (l >= 0) {
            ++insts_[static_cast<size_t>(l)];
            if (idx == headOf_[static_cast<size_t>(l)])
                ++iters_[static_cast<size_t>(l)];
            if (hasLast_)
                cycles_[static_cast<size_t>(l)] += t.commit - lastCommit_;
        }
        lastCommit_ = t.commit;
        hasLast_ = true;
    }

    uint64_t loopCycles(size_t l) const { return cycles_[l]; }
    uint64_t loopInsts(size_t l) const { return insts_[l]; }
    uint64_t loopIters(size_t l) const { return iters_[l]; }

  private:
    uint64_t textBase_;
    std::vector<int> loopOf_;
    std::vector<size_t> headOf_;
    std::vector<uint64_t> cycles_;
    std::vector<uint64_t> insts_;
    std::vector<uint64_t> iters_;
    uint64_t lastCommit_ = 0;
    bool hasLast_ = false;
};

struct LoopRow {
    size_t headInst = 0;
    int srcLine = 0;
    size_t bodyInsts = 0;
    uint64_t dynInsts = 0;
    double predicted = 0;
    double measured = 0;
    double err = 0;  ///< symmetric: max/min - 1
    std::string bottleneck;
};

struct Row {
    std::string workload;
    Isa isa = Isa::Riscv;
    uint64_t insts = 0;
    size_t loops = 0;     ///< static loops found
    std::vector<LoopRow> hot;
};

double
symmetricErr(double p, double m)
{
    if (p <= 0 || m <= 0)
        return 1.0;
    return std::max(p, m) / std::min(p, m) - 1.0;
}

Row
measure(const JobContext& job, uint64_t cap)
{
    Row row;
    row.workload = job.spec.workload;
    row.isa = job.spec.isa;

    const MachineConfig cfg = MachineConfig::preset(8);
    const analyze::ProgramReport rep =
        analyze::analyzeProgram(*job.program, cfg);
    row.loops = rep.loops.size();

    TraceBuffer local;
    const std::shared_ptr<const TraceBuffer> cached =
        job.traces ? job.traces->get(job.spec.workload, job.spec.isa,
                                     cap, *job.program)
                   : nullptr;
    const TraceBuffer* trace = cached.get();
    if (!trace) {
        const RunResult run = runProgram(*job.program, cap, &local);
        local.setRunOutcome(run.exited, run.exitCode);
        trace = &local;
    }

    CycleSim core(cfg, row.isa);
    LoopIpcProbe probe(*job.program, rep.loops);
    core.setPipeObserver(&probe);
    trace->replay(core);
    core.finish();
    row.insts = core.instCount();

    for (size_t l = 0; l < rep.loops.size(); ++l) {
        const analyze::LoopReport& lp = rep.loops[l];
        const uint64_t dyn = probe.loopInsts(l);
        const uint64_t cyc = probe.loopCycles(l);
        if (!lp.innermost || lp.hasCall || cyc == 0 ||
            dyn < kHotMinInsts ||
            static_cast<double>(dyn) <
                kHotShare * static_cast<double>(row.insts)) {
            continue;
        }
        // Steady-state straightening assumes the whole body executes
        // each iteration; loops with frequently-taken internal branches
        // violate that (a documented blind spot), so only regular loops
        // enter the accuracy gate.
        const double expected = static_cast<double>(probe.loopIters(l)) *
                                static_cast<double>(lp.bodyInsts());
        if (expected <= 0 ||
            std::fabs(static_cast<double>(dyn) - expected) >
                kIrregularTol * expected) {
            continue;
        }
        LoopRow r;
        r.headInst = lp.headInst;
        r.srcLine = lp.srcLine;
        r.bodyInsts = lp.bodyInsts();
        r.dynInsts = dyn;
        r.predicted = lp.predictedIpc;
        r.measured =
            static_cast<double>(dyn) / static_cast<double>(cyc);
        r.err = symmetricErr(r.predicted, r.measured);
        r.bottleneck = lp.bottleneckName();
        row.hot.push_back(std::move(r));
    }
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    // --max-relerr is bench-specific; strip it before the shared parse.
    double maxRelErrPct = 0;
    bool haveThreshold = false;
    std::vector<char*> passArgv;
    passArgv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-relerr") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --max-relerr needs an argument\n");
                return 2;
            }
            const char* s = argv[++i];
            errno = 0;
            char* end = nullptr;
            maxRelErrPct = std::strtod(s, &end);
            if (end == s || *end != '\0' || errno == ERANGE ||
                !(maxRelErrPct > 0)) {
                std::fprintf(stderr,
                             "error: --max-relerr expects a positive "
                             "percentage, got '%s'\n", s);
                return 2;
            }
            haveThreshold = true;
        } else {
            passArgv.push_back(argv[i]);
        }
    }
    BenchContext ctx = benchInit(static_cast<int>(passArgv.size()),
                                 passArgv.data(), "fig_static_ipc");
    benchHeader("Static IPC", "analyzer-predicted vs CycleSim-measured "
                              "hot-loop IPC");
    const uint64_t cap = benchMaxInsts(2'000'000);

    SweepRunner runner(ctx.runner);
    std::vector<Row> rows(workloads().size() * 3);
    size_t slot = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + shortIsa(isa) + "/static-ipc";
            spec.workload = w.name;
            spec.isa = isa;
            spec.maxInsts = cap;
            Row* out = &rows[slot++];
            runner.add(spec, [out, cap](const JobContext& job) {
                *out = measure(job, cap);
                JobMetrics m;
                m.exited = true;
                m.insts = out->insts;
                m.counters["static.loops"] = out->loops;
                m.counters["static.hotLoops"] = out->hot.size();
                double logSum = 0;
                for (const LoopRow& r : out->hot) {
                    const std::string key =
                        "loop" + std::to_string(r.headInst);
                    m.counters[key + ".insts"] = r.dynInsts;
                    m.values[key + ".predIpc"] = r.predicted;
                    m.values[key + ".measIpc"] = r.measured;
                    m.values[key + ".relerr"] = r.err;
                    logSum += std::log1p(r.err);
                }
                m.values["static.geomeanErr"] =
                    out->hot.empty()
                        ? 0
                        : std::expm1(logSum /
                                     static_cast<double>(
                                         out->hot.size()));
                return m;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    TextTable t;
    t.header({"benchmark", "isa", "loop@", "line", "insts/iter",
              "dyn insts", "pred IPC", "meas IPC", "err%",
              "bottleneck"});
    double logSum = 0;
    size_t nLoops = 0;
    double worst = 0;
    for (const Row& r : rows) {
        for (const LoopRow& l : r.hot) {
            t.row({r.workload, shortIsa(r.isa),
                   std::to_string(l.headInst), std::to_string(l.srcLine),
                   std::to_string(l.bodyInsts),
                   std::to_string(l.dynInsts), fmtDouble(l.predicted, 3),
                   fmtDouble(l.measured, 3), fmtDouble(100 * l.err, 2),
                   l.bottleneck});
            logSum += std::log1p(l.err);
            worst = std::max(worst, l.err);
            ++nLoops;
        }
    }
    t.print();

    const double geomeanPct =
        nLoops > 0
            ? 100 * std::expm1(logSum / static_cast<double>(nLoops))
            : 0;
    std::printf("\n%zu hot loops across %zu corpus points: geomean "
                "|IPC err| %.2f%%, worst %.2f%%\n",
                nLoops, rows.size(), geomeanPct, 100 * worst);
    benchWriteMetrics(ctx, results);

    if (nLoops == 0) {
        std::fprintf(stderr, "error: no hot loops found — cap too "
                             "small?\n");
        return 1;
    }
    if (haveThreshold && geomeanPct > maxRelErrPct) {
        std::fprintf(stderr,
                     "error: geomean hot-loop IPC error %.2f%% exceeds "
                     "--max-relerr %.2f%%\n", geomeanPct, maxRelErrPct);
        return 1;
    }
    return 0;
}
