/**
 * @file
 * Fig. 15: executed-instruction breakdown by type, normalized to RISC-V,
 * per benchmark. The paper's totals: CoreMark R/S/C = 1.000/1.371/1.096,
 * bzip2 1.000/1.272/1.121, mcf 1.000/1.562/1.169, lbm 1.000/1.330/0.984,
 * xz 1.000/1.078/1.074 -- Clockhands eliminates most of STRAIGHT's mv and
 * nop overhead.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main()
{
    benchHeader("Fig 15", "executed instruction mix, normalized to RISC-V");
    const uint64_t cap = benchMaxInsts(~0ull);

    for (const auto& w : workloads()) {
        MixAnalyzer mix[3];
        uint64_t riscTotal = 0;
        int ii = 0;
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            runProgram(compiledWorkload(w.name, isa), cap, &mix[ii]);
            if (isa == Isa::Riscv)
                riscTotal = mix[ii].total();
            ++ii;
        }
        std::printf("\n%s (totals R/S/C = 1.000/%.3f/%.3f):\n",
                    w.name.c_str(),
                    static_cast<double>(mix[1].total()) / riscTotal,
                    static_cast<double>(mix[2].total()) / riscTotal);
        TextTable t;
        t.header({"category", "RISC-V", "STRAIGHT", "Clockhands"});
        for (int c = 0; c < static_cast<int>(MixCat::kCount); ++c) {
            const auto cat = static_cast<MixCat>(c);
            std::vector<std::string> row = {std::string(mixCatName(cat))};
            for (int i = 0; i < 3; ++i) {
                row.push_back(fmtDouble(
                    static_cast<double>(mix[i].count(cat)) / riscTotal,
                    3));
            }
            t.row(row);
        }
        t.print();
    }
    std::printf("\npaper totals: coremark 1.371/1.096, bzip2 1.272/1.121, "
                "mcf 1.562/1.169, lbm 1.330/0.984, xz 1.078/1.074\n");
    return 0;
}
