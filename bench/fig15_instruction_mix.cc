/**
 * @file
 * Fig. 15: executed-instruction breakdown by type, normalized to RISC-V,
 * per benchmark. The paper's totals: CoreMark R/S/C = 1.000/1.371/1.096,
 * bzip2 1.000/1.272/1.121, mcf 1.000/1.562/1.169, lbm 1.000/1.330/0.984,
 * xz 1.000/1.078/1.074 -- Clockhands eliminates most of STRAIGHT's mv and
 * nop overhead.
 */

#include "bench_util.h"
#include "trace/analyzers.h"

using namespace ch;

int
main(int argc, char** argv)
{
    BenchContext ctx = benchInit(argc, argv, "fig15_instruction_mix");
    benchHeader("Fig 15", "executed instruction mix, normalized to RISC-V");
    const uint64_t cap = benchMaxInsts(~0ull);

    SweepRunner runner(ctx.runner);
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + shortIsa(isa) + "/mix";
            spec.workload = w.name;
            spec.isa = isa;
            spec.maxInsts = cap;
            runner.add(spec, [](const JobContext& job) {
                MixAnalyzer mix;
                RunResult run = runProgram(*job.program,
                                           job.spec.maxInsts, &mix);
                JobMetrics m;
                m.exited = run.exited;
                m.exitCode = run.exitCode;
                m.insts = mix.total();
                for (int c = 0; c < static_cast<int>(MixCat::kCount);
                     ++c) {
                    const auto cat = static_cast<MixCat>(c);
                    m.counters[std::string("mix.") +
                               std::string(mixCatName(cat))] =
                        mix.count(cat);
                }
                return m;
            });
        }
    }
    const std::vector<JobResult>& results = runner.run();
    benchRequireOk(results);

    size_t job = 0;
    for (const auto& w : workloads()) {
        const JobMetrics* m[3];
        for (int i = 0; i < 3; ++i)
            m[i] = &results[job++].metrics;
        const double riscTotal = static_cast<double>(m[0]->insts);
        std::printf("\n%s (totals R/S/C = 1.000/%.3f/%.3f):\n",
                    w.name.c_str(), m[1]->insts / riscTotal,
                    m[2]->insts / riscTotal);
        TextTable t;
        t.header({"category", "RISC-V", "STRAIGHT", "Clockhands"});
        for (int c = 0; c < static_cast<int>(MixCat::kCount); ++c) {
            const auto cat = static_cast<MixCat>(c);
            const std::string key =
                std::string("mix.") + std::string(mixCatName(cat));
            std::vector<std::string> row = {std::string(mixCatName(cat))};
            for (int i = 0; i < 3; ++i) {
                row.push_back(fmtDouble(
                    m[i]->counters.at(key) / riscTotal, 3));
            }
            t.row(row);
        }
        t.print();
    }
    std::printf("\npaper totals: coremark 1.371/1.096, bzip2 1.272/1.121, "
                "mcf 1.562/1.169, lbm 1.330/0.984, xz 1.078/1.074\n");
    benchWriteMetrics(ctx, results);
    return 0;
}
