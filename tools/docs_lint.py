#!/usr/bin/env python3
"""Documentation linter for the intra-repo contract of the markdown set.

Checks, over README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md:

1. Markdown links ``[text](target)``: relative targets must exist in the
   repository (http(s) and pure-anchor links are skipped).
2. Backtick path references like ``src/uarch/core.cc`` or
   ``docs/RUNNER.md``: any token that looks like a repo path (starts
   with a known top-level directory, or is a root-level ``*.md``) must
   exist. Tokens containing globs or placeholders (``*<>{}$``) are
   skipped.
3. Fenced ``sh`` command blocks: referenced build artifacts of the form
   ``build*/bench/<name>``, ``build*/examples/<name>`` or
   ``build*/src/.../<name>`` must correspond to a source file / CMake
   target in the tree, so the quick-start commands cannot rot silently.
4. The README "Documentation index" table is the docs/ table of
   contents, and it must be complete in both directions: every row's
   doc column must point at a file that exists, and every ``docs/*.md``
   file must have a row. A doc added without an index row (or a row
   left behind after a rename) fails the lint.

Exit status: 0 clean, 1 findings (each printed as ``file:line: message``).

Run directly (``python3 tools/docs_lint.py``) or via CI / ``ctest -L
docs-lint``. An optional repo-root argument overrides the default of the
script's grandparent directory.
"""

import re
import sys
from pathlib import Path

TOP_DIRS = ("src/", "docs/", "tests/", "bench/", "examples/", "tools/",
            ".github/")
PLACEHOLDER = set("*<>{}$")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`]+)`")
ARTIFACT_RE = re.compile(r"(?:\./)?build[\w-]*/([\w/.-]+)")


def is_pathlike(token: str) -> bool:
    if PLACEHOLDER & set(token) or " " in token:
        return False
    if token.startswith(TOP_DIRS):
        return True
    return "/" not in token and token.endswith(".md")


def artifact_sources(rel: str, root: Path):
    """Candidate source locations proving a build artifact exists."""
    parts = rel.split("/")
    name = parts[-1]
    if not name or "." in name:
        return None  # data files (metrics, traces): not checkable
    if parts[0] == "bench":
        return [root / "bench" / (name + ".cc")]
    if parts[0] == "examples":
        return [root / "examples" / (name + ".cpp")]
    if parts[0] == "src":
        return [root.joinpath(*parts[:-1], name + ".cc"),
                root.joinpath(*parts[:-1], "CMakeLists.txt")]
    return None  # other build paths (ctest dirs, ...) are not checkable


def lint_file(md: Path, root: Path, problems: list):
    in_fence = False
    fence_lang = ""
    for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            fence_lang = stripped[3:].strip() if in_fence else ""
            continue

        where = f"{md.relative_to(root)}:{lineno}"

        if in_fence:
            if fence_lang in ("sh", "bash", "console"):
                for m in ARTIFACT_RE.finditer(line):
                    candidates = artifact_sources(m.group(1), root)
                    if candidates is not None and \
                            not any(c.exists() for c in candidates):
                        problems.append(
                            f"{where}: command references build artifact "
                            f"'{m.group(0)}' with no matching source "
                            f"(expected one of: "
                            f"{', '.join(str(c.relative_to(root)) for c in candidates)})")
            continue

        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = (md.parent / target.split("#")[0]).resolve()
            if not path.exists():
                problems.append(f"{where}: broken link '{target}'")

        for m in CODE_RE.finditer(line):
            token = m.group(1).rstrip(":,")
            if not is_pathlike(token):
                continue
            # Accept binary-name references (`bench/fig13_performance`)
            # when the corresponding source file exists, and bare *.md
            # references relative to the current document's directory.
            candidates = [root / token, root / (token + ".cc"),
                          root / (token + ".cpp"), md.parent / token]
            if not any(c.exists() for c in candidates):
                problems.append(
                    f"{where}: referenced path '{token}' does not exist")


DOC_INDEX_HEADER = "### Documentation index"
DOC_CELL_RE = re.compile(r"`((?:docs/)?[\w.-]+\.md)`")


def lint_doc_index(root: Path, problems: list):
    """Check README's doc-index table against the docs/ directory."""
    readme = root / "README.md"
    if not readme.exists():
        return
    lines = readme.read_text(encoding="utf-8").splitlines()
    listed = {}
    in_index = False
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped == DOC_INDEX_HEADER:
            in_index = True
            continue
        if not in_index:
            continue
        if stripped.startswith("#"):
            break  # next section ends the index
        if not stripped.startswith("|") or set(stripped) <= set("|-: "):
            continue  # prose, blank, or the table separator row
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if cells and cells[0] == "topic":
            continue  # header row
        m = DOC_CELL_RE.search(cells[-1]) if cells else None
        if m is None:
            problems.append(
                f"README.md:{lineno}: doc-index row has no `*.md` target "
                f"in its doc column")
            continue
        listed[m.group(1)] = lineno
        if not (root / m.group(1)).exists():
            problems.append(
                f"README.md:{lineno}: doc-index row points at "
                f"'{m.group(1)}' which does not exist")
    if not listed:
        problems.append(
            f"README.md: no '{DOC_INDEX_HEADER}' table found "
            f"(or it is empty)")
        return
    for doc in sorted((root / "docs").glob("*.md")):
        rel = str(doc.relative_to(root))
        if rel not in listed:
            problems.append(
                f"{rel}: not listed in README.md's documentation index")


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    files = [root / "README.md", root / "DESIGN.md",
             root / "EXPERIMENTS.md"]
    files += sorted((root / "docs").glob("*.md"))

    problems = []
    checked = 0
    for md in files:
        if not md.exists():
            problems.append(f"{md.relative_to(root)}: file missing")
            continue
        checked += 1
        lint_file(md, root, problems)
    lint_doc_index(root, problems)

    for p in problems:
        print(p)
    print(f"docs-lint: {checked} files checked, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
