#!/usr/bin/env python3
"""clang-tidy driver for the src/ tree, gated at zero warnings.

Reads ``compile_commands.json`` from the build directory (configure with
``-DCMAKE_EXPORT_COMPILE_COMMANDS=ON``), keeps the entries whose source
lives under ``src/``, and runs clang-tidy over them in parallel with the
repository's ``.clang-tidy`` configuration. Any diagnostic fails the run
(the config sets ``WarningsAsErrors: '*'``), so the baseline stays at
zero; CI runs this on every PR.

When clang-tidy is not installed the script prints a note and exits 0:
the lint gate lives in CI (which installs it), and a missing local
binary must not block builds or test runs on dev machines that lack it.

Usage: ``python3 tools/run_clang_tidy.py [--build-dir build]
[--jobs N] [--clang-tidy BIN]``. Exit status: 0 clean or tool missing,
1 findings, 2 setup errors (no compilation database).
"""

import argparse
import json
import multiprocessing
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path


def parse_args():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="build tree holding compile_commands.json")
    ap.add_argument("--jobs", type=int,
                    default=multiprocessing.cpu_count(),
                    help="parallel clang-tidy processes")
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy binary to use")
    return ap.parse_args()


def source_files(build_dir: Path, root: Path):
    """src/ translation units from the compilation database, sorted."""
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        sys.stderr.write(
            f"error: {db_path} not found — configure the build with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON\n")
        sys.exit(2)
    src_root = (root / "src").resolve()
    files = set()
    for entry in json.loads(db_path.read_text(encoding="utf-8")):
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        f = f.resolve()
        if f.is_file() and src_root in f.parents:
            files.add(f)
    return sorted(files)


def main():
    args = parse_args()
    root = Path(__file__).resolve().parent.parent
    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        print(f"run_clang_tidy: '{args.clang_tidy}' not installed — "
              "skipping (the zero-warning gate runs in CI)")
        return 0

    files = source_files(Path(args.build_dir), root)
    if not files:
        sys.stderr.write("error: no src/ entries in the compilation "
                         "database\n")
        return 2

    def run_one(path: Path):
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", str(path)],
            cwd=root, capture_output=True, text=True)
        return path, proc

    failed = 0
    with ThreadPoolExecutor(max_workers=max(1, args.jobs)) as pool:
        for path, proc in pool.map(run_one, files):
            rel = path.relative_to(root)
            if proc.returncode != 0:
                failed += 1
                sys.stdout.write(f"FAIL {rel}\n{proc.stdout}")
                # clang-tidy prints "N warnings generated" chatter on
                # stderr; surface it only for failing files.
                if proc.stderr.strip():
                    sys.stdout.write(proc.stderr)
            else:
                sys.stdout.write(f"ok   {rel}\n")
            sys.stdout.flush()

    print(f"run_clang_tidy: {len(files) - failed}/{len(files)} files "
          "clean")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
