#ifndef CH_COMMON_PRNG_H
#define CH_COMMON_PRNG_H

/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*), used by the
 * workload generators and tests so every run of the harness is exactly
 * reproducible.
 */

#include <cstdint>

namespace ch {

/** Small, fast, seedable PRNG with reproducible cross-platform output. */
class Prng
{
  public:
    explicit Prng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {
    }

    /** Next raw 64-bit sample. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state_;
};

} // namespace ch

#endif // CH_COMMON_PRNG_H
