#ifndef CH_COMMON_TABLE_H
#define CH_COMMON_TABLE_H

/**
 * @file
 * Plain-text table formatter used by the benchmark harness to print the
 * rows and series of each paper table/figure.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

namespace ch {

/** Accumulates rows of cells and prints them with aligned columns. */
class TextTable
{
  public:
    /** Add a header row; printed with a separator line underneath. */
    void
    header(std::vector<std::string> cells)
    {
        header_ = std::move(cells);
    }

    /** Append one data row. */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Render the table to @p os (stdout by default). */
    void
    print(std::ostream& os = std::cout) const
    {
        std::vector<size_t> width;
        auto grow = [&](const std::vector<std::string>& cells) {
            if (width.size() < cells.size())
                width.resize(cells.size(), 0);
            for (size_t i = 0; i < cells.size(); ++i)
                width[i] = std::max(width[i], cells[i].size());
        };
        grow(header_);
        for (const auto& r : rows_)
            grow(r);

        auto emit = [&](const std::vector<std::string>& cells) {
            for (size_t i = 0; i < cells.size(); ++i) {
                os << cells[i]
                   << std::string(width[i] - cells[i].size() + 2, ' ');
            }
            os << '\n';
        };
        if (!header_.empty()) {
            emit(header_);
            size_t total = 0;
            for (size_t w : width)
                total += w + 2;
            os << std::string(total, '-') << '\n';
        }
        for (const auto& r : rows_)
            emit(r);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimal places. */
inline std::string
fmtDouble(double v, int digits = 3)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

/** Format a ratio as a percentage string. */
inline std::string
fmtPercent(double v, int digits = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

} // namespace ch

#endif // CH_COMMON_TABLE_H
