#ifndef CH_COMMON_LOGGING_H
#define CH_COMMON_LOGGING_H

/**
 * @file
 * Error reporting helpers in the gem5 spirit: panic() for internal
 * invariant violations (a bug in this library), fatal() for conditions
 * caused by user input (bad assembly, bad configuration), and warn() /
 * inform() for status messages that never stop execution.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ch {

/** Exception thrown by fatal(): a user-caused, recoverable-by-caller error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
appendAll(std::ostringstream&)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream& os, const T& v, const Rest&... rest)
{
    os << v;
    appendAll(os, rest...);
}

} // namespace detail

/** Build a message string from a list of streamable parts. */
template <typename... Parts>
std::string
concat(const Parts&... parts)
{
    std::ostringstream os;
    detail::appendAll(os, parts...);
    return os.str();
}

/** Report an unrecoverable condition caused by user input. */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts&... parts)
{
    throw FatalError(concat(parts...));
}

/** Report a broken internal invariant (a bug in this library). */
template <typename... Parts>
[[noreturn]] void
panic(const Parts&... parts)
{
    throw PanicError(concat(parts...));
}

/** Print a warning that does not stop execution. */
template <typename... Parts>
void
warn(const Parts&... parts)
{
    std::fprintf(stderr, "warn: %s\n", concat(parts...).c_str());
}

/** Print an informational status message. */
template <typename... Parts>
void
inform(const Parts&... parts)
{
    std::fprintf(stderr, "info: %s\n", concat(parts...).c_str());
}

} // namespace ch

/** Assert an internal invariant; active in all build types. */
#define CH_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::ch::panic("assertion failed: ", #cond, " at ", __FILE__, ":", \
                        __LINE__, " ", ::ch::concat(__VA_ARGS__));           \
        }                                                                    \
    } while (0)

/**
 * Debug-only assert for per-access hot paths (memory reads/writes, op
 * decode): checked in default and sanitizer builds, compiled out under
 * NDEBUG so Release sweeps do not pay a branch per access.
 */
#ifdef NDEBUG
#define CH_DASSERT(cond, ...) \
    do {                      \
    } while (0)
#else
#define CH_DASSERT(cond, ...) CH_ASSERT(cond, __VA_ARGS__)
#endif

#endif // CH_COMMON_LOGGING_H
