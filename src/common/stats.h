#ifndef CH_COMMON_STATS_H
#define CH_COMMON_STATS_H

/**
 * @file
 * Lightweight named-counter registry, in the spirit of the gem5 stats
 * package. Models register Counter objects with a StatGroup; the harness
 * dumps them by name. Counters are plain uint64_t underneath, so hot-path
 * increments stay cheap.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"

namespace ch {

/** A single named statistic. */
class Counter
{
  public:
    Counter() = default;

    void operator+=(uint64_t delta) { value_ += delta; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** A collection of named counters owned by one model instance. */
class StatGroup
{
  public:
    /** Register (or fetch an existing) counter under @p name. */
    Counter&
    counter(const std::string& name)
    {
        return counters_[name];
    }

    /** Read-only lookup; returns 0 for counters never touched. */
    uint64_t
    value(const std::string& name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** All counters, sorted by name for stable output. */
    std::vector<std::pair<std::string, uint64_t>>
    dump() const
    {
        std::vector<std::pair<std::string, uint64_t>> out;
        out.reserve(counters_.size());
        for (const auto& [name, c] : counters_)
            out.emplace_back(name, c.value());
        return out;
    }

    void
    reset()
    {
        for (auto& [name, c] : counters_)
            c.reset();
    }

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace ch

#endif // CH_COMMON_STATS_H
