#ifndef CH_COMMON_STRUTIL_H
#define CH_COMMON_STRUTIL_H

/**
 * @file
 * Small string helpers used by the assemblers and the MiniC front end.
 */

#include <string>
#include <string_view>
#include <vector>

namespace ch {

/** Strip leading and trailing whitespace. */
inline std::string_view
trim(std::string_view s)
{
    const char* ws = " \t\r\n";
    auto b = s.find_first_not_of(ws);
    if (b == std::string_view::npos)
        return {};
    auto e = s.find_last_not_of(ws);
    return s.substr(b, e - b + 1);
}

/** Split @p s on @p sep, trimming each piece; empty pieces are kept. */
inline std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(trim(s.substr(start)));
            break;
        }
        out.emplace_back(trim(s.substr(start, pos - start)));
        start = pos + 1;
    }
    return out;
}

/** True when @p s starts with @p prefix. */
inline bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.substr(0, prefix.size()) == prefix;
}

/** True when @p s ends with @p suffix. */
inline bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

} // namespace ch

#endif // CH_COMMON_STRUTIL_H
