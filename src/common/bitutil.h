#ifndef CH_COMMON_BITUTIL_H
#define CH_COMMON_BITUTIL_H

/**
 * @file
 * Bit-manipulation helpers shared by the encoders, decoders, and the
 * microarchitectural models.
 */

#include <cstdint>

#include "common/logging.h"

namespace ch {

/** Extract bits [hi:lo] (inclusive) of a 64-bit value. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & ((hi - lo >= 63) ? ~0ull : ((1ull << (hi - lo + 1)) - 1));
}

/** Extract a single bit. */
constexpr uint64_t
bit(uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ull;
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    const uint64_t m = 1ull << (width - 1);
    value &= (width >= 64) ? ~0ull : ((1ull << width) - 1);
    return static_cast<int64_t>((value ^ m) - m);
}

/** True when @p value fits in a signed immediate of @p width bits. */
constexpr bool
fitsSigned(int64_t value, unsigned width)
{
    const int64_t lo = -(1ll << (width - 1));
    const int64_t hi = (1ll << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** True when @p value fits in an unsigned immediate of @p width bits. */
constexpr bool
fitsUnsigned(uint64_t value, unsigned width)
{
    return width >= 64 || value < (1ull << width);
}

/** Insert @p value into bits [hi:lo] of @p word (value must fit). */
constexpr uint32_t
insertBits(uint32_t word, unsigned hi, unsigned lo, uint32_t value)
{
    const uint32_t mask = ((hi - lo + 1 >= 32) ? ~0u : ((1u << (hi - lo + 1)) - 1));
    return (word & ~(mask << lo)) | ((value & mask) << lo);
}

/** Integer log2 rounded down; value must be nonzero. */
constexpr unsigned
floorLog2(uint64_t value)
{
    unsigned r = 0;
    while (value >>= 1)
        ++r;
    return r;
}

/** Integer log2 rounded up; value must be nonzero. */
constexpr unsigned
ceilLog2(uint64_t value)
{
    return (value <= 1) ? 0 : floorLog2(value - 1) + 1;
}

/** True when @p value is a power of two (and nonzero). */
constexpr bool
isPowerOf2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace ch

#endif // CH_COMMON_BITUTIL_H
