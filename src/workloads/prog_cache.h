#ifndef CH_WORKLOADS_PROG_CACHE_H
#define CH_WORKLOADS_PROG_CACHE_H

/**
 * @file
 * Thread-safe compile-once cache of (workload, ISA) -> Program. The sweep
 * runner shares one process-wide instance across all worker threads, so a
 * 75-job sweep compiles each of the 15 programs exactly once no matter
 * how jobs are scheduled. Distinct pairs compile concurrently; threads
 * requesting a pair already being compiled block until it is ready.
 *
 * Returned Program references stay valid for the cache's lifetime (the
 * process, for programCache()).
 */

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "isa/isa.h"
#include "mem/program.h"

namespace ch {

/** Compile-once, process-shareable program cache. */
class CompiledProgramCache
{
  public:
    /**
     * Fetch the compiled image of @p workload for @p isa, compiling on
     * first request. Safe to call from any thread.
     */
    const Program& get(const std::string& workload, Isa isa);

    /** Number of compilations actually performed (not lookups). */
    uint64_t compileCount() const { return compiles_.load(); }

    /** Number of get() calls served. */
    uint64_t lookupCount() const { return lookups_.load(); }

  private:
    struct Entry {
        std::once_flag once;
        Program prog;
    };

    std::mutex mutex_;
    std::map<std::pair<std::string, int>, std::unique_ptr<Entry>> entries_;
    std::atomic<uint64_t> compiles_{0};
    std::atomic<uint64_t> lookups_{0};
};

/** The process-wide cache shared by the runner and compiledWorkload(). */
CompiledProgramCache& programCache();

} // namespace ch

#endif // CH_WORKLOADS_PROG_CACHE_H
