#include "workloads/prog_cache.h"

#include "backend/backend.h"
#include "workloads/workloads.h"

namespace ch {

const Program&
CompiledProgramCache::get(const std::string& name, Isa isa)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    Entry* entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& slot = entries_[{name, static_cast<int>(isa)}];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }
    // Magic of call_once: concurrent first requests for the same pair
    // elect one compiler thread and park the rest; a throwing compile
    // releases the flag so a later request can retry.
    std::call_once(entry->once, [&] {
        entry->prog = compileMiniC(workload(name).source, isa);
        compiles_.fetch_add(1, std::memory_order_relaxed);
    });
    return entry->prog;
}

CompiledProgramCache&
programCache()
{
    static CompiledProgramCache cache;
    return cache;
}

} // namespace ch
