#include "workloads/workloads.h"

#include "common/logging.h"
#include "workloads/prog_cache.h"

namespace ch {

namespace {

/** Shared MiniC runtime helpers appended to every workload. */
const char* kPrelude = R"(
void print_long(long v) {
    char buf[24];
    long i = 0;
    if (v < 0) { putchar('-'); v = -v; }
    if (v == 0) { putchar('0'); return; }
    while (v > 0) { buf[i] = '0' + (char)(v % 10); i = i + 1; v = v / 10; }
    while (i > 0) { i = i - 1; putchar(buf[i]); }
}
void print_nl() { putchar(10); }
)";

// =====================================================================
// coremark: linked-list manipulation + integer matrix work + a CRC state
// machine, the three CoreMark kernels.
// =====================================================================
const char* kCoremark = R"(
struct Node { long value; long idx; };

struct Node pool[96];
long order[96];
long matA[12][12];
long matB[12][12];
long matC[12][12];
long seedState = 13;

long rnd() {
    seedState = (seedState * 1103515245 + 12345) & 0x7fffffff;
    return seedState;
}

long crc16(long data, long crc) {
    long i;
    for (i = 0; i < 16; i = i + 1) {
        long bit = (data >> i) & 1;
        long c = crc & 1;
        crc = crc >> 1;
        if (bit != c) crc = crc ^ 0xa001;
    }
    return crc & 0xffff;
}

long listBench(long n) {
    long i;
    for (i = 0; i < n; i = i + 1) {
        pool[i].value = rnd() % 1000;
        pool[i].idx = i;
        order[i] = i;
    }
    // selection sort over the index array (list reordering).
    for (i = 0; i < n - 1; i = i + 1) {
        long best = i;
        long j;
        for (j = i + 1; j < n; j = j + 1) {
            if (pool[order[j]].value < pool[order[best]].value) best = j;
        }
        long t = order[i]; order[i] = order[best]; order[best] = t;
    }
    long sum = 0;
    for (i = 0; i < n; i = i + 1)
        sum = sum + pool[order[i]].value * (i + 1);
    return sum;
}

long matBench(long n) {
    long i, j, k;
    for (i = 0; i < n; i = i + 1)
        for (j = 0; j < n; j = j + 1) {
            matA[i][j] = (rnd() % 64) - 32;
            matB[i][j] = (rnd() % 64) - 32;
        }
    for (i = 0; i < n; i = i + 1)
        for (j = 0; j < n; j = j + 1) {
            long acc = 0;
            for (k = 0; k < n; k = k + 1)
                acc = acc + matA[i][k] * matB[k][j];
            matC[i][j] = acc;
        }
    long sum = 0;
    for (i = 0; i < n; i = i + 1)
        sum = sum + matC[i][(i * 7) % n];
    return sum;
}

long stateBench(long steps) {
    long state = 0;
    long count = 0;
    long i;
    for (i = 0; i < steps; i = i + 1) {
        long c = rnd() % 16;
        if (state == 0) {
            if (c < 4) state = 1;
            else if (c < 8) state = 2;
            else state = 0;
        } else if (state == 1) {
            if (c % 3 == 0) state = 2;
            else if (c > 12) state = 3;
        } else if (state == 2) {
            state = (c & 1) ? 3 : 0;
            count = count + 1;
        } else {
            if (c == 7) state = 0;
            count = count + 2;
        }
    }
    return count + state;
}

int main() {
    long crc = 0xffff;
    long iter;
    for (iter = 0; iter < 25; iter = iter + 1) {
        crc = crc16(listBench(96), crc);
        crc = crc16(matBench(12), crc);
        crc = crc16(stateBench(400), crc);
    }
    print_long(crc); print_nl();
    return (int)(crc & 0x7f);
}
)";

// =====================================================================
// bzip2: run-length coding + move-to-front + an order-0 size estimate,
// then a full decode and round-trip comparison (byte-granular work).
// =====================================================================
const char* kBzip2 = R"(
char input[6144];
char rle[12288];
char mtf[12288];
char derle[12288];
long freq[256];
long mtfTable[256];
long seedState = 777;

long rnd() {
    seedState = (seedState * 1103515245 + 12345) & 0x7fffffff;
    return seedState;
}

long genInput(long n) {
    long pos = 0;
    while (pos < n) {
        long v = rnd() % 24;
        long runlen = 1 + rnd() % 9;
        if (rnd() % 4 == 0) runlen = runlen + 12;
        long i;
        for (i = 0; i < runlen && pos < n; i = i + 1) {
            input[pos] = (char)(v + 'a');
            pos = pos + 1;
        }
    }
    return n;
}

long rleEncode(long n) {
    long out = 0;
    long pos = 0;
    while (pos < n) {
        long run = 1;
        while (pos + run < n && input[pos + run] == input[pos] && run < 255)
            run = run + 1;
        if (run >= 4) {
            long k;
            for (k = 0; k < 4; k = k + 1) { rle[out] = input[pos]; out = out + 1; }
            rle[out] = (char)(run - 4); out = out + 1;
        } else {
            long k;
            for (k = 0; k < run; k = k + 1) { rle[out] = input[pos]; out = out + 1; }
        }
        pos = pos + run;
    }
    return out;
}

long rleDecode(long n) {
    long out = 0;
    long pos = 0;
    while (pos < n) {
        char c = rle[pos];
        long run = 1;
        while (pos + run < n && rle[pos + run] == c && run < 4)
            run = run + 1;
        if (run == 4) {
            long extra = rle[pos + 4];
            long k;
            for (k = 0; k < 4 + extra; k = k + 1) { derle[out] = c; out = out + 1; }
            pos = pos + 5;
        } else {
            long k;
            for (k = 0; k < run; k = k + 1) { derle[out] = c; out = out + 1; }
            pos = pos + run;
        }
    }
    return out;
}

long mtfEncode(long n) {
    long i;
    for (i = 0; i < 256; i = i + 1) mtfTable[i] = i;
    for (i = 0; i < n; i = i + 1) {
        long sym = rle[i] & 0xff;
        long j = 0;
        while (mtfTable[j] != sym) j = j + 1;
        mtf[i] = (char)j;
        while (j > 0) { mtfTable[j] = mtfTable[j - 1]; j = j - 1; }
        mtfTable[0] = sym;
    }
    return n;
}

long entropyBits(long n) {
    long i;
    for (i = 0; i < 256; i = i + 1) freq[i] = 0;
    for (i = 0; i < n; i = i + 1) freq[mtf[i] & 0xff] = freq[mtf[i] & 0xff] + 1;
    // staircase code-length estimate: len = floor(log2(n/freq)) + 1
    long bits = 0;
    for (i = 0; i < 256; i = i + 1) {
        if (freq[i] == 0) continue;
        long ratio = n / freq[i];
        long len = 1;
        while (ratio > 1) { ratio = ratio >> 1; len = len + 1; }
        bits = bits + freq[i] * len;
    }
    return bits;
}

int main() {
    long total = 0;
    long block;
    for (block = 0; block < 4; block = block + 1) {
        long n = genInput(6144);
        long rleLen = rleEncode(n);
        mtfEncode(rleLen);
        total = total + entropyBits(rleLen);
        long back = rleDecode(rleLen);
        if (back != n) { print_long(-1); print_nl(); return 255; }
        long i;
        for (i = 0; i < n; i = i + 1) {
            if (derle[i] != input[i]) { print_long(-2); print_nl(); return 254; }
        }
    }
    print_long(total); print_nl();
    return (int)(total & 0x7f);
}
)";

// =====================================================================
// mcf: successive Bellman-Ford sweeps over an arc-struct network with a
// per-arc relax function -- call-heavy with pointer-chasing loads, like
// 605.mcf_s.
// =====================================================================
const char* kMcf = R"(
struct Arc { long from; long to; long cost; long cap; long flow; };

struct Arc arcs[520];
long dist[80];
long pre[80];
long seedState = 4242;
long numNodes = 80;
long numArcs = 520;

long rnd() {
    seedState = (seedState * 1103515245 + 12345) & 0x7fffffff;
    return seedState;
}

long relax(long du, long w, long dv) {
    if (du + w < dv) return du + w;
    return dv;
}

void buildGraph() {
    long i;
    for (i = 0; i < numNodes - 1; i = i + 1) {
        arcs[i].from = i;
        arcs[i].to = i + 1;
        arcs[i].cost = 1 + rnd() % 9;
        arcs[i].cap = 3 + rnd() % 5;
        arcs[i].flow = 0;
    }
    for (i = numNodes - 1; i < numArcs; i = i + 1) {
        arcs[i].from = rnd() % numNodes;
        arcs[i].to = rnd() % numNodes;
        arcs[i].cost = 1 + rnd() % 20;
        arcs[i].cap = 1 + rnd() % 7;
        arcs[i].flow = 0;
    }
}

long bellmanFord(long src) {
    long i;
    for (i = 0; i < numNodes; i = i + 1) { dist[i] = 1 << 30; pre[i] = -1; }
    dist[src] = 0;
    long round;
    for (round = 0; round < numNodes; round = round + 1) {
        long changed = 0;
        for (i = 0; i < numArcs; i = i + 1) {
            struct Arc* a = &arcs[i];
            if (a->flow >= a->cap) continue;
            long nd = relax(dist[a->from], a->cost, dist[a->to]);
            if (nd < dist[a->to]) {
                dist[a->to] = nd;
                pre[a->to] = i;
                changed = 1;
            }
        }
        if (!changed) break;
    }
    return dist[numNodes - 1];
}

long augment() {
    // push one unit along the predecessor chain.
    long node = numNodes - 1;
    long pushed = 0;
    while (pre[node] >= 0) {
        struct Arc* a = &arcs[pre[node]];
        a->flow = a->flow + 1;
        node = a->from;
        pushed = pushed + a->cost;
        if (node == 0) break;
    }
    return pushed;
}

int main() {
    buildGraph();
    long total = 0;
    long it;
    for (it = 0; it < 45; it = it + 1) {
        long d = bellmanFord(0);
        if (d >= (1 << 30)) {
            // saturated: relax capacities and keep going.
            long i;
            for (i = 0; i < numArcs; i = i + 1)
                arcs[i].flow = 0;
            d = bellmanFord(0);
        }
        total = total + d + augment();
        // perturb one arc cost to vary the next round.
        arcs[rnd() % numArcs].cost = 1 + rnd() % 20;
    }
    print_long(total); print_nl();
    return (int)(total & 0x7f);
}
)";

// =====================================================================
// lbm: a D2Q9 lattice-Boltzmann kernel over a small channel with an
// obstacle: double-precision stencils with long-lived weight constants,
// like 619.lbm_s.
// =====================================================================
const char* kLbm = R"(
double fcur[9][784];
double fnew[9][784];
long obstacle[784];
long cxs[9] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
long cys[9] = {0, 0, 1, 0, -1, 1, 1, -1, -1};
double weights[9] = {0.444444444444, 0.111111111111, 0.111111111111,
                     0.111111111111, 0.111111111111, 0.027777777778,
                     0.027777777778, 0.027777777778, 0.027777777778};
long nx = 20;
long ny = 20;

int main() {
    long x, y, k;
    // init: uniform density with a rightward drift; a block obstacle.
    for (y = 0; y < ny; y = y + 1) {
        for (x = 0; x < nx; x = x + 1) {
            long cell = y * nx + x;
            obstacle[cell] = 0;
            if (x >= 8 && x < 11 && y >= 7 && y < 13) obstacle[cell] = 1;
            for (k = 0; k < 9; k = k + 1) {
                double base = weights[k];
                fcur[k][cell] = base * (1.0 + 0.05 * (double)cxs[k]);
            }
        }
    }

    double omega = 1.85;
    long step;
    for (step = 0; step < 10; step = step + 1) {
        // collision
        for (y = 0; y < ny; y = y + 1) {
            for (x = 0; x < nx; x = x + 1) {
                long cell = y * nx + x;
                if (obstacle[cell]) continue;
                double rho = 0.0;
                double ux = 0.0;
                double uy = 0.0;
                for (k = 0; k < 9; k = k + 1) {
                    double fk = fcur[k][cell];
                    rho = rho + fk;
                    ux = ux + fk * (double)cxs[k];
                    uy = uy + fk * (double)cys[k];
                }
                ux = ux / rho;
                uy = uy / rho;
                double usq = ux * ux + uy * uy;
                for (k = 0; k < 9; k = k + 1) {
                    double cu = (double)cxs[k] * ux + (double)cys[k] * uy;
                    double feq = weights[k] * rho *
                        (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq);
                    fcur[k][cell] = fcur[k][cell] +
                        omega * (feq - fcur[k][cell]);
                }
            }
        }
        // streaming with bounce-back at obstacles and walls
        for (y = 0; y < ny; y = y + 1) {
            for (x = 0; x < nx; x = x + 1) {
                long cell = y * nx + x;
                for (k = 0; k < 9; k = k + 1) {
                    long tx = x + cxs[k];
                    long ty = y + cys[k];
                    if (tx < 0) tx = nx - 1;
                    if (tx >= nx) tx = 0;
                    if (ty < 0) ty = ny - 1;
                    if (ty >= ny) ty = 0;
                    long target = ty * nx + tx;
                    if (obstacle[target]) {
                        long opp;
                        if (k == 0) opp = 0;
                        else if (k <= 4) opp = ((k - 1 + 2) % 4) + 1;
                        else opp = ((k - 5 + 2) % 4) + 5;
                        fnew[opp][cell] = fcur[k][cell];
                    } else {
                        fnew[k][target] = fcur[k][cell];
                    }
                }
            }
        }
        // swap by copy
        for (k = 0; k < 9; k = k + 1) {
            for (y = 0; y < ny * nx; y = y + 1)
                fcur[k][y] = fnew[k][y];
        }
    }

    // mass conservation checksum
    double mass = 0.0;
    for (k = 0; k < 9; k = k + 1)
        for (y = 0; y < ny * nx; y = y + 1)
            mass = mass + fcur[k][y];
    long scaled = (long)(mass * 1000.0);
    print_long(scaled); print_nl();
    return (int)(scaled & 0x7f);
}
)";

// =====================================================================
// xz: LZ77 with hash-chain match finding over synthetic text plus a
// round-trip decode -- integer-ALU saturation like 657.xz_s.
// =====================================================================
const char* kXz = R"(
char text[10240];
char decoded[10240];
long tokenKind[4096];
long tokenA[4096];
long tokenB[4096];
long hashHead[4096];
long hashPrev[10240];
long seedState = 999331;

long rnd() {
    seedState = (seedState * 1103515245 + 12345) & 0x7fffffff;
    return seedState;
}

char dict[64] = "the quick brown fox jumps over lazy dogs and cats run ";

void genText(long n) {
    long pos = 0;
    while (pos < n) {
        long start = rnd() % 40;
        long len = 3 + rnd() % 12;
        long i;
        for (i = 0; i < len && pos < n; i = i + 1) {
            text[pos] = dict[(start + i) % 55];
            pos = pos + 1;
        }
    }
}

long hash3(long pos) {
    long h = (text[pos] & 0xff) * 506832829;
    h = h + (text[pos + 1] & 0xff) * 2654435761;
    h = h + (text[pos + 2] & 0xff) * 2246822519;
    return (h >> 8) & 4095;
}

int main() {
    long n = 10240;
    genText(n);
    long i;
    for (i = 0; i < 4096; i = i + 1) hashHead[i] = -1;

    long ntok = 0;
    long pos = 0;
    long checksum = 0;
    while (pos < n) {
        long bestLen = 0;
        long bestDist = 0;
        if (pos + 3 <= n) {
            long h = hash3(pos);
            long cand = hashHead[h];
            long tries = 0;
            while (cand >= 0 && tries < 24) {
                long len = 0;
                while (pos + len < n && len < 96 &&
                       text[cand + len] == text[pos + len])
                    len = len + 1;
                if (len > bestLen) { bestLen = len; bestDist = pos - cand; }
                cand = hashPrev[cand];
                tries = tries + 1;
            }
        }
        if (bestLen >= 4) {
            tokenKind[ntok] = 1;
            tokenA[ntok] = bestLen;
            tokenB[ntok] = bestDist;
            ntok = ntok + 1;
            checksum = (checksum * 131 + bestLen * 7 + bestDist) & 0xffffff;
            long k;
            for (k = 0; k < bestLen; k = k + 1) {
                if (pos + 2 < n) {
                    long h2 = hash3(pos);
                    hashPrev[pos] = hashHead[h2];
                    hashHead[h2] = pos;
                }
                pos = pos + 1;
            }
        } else {
            tokenKind[ntok] = 0;
            tokenA[ntok] = text[pos] & 0xff;
            tokenB[ntok] = 0;
            ntok = ntok + 1;
            checksum = (checksum * 131 + (text[pos] & 0xff)) & 0xffffff;
            if (pos + 2 < n) {
                long h2 = hash3(pos);
                hashPrev[pos] = hashHead[h2];
                hashHead[h2] = pos;
            }
            pos = pos + 1;
        }
        if (ntok >= 4096) break;
    }

    // decode and verify the round trip
    long out = 0;
    for (i = 0; i < ntok; i = i + 1) {
        if (tokenKind[i] == 0) {
            decoded[out] = (char)tokenA[i];
            out = out + 1;
        } else {
            long k;
            for (k = 0; k < tokenA[i]; k = k + 1) {
                decoded[out] = decoded[out - tokenB[i]];
                out = out + 1;
            }
        }
    }
    if (out != pos) { print_long(-1); print_nl(); return 255; }
    for (i = 0; i < out; i = i + 1) {
        if (decoded[i] != text[i]) { print_long(-2); print_nl(); return 254; }
    }
    // several passes to reach a representative instruction count
    long pass;
    long agg = checksum;
    for (pass = 0; pass < 40; pass = pass + 1) {
        long redo = 0;
        for (i = 0; i < ntok; i = i + 1)
            redo = (redo * 16807 + tokenA[i] * 3 + tokenB[i]) & 0xffffff;
        agg = (agg ^ redo) + pass;
    }
    print_long(agg & 0xffffff); print_nl();
    return (int)(agg & 0x7f);
}
)";

std::vector<Workload>
buildCorpus()
{
    auto join = [](const char* body) {
        return std::string(kPrelude) + body;
    };
    return {
        {"coremark", "CoreMark: list sort + matrix + CRC state machine",
         join(kCoremark)},
        {"bzip2", "401.bzip2: RLE + MTF + entropy estimate, round-trip",
         join(kBzip2)},
        {"mcf", "605.mcf_s: Bellman-Ford flow network, call-heavy",
         join(kMcf)},
        {"lbm", "619.lbm_s: D2Q9 lattice-Boltzmann, double stencils",
         join(kLbm)},
        {"xz", "657.xz_s: LZ77 hash-chain match finder, ALU-bound",
         join(kXz)},
    };
}

} // namespace

const std::vector<Workload>&
workloads()
{
    static const std::vector<Workload> corpus = buildCorpus();
    return corpus;
}

const Workload&
workload(const std::string& name)
{
    for (const auto& w : workloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload: ", name);
}

const Program&
compiledWorkload(const std::string& name, Isa isa)
{
    return programCache().get(name, isa);
}

} // namespace ch
