#ifndef CH_WORKLOADS_WORKLOADS_H
#define CH_WORKLOADS_WORKLOADS_H

/**
 * @file
 * The benchmark corpus: five MiniC programs mirroring the kernel
 * character of the paper's evaluation set (CoreMark plus SPEC's bzip2,
 * mcf_s, lbm_s, xz_s -- see DESIGN.md for the substitution argument).
 * Every workload is deterministic and self-validating: it prints a
 * checksum and exits with a value derived from it, so the three ISA
 * builds can be differentially checked.
 */

#include <string>
#include <vector>

#include "mem/program.h"

namespace ch {

struct Workload {
    std::string name;         ///< paper benchmark it mirrors
    std::string description;
    std::string source;       ///< MiniC text (prelude already included)
};

/** The five-benchmark corpus, in the paper's order. */
const std::vector<Workload>& workloads();

/** Lookup by name; fatal() when unknown. */
const Workload& workload(const std::string& name);

/** Compile a workload for @p isa (results are memoized per process). */
const Program& compiledWorkload(const std::string& name, Isa isa);

} // namespace ch

#endif // CH_WORKLOADS_WORKLOADS_H
