#include "energy/energy_model.h"

#include <cmath>

namespace ch {

std::string_view
energyCompName(EnergyComp comp)
{
    switch (comp) {
      case EnergyComp::BrPred: return "BrPred";
      case EnergyComp::ICache: return "I$+ITLB";
      case EnergyComp::Fetcher: return "Fetcher";
      case EnergyComp::Decoder: return "Decoder";
      case EnergyComp::Renamer: return "Renamer";
      case EnergyComp::Scheduler: return "Scheduler";
      case EnergyComp::ExUnitRf: return "ExUnit+RF";
      case EnergyComp::Lsq: return "LSQ";
      case EnergyComp::Rob: return "ROB";
      case EnergyComp::DCache: return "D$+DTLB";
      case EnergyComp::L2: return "L2$";
      default: return "?";
    }
}

int
checkpointBits(Isa isa, int physRegBits)
{
    switch (isa) {
      case Isa::Riscv:
        // One mapping per logical register (63 writable).
        return 63 * physRegBits;
      case Isa::Straight:
        // One RP plus the 64-bit special SP.
        return physRegBits + 64;
      case Isa::Clockhands:
        // Four RPs.
        return kNumHands * physRegBits;
    }
    return 0;
}

namespace {

// Per-event energy coefficients (arbitrary units), calibrated once so the
// five-workload aggregate reproduces the relative pattern of the paper's
// Fig. 14 (see EXPERIMENTS.md). All structural scaling -- port counts,
// entry counts, widths -- is explicit in the formulas below; only these
// base constants were fitted, and they are identical across ISAs.
constexpr double kBrPredPerInst = 0.0375;
constexpr double kICachePerLine = 0.75;
constexpr double kFetchPerInst = 0.0375;
constexpr double kDecodePerInst = 0.05625;
// RMT: per-access energy grows as ports^kPortExp (area ~ ports^2 and
// wire energy grows with array dimensions, Weste & Harris).
constexpr double kRmtUnit = 0.00110442;
constexpr double kPortExp = 2.3591;
constexpr double kDclPairUnit = 0.0887459;
constexpr double kCheckpointBitW = 4.63712e-05;  // per bit per rename-width
constexpr double kFreelistPerInst = 0.0125;
constexpr double kRpCalcPerInst = 0.015;
constexpr double kIqWakeUnit = 0.0015;
constexpr double kIqSelect = 0.04375;
constexpr double kIqWrite = 0.0375;
constexpr double kFuOp = 0.1625;
constexpr double kRfUnit = 0.0582547;
constexpr double kLsqSearchUnit = 0.0015;
constexpr double kLsqEntry = 0.0625;
constexpr double kRobUnit = 0.0404656;
constexpr double kDCachePerAccess = 0.625;
constexpr double kL2PerAccess = 2.75;
constexpr double kMemPerMiss = 15.0;
constexpr double kAreaIq = 9.6;
constexpr double kAreaRob = 17.6;
constexpr double kAreaPrf = 0.8;
constexpr double kAreaFixed = 3250.0;
constexpr double kLeakUnit = 8.8e-06;

} // namespace

EnergyBreakdown
computeEnergy(const MachineConfig& cfg, Isa isa, const StatGroup& s)
{
    EnergyBreakdown e;
    const double w = cfg.fetchWidth;
    const double cycles = static_cast<double>(s.value("sim.cycles"));
    const double fetched = static_cast<double>(s.value("fetch.insts")) +
                           static_cast<double>(s.value("fetch.wrongPath"));
    const double dispatched =
        static_cast<double>(s.value("dispatch.insts"));
    const double branches =
        static_cast<double>(s.value("rename.checkpoints"));
    const double dstWrites =
        static_cast<double>(s.value("rename.dstWrites"));

    // --- front end -------------------------------------------------------
    e[EnergyComp::BrPred] = fetched * kBrPredPerInst;
    e[EnergyComp::ICache] =
        static_cast<double>(s.value("cache.l1i.accesses")) * kICachePerLine;
    e[EnergyComp::Fetcher] = fetched * kFetchPerInst;
    e[EnergyComp::Decoder] = fetched * kDecodePerInst;

    // --- physical register allocation (the paper's focus) ----------------
    if (isa == Isa::Riscv) {
        // RMT: 2 reads + 1 write per instruction on a (3W)-ported RAM.
        const double rmt = 3.0 * dispatched *
                           std::pow(3.0 * w, kPortExp) * kRmtUnit;
        // DCL: each instruction's two sources compare against the older
        // destinations in the rename group: ~2W comparisons each.
        const double dcl = dispatched * 2.0 * w * kDclPairUnit;
        // Checkpoint RAM: rename-state bits, W-ported for W-wide rename.
        const double ckpt =
            branches * checkpointBits(isa) * w * kCheckpointBitW;
        const double freelist = dstWrites * kFreelistPerInst;
        e[EnergyComp::Renamer] = rmt + dcl + ckpt + freelist;
    } else {
        // RP calculation: O(W) prefix-sum adders, tiny checkpoints.
        const double rp = dispatched * kRpCalcPerInst;
        const double ckpt =
            branches * checkpointBits(isa) * w * kCheckpointBitW;
        e[EnergyComp::Renamer] = rp + ckpt;
    }

    // --- back end (identical parameters for all ISAs) --------------------
    const double sqrtS = std::sqrt(static_cast<double>(cfg.schedSize));
    e[EnergyComp::Scheduler] =
        static_cast<double>(s.value("iq.wakeups")) * sqrtS * kIqWakeUnit +
        static_cast<double>(s.value("iq.issues")) * kIqSelect +
        dispatched * kIqWrite;

    const double rfPorts = cfg.issueWidth >= 16 ? 41.0 : 21.0;  // 27r+14w
    const double prfEntries = isa == Isa::Riscv
                                  ? cfg.physRegsRisc()
                                  : cfg.physRegsRenameFree();
    e[EnergyComp::ExUnitRf] =
        static_cast<double>(s.value("fu.ops")) * kFuOp +
        (static_cast<double>(s.value("rf.reads")) +
         static_cast<double>(s.value("rf.writes"))) *
            std::sqrt(rfPorts) * std::sqrt(prfEntries) * kRfUnit;

    e[EnergyComp::Lsq] =
        static_cast<double>(s.value("lsq.searches")) * cfg.storeQueue *
            kLsqSearchUnit +
        (static_cast<double>(s.value("lsq.loads")) +
         static_cast<double>(s.value("lsq.stores"))) *
            kLsqEntry;

    const double sqrtR = std::sqrt(static_cast<double>(cfg.robSize));
    e[EnergyComp::Rob] =
        (dispatched + static_cast<double>(s.value("rob.commits"))) * sqrtR *
        kRobUnit;

    e[EnergyComp::DCache] =
        (static_cast<double>(s.value("cache.l1d.reads")) +
         static_cast<double>(s.value("cache.l1d.writes"))) *
        kDCachePerAccess;
    e[EnergyComp::L2] =
        static_cast<double>(s.value("cache.l2.accesses")) * kL2PerAccess +
        static_cast<double>(s.value("cache.l2.misses")) * kMemPerMiss;

    // --- leakage: proportional to cycles and structure area --------------
    const double renameArea =
        isa == Isa::Riscv ? (3.0 * w) * (3.0 * w) * 16.0 + w * w * 4.0
                          : 8.0 * w;
    const double area = renameArea + cfg.schedSize * w * kAreaIq +
                        cfg.robSize * kAreaRob +
                        prfEntries * rfPorts * kAreaPrf + kAreaFixed;
    const double leak = cycles * area * kLeakUnit;
    // Attribute leakage proportionally to dynamic shares to keep the
    // component stack readable.
    const double dynTotal = e.total();
    if (dynTotal > 0) {
        for (int i = 0; i < static_cast<int>(EnergyComp::kCount); ++i) {
            e.comp[i] += leak * (e.comp[i] / dynTotal);
        }
    }
    return e;
}

} // namespace ch
