#ifndef CH_ENERGY_ENERGY_MODEL_H
#define CH_ENERGY_ENERGY_MODEL_H

/**
 * @file
 * McPAT-style analytic energy model. Event counts come from the timing
 * model's StatGroup; per-access energies derive from structure geometry
 * (entries, width, ports), with the quadratic port/width terms the paper
 * cites for the rename path:
 *
 *  - the RISC register map table is a RAM with ~3W ports (2 read + 1
 *    write per renamed instruction), whose area grows with ports^2 and
 *    per-access energy roughly linearly in ports;
 *  - the dependency-check logic needs O(W^2) comparators per group;
 *  - every branch checkpoints the rename state: ~570 bits for RISC,
 *    ~70 for STRAIGHT, ~36 for Clockhands (Table 1);
 *  - the STRAIGHT/Clockhands RP-calculation stage is a handful of small
 *    adders (a Brent-Kung prefix tree), O(W) area and near-constant
 *    per-instruction energy.
 *
 * Everything outside the physical-register-allocation stage uses
 * identical parameters for all three ISAs, so energy differences outside
 * the renamer come only from executed-instruction and event counts.
 * Absolute units are arbitrary (normalized in the figures).
 */

#include <array>
#include <string>

#include "common/stats.h"
#include "isa/isa.h"
#include "uarch/config.h"

namespace ch {

/** Fig. 14 component stack. */
enum class EnergyComp : int {
    BrPred, ICache, Fetcher, Decoder, Renamer, Scheduler, ExUnitRf, Lsq,
    Rob, DCache, L2, kCount
};

std::string_view energyCompName(EnergyComp comp);

/** Energy per component plus the total, in arbitrary units. */
struct EnergyBreakdown {
    std::array<double, static_cast<int>(EnergyComp::kCount)> comp{};

    double&
    operator[](EnergyComp c)
    {
        return comp[static_cast<int>(c)];
    }
    double
    at(EnergyComp c) const
    {
        return comp[static_cast<int>(c)];
    }

    double
    total() const
    {
        double t = 0;
        for (double v : comp)
            t += v;
        return t;
    }
};

/**
 * Recovery-information (checkpoint) size in bits for each architecture
 * (Table 1), assuming @p physRegBits bits per physical register number.
 */
int checkpointBits(Isa isa, int physRegBits = 9);

/** Compute the per-component energy of one simulated run. */
EnergyBreakdown computeEnergy(const MachineConfig& cfg, Isa isa,
                              const StatGroup& stats);

} // namespace ch

#endif // CH_ENERGY_ENERGY_MODEL_H
