#ifndef CH_EMU_LOCKSTEP_H
#define CH_EMU_LOCKSTEP_H

/**
 * @file
 * In-process differential harness driving the same Program through both
 * execution engines (EmuEngine::Switch as oracle, EmuEngine::Threaded as
 * candidate) and comparing every architecturally observable effect:
 *
 *  - the full DynInst stream, field by field (pc, op, operands, dynamic
 *    producers, effective address, memory value, next PC, branch
 *    outcome) — this covers every memory write and branch resolution,
 *  - the register model (RISC registers, STRAIGHT ring + SP, Clockhands
 *    hand windows) at every chunk boundary,
 *  - the output byte stream, exit status, PC, and instruction count.
 *
 * Used by tests/lockstep_test.cc (label: lockstep-emu) over the full
 * workload corpus and by tests/fuzz_test.cc (label: fuzz) over random
 * VerifierFuzz programs; see docs/EMULATOR.md.
 */

#include <cstdint>
#include <string>

#include "emu/emulator.h"
#include "mem/program.h"

namespace ch {

/** Outcome of a lockstep comparison run. */
struct LockstepReport {
    bool ok = true;
    bool done = false;          ///< both engines ran the program to exit
    uint64_t instsCompared = 0; ///< DynInst records compared field-by-field

    /**
     * First divergence, human-readable: which field differs, at which
     * dynamic sequence number, with both engines' values. Empty when ok.
     */
    std::string divergence;
};

/**
 * Runs one program on two Emulator instances — reference switch engine
 * and threaded engine — in chunks, comparing state after every chunk and
 * the trace stream instruction by instruction. Stops at the first
 * divergence.
 */
class DualEngineRunner
{
  public:
    /** @p chunk = instructions per comparison window. */
    explicit DualEngineRunner(const Program& prog, uint64_t chunk = 4096);

    /**
     * Advance both engines by up to @p maxInsts instructions (rounded
     * down to whole chunks, plus any final partial chunk) or until the
     * program exits or a divergence is found.
     */
    LockstepReport run(uint64_t maxInsts);

    const Emulator& switchEmu() const { return oracle_; }
    const Emulator& threadedEmu() const { return candidate_; }

  private:
    const Program& prog_;
    uint64_t chunk_;
    Emulator oracle_;
    Emulator candidate_;
};

} // namespace ch

#endif // CH_EMU_LOCKSTEP_H
