#ifndef CH_EMU_EXEC_INLINE_H
#define CH_EMU_EXEC_INLINE_H

/**
 * @file
 * Shared value semantics of the micro-op vocabulary: ALU results,
 * division/NaN edge cases, and conditional-branch predicates. Both
 * emulator engines — the reference switch interpreter and the
 * predecoded threaded-code engine — include this header, so their
 * results are bit-identical by construction: when the op is a
 * compile-time constant (the threaded engine's templated handlers) the
 * switches below fold to the single selected case.
 */

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/logging.h"
#include "isa/op.h"

namespace ch {
namespace emu {

inline uint64_t
sext32(uint64_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(v)));
}

inline double
asD(uint64_t v)
{
    return std::bit_cast<double>(v);
}

inline uint64_t
asU(double v)
{
    return std::bit_cast<uint64_t>(v);
}

inline int64_t
fcvtLD(double d)
{
    if (std::isnan(d))
        return 0;
    if (d >= 9.2233720368547758e18)
        return std::numeric_limits<int64_t>::max();
    if (d <= -9.2233720368547758e18)
        return std::numeric_limits<int64_t>::min();
    return static_cast<int64_t>(d);
}

inline int64_t
sdiv(int64_t a, int64_t b)
{
    if (b == 0)
        return -1;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return a;
    return a / b;
}

inline int64_t
srem(int64_t a, int64_t b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return 0;
    return a % b;
}

inline int32_t
sdiv32(int32_t a, int32_t b)
{
    if (b == 0)
        return -1;
    if (a == std::numeric_limits<int32_t>::min() && b == -1)
        return a;
    return a / b;
}

inline int32_t
srem32(int32_t a, int32_t b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<int32_t>::min() && b == -1)
        return 0;
    return a % b;
}

inline constexpr uint64_t kSignBit = 0x8000000000000000ull;

/**
 * Compute a non-memory, non-branch result value. Forced inline: the
 * threaded engine's handlers pass a compile-time-constant op and rely
 * on the switch folding to the one selected case; without the
 * attribute the inliner sees only the pre-fold size and emits an
 * out-of-line call, putting the full opcode switch back on the hot
 * path.
 */
[[gnu::always_inline]] inline uint64_t
aluResult(Op op, uint64_t a, uint64_t b, int64_t imm, uint64_t pc)
{
    const auto sa = static_cast<int64_t>(a);
    const auto sb = static_cast<int64_t>(b);
    switch (op) {
      case Op::ADD: return a + b;
      case Op::SUB: return a - b;
      case Op::SLL: return a << (b & 63);
      case Op::SLT: return sa < sb;
      case Op::SLTU: return a < b;
      case Op::XOR: return a ^ b;
      case Op::SRL: return a >> (b & 63);
      case Op::SRA: return static_cast<uint64_t>(sa >> (b & 63));
      case Op::OR: return a | b;
      case Op::AND: return a & b;
      case Op::ADDW: return sext32(a + b);
      case Op::SUBW: return sext32(a - b);
      case Op::SLLW: return sext32(static_cast<uint32_t>(a) << (b & 31));
      case Op::SRLW: return sext32(static_cast<uint32_t>(a) >> (b & 31));
      case Op::SRAW:
        return sext32(
            static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31)));
      case Op::MUL: return a * b;
      case Op::MULH:
        return static_cast<uint64_t>(
            (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64);
      case Op::MULHU:
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(a) *
             static_cast<unsigned __int128>(b)) >> 64);
      case Op::DIV: return static_cast<uint64_t>(sdiv(sa, sb));
      case Op::DIVU: return b == 0 ? ~0ull : a / b;
      case Op::REM: return static_cast<uint64_t>(srem(sa, sb));
      case Op::REMU: return b == 0 ? a : a % b;
      case Op::MULW: return sext32(a * b);
      case Op::DIVW:
        return sext32(static_cast<uint32_t>(
            sdiv32(static_cast<int32_t>(a), static_cast<int32_t>(b))));
      case Op::DIVUW: {
        const auto ua = static_cast<uint32_t>(a);
        const auto ub = static_cast<uint32_t>(b);
        return sext32(ub == 0 ? ~0u : ua / ub);
      }
      case Op::REMW:
        return sext32(static_cast<uint32_t>(
            srem32(static_cast<int32_t>(a), static_cast<int32_t>(b))));
      case Op::REMUW: {
        const auto ua = static_cast<uint32_t>(a);
        const auto ub = static_cast<uint32_t>(b);
        return sext32(ub == 0 ? ua : ua % ub);
      }
      case Op::ADDI: return a + static_cast<uint64_t>(imm);
      case Op::SLTI: return sa < imm;
      case Op::SLTIU: return a < static_cast<uint64_t>(imm);
      case Op::XORI: return a ^ static_cast<uint64_t>(imm);
      case Op::ORI: return a | static_cast<uint64_t>(imm);
      case Op::ANDI: return a & static_cast<uint64_t>(imm);
      case Op::SLLI: return a << (imm & 63);
      case Op::SRLI: return a >> (imm & 63);
      case Op::SRAI: return static_cast<uint64_t>(sa >> (imm & 63));
      case Op::ADDIW: return sext32(a + static_cast<uint64_t>(imm));
      case Op::SLLIW: return sext32(static_cast<uint32_t>(a) << (imm & 31));
      case Op::SRLIW: return sext32(static_cast<uint32_t>(a) >> (imm & 31));
      case Op::SRAIW:
        return sext32(
            static_cast<uint32_t>(static_cast<int32_t>(a) >> (imm & 31)));
      case Op::LUI:
        return sext32(static_cast<uint64_t>(imm) << 12);
      case Op::MV: return a;
      case Op::FMV_D: return a;
      case Op::FMV_X_D: return a;
      case Op::FMV_D_X: return a;
      case Op::FADD_D: return asU(asD(a) + asD(b));
      case Op::FSUB_D: return asU(asD(a) - asD(b));
      case Op::FMUL_D: return asU(asD(a) * asD(b));
      case Op::FDIV_D: return asU(asD(a) / asD(b));
      case Op::FSQRT_D: return asU(std::sqrt(asD(a)));
      case Op::FMIN_D: return asU(std::fmin(asD(a), asD(b)));
      case Op::FMAX_D: return asU(std::fmax(asD(a), asD(b)));
      case Op::FSGNJ_D: return (a & ~kSignBit) | (b & kSignBit);
      case Op::FSGNJN_D: return (a & ~kSignBit) | (~b & kSignBit);
      case Op::FSGNJX_D: return a ^ (b & kSignBit);
      case Op::FEQ_D: return asD(a) == asD(b);
      case Op::FLT_D: return asD(a) < asD(b);
      case Op::FLE_D: return asD(a) <= asD(b);
      case Op::FCVT_D_L: return asU(static_cast<double>(sa));
      case Op::FCVT_L_D: return static_cast<uint64_t>(fcvtLD(asD(a)));
      case Op::JAL:
      case Op::JALR:
        return pc + 4;
      case Op::NOP:
        return 0;
      default:
        panic("aluResult: unhandled op ", opName(op));
    }
}

[[gnu::always_inline]] inline bool
branchTaken(Op op, uint64_t a, uint64_t b)
{
    const auto sa = static_cast<int64_t>(a);
    const auto sb = static_cast<int64_t>(b);
    switch (op) {
      case Op::BEQ: return a == b;
      case Op::BNE: return a != b;
      case Op::BLT: return sa < sb;
      case Op::BGE: return sa >= sb;
      case Op::BLTU: return a < b;
      case Op::BGEU: return a >= b;
      default: panic("not a conditional branch");
    }
}

} // namespace emu
} // namespace ch

#endif // CH_EMU_EXEC_INLINE_H
