#include "emu/lockstep.h"

#include <sstream>
#include <vector>

#include "isa/isa.h"
#include "trace/dyninst.h"

namespace ch {

namespace {

/** Buffers one chunk's DynInst stream for field-by-field comparison. */
class RecordSink : public TraceSink
{
  public:
    void onInst(const DynInst& di) override { insts_.push_back(di); }
    void clear() { insts_.clear(); }
    const std::vector<DynInst>& insts() const { return insts_; }

  private:
    std::vector<DynInst> insts_;
};

template <typename T>
bool
check(std::string& out, uint64_t seq, const char* what, T a, T b)
{
    if (a == b)
        return true;
    std::ostringstream os;
    os << "inst #" << seq << ": " << what << " diverges: switch=" << +a
       << " threaded=" << +b;
    out = os.str();
    return false;
}

bool
check(std::string& out, uint64_t seq, const char* what,
      const std::string& a, const std::string& b)
{
    if (a == b)
        return true;
    std::ostringstream os;
    os << "inst #" << seq << ": " << what << " diverges: switch produced "
       << a.size() << " bytes, threaded " << b.size()
       << " (first mismatch at byte "
       << [&] {
              size_t i = 0;
              while (i < a.size() && i < b.size() && a[i] == b[i])
                  ++i;
              return i;
          }()
       << ")";
    out = os.str();
    return false;
}

/** Compare every field of two DynInst records; fills @p out on mismatch. */
bool
compareInst(std::string& out, const DynInst& a, const DynInst& b)
{
    return check(out, a.seq, "seq", a.seq, b.seq) &&
           check(out, a.seq, "pc", a.pc, b.pc) &&
           check(out, a.seq, "op", static_cast<int>(a.op),
                 static_cast<int>(b.op)) &&
           check(out, a.seq, "dst", a.dst, b.dst) &&
           check(out, a.seq, "src1", a.src1, b.src1) &&
           check(out, a.seq, "src2", a.src2, b.src2) &&
           check(out, a.seq, "src1Hand", a.src1Hand, b.src1Hand) &&
           check(out, a.seq, "src2Hand", a.src2Hand, b.src2Hand) &&
           check(out, a.seq, "imm", a.imm, b.imm) &&
           check(out, a.seq, "prod1", a.prod1, b.prod1) &&
           check(out, a.seq, "prod2", a.prod2, b.prod2) &&
           check(out, a.seq, "memAddr", a.memAddr, b.memAddr) &&
           check(out, a.seq, "memValue", a.memValue, b.memValue) &&
           check(out, a.seq, "nextPc", a.nextPc, b.nextPc) &&
           check(out, a.seq, "taken", a.taken, b.taken);
}

/** Compare the full register model of both emulators at a chunk edge. */
bool
compareArchState(std::string& out, Isa isa, const Emulator& a,
                 const Emulator& b)
{
    const uint64_t seq = a.instCount();
    switch (isa) {
      case Isa::Riscv:
        for (uint8_t r = 0; r < 64; ++r)
            if (!check(out, seq, "risc reg", a.riscReg(r), b.riscReg(r)))
                return false;
        return true;
      case Isa::Straight:
        if (!check(out, seq, "straight sp", a.straightSp(),
                   b.straightSp()))
            return false;
        // Readable ring distances: 0 is the zero pseudo-operand and
        // 0x7f is SP, so 1..126 covers every addressable slot.
        for (uint8_t d = 1; d <= 126; ++d)
            if (!check(out, seq, "ring value", a.ringValue(d),
                       b.ringValue(d)))
                return false;
        return true;
      case Isa::Clockhands:
        for (uint8_t h = 0; h < kNumHands; ++h)
            for (uint8_t d = 0; d < kHandDepth; ++d)
                if (!check(out, seq, "hand value", a.handValue(h, d),
                           b.handValue(h, d)))
                    return false;
        return true;
    }
    return true;
}

} // namespace

DualEngineRunner::DualEngineRunner(const Program& prog, uint64_t chunk)
    : prog_(prog), chunk_(chunk == 0 ? 1 : chunk),
      oracle_(prog, EmuEngine::Switch),
      candidate_(prog, EmuEngine::Threaded)
{
}

LockstepReport
DualEngineRunner::run(uint64_t maxInsts)
{
    LockstepReport rep;
    RecordSink oracleTrace, candidateTrace;

    uint64_t left = maxInsts;
    while (left > 0 && !(oracle_.done() && candidate_.done())) {
        const uint64_t n = left < chunk_ ? left : chunk_;
        left -= n;

        oracleTrace.clear();
        candidateTrace.clear();
        RunResult ro = oracle_.run(n, &oracleTrace);
        RunResult rc = candidate_.run(n, &candidateTrace);

        const auto& ta = oracleTrace.insts();
        const auto& tb = candidateTrace.insts();
        const size_t common = ta.size() < tb.size() ? ta.size() : tb.size();
        for (size_t i = 0; i < common; ++i) {
            if (!compareInst(rep.divergence, ta[i], tb[i])) {
                rep.ok = false;
                return rep;
            }
            ++rep.instsCompared;
        }
        if (ta.size() != tb.size()) {
            rep.ok = false;
            std::ostringstream os;
            os << "chunk at inst #" << oracle_.instCount()
               << ": trace lengths diverge: switch=" << ta.size()
               << " threaded=" << tb.size();
            rep.divergence = os.str();
            return rep;
        }

        const uint64_t seq = oracle_.instCount();
        if (!check(rep.divergence, seq, "output", ro.output, rc.output) ||
            !check(rep.divergence, seq, "done", oracle_.done(),
                   candidate_.done()) ||
            !check(rep.divergence, seq, "exitCode", ro.exitCode,
                   rc.exitCode) ||
            !check(rep.divergence, seq, "instCount", oracle_.instCount(),
                   candidate_.instCount()) ||
            !compareArchState(rep.divergence, prog_.isa, oracle_,
                              candidate_)) {
            rep.ok = false;
            return rep;
        }
        // The paused-run PC is only defined while the program is live
        // (a post-exit PC is never consumed).
        if (!oracle_.done() &&
            !check(rep.divergence, seq, "pc", oracle_.pc(),
                   candidate_.pc())) {
            rep.ok = false;
            return rep;
        }
    }

    rep.done = oracle_.done() && candidate_.done();
    return rep;
}

} // namespace ch
