#include "emu/emulator.h"

#include <cstdlib>

#include "common/bitutil.h"
#include "common/logging.h"
#include "emu/exec_inline.h"
#include "emu/threaded.h"
#include "isa/encoding.h"

namespace ch {

EmuEngine
defaultEmuEngine()
{
    static const EmuEngine engine = [] {
        const char* env = std::getenv("CH_EMU_ENGINE");
        if (env == nullptr || env[0] == '\0')
            return EmuEngine::Threaded;
        const std::string_view v(env);
        if (v == "threaded")
            return EmuEngine::Threaded;
        if (v == "switch")
            return EmuEngine::Switch;
        fatal("CH_EMU_ENGINE must be 'threaded' or 'switch', got '", v,
              "'");
    }();
    return engine;
}

std::string_view
emuEngineName(EmuEngine engine)
{
    return engine == EmuEngine::Threaded ? "threaded" : "switch";
}

Emulator::Emulator(const Program& prog, EmuEngine engine)
    : prog_(prog), isa_(prog.isa), engine_(engine)
{
    prog.load(mem_);
    pc_ = prog.entry;
    regWriter_.fill(kNoProducer);
    ringWriter_.fill(kNoProducer);
    for (auto& h : handWriter_)
        h.fill(kNoProducer);

    switch (isa_) {
      case Isa::Riscv:
        regs_[kRegSp] = layout::kStackTop;
        regs_[kRegRa] = 0;
        break;
      case Isa::Straight:
        sp_ = layout::kStackTop;
        break;
      case Isa::Clockhands:
        // Convention: the initial SP is pre-written into the s hand so
        // that s[0] reads it at the entry point.
        hands_[HandS][0] = layout::kStackTop;
        handCount_[HandS] = 1;
        break;
    }

    // Both engines share the architectural state above; the threaded
    // engine additionally owns the decoded-block cache. Constructed
    // eagerly so cache knobs can be set before the first run() call.
    threaded_ = std::make_unique<ThreadedEngine>(*this);
}

Emulator::~Emulator() = default;

size_t
Emulator::decodedBlocks() const
{
    return threaded_->blocks();
}

size_t
Emulator::decodedInsts() const
{
    return threaded_->decodedInsts();
}

uint64_t
Emulator::blockRedecodes() const
{
    return threaded_->redecodes();
}

void
Emulator::setBlockCacheBudget(size_t maxDecodedInsts)
{
    threaded_->setBudget(maxDecodedInsts);
}

SrcRead
Emulator::readSrc(uint8_t dist, uint8_t hand) const
{
    switch (isa_) {
      case Isa::Riscv:
        if (dist == kRegZero)
            return {0, kNoProducer};
        return {regs_[dist], regWriter_[dist]};
      case Isa::Straight: {
        if (dist == kStraightZeroDist)
            return {0, kNoProducer};
        if (dist == kStraightSpBase)
            return {sp_, spWriter_};
        if (dist > ringCount_)
            return {0, kNoProducer};
        const uint64_t w = ringCount_ - dist;
        return {ring_[w % 128], ringWriter_[w % 128]};
      }
      case Isa::Clockhands: {
        if (hand == HandS && dist == kHandZeroDist)
            return {0, kNoProducer};
        if (dist >= handCount_[hand])
            return {0, kNoProducer};
        const uint64_t w = handCount_[hand] - 1 - dist;
        return {hands_[hand][w % kHandDepth], handWriter_[hand][w % kHandDepth]};
      }
    }
    return {0, kNoProducer};
}

void
Emulator::writeResult(const Inst& inst, uint64_t value)
{
    const bool hasDst = inst.info().hasDst;
    switch (isa_) {
      case Isa::Riscv:
        if (hasDst && inst.dst != kRegZero) {
            regs_[inst.dst] = value;
            regWriter_[inst.dst] = instCount_;
        }
        break;
      case Isa::Straight: {
        // Every STRAIGHT instruction allocates one ring slot; slots of
        // valueless instructions hold zero (Section 2.2.1).
        const uint64_t w = ringCount_ % 128;
        ring_[w] = hasDst ? value : 0;
        ringWriter_[w] = instCount_;
        ++ringCount_;
        break;
      }
      case Isa::Clockhands:
        if (hasDst) {
            const uint64_t w = handCount_[inst.dst] % kHandDepth;
            hands_[inst.dst][w] = value;
            handWriter_[inst.dst][w] = instCount_;
            ++handCount_[inst.dst];
        }
        break;
    }
}

uint64_t
Emulator::handValue(uint8_t hand, uint8_t dist) const
{
    return readSrc(dist, hand).value;
}

uint64_t
Emulator::ringValue(uint8_t dist) const
{
    return readSrc(dist, 0).value;
}

void
Emulator::step(TraceSink* sink)
{
    if (!prog_.validPc(pc_))
        fatal("pc out of text segment: ", pc_, " after ", instCount_,
              " instructions");
    const Inst& inst = prog_.instAt(pc_);
    const OpInfo& info = inst.info();

    SrcRead s1{0, kNoProducer}, s2{0, kNoProducer};
    if (info.numSrcs >= 1)
        s1 = readSrc(inst.src1, inst.src1Hand);
    if (info.numSrcs >= 2)
        s2 = readSrc(inst.src2, inst.src2Hand);

    DynInst di;
    di.seq = instCount_;
    di.pc = pc_;
    di.op = inst.op;
    di.dst = inst.dst;
    di.src1 = inst.src1;
    di.src2 = inst.src2;
    di.src1Hand = inst.src1Hand;
    di.src2Hand = inst.src2Hand;
    di.imm = inst.imm;
    di.prod1 = s1.producer;
    di.prod2 = s2.producer;

    uint64_t value = 0;
    uint64_t nextPc = pc_ + 4;

    if (info.isLoad()) {
        di.memAddr = s1.value + static_cast<uint64_t>(inst.imm);
        value = mem_.read(di.memAddr, info.memBytes);
        if (info.isSignedLoad())
            value = signExtend(value, 8 * info.memBytes);
        di.memValue = value;
    } else if (info.isStore()) {
        di.memAddr = s1.value + static_cast<uint64_t>(inst.imm);
        mem_.write(di.memAddr, info.memBytes, s2.value);
        di.memValue = s2.value;
    } else if (info.brKind == BrKind::Cond) {
        di.taken = emu::branchTaken(inst.op, s1.value, s2.value);
        if (di.taken)
            nextPc = pc_ + static_cast<uint64_t>(inst.imm);
    } else if (info.brKind == BrKind::Jump || info.brKind == BrKind::Call) {
        di.taken = true;
        nextPc = pc_ + static_cast<uint64_t>(inst.imm);
        value = pc_ + 4;
    } else if (info.brKind == BrKind::IndCall || info.brKind == BrKind::Ret) {
        di.taken = true;
        nextPc = (s1.value + static_cast<uint64_t>(inst.imm)) & ~1ull;
        value = pc_ + 4;
    } else if (inst.op == Op::ECALL) {
        switch (static_cast<Sys>(inst.imm)) {
          case Sys::Exit:
            exited_ = true;
            exitCode_ = static_cast<int64_t>(s1.value);
            break;
          case Sys::Putchar:
            output_.push_back(static_cast<char>(s1.value));
            break;
          default:
            fatal("unknown syscall ", inst.imm);
        }
    } else if (inst.op == Op::SPADDI) {
        CH_ASSERT(isa_ == Isa::Straight, "spaddi outside STRAIGHT");
        sp_ += static_cast<uint64_t>(inst.imm);
        spWriter_ = instCount_;
        value = sp_;
    } else {
        value = emu::aluResult(inst.op, s1.value, s2.value, inst.imm, pc_);
    }

    writeResult(inst, value);
    di.nextPc = nextPc;
    if (sink)
        sink->onInst(di);

    ++instCount_;
    pc_ = nextPc;
    if (nextPc == 0)
        exited_ = true;  // returned past the entry point
}

RunResult
Emulator::run(uint64_t maxInsts, TraceSink* sink)
{
    if (engine_ == EmuEngine::Threaded) {
        if (!exited_ && maxInsts > 0)
            threaded_->run(maxInsts, sink);
    } else {
        uint64_t executed = 0;
        while (!exited_ && executed < maxInsts) {
            step(sink);
            ++executed;
        }
    }
    RunResult res;
    res.exited = exited_;
    res.exitCode = exitCode_;
    res.instCount = instCount_;
    // Hand the accumulated bytes over instead of copying them: a chunked
    // caller (trace capture, microbenchmarks) would otherwise pay an
    // O(total output) copy per chunk.
    res.output = std::move(output_);
    output_.clear();
    return res;
}

RunResult
runProgram(const Program& prog, uint64_t maxInsts, TraceSink* sink)
{
    Emulator emu(prog);
    return emu.run(maxInsts, sink);
}

} // namespace ch
