#include "emu/emulator.h"

#include <bit>
#include <cmath>
#include <limits>

#include "common/bitutil.h"
#include "common/logging.h"
#include "isa/encoding.h"

namespace ch {

namespace {

uint64_t
sext32(uint64_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(v)));
}

double
asD(uint64_t v)
{
    return std::bit_cast<double>(v);
}

uint64_t
asU(double v)
{
    return std::bit_cast<uint64_t>(v);
}

int64_t
fcvtLD(double d)
{
    if (std::isnan(d))
        return 0;
    if (d >= 9.2233720368547758e18)
        return std::numeric_limits<int64_t>::max();
    if (d <= -9.2233720368547758e18)
        return std::numeric_limits<int64_t>::min();
    return static_cast<int64_t>(d);
}

int64_t
sdiv(int64_t a, int64_t b)
{
    if (b == 0)
        return -1;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return a;
    return a / b;
}

int64_t
srem(int64_t a, int64_t b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return 0;
    return a % b;
}

int32_t
sdiv32(int32_t a, int32_t b)
{
    if (b == 0)
        return -1;
    if (a == std::numeric_limits<int32_t>::min() && b == -1)
        return a;
    return a / b;
}

int32_t
srem32(int32_t a, int32_t b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<int32_t>::min() && b == -1)
        return 0;
    return a % b;
}

constexpr uint64_t kSignBit = 0x8000000000000000ull;

/** Compute a non-memory, non-branch result value. */
uint64_t
aluResult(Op op, uint64_t a, uint64_t b, int64_t imm, uint64_t pc)
{
    const auto sa = static_cast<int64_t>(a);
    const auto sb = static_cast<int64_t>(b);
    switch (op) {
      case Op::ADD: return a + b;
      case Op::SUB: return a - b;
      case Op::SLL: return a << (b & 63);
      case Op::SLT: return sa < sb;
      case Op::SLTU: return a < b;
      case Op::XOR: return a ^ b;
      case Op::SRL: return a >> (b & 63);
      case Op::SRA: return static_cast<uint64_t>(sa >> (b & 63));
      case Op::OR: return a | b;
      case Op::AND: return a & b;
      case Op::ADDW: return sext32(a + b);
      case Op::SUBW: return sext32(a - b);
      case Op::SLLW: return sext32(static_cast<uint32_t>(a) << (b & 31));
      case Op::SRLW: return sext32(static_cast<uint32_t>(a) >> (b & 31));
      case Op::SRAW:
        return sext32(
            static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31)));
      case Op::MUL: return a * b;
      case Op::MULH:
        return static_cast<uint64_t>(
            (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64);
      case Op::MULHU:
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(a) *
             static_cast<unsigned __int128>(b)) >> 64);
      case Op::DIV: return static_cast<uint64_t>(sdiv(sa, sb));
      case Op::DIVU: return b == 0 ? ~0ull : a / b;
      case Op::REM: return static_cast<uint64_t>(srem(sa, sb));
      case Op::REMU: return b == 0 ? a : a % b;
      case Op::MULW: return sext32(a * b);
      case Op::DIVW:
        return sext32(static_cast<uint32_t>(
            sdiv32(static_cast<int32_t>(a), static_cast<int32_t>(b))));
      case Op::DIVUW: {
        const auto ua = static_cast<uint32_t>(a);
        const auto ub = static_cast<uint32_t>(b);
        return sext32(ub == 0 ? ~0u : ua / ub);
      }
      case Op::REMW:
        return sext32(static_cast<uint32_t>(
            srem32(static_cast<int32_t>(a), static_cast<int32_t>(b))));
      case Op::REMUW: {
        const auto ua = static_cast<uint32_t>(a);
        const auto ub = static_cast<uint32_t>(b);
        return sext32(ub == 0 ? ua : ua % ub);
      }
      case Op::ADDI: return a + static_cast<uint64_t>(imm);
      case Op::SLTI: return sa < imm;
      case Op::SLTIU: return a < static_cast<uint64_t>(imm);
      case Op::XORI: return a ^ static_cast<uint64_t>(imm);
      case Op::ORI: return a | static_cast<uint64_t>(imm);
      case Op::ANDI: return a & static_cast<uint64_t>(imm);
      case Op::SLLI: return a << (imm & 63);
      case Op::SRLI: return a >> (imm & 63);
      case Op::SRAI: return static_cast<uint64_t>(sa >> (imm & 63));
      case Op::ADDIW: return sext32(a + static_cast<uint64_t>(imm));
      case Op::SLLIW: return sext32(static_cast<uint32_t>(a) << (imm & 31));
      case Op::SRLIW: return sext32(static_cast<uint32_t>(a) >> (imm & 31));
      case Op::SRAIW:
        return sext32(
            static_cast<uint32_t>(static_cast<int32_t>(a) >> (imm & 31)));
      case Op::LUI:
        return sext32(static_cast<uint64_t>(imm) << 12);
      case Op::MV: return a;
      case Op::FMV_D: return a;
      case Op::FMV_X_D: return a;
      case Op::FMV_D_X: return a;
      case Op::FADD_D: return asU(asD(a) + asD(b));
      case Op::FSUB_D: return asU(asD(a) - asD(b));
      case Op::FMUL_D: return asU(asD(a) * asD(b));
      case Op::FDIV_D: return asU(asD(a) / asD(b));
      case Op::FSQRT_D: return asU(std::sqrt(asD(a)));
      case Op::FMIN_D: return asU(std::fmin(asD(a), asD(b)));
      case Op::FMAX_D: return asU(std::fmax(asD(a), asD(b)));
      case Op::FSGNJ_D: return (a & ~kSignBit) | (b & kSignBit);
      case Op::FSGNJN_D: return (a & ~kSignBit) | (~b & kSignBit);
      case Op::FSGNJX_D: return a ^ (b & kSignBit);
      case Op::FEQ_D: return asD(a) == asD(b);
      case Op::FLT_D: return asD(a) < asD(b);
      case Op::FLE_D: return asD(a) <= asD(b);
      case Op::FCVT_D_L: return asU(static_cast<double>(sa));
      case Op::FCVT_L_D: return static_cast<uint64_t>(fcvtLD(asD(a)));
      case Op::JAL:
      case Op::JALR:
        return pc + 4;
      case Op::NOP:
        return 0;
      default:
        panic("aluResult: unhandled op ", opName(op));
    }
}

bool
branchTaken(Op op, uint64_t a, uint64_t b)
{
    const auto sa = static_cast<int64_t>(a);
    const auto sb = static_cast<int64_t>(b);
    switch (op) {
      case Op::BEQ: return a == b;
      case Op::BNE: return a != b;
      case Op::BLT: return sa < sb;
      case Op::BGE: return sa >= sb;
      case Op::BLTU: return a < b;
      case Op::BGEU: return a >= b;
      default: panic("not a conditional branch");
    }
}

} // namespace

Emulator::Emulator(const Program& prog) : prog_(prog), isa_(prog.isa)
{
    prog.load(mem_);
    pc_ = prog.entry;
    regWriter_.fill(kNoProducer);
    ringWriter_.fill(kNoProducer);
    for (auto& h : handWriter_)
        h.fill(kNoProducer);

    switch (isa_) {
      case Isa::Riscv:
        regs_[kRegSp] = layout::kStackTop;
        regs_[kRegRa] = 0;
        break;
      case Isa::Straight:
        sp_ = layout::kStackTop;
        break;
      case Isa::Clockhands:
        // Convention: the initial SP is pre-written into the s hand so
        // that s[0] reads it at the entry point.
        hands_[HandS][0] = layout::kStackTop;
        handCount_[HandS] = 1;
        break;
    }
}

Emulator::SrcVal
Emulator::readSrc(uint8_t dist, uint8_t hand) const
{
    switch (isa_) {
      case Isa::Riscv:
        if (dist == kRegZero)
            return {0, kNoProducer};
        return {regs_[dist], regWriter_[dist]};
      case Isa::Straight: {
        if (dist == kStraightZeroDist)
            return {0, kNoProducer};
        if (dist == kStraightSpBase)
            return {sp_, spWriter_};
        if (dist > ringCount_)
            return {0, kNoProducer};
        const uint64_t w = ringCount_ - dist;
        return {ring_[w % 128], ringWriter_[w % 128]};
      }
      case Isa::Clockhands: {
        if (hand == HandS && dist == kHandZeroDist)
            return {0, kNoProducer};
        if (dist >= handCount_[hand])
            return {0, kNoProducer};
        const uint64_t w = handCount_[hand] - 1 - dist;
        return {hands_[hand][w % kHandDepth], handWriter_[hand][w % kHandDepth]};
      }
    }
    return {0, kNoProducer};
}

void
Emulator::writeResult(const Inst& inst, uint64_t value)
{
    const bool hasDst = inst.info().hasDst;
    switch (isa_) {
      case Isa::Riscv:
        if (hasDst && inst.dst != kRegZero) {
            regs_[inst.dst] = value;
            regWriter_[inst.dst] = instCount_;
        }
        break;
      case Isa::Straight: {
        // Every STRAIGHT instruction allocates one ring slot; slots of
        // valueless instructions hold zero (Section 2.2.1).
        const uint64_t w = ringCount_ % 128;
        ring_[w] = hasDst ? value : 0;
        ringWriter_[w] = instCount_;
        ++ringCount_;
        break;
      }
      case Isa::Clockhands:
        if (hasDst) {
            const uint64_t w = handCount_[inst.dst] % kHandDepth;
            hands_[inst.dst][w] = value;
            handWriter_[inst.dst][w] = instCount_;
            ++handCount_[inst.dst];
        }
        break;
    }
}

uint64_t
Emulator::handValue(uint8_t hand, uint8_t dist) const
{
    return readSrc(dist, hand).value;
}

uint64_t
Emulator::ringValue(uint8_t dist) const
{
    return readSrc(dist, 0).value;
}

void
Emulator::step(TraceSink* sink)
{
    if (!prog_.validPc(pc_))
        fatal("pc out of text segment: ", pc_, " after ", instCount_,
              " instructions");
    const Inst& inst = prog_.instAt(pc_);
    const OpInfo& info = inst.info();

    SrcVal s1{0, kNoProducer}, s2{0, kNoProducer};
    if (info.numSrcs >= 1)
        s1 = readSrc(inst.src1, inst.src1Hand);
    if (info.numSrcs >= 2)
        s2 = readSrc(inst.src2, inst.src2Hand);

    DynInst di;
    di.seq = instCount_;
    di.pc = pc_;
    di.op = inst.op;
    di.dst = inst.dst;
    di.src1 = inst.src1;
    di.src2 = inst.src2;
    di.src1Hand = inst.src1Hand;
    di.src2Hand = inst.src2Hand;
    di.imm = inst.imm;
    di.prod1 = s1.producer;
    di.prod2 = s2.producer;

    uint64_t value = 0;
    uint64_t nextPc = pc_ + 4;

    if (info.isLoad()) {
        di.memAddr = s1.value + static_cast<uint64_t>(inst.imm);
        value = mem_.read(di.memAddr, info.memBytes);
        if (info.isSignedLoad())
            value = signExtend(value, 8 * info.memBytes);
        di.memValue = value;
    } else if (info.isStore()) {
        di.memAddr = s1.value + static_cast<uint64_t>(inst.imm);
        mem_.write(di.memAddr, info.memBytes, s2.value);
        di.memValue = s2.value;
    } else if (info.brKind == BrKind::Cond) {
        di.taken = branchTaken(inst.op, s1.value, s2.value);
        if (di.taken)
            nextPc = pc_ + static_cast<uint64_t>(inst.imm);
    } else if (info.brKind == BrKind::Jump || info.brKind == BrKind::Call) {
        di.taken = true;
        nextPc = pc_ + static_cast<uint64_t>(inst.imm);
        value = pc_ + 4;
    } else if (info.brKind == BrKind::IndCall || info.brKind == BrKind::Ret) {
        di.taken = true;
        nextPc = (s1.value + static_cast<uint64_t>(inst.imm)) & ~1ull;
        value = pc_ + 4;
    } else if (inst.op == Op::ECALL) {
        switch (static_cast<Sys>(inst.imm)) {
          case Sys::Exit:
            exited_ = true;
            exitCode_ = static_cast<int64_t>(s1.value);
            break;
          case Sys::Putchar:
            output_.push_back(static_cast<char>(s1.value));
            break;
          default:
            fatal("unknown syscall ", inst.imm);
        }
    } else if (inst.op == Op::SPADDI) {
        CH_ASSERT(isa_ == Isa::Straight, "spaddi outside STRAIGHT");
        sp_ += static_cast<uint64_t>(inst.imm);
        spWriter_ = instCount_;
        value = sp_;
    } else {
        value = aluResult(inst.op, s1.value, s2.value, inst.imm, pc_);
    }

    writeResult(inst, value);
    di.nextPc = nextPc;
    if (sink)
        sink->onInst(di);

    ++instCount_;
    pc_ = nextPc;
    if (nextPc == 0)
        exited_ = true;  // returned past the entry point
}

RunResult
Emulator::run(uint64_t maxInsts, TraceSink* sink)
{
    uint64_t executed = 0;
    while (!exited_ && executed < maxInsts) {
        step(sink);
        ++executed;
    }
    RunResult res;
    res.exited = exited_;
    res.exitCode = exitCode_;
    res.instCount = instCount_;
    // Hand the accumulated bytes over instead of copying them: a chunked
    // caller (trace capture, microbenchmarks) would otherwise pay an
    // O(total output) copy per chunk.
    res.output = std::move(output_);
    output_.clear();
    return res;
}

RunResult
runProgram(const Program& prog, uint64_t maxInsts, TraceSink* sink)
{
    Emulator emu(prog);
    return emu.run(maxInsts, sink);
}

} // namespace ch
