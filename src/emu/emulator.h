#ifndef CH_EMU_EMULATOR_H
#define CH_EMU_EMULATOR_H

/**
 * @file
 * Functional (architectural-state) emulator for all three ISAs. One
 * implementation interprets the shared micro-ops; only the register
 * operand model differs per ISA, exactly as the paper's Fig. 5/8 argue:
 *
 *  - RISC: 32 integer + 32 FP logical registers,
 *  - STRAIGHT: one 128-deep result ring plus a special SP register,
 *  - Clockhands: four 16-deep hands (s reaches 15 values + zero).
 *
 * The emulator streams a DynInst record per executed instruction to an
 * optional TraceSink, annotated with dynamic producer indices, effective
 * addresses, and branch outcomes.
 *
 * Two interchangeable engines execute the program (docs/EMULATOR.md):
 *
 *  - EmuEngine::Threaded (default): a predecoded threaded-code engine
 *    that decodes each basic block once into a dense array of handler
 *    pointers with pre-extracted operands, caches blocks by address
 *    (code is read-only post-load, so entries never invalidate), and
 *    chains fallthrough/taken successors directly.
 *  - EmuEngine::Switch: the original one-instruction-at-a-time switch
 *    interpreter, kept as the differential-testing oracle.
 *
 * Both engines mutate the same architectural state and must stay
 * bit-identical; `DualEngineRunner` (emu/lockstep.h) enforces this.
 * The CH_EMU_ENGINE environment variable ("threaded" or "switch")
 * selects the process-wide default.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "mem/memory.h"
#include "mem/program.h"
#include "trace/dyninst.h"

namespace ch {

class ThreadedEngine;

/** Syscall numbers accepted by ECALL (imm field). */
enum class Sys : int64_t {
    Exit = 0,     ///< terminate; arg = exit code
    Putchar = 1,  ///< write one byte to the program's output stream
};

/** Which execution engine an Emulator instance uses. */
enum class EmuEngine : uint8_t {
    Switch,    ///< reference one-step-at-a-time switch interpreter
    Threaded,  ///< predecoded threaded-code engine (block cache)
};

/**
 * Process-wide default engine: CH_EMU_ENGINE={threaded,switch}, parsed
 * once; Threaded when unset. fatal() on an unrecognized value.
 */
EmuEngine defaultEmuEngine();

/** Engine name as spelled by CH_EMU_ENGINE. */
std::string_view emuEngineName(EmuEngine engine);

/** A value read from the register model plus its dynamic producer. */
struct SrcRead {
    uint64_t value;
    uint64_t producer;
};

/** Outcome of an emulator run. */
struct RunResult {
    bool exited = false;      ///< program called Sys::Exit
    int64_t exitCode = 0;
    uint64_t instCount = 0;   ///< total executed instructions so far

    /**
     * Bytes written via Sys::Putchar since the previous run() call
     * (everything, for a single-call run); moved out, never copied.
     */
    std::string output;
};

/** Interprets a Program; see file comment. */
class Emulator
{
  public:
    /** Prepare to run @p prog; loads text/data into a fresh memory. */
    explicit Emulator(const Program& prog,
                      EmuEngine engine = defaultEmuEngine());
    ~Emulator();

    Emulator(const Emulator&) = delete;
    Emulator& operator=(const Emulator&) = delete;

    /**
     * Execute until Sys::Exit, a return to the initial link address, or
     * @p maxInsts instructions. Streams to @p sink when non-null.
     * Can be called again to continue a paused run; each call returns
     * only the output bytes produced since the previous one.
     */
    RunResult run(uint64_t maxInsts = ~0ull, TraceSink* sink = nullptr);

    /** True once the program has terminated. */
    bool done() const { return exited_; }

    uint64_t pc() const { return pc_; }
    uint64_t instCount() const { return instCount_; }
    Memory& memory() { return mem_; }

    /** Engine executing this instance. */
    EmuEngine engine() const { return engine_; }

    /**
     * Switch engines, including between run() calls of a paused run:
     * both engines share the same architectural state, so execution
     * continues seamlessly (the lockstep tests rely on this).
     */
    void setEngine(EmuEngine engine) { engine_ = engine; }

    // -- Threaded-engine block-cache introspection (tests/benchmarks) --

    /** Number of cached decoded blocks. */
    size_t decodedBlocks() const;

    /** Total decoded instructions across cached blocks. */
    size_t decodedInsts() const;

    /** Times a block was re-decoded because the cache budget was full. */
    uint64_t blockRedecodes() const;

    /**
     * Cap the block cache at @p maxDecodedInsts decoded instructions;
     * blocks beyond the budget are re-decoded into scratch storage on
     * every dispatch instead of being cached (results are unchanged).
     */
    void setBlockCacheBudget(size_t maxDecodedInsts);

    /** Read the current architectural value of a RISC register (tests). */
    uint64_t riscReg(uint8_t reg) const { return regs_[reg]; }

    /** Read hand value at distance (tests); Clockhands only. */
    uint64_t handValue(uint8_t hand, uint8_t dist) const;

    /** STRAIGHT ring value at distance (tests). */
    uint64_t ringValue(uint8_t dist) const;

    /** STRAIGHT special SP (tests). */
    uint64_t straightSp() const { return sp_; }

  private:
    friend class ThreadedEngine;

    SrcRead readSrc(uint8_t dist, uint8_t hand) const;
    void writeResult(const Inst& inst, uint64_t value);
    void step(TraceSink* sink);

    const Program& prog_;
    Memory mem_;
    Isa isa_;
    EmuEngine engine_;
    std::unique_ptr<ThreadedEngine> threaded_;

    uint64_t pc_ = 0;
    uint64_t instCount_ = 0;
    bool exited_ = false;
    int64_t exitCode_ = 0;
    std::string output_;

    // RISC state.
    std::array<uint64_t, 64> regs_{};
    std::array<uint64_t, 64> regWriter_;

    // STRAIGHT state.
    std::array<uint64_t, 128> ring_{};
    std::array<uint64_t, 128> ringWriter_;
    uint64_t ringCount_ = 0;
    uint64_t sp_ = 0;
    uint64_t spWriter_ = kNoProducer;

    // Clockhands state.
    std::array<std::array<uint64_t, kHandDepth>, kNumHands> hands_{};
    std::array<std::array<uint64_t, kHandDepth>, kNumHands> handWriter_;
    std::array<uint64_t, kNumHands> handCount_{};
};

/** Convenience: run @p prog to completion and return the result. */
RunResult runProgram(const Program& prog, uint64_t maxInsts = ~0ull,
                     TraceSink* sink = nullptr);

} // namespace ch

#endif // CH_EMU_EMULATOR_H
