#include "emu/threaded.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"
#include "emu/exec_inline.h"

namespace ch {

// ---------------------------------------------------------------------
// Handlers. One function is instantiated per (ISA, traced?, op); every
// OpInfo property below is a compile-time constant, so each handler
// compiles to just the work its op actually does. The bodies mirror
// Emulator::step() statement for statement; the value semantics come
// from the same exec_inline.h functions the switch engine uses, with
// the op constant-folded.
// ---------------------------------------------------------------------

namespace {

/** True when @p op can end a basic block (control flow or syscall). */
constexpr bool
isTerminatorOp(Op op)
{
    return kOpInfoTable[static_cast<size_t>(op)].brKind != BrKind::None ||
           op == Op::ECALL;
}

/** BlockEnd classification of a terminator op. */
constexpr BlockEnd
blockEndOf(Op op)
{
    const BrKind br = kOpInfoTable[static_cast<size_t>(op)].brKind;
    switch (br) {
      case BrKind::Cond: return BlockEnd::Cond;
      case BrKind::Jump:
      case BrKind::Call: return BlockEnd::Direct;
      case BrKind::IndCall:
      case BrKind::Ret: return BlockEnd::Indirect;
      case BrKind::None: break;
    }
    return op == Op::ECALL ? BlockEnd::Ecall : BlockEnd::Fallthrough;
}

} // namespace

uint64_t
ThreadedEngine::packAux(const Emulator& e)
{
    switch (e.isa_) {
      case Isa::Riscv:
        return 0;
      case Isa::Straight:
        return e.ringCount_;
      case Isa::Clockhands: {
        // Lane h = hand h's count, clamped mod-16-preservingly so it
        // cannot wrap 16 bits within one <= kMaxBlockInsts chain.
        uint64_t aux = 0;
        for (int h = 0; h < kNumHands; ++h) {
            const uint64_t c = e.handCount_[h];
            const uint64_t lane = c < 0x8000 ? c : (0x8000 | (c & 15));
            aux |= lane << (16 * h);
        }
        return aux;
      }
    }
    return 0;
}

template <Isa I>
void
ThreadedEngine::syncAux(Emulator& e, const ThreadedCtx& ctx, uint64_t aux)
{
    if constexpr (I == Isa::Straight) {
        e.ringCount_ = aux;
    } else if constexpr (I == Isa::Clockhands) {
        // Lane-wise deltas; no cross-lane borrow (see DecInst::Fn).
        const uint64_t delta = aux - ctx.auxIn;
        for (int h = 0; h < kNumHands; ++h)
            e.handCount_[h] += (delta >> (16 * h)) & 0xffff;
    }
}

template <Isa I>
void
ThreadedEngine::stopChain(Emulator& e, const DecInst* d, ThreadedCtx& ctx,
                          uint64_t seq, uint64_t aux)
{
    e.instCount_ = seq;
    syncAux<I>(e, ctx, aux);
    ctx.nextPc = d->target;  // the block's fallthrough PC
}

template <Isa I, bool WithProducer>
SrcRead
ThreadedEngine::readSrcT(const Emulator& e, uint8_t dist, uint8_t hand,
                         uint8_t shift, uint64_t aux)
{
    (void)shift;
    if constexpr (I == Isa::Riscv) {
        if (dist == kRegZero)
            return {0, kNoProducer};
        if constexpr (WithProducer)
            return {e.regs_[dist], e.regWriter_[dist]};
        else
            return {e.regs_[dist], kNoProducer};
    } else if constexpr (I == Isa::Straight) {
        if (dist == kStraightZeroDist)
            return {0, kNoProducer};
        if (dist == kStraightSpBase)
            return {e.sp_, WithProducer ? e.spWriter_ : kNoProducer};
        if (dist > aux)
            return {0, kNoProducer};
        const uint64_t w = aux - dist;
        if constexpr (WithProducer)
            return {e.ring_[w % 128], e.ringWriter_[w % 128]};
        else
            return {e.ring_[w % 128], kNoProducer};
    } else {
        if (dist == kDecSrcZero)  // pre-folded s[kHandZeroDist]
            return {0, kNoProducer};
        const uint64_t count = (aux >> shift) & 0xffff;
        if (dist >= count)
            return {0, kNoProducer};
        const uint64_t w = count - 1 - dist;
        if constexpr (WithProducer)
            return {e.hands_[hand][w % kHandDepth],
                    e.handWriter_[hand][w % kHandDepth]};
        else
            return {e.hands_[hand][w % kHandDepth], kNoProducer};
    }
}

template <Isa I, bool HasDst>
uint64_t
ThreadedEngine::writeResultT(Emulator& e, const DecInst* d, uint64_t value,
                             uint64_t seq, uint64_t aux)
{
    if constexpr (I == Isa::Riscv) {
        if constexpr (HasDst) {
            if (d->dst != kRegZero) {
                e.regs_[d->dst] = value;
                e.regWriter_[d->dst] = seq;
            }
        }
        return aux;
    } else if constexpr (I == Isa::Straight) {
        // Every STRAIGHT instruction allocates one ring slot; slots of
        // valueless instructions hold zero (Section 2.2.1).
        const uint64_t w = aux % 128;
        e.ring_[w] = HasDst ? value : 0;
        e.ringWriter_[w] = seq;
        return aux + 1;
    } else {
        if constexpr (HasDst) {
            const uint64_t w = ((aux >> d->dstShift) & 0xffff) % kHandDepth;
            e.hands_[d->dst][w] = value;
            e.handWriter_[d->dst][w] = seq;
        }
        // auxInc is pre-resolved to the destination lane unit (or 0).
        return aux + d->auxInc;
    }
}

template <Isa I, bool Traced, Op OP>
void
ThreadedEngine::exec(Emulator& e, const DecInst* d, ThreadedCtx& ctx,
                     uint64_t seq, uint64_t aux)
{
    constexpr OpInfo info = kOpInfoTable[static_cast<size_t>(OP)];

    SrcRead s1{0, kNoProducer}, s2{0, kNoProducer};
    if constexpr (info.numSrcs >= 1)
        s1 = readSrcT<I, Traced>(e, d->src1Eff, d->src1Hand, d->src1Shift,
                                 aux);
    if constexpr (info.numSrcs >= 2)
        s2 = readSrcT<I, Traced>(e, d->src2Eff, d->src2Hand, d->src2Shift,
                                 aux);

    DynInst di;
    if constexpr (Traced) {
        di.seq = seq;
        di.pc = d->pc;
        di.op = OP;
        di.dst = d->dst;
        di.src1 = d->src1;
        di.src2 = d->src2;
        di.src1Hand = d->src1Hand;
        di.src2Hand = d->src2Hand;
        di.imm = d->imm;
        di.prod1 = s1.producer;
        di.prod2 = s2.producer;
    }

    uint64_t value = 0;
    uint64_t nextPc = d->pc + 4;

    if constexpr (info.isLoad()) {
        const uint64_t addr = s1.value + static_cast<uint64_t>(d->imm);
        value = e.mem_.read(addr, info.memBytes);
        if constexpr ((info.flags & FlagSignedLoad) != 0)
            value = signExtend(value, 8 * info.memBytes);
        if constexpr (Traced) {
            di.memAddr = addr;
            di.memValue = value;
        }
    } else if constexpr (info.isStore()) {
        const uint64_t addr = s1.value + static_cast<uint64_t>(d->imm);
        e.mem_.write(addr, info.memBytes, s2.value);
        if constexpr (Traced) {
            di.memAddr = addr;
            di.memValue = s2.value;
        }
    } else if constexpr (info.brKind == BrKind::Cond) {
        const bool taken = emu::branchTaken(OP, s1.value, s2.value);
        if (taken)
            nextPc = d->target;
        if constexpr (Traced)
            di.taken = taken;
        ctx.taken = taken;
    } else if constexpr (info.brKind == BrKind::Jump ||
                         info.brKind == BrKind::Call) {
        if constexpr (Traced)
            di.taken = true;
        nextPc = d->target;
        value = d->pc + 4;
    } else if constexpr (info.brKind == BrKind::IndCall ||
                         info.brKind == BrKind::Ret) {
        if constexpr (Traced)
            di.taken = true;
        nextPc = (s1.value + static_cast<uint64_t>(d->imm)) & ~1ull;
        value = d->pc + 4;
    } else if constexpr (OP == Op::ECALL) {
        switch (static_cast<Sys>(d->imm)) {
          case Sys::Exit:
            e.exited_ = true;
            e.exitCode_ = static_cast<int64_t>(s1.value);
            break;
          case Sys::Putchar:
            e.output_.push_back(static_cast<char>(s1.value));
            break;
          default:
            fatal("unknown syscall ", d->imm);
        }
    } else if constexpr (OP == Op::SPADDI) {
        CH_ASSERT(I == Isa::Straight, "spaddi outside STRAIGHT");
        e.sp_ += static_cast<uint64_t>(d->imm);
        e.spWriter_ = seq;
        value = e.sp_;
    } else {
        value = emu::aluResult(OP, s1.value, s2.value, d->imm, d->pc);
    }

    aux = writeResultT<I, info.hasDst>(e, d, value, seq, aux);
    if constexpr (Traced) {
        di.nextPc = nextPc;
        ctx.sink->onInst(di);
        // Traced mode mirrors the switch engine's observable update
        // order: instCount_ advances after each onInst() call, in case
        // a sink reads it back.
        e.instCount_ = seq + 1;
    }

    if constexpr (isTerminatorOp(OP)) {
        // Terminators end the chain; the run loop resolves the successor.
        if constexpr (!Traced)
            e.instCount_ = seq + 1;
        syncAux<I>(e, ctx, aux);
        ctx.nextPc = nextPc;
    } else {
        // Call-threaded dispatch: jump straight into the next handler
        // (a tail call the optimizer turns into a jmp; see DecInst).
        const DecInst* n = d + 1;
        return n->fn[Traced](e, n, ctx, seq + 1, aux);
    }
}

template <Isa I>
void
ThreadedEngine::fillHandlers(DecInst& d)
{
    switch (d.op) {
#define X(op, str, cls, fmt, nsrc, hasdst, mem, flags, br)                    \
      case Op::op:                                                            \
        d.fn[0] = &ThreadedEngine::exec<I, false, Op::op>;                    \
        d.fn[1] = &ThreadedEngine::exec<I, true, Op::op>;                     \
        break;
        CH_OP_LIST(X)
#undef X
    }
}

// ---------------------------------------------------------------------
// Block construction and the cache.
// ---------------------------------------------------------------------

ThreadedEngine::ThreadedEngine(Emulator& emu)
    : e_(emu), byIndex_(emu.prog_.numInsts(), nullptr)
{
    // Generous default: hot code decodes once even when indirect-branch
    // targets split many blocks; pathological programs (a block start
    // at every text index) fall back to scratch re-decodes, never OOM.
    budget_ = std::max<size_t>(size_t{1} << 16, 16 * e_.prog_.numInsts());
}

void
ThreadedEngine::buildInto(Block& b, uint64_t startPc) const
{
    b.insts.clear();
    b.startPc = startPc;
    b.end = BlockEnd::Fallthrough;
    b.fall = nullptr;
    b.taken = nullptr;

    const Program& prog = e_.prog_;
    uint64_t pc = startPc;
    while (b.insts.size() < kMaxBlockInsts && prog.validPc(pc)) {
        const Inst& inst = prog.instAt(pc);
        DecInst d;
        d.pc = pc;
        d.imm = inst.imm;
        d.target = pc + static_cast<uint64_t>(inst.imm);
        d.op = inst.op;
        d.dst = inst.dst;
        d.src1 = inst.src1;
        d.src2 = inst.src2;
        d.src1Hand = inst.src1Hand;
        d.src2Hand = inst.src2Hand;
        d.src1Eff = inst.src1;
        d.src2Eff = inst.src2;
        switch (e_.isa_) {
          case Isa::Riscv:
            fillHandlers<Isa::Riscv>(d);
            break;
          case Isa::Straight:
            fillHandlers<Isa::Straight>(d);
            d.auxInc = 1;
            break;
          case Isa::Clockhands:
            fillHandlers<Isa::Clockhands>(d);
            d.auxInc = inst.info().hasDst
                           ? uint64_t{1} << (16 * inst.dst)
                           : 0;
            d.src1Shift = static_cast<uint8_t>(16 * inst.src1Hand);
            d.src2Shift = static_cast<uint8_t>(16 * inst.src2Hand);
            d.dstShift = static_cast<uint8_t>(16 * inst.dst);
            if (inst.src1Hand == HandS && inst.src1 == kHandZeroDist)
                d.src1Eff = kDecSrcZero;
            if (inst.src2Hand == HandS && inst.src2 == kHandZeroDist)
                d.src2Eff = kDecSrcZero;
            break;
        }
        b.insts.push_back(d);
        pc += 4;
        if (isTerminatorOp(inst.op)) {
            b.end = blockEndOf(inst.op);
            break;
        }
    }
    b.numInsts = b.insts.size();
    b.fallPc = pc;
    if (b.end == BlockEnd::Fallthrough) {
        // No terminator (length cap or text end): a sentinel ends the
        // handler chain and publishes the fallthrough PC.
        DecInst s;
        s.pc = pc;
        s.target = pc;
        switch (e_.isa_) {
          case Isa::Riscv:
            s.fn[0] = s.fn[1] = &stopChain<Isa::Riscv>;
            break;
          case Isa::Straight:
            s.fn[0] = s.fn[1] = &stopChain<Isa::Straight>;
            break;
          case Isa::Clockhands:
            s.fn[0] = s.fn[1] = &stopChain<Isa::Clockhands>;
            break;
        }
        b.insts.push_back(s);
    }
}

Block*
ThreadedEngine::lookup(uint64_t pc)
{
    const Program& prog = e_.prog_;
    if (!prog.validPc(pc))
        fatal("pc out of text segment: ", pc, " after ", e_.instCount_,
              " instructions");
    const size_t idx = (pc - prog.textBase) / 4;
    if (Block* b = byIndex_[idx])
        return b;

    auto nb = std::make_unique<Block>();
    buildInto(*nb, pc);
    if (decodedInsts_ + nb->numInsts <= budget_) {
        nb->cached = true;
        decodedInsts_ += nb->numInsts;
        Block* raw = nb.get();
        byIndex_[idx] = raw;
        blocks_.push_back(std::move(nb));
        return raw;
    }
    // Budget exhausted: execute out of scratch storage and re-decode on
    // the next visit. Never cached, never chained into.
    scratch_ = std::move(*nb);
    scratch_.cached = false;
    ++redecodes_;
    return &scratch_;
}

void
ThreadedEngine::run(uint64_t maxInsts, TraceSink* sink)
{
    Emulator& e = e_;
    ThreadedCtx ctx;
    ctx.sink = sink;
    const int t = sink ? 1 : 0;
    uint64_t left = maxInsts;

    Block* b = nullptr;
    while (left > 0 && !e.exited_) {
        if (b == nullptr)
            b = lookup(e.pc_);

        const size_t n = b->numInsts;
        if (left < n) {
            // The budget ends inside this block. Terminators only sit
            // at block ends, so the prefix is pure straight-line code;
            // fall back to the (bit-identical) switch interpreter for
            // these last few instructions — it maintains pc_ per step,
            // leaving it at the first unexecuted instruction.
            while (left > 0 && !e.exited_) {
                e.step(sink);
                --left;
            }
            return;
        }

        // Execute the whole block: the first handler tail-chains through
        // the rest; the terminator (or fallthrough sentinel) resolves
        // the successor PC into ctx.nextPc.
        const DecInst* d = b->insts.data();
        const uint64_t aux = packAux(e);
        ctx.auxIn = aux;
        d->fn[t](e, d, ctx, e.instCount_, aux);
        left -= n;

        const uint64_t nextPc = ctx.nextPc;
        e.pc_ = nextPc;
        if (e.exited_)
            return;
        if (nextPc == 0) {
            // Returned past the entry point (matches the switch loop).
            e.exited_ = true;
            return;
        }
        // Budget exhausted exactly at the block end: stop before the
        // successor is even resolved, like the switch loop stops before
        // its next step() — the next PC may be past the text segment.
        if (left == 0)
            return;

        // Chain to the successor, memoizing direct edges between cached
        // blocks so steady-state execution skips the dispatch lookup.
        Block* next = nullptr;
        switch (b->end) {
          case BlockEnd::Fallthrough:
          case BlockEnd::Ecall:
            next = b->fall;
            if (next == nullptr) {
                next = lookup(nextPc);
                if (b->cached && next->cached)
                    b->fall = next;
            }
            break;
          case BlockEnd::Cond:
            next = ctx.taken ? b->taken : b->fall;
            if (next == nullptr) {
                next = lookup(nextPc);
                if (b->cached && next->cached)
                    (ctx.taken ? b->taken : b->fall) = next;
            }
            break;
          case BlockEnd::Direct:
            next = b->taken;
            if (next == nullptr) {
                next = lookup(nextPc);
                if (b->cached && next->cached)
                    b->taken = next;
            }
            break;
          case BlockEnd::Indirect:
            next = lookup(nextPc);
            break;
        }
        b = next;
    }
}

} // namespace ch
