#ifndef CH_EMU_THREADED_H
#define CH_EMU_THREADED_H

/**
 * @file
 * Predecoded threaded-code execution engine behind Emulator
 * (docs/EMULATOR.md). Each basic block is decoded once into a dense
 * array of DecInst records — a per-(ISA, op) handler pointer plus the
 * pre-extracted operand fields — so the hot loop is a call-threaded
 * dispatch over handler pointers with no per-instruction decode, no
 * opcode switch, and no OpInfo loads (the handlers are instantiated per
 * op, so every property test folds at compile time). Blocks are cached
 * by start address; program text is read-only after load, so entries
 * never invalidate. A block's fallthrough/taken successors are memoized
 * as direct Block pointers after first resolution, so straight-line and
 * loop execution never returns to the address-indexed dispatch top.
 *
 * The engine must stay bit-identical to the reference switch
 * interpreter (Emulator::step): same architectural state evolution,
 * same DynInst stream, same output bytes, same fatal conditions.
 * tests/lockstep_test.cc and tests/fuzz_test.cc enforce this with the
 * DualEngineRunner harness (emu/lockstep.h).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "emu/emulator.h"
#include "isa/isa.h"
#include "trace/dyninst.h"

namespace ch {

struct DecInst;

/** Per-run() dispatch state shared between handlers and the run loop. */
struct ThreadedCtx {
    TraceSink* sink = nullptr;
    uint64_t nextPc = 0;  ///< terminator handlers: resolved successor PC
    uint64_t auxIn = 0;   ///< aux value at block entry (see DecInst::Fn)
    bool taken = false;   ///< terminator handlers: branch outcome
};

/**
 * One predecoded instruction: handler pointers plus every operand field
 * pre-extracted from the Inst record at decode time.
 *
 * Handlers are call-threaded: a non-terminator handler tail-calls the
 * next DecInst's handler directly, so every op has its own dispatch
 * site (indirect-branch prediction keys on the current op instead of
 * one shared dispatch loop). A chain always ends at the block's
 * terminator handler — or, for blocks without one, at a trailing
 * sentinel DecInst whose handler publishes the fallthrough PC — so
 * chain depth is bounded by kMaxBlockInsts + 1 even in builds where
 * the compiler does not turn the tail calls into jumps.
 */
struct DecInst {
    /**
     * @p seq is the dynamic instruction count before this instruction
     * executes, threaded through the chain in a register so the hot
     * loop never round-trips Emulator::instCount_ through memory; the
     * handler ending the chain stores the final count back.
     *
     * @p aux rides the register-model allocation counter through the
     * chain the same way — otherwise every instruction serializes on a
     * store-to-load-forwarded memory increment. Its meaning is per-ISA:
     * RISC unused (0); STRAIGHT the ring allocation count; Clockhands
     * four 16-bit hand-count lanes (lane h = bits [16h, 16h+16)),
     * repacked from the real counts at every block entry with the
     * mod-16-preserving clamp `c < 0x8000 ? c : 0x8000 | (c & 15)` so a
     * lane can never wrap inside a <= kMaxBlockInsts chain. Chain-ending
     * handlers reconcile the real counts from aux - ThreadedCtx::auxIn
     * (lane-wise; each lane delta is a small non-negative write count,
     * so the plain 64-bit subtraction never borrows across lanes).
     */
    using Fn = void (*)(Emulator&, const DecInst*, ThreadedCtx&,
                        uint64_t seq, uint64_t aux);

    Fn fn[2];             ///< [0] = plain, [1] = tracing into a sink
    uint64_t pc = 0;
    int64_t imm = 0;
    uint64_t target = 0;  ///< pc + imm, pre-resolved for direct branches

    /** Aux increment this instruction applies (see Fn): 1 for every
     *  STRAIGHT instruction, the destination hand's lane unit for a
     *  Clockhands instruction with a result, 0 otherwise. */
    uint64_t auxInc = 0;

    Op op = Op::NOP;
    uint8_t dst = 0;
    uint8_t src1 = 0, src2 = 0;
    uint8_t src1Hand = 0, src2Hand = 0;

    /** Pre-scaled aux lane shifts (16 * hand) for Clockhands. */
    uint8_t src1Shift = 0, src2Shift = 0, dstShift = 0;

    /**
     * Effective source distances used by the register-model read.
     * Equal to src1/src2 except that Clockhands' architectural zero
     * (s at distance kHandZeroDist) is pre-folded to kDecSrcZero, so
     * the read tests a single byte instead of hand+distance.
     */
    uint8_t src1Eff = 0, src2Eff = 0;
};

/** DecInst::srcNEff marker for a pre-folded always-zero operand. */
constexpr uint8_t kDecSrcZero = 0xff;

/** How a decoded block ends; selects the successor-chaining rule. */
enum class BlockEnd : uint8_t {
    Fallthrough,  ///< length cap or text end: successor is fallPc
    Cond,         ///< conditional branch: taken/fallthrough successors
    Direct,       ///< unconditional direct jump/call: taken successor
    Indirect,     ///< register-target branch: successor looked up per run
    Ecall,        ///< may terminate the program; else falls through
};

/**
 * A decoded basic block (run of instructions with one terminator).
 * Blocks that end without a terminator (length cap or text end) carry
 * one extra sentinel DecInst after the real instructions; numInsts
 * counts only the real ones.
 */
struct Block {
    std::vector<DecInst> insts;
    size_t numInsts = 0;
    uint64_t startPc = 0;
    uint64_t fallPc = 0;      ///< pc after the last instruction
    BlockEnd end = BlockEnd::Fallthrough;
    bool cached = false;      ///< false for over-budget scratch decodes
    Block* fall = nullptr;    ///< memoized successors (cached blocks only)
    Block* taken = nullptr;
};

/** See file comment; owned by Emulator, one instance per program run. */
class ThreadedEngine
{
  public:
    /** Decoded-block length cap; longer runs split into chained blocks. */
    static constexpr size_t kMaxBlockInsts = 128;

    explicit ThreadedEngine(Emulator& emu);

    /**
     * Execute up to @p maxInsts instructions (or until exit), streaming
     * to @p sink when non-null. Mirrors the switch engine bit for bit.
     */
    void run(uint64_t maxInsts, TraceSink* sink);

    size_t blocks() const { return blocks_.size(); }
    size_t decodedInsts() const { return decodedInsts_; }
    uint64_t redecodes() const { return redecodes_; }
    size_t budget() const { return budget_; }
    void setBudget(size_t maxDecodedInsts) { budget_ = maxDecodedInsts; }

  private:
    template <Isa I, bool Traced, Op OP>
    static void exec(Emulator& e, const DecInst* d, ThreadedCtx& ctx,
                     uint64_t seq, uint64_t aux);

    // Force-inlined: the inliner judges these by their pre-fold size
    // and would otherwise emit out-of-line calls inside every handler.
    template <Isa I, bool WithProducer>
    [[gnu::always_inline]] static SrcRead
    readSrcT(const Emulator& e, uint8_t dist, uint8_t hand, uint8_t shift,
             uint64_t aux);

    /** Returns the updated aux (see DecInst::Fn). */
    template <Isa I, bool HasDst>
    [[gnu::always_inline]] static uint64_t
    writeResultT(Emulator& e, const DecInst* d, uint64_t value,
                 uint64_t seq, uint64_t aux);

    /** Write the counts carried in @p aux back to the emulator state. */
    template <Isa I>
    [[gnu::always_inline]] static void
    syncAux(Emulator& e, const ThreadedCtx& ctx, uint64_t aux);

    template <Isa I>
    static void fillHandlers(DecInst& d);

    /** Sentinel handler ending the chain of a terminator-less block. */
    template <Isa I>
    static void stopChain(Emulator& e, const DecInst* d, ThreadedCtx& ctx,
                          uint64_t seq, uint64_t aux);

    /** Pack the per-ISA allocation counters into an aux word. */
    static uint64_t packAux(const Emulator& e);

    /** Decode the block starting at @p startPc into @p b. */
    void buildInto(Block& b, uint64_t startPc) const;

    /** Cached block at @p pc, decoding on first touch; fatal() on a PC
     *  outside the text segment (same message as the switch engine). */
    Block* lookup(uint64_t pc);

    Emulator& e_;
    std::vector<std::unique_ptr<Block>> blocks_;
    std::vector<Block*> byIndex_;  ///< dense start-pc index -> block
    Block scratch_;                ///< reused for over-budget decodes
    size_t decodedInsts_ = 0;
    size_t budget_ = 0;
    uint64_t redecodes_ = 0;
};

} // namespace ch

#endif // CH_EMU_THREADED_H
