#ifndef CH_BACKEND_BACKEND_H
#define CH_BACKEND_BACKEND_H

/**
 * @file
 * Compiler backends: VCode -> executable Program for each of the three
 * ISAs (Fig. 10's right-hand side). All backends share the driver that
 * lays out globals and emits the _start stub; they differ exactly in the
 * register assignment phase:
 *
 *  - RISC: linear-scan allocation onto the RV64 integer/FP files with
 *    callee-saved preference across calls and frame spilling.
 *  - STRAIGHT: distance scheduling: every value gets a ring position;
 *    canonical frames at join points / loop headers are re-established
 *    with relay `mv`s, max-distance relays keep references encodable,
 *    values live across calls are spilled (the three overheads of
 *    Fig. 2 arise here naturally).
 *  - Clockhands: hand assignment (Section 6.2: s = SP/args/ret,
 *    v = loop constants via the greedy maximal-independent-set of
 *    Algorithm 1 + callee-saved, t = short-lived, u = the rest) followed
 *    by the same distance scheduler run per hand.
 */

#include <string_view>

#include "ir/vcode.h"
#include "mem/program.h"

namespace ch {

/** Compile a VCode module to an executable image for @p isa. */
Program compileVModule(const VModule& mod, Isa isa);

/** MiniC source -> executable, end to end. */
Program compileMiniC(std::string_view source, Isa isa);

/** Per-vreg hand assignment result (exposed for tests / Fig. 16). */
struct HandPlan {
    /** Hand per vreg (HandT/HandU/HandV/HandS). */
    std::vector<uint8_t> handOf;
    /** Vregs demoted to stack memory (capacity overflow). */
    std::vector<bool> inMemory;
    /** Vregs recognized as loop constants assigned to v. */
    std::vector<bool> isLoopConstant;
};

/**
 * Run the Clockhands hand-assignment pass (Algorithm 1) in isolation.
 * Exposed so tests can check the classification directly.
 */
HandPlan assignHands(const VFunc& f);

} // namespace ch

#endif // CH_BACKEND_BACKEND_H
