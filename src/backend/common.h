#ifndef CH_BACKEND_COMMON_H
#define CH_BACKEND_COMMON_H

/**
 * @file
 * Backend-internal shared helpers: per-function emission interface and
 * linearization utilities.
 */

#include <string>

#include "asm/module_builder.h"
#include "backend/backend.h"
#include "ir/analysis.h"
#include "ir/vcode.h"

namespace ch {

/** Label naming shared by all backends. */
inline std::string
blockLabel(const std::string& fn, int block)
{
    return ".L" + fn + "_" + std::to_string(block);
}

/** Compile one function into @p builder (per-ISA implementations). */
void emitRiscvFunc(ModuleBuilder& builder, const VFunc& f);
void emitDistanceFunc(ModuleBuilder& builder, const VFunc& f, Isa isa);

/**
 * STRAIGHT analogue of the Clockhands hand plan: every value lives in the
 * single result ring (hand 0); values live across calls are demoted to
 * stack memory, since a callee's dynamic instruction count makes their
 * ring distance unknowable (the paper's load/store increase).
 */
HandPlan straightPlan(const VFunc& f);

} // namespace ch

#endif // CH_BACKEND_COMMON_H
