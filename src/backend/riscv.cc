#include <algorithm>
#include <map>
#include <set>

#include "backend/common.h"
#include "common/bitutil.h"
#include "common/logging.h"

namespace ch {

namespace {

// Register pools (RV64 ABI roles). x5..x7/x10..x17/x28..x29 caller-saved;
// x8..x9/x18..x27 callee-saved; x30/x31 (t5/t6) reserved as spill scratch.
const uint8_t kIntCaller[] = {5, 6, 7, 10, 11, 12, 13, 14, 15, 16, 17, 28,
                              29};
const uint8_t kIntCallee[] = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};
const uint8_t kIntScratch0 = 30, kIntScratch1 = 31;

// FP: ft0-7 / fa0-7 / ft8-9 caller-saved; fs0-11 callee-saved;
// ft10/ft11 reserved as scratch.
const uint8_t kFpCaller[] = {32, 33, 34, 35, 36, 37, 38, 39,
                             42, 43, 44, 45, 46, 47, 48, 49, 60, 61};
const uint8_t kFpCallee[] = {40, 41, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59};
const uint8_t kFpScratch0 = 62, kFpScratch1 = 63;

const uint8_t kIntArgRegs[] = {10, 11, 12, 13, 14, 15, 16, 17};
const uint8_t kFpArgRegs[] = {42, 43, 44, 45, 46, 47, 48, 49};

struct Interval {
    int vreg = -1;
    int start = 0;
    int end = 0;
    bool fp = false;
    bool crossesCall = false;
};

/** Where a vreg lives after allocation. */
struct Loc {
    enum Kind { None, Reg, Spill } kind = None;
    uint8_t reg = 0;
    int slot = -1;  ///< spill frame-slot index
};

class RiscvFuncEmitter
{
  public:
    RiscvFuncEmitter(ModuleBuilder& b, const VFunc& f) : b_(b), f_(f) {}

    void
    run()
    {
        number();
        buildIntervals();
        allocate();
        layoutFrame();
        emitAll();
    }

  private:
    // =====================================================================
    // Instruction numbering and live intervals
    // =====================================================================

    void
    number()
    {
        int pos = 0;
        blockStart_.resize(f_.blocks.size());
        blockEnd_.resize(f_.blocks.size());
        for (const auto& blk : f_.blocks) {
            blockStart_[blk.id] = pos;
            for (const auto& inst : blk.insts) {
                if (inst.vop == VOp::Call)
                    callPositions_.push_back(pos);
                ++pos;
            }
            blockEnd_[blk.id] = pos;  // exclusive
        }
        numPositions_ = pos;
    }

    void
    buildIntervals()
    {
        const int n = f_.numVRegs;
        std::vector<int> start(n, numPositions_ + 1);
        std::vector<int> end(n, -1);
        auto touch = [&](int v, int pos) {
            start[v] = std::min(start[v], pos);
            end[v] = std::max(end[v], pos);
        };
        // Parameters are live from function entry.
        for (int p = 0; p < f_.numParams; ++p)
            touch(p, -1);

        int pos = 0;
        for (const auto& blk : f_.blocks) {
            for (const auto& inst : blk.insts) {
                for (int u : vinstUses(inst))
                    touch(u, pos);
                if (inst.dst >= 0)
                    touch(inst.dst, pos);
                ++pos;
            }
        }
        LiveSets live(f_);
        for (const auto& blk : f_.blocks) {
            for (int v : live.liveInRegs(blk.id))
                touch(v, blockStart_[blk.id]);
            for (int v : live.liveOutRegs(blk.id))
                touch(v, blockEnd_[blk.id]);
        }
        for (int v = 0; v < n; ++v) {
            if (end[v] < 0)
                continue;  // never used
            Interval iv;
            iv.vreg = v;
            iv.start = start[v];
            iv.end = end[v];
            iv.fp = f_.isFp(v);
            for (int cp : callPositions_) {
                if (iv.start < cp && cp < iv.end) {
                    iv.crossesCall = true;
                    break;
                }
            }
            intervals_.push_back(iv);
        }
        std::sort(intervals_.begin(), intervals_.end(),
                  [](const Interval& a, const Interval& b) {
                      return a.start < b.start;
                  });
    }

    // =====================================================================
    // Linear scan
    // =====================================================================

    void
    allocate()
    {
        loc_.resize(f_.numVRegs);
        std::vector<bool> busy(64, false);
        // Active intervals sorted incrementally by end.
        std::vector<Interval> active;

        auto expire = [&](int pos) {
            for (size_t i = 0; i < active.size();) {
                if (active[i].end < pos) {
                    busy[loc_[active[i].vreg].reg] = false;
                    active.erase(active.begin() + i);
                } else {
                    ++i;
                }
            }
        };

        auto tryPool = [&](const uint8_t* pool, size_t n) -> int {
            for (size_t i = 0; i < n; ++i) {
                if (!busy[pool[i]])
                    return pool[i];
            }
            return -1;
        };

        for (const Interval& iv : intervals_) {
            expire(iv.start);
            int reg = -1;
            if (iv.fp) {
                if (!iv.crossesCall)
                    reg = tryPool(kFpCaller, std::size(kFpCaller));
                if (reg < 0)
                    reg = tryPool(kFpCallee, std::size(kFpCallee));
            } else {
                if (!iv.crossesCall)
                    reg = tryPool(kIntCaller, std::size(kIntCaller));
                if (reg < 0)
                    reg = tryPool(kIntCallee, std::size(kIntCallee));
            }
            if (reg < 0) {
                loc_[iv.vreg].kind = Loc::Spill;
                loc_[iv.vreg].slot = newSpillSlot();
                continue;
            }
            busy[reg] = true;
            loc_[iv.vreg].kind = Loc::Reg;
            loc_[iv.vreg].reg = static_cast<uint8_t>(reg);
            active.push_back(iv);
            if (reg >= 32 ? isCallee(kFpCallee, std::size(kFpCallee), reg)
                          : isCallee(kIntCallee, std::size(kIntCallee), reg)) {
                usedCallee_.insert(static_cast<uint8_t>(reg));
            }
        }
    }

    static bool
    isCallee(const uint8_t* pool, size_t n, int reg)
    {
        for (size_t i = 0; i < n; ++i)
            if (pool[i] == reg)
                return true;
        return false;
    }

    int
    newSpillSlot()
    {
        spillSlots_.push_back(8);
        return static_cast<int>(spillSlots_.size()) - 1;
    }

    // =====================================================================
    // Frame layout
    // =====================================================================
    //
    //   sp + 0                : VCode frame slots (arrays, locals)
    //   ...                   : spill slots
    //   ...                   : saved callee regs
    //   frameSize - 8         : saved ra (if the function makes calls)

    void
    layoutFrame()
    {
        int64_t off = 0;
        for (const auto& slot : f_.frameSlots) {
            off = alignUp(off, static_cast<uint64_t>(slot.align));
            slotOffset_.push_back(off);
            off += slot.size;
        }
        off = alignUp(off, 8);
        for (size_t i = 0; i < spillSlots_.size(); ++i) {
            spillOffset_.push_back(off);
            off += 8;
        }
        for (uint8_t reg : usedCallee_) {
            calleeOffset_[reg] = off;
            off += 8;
        }
        makesCalls_ = !callPositions_.empty();
        if (makesCalls_) {
            raOffset_ = off;
            off += 8;
        }
        frameSize_ = static_cast<int64_t>(alignUp(off, 16));
    }

    // =====================================================================
    // Emission
    // =====================================================================

    void
    emitAll()
    {
        b_.defineLabel(f_.name);
        emitPrologue();
        for (size_t bi = 0; bi < f_.blocks.size(); ++bi) {
            const VBlock& blk = f_.blocks[bi];
            b_.defineLabel(blockLabel(f_.name, blk.id));
            for (const auto& inst : blk.insts)
                emitInst(inst, blk);
            // Fall-through to a non-adjacent block needs a jump.
            if (blk.fallThrough >= 0 || !endsWithJumpOrRet(blk)) {
                int next = blk.fallThrough;
                if (next < 0)
                    next = static_cast<int>(bi) + 1;  // plain fallthrough
                if (next != static_cast<int>(bi) + 1 &&
                    next < static_cast<int>(f_.blocks.size())) {
                    emitJump(next);
                }
            }
        }
    }

    static bool
    endsWithJumpOrRet(const VBlock& blk)
    {
        if (blk.insts.empty())
            return false;
        const VInst& last = blk.insts.back();
        if (last.vop == VOp::Ret)
            return true;
        return last.isMachine() && last.info().brKind == BrKind::Jump;
    }

    void
    emitPrologue()
    {
        if (frameSize_ > 0) {
            Inst adj;
            adj.op = Op::ADDI;
            adj.dst = kRegSp;
            adj.src1 = kRegSp;
            adj.imm = -frameSize_;
            b_.emit(adj);
        }
        if (makesCalls_)
            emitStoreReg(kRegRa, raOffset_, false);
        for (const auto& [reg, off] : calleeOffset_)
            emitStoreReg(reg, off, reg >= 32);

        // Copy incoming arguments to their allocated homes.
        std::vector<std::pair<uint8_t, uint8_t>> moves;  // src, dst
        int intIdx = 0, fpIdx = 0;
        for (int p = 0; p < f_.numParams; ++p) {
            const bool fp = f_.isFp(p);
            const uint8_t src = fp ? kFpArgRegs[fpIdx++]
                                   : kIntArgRegs[intIdx++];
            if (loc_[p].kind == Loc::Reg) {
                if (loc_[p].reg != src)
                    moves.push_back({src, loc_[p].reg});
            } else if (loc_[p].kind == Loc::Spill) {
                emitStoreReg(src, spillOffset_[loc_[p].slot], fp);
            }
        }
        emitParallelMoves(moves);
    }

    /** Resolve a set of register-to-register moves that may conflict. */
    void
    emitParallelMoves(std::vector<std::pair<uint8_t, uint8_t>> moves)
    {
        // Emit moves whose destination is not a pending source; break
        // cycles through the scratch register.
        while (!moves.empty()) {
            bool progress = false;
            for (size_t i = 0; i < moves.size(); ++i) {
                const uint8_t dst = moves[i].second;
                bool dstIsSrc = false;
                for (size_t j = 0; j < moves.size(); ++j) {
                    if (j != i && moves[j].first == dst) {
                        dstIsSrc = true;
                        break;
                    }
                }
                if (!dstIsSrc) {
                    emitMove(moves[i].second, moves[i].first);
                    moves.erase(moves.begin() + i);
                    progress = true;
                    break;
                }
            }
            if (!progress) {
                // Cycle: rotate through scratch.
                const bool fp = moves[0].first >= 32;
                const uint8_t scratch = fp ? kFpScratch0 : kIntScratch0;
                emitMove(scratch, moves[0].first);
                // Redirect the move that consumed moves[0].first.
                for (auto& m : moves) {
                    if (m.first == moves[0].first && &m != &moves[0])
                        m.first = scratch;
                }
                moves[0].first = scratch;
            }
        }
    }

    void
    emitMove(uint8_t dst, uint8_t src)
    {
        Inst mv;
        if (dst >= 32) {
            mv.op = Op::FMV_D;
        } else {
            mv.op = Op::MV;
        }
        mv.dst = dst;
        mv.src1 = src;
        b_.emit(mv);
    }

    void
    emitStoreReg(uint8_t reg, int64_t off, bool fp)
    {
        Inst st;
        st.op = fp ? Op::FSD : Op::SD;
        st.src1 = kRegSp;
        st.src2 = reg;
        st.imm = off;
        b_.emit(st);
    }

    void
    emitLoadReg(uint8_t reg, int64_t off, bool fp)
    {
        Inst ld;
        ld.op = fp ? Op::FLD : Op::LD;
        ld.dst = reg;
        ld.src1 = kRegSp;
        ld.imm = off;
        b_.emit(ld);
    }

    void
    emitJump(int block)
    {
        Inst j;
        j.op = Op::J;
        b_.emitFixup(j, FixupKind::PcRel, blockLabel(f_.name, block));
    }

    /** Register currently holding vreg source @p v (loading spills). */
    uint8_t
    srcReg(int v, bool second)
    {
        if (v == kVZero)
            return kRegZero;
        CH_ASSERT(v >= 0, "bad source vreg");
        const Loc& loc = loc_[v];
        if (loc.kind == Loc::Reg)
            return loc.reg;
        CH_ASSERT(loc.kind == Loc::Spill, "use of unallocated vreg");
        const bool fp = f_.isFp(v);
        const uint8_t scratch =
            fp ? (second ? kFpScratch1 : kFpScratch0)
               : (second ? kIntScratch1 : kIntScratch0);
        emitLoadReg(scratch, spillOffset_[loc.slot], fp);
        return scratch;
    }

    /** Register to compute vreg @p v's result into. */
    uint8_t
    dstReg(int v)
    {
        const Loc& loc = loc_[v];
        if (loc.kind == Loc::Reg)
            return loc.reg;
        return f_.isFp(v) ? kFpScratch0 : kIntScratch0;
    }

    /** Store the scratch back if @p v is spilled. */
    void
    finishDst(int v)
    {
        const Loc& loc = loc_[v];
        if (loc.kind == Loc::Spill) {
            const bool fp = f_.isFp(v);
            emitStoreReg(fp ? kFpScratch0 : kIntScratch0,
                         spillOffset_[loc.slot], fp);
        }
    }

    void
    emitInst(const VInst& inst, const VBlock& blk)
    {
        switch (inst.vop) {
          case VOp::Machine:
            emitMachine(inst);
            break;
          case VOp::LoadImm: {
            const uint8_t dst = dstReg(inst.dst);
            emitLoadImm(b_, dst, inst.imm);
            finishDst(inst.dst);
            break;
          }
          case VOp::LoadAddr: {
            const uint8_t dst = dstReg(inst.dst);
            Inst lui;
            lui.op = Op::LUI;
            lui.dst = dst;
            b_.emitFixup(lui, FixupKind::AbsHi20, inst.sym);
            Inst addi;
            addi.op = Op::ADDI;
            addi.dst = dst;
            addi.src1 = dst;
            b_.emitFixup(addi, FixupKind::AbsLo12, inst.sym);
            finishDst(inst.dst);
            break;
          }
          case VOp::FrameAddr: {
            const uint8_t dst = dstReg(inst.dst);
            Inst addi;
            addi.op = Op::ADDI;
            addi.dst = dst;
            addi.src1 = kRegSp;
            addi.imm = slotOffset_[inst.frameSlot];
            b_.emit(addi);
            finishDst(inst.dst);
            break;
          }
          case VOp::Call:
            emitCall(inst);
            break;
          case VOp::Ret:
            emitRet(inst);
            break;
        }
        (void)blk;
    }

    void
    emitMachine(const VInst& vinst)
    {
        const OpInfo& info = opInfo(vinst.op);
        Inst inst;
        inst.op = vinst.op;
        inst.imm = vinst.imm;
        if (info.numSrcs >= 1)
            inst.src1 = srcReg(vinst.src1, false);
        if (info.numSrcs >= 2)
            inst.src2 = srcReg(vinst.src2, true);
        if (info.hasDst && vinst.dst >= 0)
            inst.dst = dstReg(vinst.dst);
        else if (info.hasDst)
            inst.dst = kRegZero;

        if (vinst.target >= 0) {
            b_.emitFixup(inst, FixupKind::PcRel,
                         blockLabel(f_.name, vinst.target));
        } else {
            b_.emit(inst);
        }
        if (info.hasDst && vinst.dst >= 0)
            finishDst(vinst.dst);
    }

    void
    emitCall(const VInst& call)
    {
        // Marshal arguments into the ABI registers. Register sources may
        // conflict with argument registers, so use a parallel move for
        // register-resident values and direct loads for spilled ones.
        std::vector<std::pair<uint8_t, uint8_t>> moves;
        int intIdx = 0, fpIdx = 0;
        for (int argVreg : call.args) {
            const bool fp = f_.isFp(argVreg);
            CH_ASSERT(fp ? fpIdx < 8 : intIdx < 8, "too many call args");
            const uint8_t target = fp ? kFpArgRegs[fpIdx++]
                                      : kIntArgRegs[intIdx++];
            const Loc& loc = loc_[argVreg];
            if (loc.kind == Loc::Reg) {
                if (loc.reg != target)
                    moves.push_back({loc.reg, target});
            } else {
                emitLoadReg(target, spillOffset_[loc.slot], fp);
            }
        }
        emitParallelMoves(moves);

        Inst jal;
        jal.op = Op::JAL;
        jal.dst = kRegRa;
        b_.emitFixup(jal, FixupKind::PcRel, call.sym);

        if (call.dst >= 0) {
            const bool fp = f_.isFp(call.dst);
            const uint8_t retReg = fp ? kFpArgRegs[0] : kIntArgRegs[0];
            const uint8_t dst = dstReg(call.dst);
            if (dst != retReg)
                emitMove(dst, retReg);
            finishDst(call.dst);
        }
    }

    void
    emitRet(const VInst& ret)
    {
        if (ret.src1 >= 0) {
            const bool fp = f_.isFp(ret.src1);
            const uint8_t retReg = fp ? kFpArgRegs[0] : kIntArgRegs[0];
            const uint8_t src = srcReg(ret.src1, false);
            if (src != retReg)
                emitMove(retReg, src);
        }
        for (const auto& [reg, off] : calleeOffset_)
            emitLoadReg(reg, off, reg >= 32);
        if (makesCalls_)
            emitLoadReg(kRegRa, raOffset_, false);
        if (frameSize_ > 0) {
            Inst adj;
            adj.op = Op::ADDI;
            adj.dst = kRegSp;
            adj.src1 = kRegSp;
            adj.imm = frameSize_;
            b_.emit(adj);
        }
        Inst jr;
        jr.op = Op::JR;
        jr.src1 = kRegRa;
        b_.emit(jr);
    }

    ModuleBuilder& b_;
    const VFunc& f_;

    std::vector<int> blockStart_, blockEnd_;
    std::vector<int> callPositions_;
    int numPositions_ = 0;

    std::vector<Interval> intervals_;
    std::vector<Loc> loc_;
    std::vector<int64_t> spillSlots_;

    std::vector<int64_t> slotOffset_;
    std::vector<int64_t> spillOffset_;
    std::map<uint8_t, int64_t> calleeOffset_;
    std::set<uint8_t> usedCallee_;
    int64_t raOffset_ = 0;
    int64_t frameSize_ = 0;
    bool makesCalls_ = false;
};

} // namespace

void
emitRiscvFunc(ModuleBuilder& builder, const VFunc& f)
{
    RiscvFuncEmitter emitter(builder, f);
    emitter.run();
}

} // namespace ch
