#include <algorithm>
#include <set>

#include "backend/backend.h"
#include "backend/common.h"
#include "common/logging.h"

namespace ch {

namespace {

/** Linearized live range of a vreg (same scheme as the RISC allocator). */
struct Range {
    int start = 1 << 30;
    int end = -1;
    bool crossesCall = false;
    bool used = false;
};

/** Per-hand capacity budget usable by allocatable values. The scheduler
 *  needs slack under the architectural depth for relay/reconcile traffic. */
// The distance scheduler's reconcile pre-pass needs cap + tracked-entry
// slack to fit the reference-distance limit (see distance_sched.cc), so
// the budgets sit well under the architectural depth of 16.
constexpr int kHandCap[kNumHands] = {6, 6, 6, 0};  // t, u, v, s

/** Live-range length below which a value is considered short-lived (t). */
constexpr int kShortRange = 12;

std::vector<Range>
buildRanges(const VFunc& f, std::vector<int>* callPositions,
            std::vector<int>* blockStart, std::vector<int>* blockEnd)
{
    std::vector<Range> ranges(f.numVRegs);
    auto touch = [&](int v, int pos) {
        ranges[v].start = std::min(ranges[v].start, pos);
        ranges[v].end = std::max(ranges[v].end, pos);
        ranges[v].used = true;
    };
    int pos = 0;
    blockStart->resize(f.blocks.size());
    blockEnd->resize(f.blocks.size());
    for (const auto& blk : f.blocks) {
        (*blockStart)[blk.id] = pos;
        for (const auto& inst : blk.insts) {
            if (inst.vop == VOp::Call)
                callPositions->push_back(pos);
            for (int u : vinstUses(inst))
                touch(u, pos);
            if (inst.dst >= 0)
                touch(inst.dst, pos);
            ++pos;
        }
        (*blockEnd)[blk.id] = pos;
    }
    for (int p = 0; p < f.numParams; ++p)
        touch(p, 0);

    LiveSets live(f);
    for (const auto& blk : f.blocks) {
        for (int v : live.liveInRegs(blk.id))
            touch(v, (*blockStart)[blk.id]);
        for (int v : live.liveOutRegs(blk.id))
            touch(v, (*blockEnd)[blk.id]);
    }
    for (auto& r : ranges) {
        for (int cp : *callPositions) {
            if (r.start < cp && cp < r.end) {
                r.crossesCall = true;
                break;
            }
        }
    }
    return ranges;
}

} // namespace

HandPlan
assignHands(const VFunc& f)
{
    HandPlan plan;
    plan.handOf.assign(f.numVRegs, HandU);
    plan.inMemory.assign(f.numVRegs, false);
    plan.isLoopConstant.assign(f.numVRegs, false);

    CfgInfo cfg = buildCfg(f);
    DomTree dom = buildDomTree(f, cfg);
    LoopInfo loops = findLoops(f, cfg, dom);
    LiveSets live(f);

    std::vector<int> callPositions, blockStart, blockEnd;
    std::vector<Range> ranges =
        buildRanges(f, &callPositions, &blockStart, &blockEnd);

    // ------------------------------------------------------------------
    // Loop constants (Section 6.2): live into a loop header, not defined
    // in the loop, and used inside it. Candidate x is associated with the
    // outermost loop for which it is constant.
    // ------------------------------------------------------------------
    std::vector<std::set<int>> defsIn(loops.loops.size());
    std::vector<std::set<int>> usesIn(loops.loops.size());
    for (size_t li = 0; li < loops.loops.size(); ++li) {
        for (int blk : loops.loops[li].blocks) {
            for (const auto& inst : f.blocks[blk].insts) {
                if (inst.dst >= 0)
                    defsIn[li].insert(inst.dst);
                for (int u : vinstUses(inst))
                    usesIn[li].insert(u);
            }
        }
    }

    struct Candidate {
        int vreg;
        int loop;  ///< outermost loop it is constant for
        int depth;
    };
    std::vector<Candidate> candidates;
    std::set<int> candidateVregs;
    for (size_t li = 0; li < loops.loops.size(); ++li) {
        const auto& loop = loops.loops[li];
        for (int v : live.liveInRegs(loop.header)) {
            if (defsIn[li].count(v) || !usesIn[li].count(v))
                continue;
            bool better = false;
            for (auto& c : candidates) {
                if (c.vreg == v) {
                    // Prefer the outermost (shallowest) qualifying loop.
                    if (loop.depth < c.depth) {
                        c.loop = static_cast<int>(li);
                        c.depth = loop.depth;
                    }
                    better = true;
                    break;
                }
            }
            if (!better) {
                candidates.push_back({v, static_cast<int>(li), loop.depth});
                candidateVregs.insert(v);
            }
        }
    }

    // Algorithm 1 (greedy maximal independent set): drop x when some
    // other candidate y's definition lies inside x's associated loop.
    std::vector<int> defBlockOf(f.numVRegs, -1);
    for (const auto& blk : f.blocks) {
        for (const auto& inst : blk.insts) {
            if (inst.dst >= 0)
                defBlockOf[inst.dst] = blk.id;
        }
    }
    std::set<int> vAssigned;
    for (const auto& x : candidates) {
        bool conflict = false;
        for (const auto& y : candidates) {
            if (y.vreg == x.vreg)
                continue;
            const int defBlk = defBlockOf[y.vreg];
            if (defBlk >= 0 &&
                std::binary_search(loops.loops[x.loop].blocks.begin(),
                                   loops.loops[x.loop].blocks.end(),
                                   defBlk)) {
                conflict = true;
                break;
            }
        }
        if (!conflict)
            vAssigned.insert(x.vreg);
    }

    // ------------------------------------------------------------------
    // Classification: v for surviving loop constants, t for short-lived
    // values that do not cross calls, u for the rest (Section 4.3).
    // ------------------------------------------------------------------
    std::vector<int> defBlock(f.numVRegs, -1);
    for (const auto& blk : f.blocks) {
        for (const auto& inst : blk.insts) {
            if (inst.dst >= 0)
                defBlock[inst.dst] = blk.id;
        }
    }
    for (int v = 0; v < f.numVRegs; ++v) {
        if (!ranges[v].used)
            continue;
        if (vAssigned.count(v)) {
            plan.handOf[v] = HandV;
            plan.isLoopConstant[v] = true;
        } else if (ranges[v].crossesCall) {
            // Only v survives calls (callee-saved v[0..7], Section 4.4).
            // Values redefined inside a loop would force a v-frame
            // reconcile every iteration, defeating the quiet-v property
            // that lets loop constants sit still; spill those to memory
            // instead (exactly what STRAIGHT must do for everything).
            const int db = defBlock[v];
            if (db >= 0 && loops.innermost[db] >= 0) {
                plan.handOf[v] = HandU;
                plan.inMemory[v] = true;
            } else {
                plan.handOf[v] = HandV;
            }
        } else if (ranges[v].end - ranges[v].start <= kShortRange) {
            plan.handOf[v] = HandT;
        } else {
            plan.handOf[v] = HandU;
        }
    }

    // ------------------------------------------------------------------
    // Capacity enforcement: per hand, the maximum number of concurrently
    // live values must leave slack for relays (and the v hand is limited
    // to the eight callee-saved positions); overflow is demoted to stack
    // memory, longest live ranges first.
    // ------------------------------------------------------------------
    for (int hand = 0; hand < kNumHands; ++hand) {
        if (hand == HandS)
            continue;
        while (true) {
            // Event sweep for maximum overlap among non-demoted members.
            std::vector<std::pair<int, int>> events;  // pos, +1/-1
            std::vector<int> members;
            for (int v = 0; v < f.numVRegs; ++v) {
                if (!ranges[v].used || plan.handOf[v] != hand ||
                    plan.inMemory[v]) {
                    continue;
                }
                members.push_back(v);
                events.push_back({ranges[v].start, 1});
                events.push_back({ranges[v].end + 1, -1});
            }
            std::sort(events.begin(), events.end());
            int cur = 0, peak = 0;
            for (const auto& [pos, delta] : events) {
                cur += delta;
                peak = std::max(peak, cur);
            }
            if (peak <= kHandCap[hand])
                break;
            // Demote the member with the longest range.
            int worst = -1, worstLen = -1;
            for (int v : members) {
                const int len = ranges[v].end - ranges[v].start;
                if (len > worstLen) {
                    worstLen = len;
                    worst = v;
                }
            }
            plan.inMemory[worst] = true;
        }
    }
    return plan;
}

HandPlan
straightPlan(const VFunc& f)
{
    HandPlan plan;
    plan.handOf.assign(f.numVRegs, 0);
    plan.inMemory.assign(f.numVRegs, false);
    plan.isLoopConstant.assign(f.numVRegs, false);

    std::vector<int> callPositions, blockStart, blockEnd;
    std::vector<Range> ranges =
        buildRanges(f, &callPositions, &blockStart, &blockEnd);

    // Values live across a call cannot stay in the ring.
    for (int v = 0; v < f.numVRegs; ++v) {
        if (ranges[v].used && ranges[v].crossesCall)
            plan.inMemory[v] = true;
    }

    // Ring capacity: demote longest live ranges until the peak number of
    // concurrently live ring values leaves relay headroom.
    constexpr int kRingCap = 55;
    while (true) {
        std::vector<std::pair<int, int>> events;
        std::vector<int> members;
        for (int v = 0; v < f.numVRegs; ++v) {
            if (!ranges[v].used || plan.inMemory[v])
                continue;
            members.push_back(v);
            events.push_back({ranges[v].start, 1});
            events.push_back({ranges[v].end + 1, -1});
        }
        std::sort(events.begin(), events.end());
        int cur = 0, peak = 0;
        for (const auto& [pos, delta] : events) {
            cur += delta;
            peak = std::max(peak, cur);
        }
        if (peak <= kRingCap)
            break;
        int worst = -1, worstLen = -1;
        for (int v : members) {
            const int len = ranges[v].end - ranges[v].start;
            if (len > worstLen) {
                worstLen = len;
                worst = v;
            }
        }
        plan.inMemory[worst] = true;
    }
    return plan;
}

} // namespace ch
