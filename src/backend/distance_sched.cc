#include <algorithm>
#include <array>
#include <climits>
#include <map>

#include "backend/common.h"
#include "common/bitutil.h"
#include "common/logging.h"

namespace ch {

namespace {

// Pseudo-value ids tracked alongside virtual registers in the position
// map. Negative so they never collide with vreg ids.
constexpr int kSpVal = -10;        ///< current SP (Clockhands: s hand)
constexpr int kRaVal = -11;        ///< return address (leaf functions)
constexpr int kCallerSpVal = -12;  ///< caller SP at function entry
constexpr int kTmp1 = -20;         ///< per-instruction reload temporaries
constexpr int kTmp2 = -21;

/**
 * Emits one function for STRAIGHT or Clockhands by tracking, for every
 * live value, the hand-relative write position of its producer. See
 * backend.h for the big picture. The key invariants:
 *
 *  - STRAIGHT: every emitted instruction advances the single ring by one
 *    write; a value written as the P-th write is referenced at distance
 *    (cnt - P + 1), which must stay within [1, kStraightMaxDist].
 *  - Clockhands: only value-producing instructions advance their
 *    destination hand; distance is (cnt[h] - P) in [0, 15] (s: [0, 14]).
 *  - Every basic block that is not a straight-line continuation of its
 *    single predecessor has a canonical entry frame: the most recent
 *    writes of each hand are exactly the block's live-in values of that
 *    hand in ascending vreg order (STRAIGHT additionally has one newest
 *    "junk" slot written by the arriving control transfer -- re-created
 *    by a nop on fall-through edges, the paper's Fig. 2(c) overhead).
 *    Predecessors re-establish the frame with relay mv instructions,
 *    which is where the Fig. 2(a) loop-constant and Fig. 2(b)
 *    max-distance overheads appear for STRAIGHT and disappear for
 *    Clockhands.
 */
class DistanceEmitter
{
  public:
    DistanceEmitter(ModuleBuilder& b, const VFunc& f, Isa isa)
        : b_(b),
          f_(f),
          isa_(isa),
          straight_(isa == Isa::Straight),
          plan_(straight_ ? straightPlan(f) : assignHands(f)),
          live_(f)
    {
    }

    void
    run()
    {
        analyze();
        layoutFrame();
        buildFrames();
        b_.defineLabel(f_.name);
        emitPrologue();
        // If something branches back to block 0 (rare), establish its
        // canonical frame explicitly before entering it.
        if (!inherits_[0])
            reconcileTo(0, /*transferWrites=*/0);
        for (size_t bi = 0; bi < f_.blocks.size(); ++bi)
            emitBlock(static_cast<int>(bi));
    }

  private:
    // =====================================================================
    // Position accounting
    // =====================================================================

    /** Where a value currently resides (values can sit temporarily in a
     *  hand other than their assigned one, e.g. call results in s). */
    struct Track {
        int64_t pos;
        int hand;
    };

    /** The hand a value is *assigned* to (destination of its writes). */
    int
    handOf(int v) const
    {
        if (straight_)
            return 0;
        if (v == kSpVal || v == kRaVal || v == kCallerSpVal)
            return HandS;
        if (v == kTmp1 || v == kTmp2)
            return HandT;
        CH_ASSERT(v >= 0, "bad tracked id");
        return plan_.handOf[v];
    }

    /**
     * The hand a value is kept in at canonical points: leaf-function
     * parameters stay in s (where the convention delivered them); all
     * other values use their assigned hand.
     */
    int
    homeHand(int v) const
    {
        if (!straight_ && leaf_ && v >= 0 && v < f_.numParams)
            return HandS;
        return handOf(v);
    }

    /** The hand a tracked value currently lives in. */
    int
    curHandOf(int v) const
    {
        auto it = pos_.find(v);
        CH_ASSERT(it != pos_.end(), "untracked value ", v);
        return straight_ ? 0 : it->second.hand;
    }

    int
    limitOf(int hand) const
    {
        if (straight_)
            return kStraightMaxDist;
        return hand == HandS ? kHandDepth - 2 : kHandDepth - 1;
    }

    bool tracked(int v) const { return pos_.count(v) != 0; }

    int64_t
    dist(int v) const
    {
        auto it = pos_.find(v);
        CH_ASSERT(it != pos_.end(), "untracked value ", v, " in ", f_.name);
        const int h = straight_ ? 0 : it->second.hand;
        return cnt_[h] - it->second.pos + (straight_ ? 1 : 0);
    }

    /** Account the ring/hand write of an emitted instruction. */
    void
    accountWrite(const Inst& inst, int dstV)
    {
        if (straight_) {
            ++cnt_[0];
            if (dstV != INT_MIN)
                pos_[dstV] = {cnt_[0], 0};
        } else if (inst.info().hasDst) {
            ++cnt_[inst.dst];
            if (dstV != INT_MIN)
                pos_[dstV] = {cnt_[inst.dst], inst.dst};
        }
    }

    /** Relay @p v with a mv so its distance resets to the minimum. */
    void
    relayRaw(int v)
    {
        Inst mv;
        mv.op = Op::MV;
        setSrc1(mv, v);
        if (!straight_)
            mv.dst = static_cast<uint8_t>(homeHand(v));
        b_.emit(mv);
        accountWrite(mv, v);  // re-homes v
        ++relayCount_;
    }

    /** Relay any tracked value about to fall out of reach of @p hand. */
    void
    fixAging(int hand)
    {
        for (int guard = 0; guard < 4096; ++guard) {
            int worst = INT_MIN;
            int64_t worstDist = -1;
            for (const auto& [v, t] : pos_) {
                if ((straight_ ? 0 : t.hand) != hand)
                    continue;
                const int64_t d = cnt_[hand] - t.pos + (straight_ ? 1 : 0);
                if (d >= limitOf(hand) && d > worstDist) {
                    worstDist = d;
                    worst = v;
                }
            }
            if (worst == INT_MIN)
                return;
            CH_ASSERT(worstDist <= limitOf(hand),
                      "value escaped reach in ", f_.name);
            relayRaw(worst);
        }
        panic("fixAging did not converge in ", f_.name);
    }

    /** Emit + account + keep every tracked value reachable. */
    void
    emitI(const Inst& inst, int dstV = INT_MIN)
    {
        b_.emit(inst);
        accountWrite(inst, dstV);
        if (straight_)
            fixAging(0);
        else if (inst.info().hasDst)
            fixAging(inst.dst);
    }

    void
    emitFixI(const Inst& inst, FixupKind kind, const std::string& sym,
             int dstV = INT_MIN)
    {
        b_.emitFixup(inst, kind, sym);
        accountWrite(inst, dstV);
        if (straight_)
            fixAging(0);
        else if (inst.info().hasDst)
            fixAging(inst.dst);
    }

    // --- source operand construction -------------------------------------

    void
    setSrcField(Inst& inst, int which, int hand, int64_t d)
    {
        if (which == 1) {
            inst.src1 = static_cast<uint8_t>(d);
            inst.src1Hand = static_cast<uint8_t>(hand);
        } else {
            inst.src2 = static_cast<uint8_t>(d);
            inst.src2Hand = static_cast<uint8_t>(hand);
        }
    }

    void
    setSrc(Inst& inst, int which, int v)
    {
        if (v == kVZero) {
            if (straight_) {
                setSrcField(inst, which, 0, kStraightZeroDist);
            } else {
                setSrcField(inst, which, HandS, kHandZeroDist);
            }
            return;
        }
        const int h = curHandOf(v);
        const int64_t d = dist(v);
        CH_ASSERT(d >= (straight_ ? 1 : 0) && d <= limitOf(h),
                  "operand out of reach: v", v, " d", d, " in ", f_.name);
        setSrcField(inst, which, h, d);
    }

    void setSrc1(Inst& inst, int v) { setSrc(inst, 1, v); }
    void setSrc2(Inst& inst, int v) { setSrc(inst, 2, v); }

    /** STRAIGHT: make src1 the special SP base. */
    void
    setSrc1Sp(Inst& inst)
    {
        if (straight_) {
            inst.src1 = kStraightSpBase;
        } else {
            setSrc1(inst, kSpVal);
        }
    }

    /** Relay sources until each is reachable with @p headroom to spare. */
    void
    ensureReachable(std::initializer_list<int> vals, int headroom = 0)
    {
        for (int guard = 0; guard < 4096; ++guard) {
            bool again = false;
            for (int v : vals) {
                if (v == kVZero || v == INT_MIN || !tracked(v))
                    continue;
                if (dist(v) + headroom > limitOf(curHandOf(v))) {
                    relayRaw(v);
                    again = true;
                }
            }
            if (!again)
                return;
        }
        panic("ensureReachable did not converge in ", f_.name);
    }

    // =====================================================================
    // Analyses, frame layout
    // =====================================================================

    void
    analyze()
    {
        leaf_ = true;
        for (const auto& blk : f_.blocks) {
            for (const auto& inst : blk.insts) {
                if (inst.vop == VOp::Call)
                    leaf_ = false;
            }
        }
        // Clockhands: a function that writes the v hand at all shifts the
        // caller's v distances, so it must save/restore the eight
        // callee-saved v positions (Section 4.4).
        usesV_ = false;
        if (!straight_) {
            for (int v = 0; v < f_.numVRegs; ++v) {
                if (homeHand(v) == HandV) {
                    usesV_ = true;
                    break;
                }
            }
        }
        CfgInfo cfg = buildCfg(f_);

        // A block inherits its single layout-predecessor's exit state when
        // that predecessor's final emitted path flows into it. The entry
        // block inherits the prologue's state (whose argument layout does
        // not match the generic frame order).
        inherits_.assign(f_.blocks.size(), false);
        if (!f_.blocks.empty())
            inherits_[0] = cfg.preds[0].empty();
        for (size_t bi = 1; bi < f_.blocks.size(); ++bi) {
            const int prev = static_cast<int>(bi) - 1;
            if (cfg.preds[bi].size() != 1 || cfg.preds[bi][0] != prev)
                continue;
            const VBlock& pb = f_.blocks[prev];
            bool finalEdge = false;
            if (pb.fallThrough == static_cast<int>(bi)) {
                finalEdge = true;
            } else if (!pb.insts.empty()) {
                const VInst& last = pb.insts.back();
                if (last.isMachine() &&
                    last.info().brKind == BrKind::Jump &&
                    last.target == static_cast<int>(bi)) {
                    finalEdge = true;
                }
            } else if (pb.fallThrough < 0 && pb.insts.empty()) {
                finalEdge = true;
            }
            // Plain unterminated block flowing into bi.
            if (!finalEdge && pb.fallThrough < 0 &&
                (pb.insts.empty() || !(pb.insts.back().vop == VOp::Ret ||
                                       pb.insts.back().isTerminatorBranch()))) {
                finalEdge = true;
            }
            inherits_[bi] = finalEdge;
        }

    }

    void
    buildFrames()
    {
        // Canonical frames, per hand, ordered oldest-to-newest. Ordinary
        // values sort ascending by vreg id. Leaf functions keep their
        // parameters where the calling convention delivered them (the s
        // hand / the entry ring positions), in arrival order
        // [argN .. arg1], so straight-line leaves reconcile for free.
        frames_.resize(f_.blocks.size());
        for (const auto& blk : f_.blocks) {
            auto& frame = frames_[blk.id];
            std::vector<int> paramsLive;
            for (int v : live_.liveInRegs(blk.id)) {
                if (plan_.inMemory[v])
                    continue;
                if (leaf_ && v < f_.numParams)
                    continue;  // added below, dead or alive
                frame[homeHand(v)].push_back(v);
            }
            if (leaf_) {
                // Keep every parameter in the frame (even dead ones):
                // placeholders preserve the entry layout's contiguity, so
                // untouched s states reconcile with zero moves.
                for (int p = 0; p < f_.numParams; ++p) {
                    if (!plan_.inMemory[p])
                        paramsLive.push_back(p);
                }
            }
            // Arrival order: argN (oldest) .. arg1 (newest) = descending.
            std::sort(paramsLive.begin(), paramsLive.end(),
                      std::greater<int>());

            if (straight_) {
                std::vector<int> ring = paramsLive;
                if (leaf_)
                    ring.push_back(kRaVal);
                ring.insert(ring.end(), frame[0].begin(), frame[0].end());
                frame[0] = std::move(ring);
            } else {
                std::vector<int> sHand;
                if (lightFrame_)
                    sHand.push_back(kCallerSpVal);
                sHand.insert(sHand.end(), paramsLive.begin(),
                             paramsLive.end());
                if (leaf_)
                    sHand.push_back(kRaVal);
                if (!lightFrame_)
                    sHand.push_back(kSpVal);
                frame[HandS] = std::move(sHand);
            }
        }
    }

    void
    layoutFrame()
    {
        int64_t off = 0;
        for (const auto& slot : f_.frameSlots) {
            off = alignUp(off, static_cast<uint64_t>(slot.align));
            slotOffset_.push_back(off);
            off += slot.size;
        }
        off = alignUp(off, 8);
        memSlot_.assign(f_.numVRegs, -1);
        for (int v = 0; v < f_.numVRegs; ++v) {
            if (plan_.inMemory[v]) {
                memSlot_[v] = off;
                off += 8;
            }
        }
        if (usesV_) {
            vSaveOffset_ = off;
            off += 64;
        }
        if (!leaf_) {
            raOffset_ = off;
            off += 8;
        }
        frameSize_ = static_cast<int64_t>(alignUp(off, 16));
        lightFrame_ = !straight_ && leaf_ && frameSize_ == 0 && !usesV_;
    }

    // =====================================================================
    // Memory-resident values
    // =====================================================================

    /** Load memory vreg @p v, tracked under temp id @p tmpId. */
    void
    reload(int v, int tmpId)
    {
        Inst ld;
        ld.op = Op::LD;
        setSrc1Sp(ld);
        ld.imm = memSlot_[v];
        if (!straight_)
            ld.dst = HandT;
        emitI(ld, tmpId);
    }

    /** Largest store offset encodable in the target's S format. */
    int64_t
    storeImmLimit() const
    {
        return straight_ ? 1023 : 4095;
    }

    /**
     * SP-relative 8-byte store with an offset that may exceed the store
     * format's immediate: falls back to materializing the address.
     */
    void
    storeToFrame(int64_t offset, int srcV)
    {
        if (offset <= storeImmLimit()) {
            Inst st;
            st.op = Op::SD;
            setSrc1Sp(st);
            setSrc2(st, srcV);
            st.imm = offset;
            emitI(st);
            return;
        }
        Inst addr;
        addr.op = Op::ADDI;
        setSrc1Sp(addr);
        addr.imm = offset;
        if (!straight_)
            addr.dst = HandT;
        emitI(addr, kTmp2);
        Inst st;
        st.op = Op::SD;
        setSrc1(st, kTmp2);
        setSrc2(st, srcV);
        st.imm = 0;
        emitI(st);
        pos_.erase(kTmp2);
    }

    /** Store the just-produced value of memory vreg @p v to its slot. */
    void
    spillStore(int v)
    {
        storeToFrame(memSlot_[v], v);
    }

    // =====================================================================
    // Reconciliation
    // =====================================================================

    /**
     * Re-establish @p block's canonical frame, assuming the edge will be
     * completed by @p transferWrites ring writes (STRAIGHT: 1 for j /
     * branch, 0 for plain fall-through). Emits relay mvs (and, for a
     * STRAIGHT fall-through, the Fig. 2(c) nop).
     */
    void
    reconcileTo(int block, int transferWrites)
    {
        if (!straight_) {
            for (int h = 0; h < kNumHands; ++h)
                reconcileHand(frames_[block][h], h);
            return;
        }
        const auto& frame = frames_[block][0];
        // Fall-through edges may need an explicit junk slot (nop).
        if (transferWrites == 0) {
            if (framePlaced(frame, 0, /*junkWrites=*/0))
                return;  // the state happens to match exactly
            reconcileHand(frame, 0);
            Inst nop;
            nop.op = Op::NOP;
            emitI(nop);
            ++nopCount_;
        } else {
            reconcileHand(frame, 0);
            // The caller emits the transfer, providing the junk slot.
        }
    }

    /**
     * True when the whole frame already sits at its target positions with
     * zero mvs and zero extra junk writes (STRAIGHT fall-through check).
     */
    bool
    framePlaced(const std::vector<int>& frame, size_t k, int junkWrites)
    {
        const int h = 0;
        const int64_t n = static_cast<int64_t>(frame.size());
        const int64_t c = cnt_[h] + static_cast<int64_t>(k) + junkWrites;
        for (size_t i = 0; i + k < frame.size(); ++i) {
            auto it = pos_.find(frame[i]);
            if (it == pos_.end())
                return false;
            if (it->second.pos != c - n + static_cast<int64_t>(i))
                return false;
        }
        return true;
    }

    /**
     * Emit the mv suffix that re-establishes @p frame for hand @p h.
     *
     * Target positions (C = entry count after all pre-entry writes):
     *   Clockhands: frame[i] at C - n + 1 + i      (frame[n-1] newest)
     *   STRAIGHT:   frame[i] at C - n + i          (junk slot at C)
     * where C = cnt + k (+1 junk, STRAIGHT) after k suffix mvs.
     *
     * A safety pre-pass relays any tracked value of this hand whose
     * distance could exceed the limit during the worst-case write burst
     * (all frame mvs plus all pre-pass relays); the per-hand capacity
     * budgets in hand assignment guarantee that burst fits the limit.
     */
    void
    reconcileHand(const std::vector<int>& frame, int h)
    {
        const int64_t n = static_cast<int64_t>(frame.size());
        if (n == 0)
            return;

        // Safety pre-pass: W = worst-case number of writes this hand may
        // see before any given value is read again during reconciliation.
        int m = 0;
        for (const auto& [v, t] : pos_) {
            if ((straight_ ? 0 : t.hand) == h)
                ++m;
        }
        const int64_t w = n + m;
        // Frame members first (canonical order), then the rest.
        std::vector<int> order = frame;
        for (const auto& [v, t] : pos_) {
            if ((straight_ ? 0 : t.hand) != h)
                continue;
            if (std::find(frame.begin(), frame.end(), v) == frame.end())
                order.push_back(v);
        }
        for (int v : order) {
            if (!tracked(v))
                panic("frame value v", v, " untracked in ", f_.name);
            if (dist(v) + w > limitOf(h))
                relayRaw(v);
        }

        // Max kept prefix: smallest k whose kept values are in place.
        const int64_t junk = straight_ ? 1 : 0;
        size_t k = frame.size();
        for (size_t tryK = 0; tryK <= frame.size(); ++tryK) {
            const int64_t c = cnt_[h] + static_cast<int64_t>(tryK) + junk;
            bool ok = true;
            for (size_t i = 0; i + tryK < frame.size(); ++i) {
                auto it = pos_.find(frame[i]);
                const int64_t target =
                    straight_ ? c - n + static_cast<int64_t>(i)
                              : c - n + 1 + static_cast<int64_t>(i);
                if (it == pos_.end() || it->second.pos != target ||
                    (!straight_ && it->second.hand != h)) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                k = tryK;
                break;
            }
        }
        for (size_t j = 0; j < k; ++j)
            relayRaw(frame[frame.size() - k + j]);
    }

    /** Reset tracking to @p block's canonical entry frame. */
    void
    canonicalizeEntry(int block)
    {
        std::map<int, Track> fresh;
        for (int h = 0; h < (straight_ ? 1 : kNumHands); ++h) {
            const auto& frame = frames_[block][h];
            const int64_t n = static_cast<int64_t>(frame.size());
            for (int64_t i = 0; i < n; ++i) {
                const int64_t posv =
                    straight_ ? cnt_[h] - (n + 1) + i + 1
                              : cnt_[h] - n + i + 1;
                fresh[frame[i]] = {posv, h};
            }
        }
        pos_ = std::move(fresh);
    }

    /** Drop tracked entries that are dead at @p block entry. */
    void
    pruneToLiveIn(int block)
    {
        std::map<int, Track> kept;
        for (const auto& [v, t] : pos_) {
            if (v == kTmp1 || v == kTmp2)
                continue;
            if (v < 0 || (leaf_ && v < f_.numParams)) {
                kept.emplace(v, t);
                continue;
            }
            if (live_.liveIn(block, v))
                kept.emplace(v, t);
        }
        pos_ = std::move(kept);
    }

    // =====================================================================
    // Prologue / epilogue
    // =====================================================================

    void
    emitPrologue()
    {
        const int nargs = f_.numParams;
        pos_.clear();
        for (auto& c : cnt_)
            c = 0;

        if (!straight_ && nargs > 10) {
            fatal("function ", f_.name, " has ", nargs,
                  " parameters; the Clockhands s hand supports at most 10");
        }
        if (straight_) {
            // Entry ring state: [argN .. arg1, ra].
            cnt_[0] = nargs + 1;
            for (int i = 1; i <= nargs; ++i)
                pos_[i - 1] = {nargs + 1 - i, 0};
            pos_[kRaVal] = {nargs + 1, 0};
            if (frameSize_ > 0) {
                Inst sp;
                sp.op = Op::SPADDI;
                sp.imm = -frameSize_;
                emitI(sp);
            }
        } else {
            // Entry s state: [callerSP, argN .. arg1, ra].
            cnt_[HandS] = nargs + 2;
            pos_[kCallerSpVal] = {1, HandS};
            for (int i = 1; i <= nargs; ++i)
                pos_[i - 1] = {nargs + 2 - i, HandS};
            pos_[kRaVal] = {nargs + 2, HandS};
            if (lightFrame_) {
                // Frameless leaf: never establish a local SP; the
                // epilogue re-exposes the caller's SP at s[0].
            } else {
                // Establish our SP at s[0] (Section 4.4):
                //   addi s, s[nargs+1], -frameSize
                Inst sp;
                sp.op = Op::ADDI;
                sp.dst = HandS;
                setSrc1(sp, kCallerSpVal);
                sp.imm = -frameSize_;
                emitI(sp, kSpVal);
                pos_.erase(kCallerSpVal);
            }
        }

        if (!leaf_) {
            storeToFrame(raOffset_, kRaVal);
            pos_.erase(kRaVal);
        }

        if (usesV_) {
            // Save the caller's v[0..7] before any v write.
            for (int k = 0; k < 8; ++k) {
                Inst st;
                st.op = Op::SD;
                setSrc1Sp(st);
                st.src2Hand = HandV;
                st.src2 = static_cast<uint8_t>(k);
                st.imm = vSaveOffset_ + 8 * k;
                CH_ASSERT(st.imm <= storeImmLimit(),
                          "v save area out of reach");
                emitI(st);
            }
        }

        // Home the parameters. Leaf functions write s only in the
        // epilogue, so their parameters can stay s-resident and be read
        // at constant distances (the reconciler migrates any that later
        // frames need in their assigned hands).
        for (int p = 0; p < nargs; ++p) {
            if (!tracked(p))
                continue;
            if (plan_.inMemory[p]) {
                spillStore(p);
                pos_.erase(p);
            } else if (!straight_ && !leaf_ && handOf(p) != HandS) {
                Inst mv;
                mv.op = Op::MV;
                setSrc1(mv, p);
                mv.dst = static_cast<uint8_t>(handOf(p));
                emitI(mv, p);
            }
            // STRAIGHT parameters simply stay in the ring.
        }
        // In Clockhands, drop any parameter still keyed to s positions
        // (unused or s-resident copies are re-homed above).
    }

    void
    emitRet(const VInst& ret)
    {
        // Load the return address first (while SP still addresses our
        // frame), then the value, restore SP, and jump.
        int raRef = kRaVal;
        if (!leaf_) {
            Inst ld;
            ld.op = Op::LD;
            setSrc1Sp(ld);
            ld.imm = raOffset_;
            if (!straight_)
                ld.dst = HandT;
            emitI(ld, kTmp2);
            raRef = kTmp2;
        }

        if (straight_) {
            int retRef = ret.src1;
            if (ret.src1 >= 0 && plan_.inMemory[ret.src1]) {
                reload(ret.src1, kTmp1);
                retRef = kTmp1;
            }
            if (frameSize_ > 0) {
                Inst sp;
                sp.op = Op::SPADDI;
                sp.imm = frameSize_;
                emitI(sp);
            }
            if (ret.src1 >= 0) {
                // Return value must be the second-to-last write (the jr
                // provides the final slot): callers read it at [2].
                Inst mv;
                mv.op = Op::MV;
                setSrc1(mv, retRef);
                emitI(mv);
            }
            Inst jr;
            jr.op = Op::JR;
            setSrc1(jr, raRef);
            emitI(jr);
        } else {
            // Write the return value to s (always before the SP restore,
            // so callers find SP at s[0] and the value at s[1]).
            if (ret.src1 >= 0) {
                if (plan_.inMemory[ret.src1]) {
                    Inst ld;
                    ld.op = Op::LD;
                    setSrc1Sp(ld);
                    ld.imm = memSlot_[ret.src1];
                    ld.dst = HandS;
                    emitI(ld);
                } else {
                    Inst mv;
                    mv.op = Op::MV;
                    setSrc1(mv, ret.src1);
                    mv.dst = HandS;
                    emitI(mv);
                }
            }
            if (usesV_) {
                // Re-create the caller's v[0..7]: write v[7] first so the
                // final eight v writes are the saved values in order.
                for (auto it = pos_.begin(); it != pos_.end();) {
                    it = (!straight_ && it->second.hand == HandV)
                             ? pos_.erase(it)
                             : std::next(it);
                }
                for (int k = 7; k >= 0; --k) {
                    Inst ld;
                    ld.op = Op::LD;
                    setSrc1Sp(ld);
                    ld.imm = vSaveOffset_ + 8 * k;
                    ld.dst = HandV;
                    emitI(ld);
                }
            }

            // Restore the caller SP to s[0]: either undo our frame
            // adjustment or (frameless leaf) copy the still-live caller
            // SP forward.
            Inst sp;
            if (lightFrame_) {
                sp.op = Op::MV;
                sp.dst = HandS;
                setSrc1(sp, kCallerSpVal);
                emitI(sp, kCallerSpVal);
            } else {
                sp.op = Op::ADDI;
                sp.dst = HandS;
                setSrc1(sp, kSpVal);
                sp.imm = frameSize_;
                emitI(sp, kSpVal);
            }

            Inst jr;
            jr.op = Op::JR;
            setSrc1(jr, raRef);
            emitI(jr);
        }
    }

    // =====================================================================
    // Calls
    // =====================================================================

    void
    emitCall(const VInst& call)
    {
        if (!straight_) {
            // Live v values must sit within the callee-saved window
            // v[0..7] (Section 4.4).
            for (int guard = 0; guard < 1024; ++guard) {
                int worst = INT_MIN;
                int64_t worstDist = -1;
                for (const auto& [v, t] : pos_) {
                    if (v < 0 || t.hand != HandV)
                        continue;
                    const int64_t d = cnt_[HandV] - t.pos;
                    if (d > 7 && d > worstDist) {
                        worstDist = d;
                        worst = v;
                    }
                }
                if (worst == INT_MIN)
                    break;
                relayRaw(worst);
            }
        }

        // Marshal arguments: argN first, arg1 last, into the ring / s.
        for (int i = static_cast<int>(call.args.size()) - 1; i >= 0; --i) {
            const int arg = call.args[i];
            if (arg >= 0 && plan_.inMemory[arg]) {
                Inst ld;
                ld.op = Op::LD;
                setSrc1Sp(ld);
                ld.imm = memSlot_[arg];
                if (!straight_)
                    ld.dst = HandS;
                emitI(ld);
            } else {
                ensureReachable({arg});
                Inst mv;
                mv.op = Op::MV;
                setSrc1(mv, arg);
                if (!straight_)
                    mv.dst = HandS;
                emitI(mv);
            }
        }

        Inst jal;
        jal.op = Op::JAL;
        if (!straight_)
            jal.dst = HandS;
        emitFixI(jal, FixupKind::PcRel, call.sym);

        // Post-call state.
        if (straight_) {
            // Everything in the ring is stale; the callee's last two
            // writes are [return value, jr slot].
            pos_.clear();
            cnt_[0] += 2;
            if (call.dst >= 0) {
                pos_[call.dst] = {cnt_[0] - 1, 0};
                if (plan_.inMemory[call.dst]) {
                    spillStore(call.dst);
                    pos_.erase(call.dst);
                }
            }
        } else {
            // t, u, s are clobbered; v values within the callee-saved
            // window keep their exact distances.
            for (auto it = pos_.begin(); it != pos_.end();) {
                bool keep = false;
                if (it->second.hand == HandV &&
                    cnt_[HandV] - it->second.pos <= 7) {
                    keep = true;
                }
                it = keep ? std::next(it) : pos_.erase(it);
            }
            cnt_[HandS] += 2;
            pos_[kSpVal] = {cnt_[HandS], HandS};
            if (call.dst >= 0) {
                // Return value arrives at s[1]; move it home.
                pos_[call.dst] = {cnt_[HandS] - 1, HandS};
                if (plan_.inMemory[call.dst]) {
                    spillStore(call.dst);
                    pos_.erase(call.dst);
                } else {
                    Inst mv;
                    mv.op = Op::MV;
                    setSrc1(mv, call.dst);
                    mv.dst = static_cast<uint8_t>(handOf(call.dst));
                    emitI(mv, call.dst);
                }
            }
        }
    }

    // =====================================================================
    // Instruction emission
    // =====================================================================

    void
    emitMachine(const VInst& vinst)
    {
        const OpInfo& info = opInfo(vinst.op);
        // Reload memory-resident sources into temporaries first.
        int src1 = vinst.src1;
        int src2 = vinst.src2;
        if (src1 >= 0 && plan_.inMemory[src1]) {
            reload(src1, kTmp1);
            src1 = kTmp1;
        }
        if (src2 >= 0 && plan_.inMemory[src2]) {
            if (src2 == vinst.src1) {
                src2 = src1;  // same value, reuse the reload
            } else {
                reload(src2, kTmp2);
                src2 = kTmp2;
            }
        }
        ensureReachable({info.numSrcs >= 1 ? src1 : INT_MIN,
                         info.numSrcs >= 2 ? src2 : INT_MIN});

        Inst inst;
        inst.op = vinst.op;
        inst.imm = vinst.imm;
        if (info.numSrcs >= 1)
            setSrc1(inst, src1);
        if (info.numSrcs >= 2)
            setSrc2(inst, src2);

        int dstV = INT_MIN;
        if (info.hasDst && vinst.dst >= 0) {
            dstV = vinst.dst;
            if (!straight_)
                inst.dst = static_cast<uint8_t>(homeHand(vinst.dst));
        } else if (info.hasDst && !straight_) {
            inst.dst = HandT;  // discarded result
        }
        emitI(inst, dstV);
        if (dstV != INT_MIN && plan_.inMemory[dstV]) {
            spillStore(dstV);
            pos_.erase(dstV);
        }
        pos_.erase(kTmp1);
        pos_.erase(kTmp2);
    }

    void
    emitLoadImmSeq(const VInst& vinst)
    {
        const int dstV = vinst.dst;
        const int hand = straight_ ? 0 : homeHand(dstV);
        loadImmRec(vinst.imm, hand, dstV);
        if (plan_.inMemory[dstV]) {
            spillStore(dstV);
            pos_.erase(dstV);
        }
    }

    void
    loadImmRec(int64_t value, int hand, int dstV)
    {
        // Chained steps reference the previous step through the tracked
        // position of dstV (NOT a hardcoded distance 1): aging relays may
        // interleave between steps and shift raw distances.
        auto prevRef = [&](Inst& inst) { setSrc1(inst, dstV); };
        auto zeroRef = [&](Inst& inst) {
            if (straight_) {
                inst.src1 = kStraightZeroDist;
            } else {
                inst.src1Hand = HandS;
                inst.src1 = kHandZeroDist;
            }
        };
        if (fitsSigned(value, 12)) {
            Inst addi;
            addi.op = Op::ADDI;
            addi.dst = static_cast<uint8_t>(hand);
            zeroRef(addi);
            addi.imm = value;
            emitI(addi, dstV);
            return;
        }
        if (fitsSigned(value, 32)) {
            const int64_t hi = signExtend(
                static_cast<uint64_t>((value + 0x800) >> 12) & 0xfffff, 20);
            const int64_t lo =
                signExtend(static_cast<uint64_t>(value) & 0xfff, 12);
            Inst lui;
            lui.op = Op::LUI;
            lui.dst = static_cast<uint8_t>(hand);
            lui.imm = hi;
            emitI(lui, dstV);
            if (lo == 0)
                return;
            Inst addi;
            addi.op = Op::ADDIW;
            addi.dst = static_cast<uint8_t>(hand);
            prevRef(addi);
            addi.imm = lo;
            emitI(addi, dstV);
            return;
        }
        const int64_t lo = signExtend(static_cast<uint64_t>(value) & 0xfff,
                                      12);
        const int64_t rest = (value - lo) >> 12;
        loadImmRec(rest, hand, dstV);
        Inst slli;
        slli.op = Op::SLLI;
        slli.dst = static_cast<uint8_t>(hand);
        prevRef(slli);
        slli.imm = 12;
        emitI(slli, dstV);
        if (lo != 0) {
            Inst addi;
            addi.op = Op::ADDI;
            addi.dst = static_cast<uint8_t>(hand);
            prevRef(addi);
            addi.imm = lo;
            emitI(addi, dstV);
        }
    }

    void
    emitLoadAddr(const VInst& vinst)
    {
        const int dstV = vinst.dst;
        const int hand = straight_ ? 0 : homeHand(dstV);
        Inst lui;
        lui.op = Op::LUI;
        lui.dst = static_cast<uint8_t>(hand);
        emitFixI(lui, FixupKind::AbsHi20, vinst.sym, dstV);
        Inst addi;
        addi.op = Op::ADDI;
        addi.dst = static_cast<uint8_t>(hand);
        setSrc1(addi, dstV);  // tracked: survives interleaved relays
        emitFixI(addi, FixupKind::AbsLo12, vinst.sym, dstV);
        if (plan_.inMemory[dstV]) {
            spillStore(dstV);
            pos_.erase(dstV);
        }
    }

    void
    emitFrameAddr(const VInst& vinst)
    {
        const int dstV = vinst.dst;
        Inst addi;
        addi.op = Op::ADDI;
        if (!straight_)
            addi.dst = static_cast<uint8_t>(homeHand(dstV));
        setSrc1Sp(addi);
        addi.imm = slotOffset_[vinst.frameSlot];
        emitI(addi, dstV);
        if (plan_.inMemory[dstV]) {
            spillStore(dstV);
            pos_.erase(dstV);
        }
    }

    // =====================================================================
    // Block emission and terminators
    // =====================================================================

    void
    emitBlock(int bi)
    {
        const VBlock& blk = f_.blocks[bi];
        b_.defineLabel(blockLabel(f_.name, bi));
        if (inherits_[bi])
            pruneToLiveIn(bi);
        else
            canonicalizeEntry(bi);

        // Last in-block use index per vreg, so dead values stop being
        // tracked (and relayed) as soon as possible.
        std::map<int, size_t> lastUse;
        for (size_t i = 0; i < blk.insts.size(); ++i) {
            for (int u : vinstUses(blk.insts[i]))
                lastUse[u] = i;
        }
        auto pruneDead = [&](size_t i) {
            const VInst& vinst = blk.insts[i];
            for (int u : vinstUses(vinst)) {
                if (leaf_ && u >= 0 && u < f_.numParams)
                    continue;  // leaf params stay as frame placeholders
                if (u >= 0 && lastUse[u] == i && !live_.liveOut(bi, u))
                    pos_.erase(u);
            }
            const int d = vinst.dst;
            if (d >= 0 && !live_.liveOut(bi, d)) {
                auto it = lastUse.find(d);
                if (it == lastUse.end() || it->second <= i)
                    pos_.erase(d);
            }
        };

        bool terminated = false;
        for (size_t i = 0; i < blk.insts.size(); ++i) {
            const VInst& inst = blk.insts[i];
            if (inst.isTerminatorBranch()) {
                emitTerminator(inst, blk, bi);
                terminated = true;
                break;
            }
            switch (inst.vop) {
              case VOp::Machine:
                emitMachine(inst);
                break;
              case VOp::LoadImm:
                emitLoadImmSeq(inst);
                break;
              case VOp::LoadAddr:
                emitLoadAddr(inst);
                break;
              case VOp::FrameAddr:
                emitFrameAddr(inst);
                break;
              case VOp::Call:
                emitCall(inst);
                break;
              case VOp::Ret:
                emitRet(inst);
                terminated = true;
                break;
            }
            if (terminated)
                break;
            pruneDead(i);
        }
        if (!terminated) {
            // Plain flow into the next block.
            const int next = bi + 1;
            if (next < static_cast<int>(f_.blocks.size()))
                finishEdge(bi, next, /*mustJump=*/false);
        }
    }

    void
    emitTerminator(const VInst& term, const VBlock& blk, int bi)
    {
        const OpInfo& info = opInfo(term.op);
        if (info.brKind == BrKind::Jump) {
            finishEdge(bi, term.target, /*mustJump=*/true);
            return;
        }
        // Conditional branch: sources must survive the taken-frame mvs.
        CH_ASSERT(info.brKind == BrKind::Cond, "bad terminator");
        const int taken = term.target;
        const int fall = blk.fallThrough;

        int src1 = term.src1;
        int src2 = term.src2;
        if (src1 >= 0 && plan_.inMemory[src1]) {
            reload(src1, kTmp1);
            src1 = kTmp1;
        }
        if (src2 >= 0 && plan_.inMemory[src2]) {
            if (src2 == term.src1) {
                src2 = src1;
            } else {
                reload(src2, kTmp2);
                src2 = kTmp2;
            }
        }
        // Headroom: the taken-frame reconcile emits at most |frame| mvs
        // into each source's hand before the branch reads its operands.
        int maxFrame = 0;
        if (!inheritsEdge(bi, taken)) {
            for (int h = 0; h < kNumHands; ++h) {
                maxFrame = std::max(
                    maxFrame, static_cast<int>(frames_[taken][h].size()));
            }
        }
        ensureReachable({src1, src2}, maxFrame + 1);

        // Taken-path frame first; the branch itself completes that edge.
        if (!inheritsEdge(bi, taken))
            reconcileTo(taken, /*transferWrites=*/1);

        Inst br;
        br.op = term.op;
        setSrc1(br, src1);
        setSrc2(br, src2);
        emitFixI(br, FixupKind::PcRel, blockLabel(f_.name, taken));
        pos_.erase(kTmp1);
        pos_.erase(kTmp2);

        // Fall path.
        if (fall >= 0)
            finishEdge(bi, fall, /*mustJump=*/false);
    }

    bool
    inheritsEdge(int from, int to) const
    {
        return inherits_[to] && to == from + 1;
    }

    /** Complete the current path's edge into @p to. */
    void
    finishEdge(int from, int to, bool mustJump)
    {
        const bool adjacent = to == from + 1;
        if (inheritsEdge(from, to) && !mustJump) {
            return;  // straight-line continuation, no frame needed
        }
        if (inheritsEdge(from, to) && mustJump && adjacent) {
            return;  // jump to the adjacent inheriting block: elide it
        }
        if (adjacent && !mustJump) {
            reconcileTo(to, /*transferWrites=*/0);
            return;
        }
        reconcileTo(to, /*transferWrites=*/1);
        Inst j;
        j.op = Op::J;
        emitFixI(j, FixupKind::PcRel, blockLabel(f_.name, to));
    }

    // =====================================================================

    ModuleBuilder& b_;
    const VFunc& f_;
    Isa isa_;
    bool straight_;
    HandPlan plan_;
    LiveSets live_;

    bool leaf_ = true;
    bool usesV_ = false;
    bool lightFrame_ = false;
    std::vector<bool> inherits_;
    std::vector<std::array<std::vector<int>, kNumHands>> frames_;

    int64_t cnt_[kNumHands] = {0, 0, 0, 0};
    std::map<int, Track> pos_;

    std::vector<int64_t> slotOffset_;
    std::vector<int64_t> memSlot_;
    int64_t vSaveOffset_ = 0;
    int64_t raOffset_ = 0;
    int64_t frameSize_ = 0;

    uint64_t relayCount_ = 0;
    uint64_t nopCount_ = 0;
};

} // namespace

void
emitDistanceFunc(ModuleBuilder& builder, const VFunc& f, Isa isa)
{
    DistanceEmitter emitter(builder, f, isa);
    emitter.run();
}

} // namespace ch
