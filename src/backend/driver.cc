#include "backend/backend.h"

#include "backend/common.h"
#include "common/logging.h"
#include "frontc/codegen.h"
#include "ir/vcode_verify.h"
#include "verify/verify.h"

namespace ch {

namespace {

/** Emit the _start stub: call main, then exit(main's return value). */
void
emitStart(ModuleBuilder& b, Isa isa)
{
    b.defineLabel("_start");
    switch (isa) {
      case Isa::Riscv: {
        Inst jal;
        jal.op = Op::JAL;
        jal.dst = kRegRa;
        b.emitFixup(jal, FixupKind::PcRel, "main");
        Inst ec;
        ec.op = Op::ECALL;
        ec.dst = kRegZero;
        ec.src1 = 10;  // a0 = return value
        ec.imm = 0;    // Sys::Exit
        b.emit(ec);
        break;
      }
      case Isa::Straight: {
        // main entry frame: [1] = return address. On return:
        // [1] = jr slot, [2] = return value.
        Inst jal;
        jal.op = Op::JAL;
        b.emitFixup(jal, FixupKind::PcRel, "main");
        Inst ec;
        ec.op = Op::ECALL;
        ec.src1 = 2;
        ec.imm = 0;
        b.emit(ec);
        break;
      }
      case Isa::Clockhands: {
        // The emulator pre-writes SP into s, so s[0] = SP here; main
        // takes no arguments, so its prologue uses s[1] for the SP.
        Inst jal;
        jal.op = Op::JAL;
        jal.dst = HandS;
        b.emitFixup(jal, FixupKind::PcRel, "main");
        // After return: s[0] = our SP, s[1] = return value.
        Inst ec;
        ec.op = Op::ECALL;
        ec.dst = HandT;
        ec.src1Hand = HandS;
        ec.src1 = 1;
        ec.imm = 0;
        b.emit(ec);
        break;
      }
    }
}

} // namespace

Program
compileVModule(const VModule& mod, Isa isa)
{
    if (!mod.findFunc("main"))
        fatal("module has no main()");

    // IR invariants first: a malformed VFunc would make any backend
    // breakage below it impossible to attribute (docs/VERIFIER.md).
    for (const auto& f : mod.funcs) {
        const std::vector<std::string> errs = verifyVFunc(f);
        if (!errs.empty()) {
            std::string msg = concat("VCode verification failed for ",
                                     f.name, ":");
            for (const std::string& e : errs)
                msg += concat("\n  ", e);
            fatal(msg);
        }
    }

    ModuleBuilder b(isa);

    // Data segment.
    for (const auto& g : mod.globals) {
        b.dataAlign(static_cast<size_t>(g.align));
        b.defineDataLabel(g.name);
        if (!g.init.empty()) {
            b.dataBytes(g.init.data(), g.init.size());
            if (static_cast<int64_t>(g.init.size()) < g.size)
                b.dataZero(g.size - g.init.size());
        } else {
            b.dataZero(static_cast<size_t>(g.size));
        }
    }

    emitStart(b, isa);

    for (const auto& f : mod.funcs) {
        if (isa == Isa::Riscv)
            emitRiscvFunc(b, f);
        else
            emitDistanceFunc(b, f, isa);
    }

    b.setEntry("_start");
    Program prog = b.finalize();

    // Post-compile static check: every binary we produce must pass the
    // well-formedness verifier; a diagnostic here is a miscompile.
    const VerifyResult vres = verifyProgram(prog);
    if (!vres.ok())
        fatal(concat("binary verification failed (", isaName(isa), "):\n",
                     formatIssues(prog, vres)));
    return prog;
}

Program
compileMiniC(std::string_view source, Isa isa)
{
    VModule mod = compileToVCode(source);
    return compileVModule(mod, isa);
}

} // namespace ch
