#include "service/json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace ch {
namespace service {

JsonValue
JsonValue::boolean_(bool b)
{
    JsonValue v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
JsonValue::number(uint64_t value)
{
    JsonValue v;
    v.kind = Kind::Number;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    v.text = buf;
    return v;
}

JsonValue
JsonValue::number(int64_t value)
{
    JsonValue v;
    v.kind = Kind::Number;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    v.text = buf;
    return v;
}

JsonValue
JsonValue::number(double value)
{
    JsonValue v;
    v.kind = Kind::Number;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // JSON has no inf/nan literals; the metrics pipeline never produces
    // them, so map any stray one to null-ish zero rather than emit
    // unparsable output.
    if (std::strchr(buf, 'n') || std::strchr(buf, 'i'))
        std::snprintf(buf, sizeof(buf), "0");
    v.text = buf;
    return v;
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.kind = Kind::String;
    v.text = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind = Kind::Object;
    return v;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        fatal("json: expected a boolean");
    return boolean;
}

uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number)
        fatal("json: expected a number");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        text[0] == '-')
        fatal("json: '", text, "' is not a uint64");
    return v;
}

int64_t
JsonValue::asI64() const
{
    if (kind != Kind::Number)
        fatal("json: expected a number");
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        fatal("json: '", text, "' is not an int64");
    return v;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        fatal("json: expected a number");
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("json: '", text, "' is not a double");
    return v;
}

const std::string&
JsonValue::asString() const
{
    if (kind != Kind::String)
        fatal("json: expected a string");
    return text;
}

uint64_t
JsonValue::getU64(const std::string& key, uint64_t dflt) const
{
    const JsonValue* v = find(key);
    return v ? v->asU64() : dflt;
}

int64_t
JsonValue::getI64(const std::string& key, int64_t dflt) const
{
    const JsonValue* v = find(key);
    return v ? v->asI64() : dflt;
}

double
JsonValue::getDouble(const std::string& key, double dflt) const
{
    const JsonValue* v = find(key);
    return v ? v->asDouble() : dflt;
}

bool
JsonValue::getBool(const std::string& key, bool dflt) const
{
    const JsonValue* v = find(key);
    return v ? v->asBool() : dflt;
}

std::string
JsonValue::getString(const std::string& key,
                     const std::string& dflt) const
{
    const JsonValue* v = find(key);
    return v ? v->asString() : dflt;
}

JsonValue&
JsonValue::add(std::string key, JsonValue v)
{
    CH_ASSERT(kind == Kind::Object, "add() on a non-object");
    members.emplace_back(std::move(key), std::move(v));
    return *this;
}

JsonValue&
JsonValue::push(JsonValue v)
{
    CH_ASSERT(kind == Kind::Array, "push() on a non-array");
    items.push_back(std::move(v));
    return *this;
}

namespace {

void
escapeTo(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
dumpTo(std::string& out, const JsonValue& v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Number:
        out += v.text;
        break;
      case JsonValue::Kind::String:
        escapeTo(out, v.text);
        break;
      case JsonValue::Kind::Array:
        out += '[';
        for (size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                out += ',';
            dumpTo(out, v.items[i]);
        }
        out += ']';
        break;
      case JsonValue::Kind::Object:
        out += '{';
        for (size_t i = 0; i < v.members.size(); ++i) {
            if (i)
                out += ',';
            escapeTo(out, v.members[i].first);
            out += ':';
            dumpTo(out, v.members[i].second);
        }
        out += '}';
        break;
    }
}

/** Recursive-descent parser; depth-capped against hostile nesting. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value(0);
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void
    fail(const char* what)
    {
        fatal("json parse error at byte ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char* word)
    {
        const size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            fail("invalid literal");
        pos_ += n;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The protocol only escapes control characters; encode
                // the BMP code point as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        const size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < s_.size() &&
               ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("invalid number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.text = s_.substr(start, pos_ - start);
        // Validate eagerly so dump() never re-emits garbage.
        errno = 0;
        char* end = nullptr;
        std::strtod(v.text.c_str(), &end);
        if (end != v.text.c_str() + v.text.size())
            fail("invalid number");
        return v;
    }

    JsonValue
    value(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        skipWs();
        const char c = peek();
        if (c == '{') {
            ++pos_;
            JsonValue v = JsonValue::object();
            skipWs();
            if (consume('}'))
                return v;
            for (;;) {
                skipWs();
                std::string key = string();
                skipWs();
                expect(':');
                v.members.emplace_back(std::move(key),
                                       value(depth + 1));
                skipWs();
                if (consume(','))
                    continue;
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos_;
            JsonValue v = JsonValue::array();
            skipWs();
            if (consume(']'))
                return v;
            for (;;) {
                v.items.push_back(value(depth + 1));
                skipWs();
                if (consume(','))
                    continue;
                expect(']');
                return v;
            }
        }
        if (c == '"')
            return JsonValue::str(string());
        if (c == 't') {
            literal("true");
            return JsonValue::boolean_(true);
        }
        if (c == 'f') {
            literal("false");
            return JsonValue::boolean_(false);
        }
        if (c == 'n') {
            literal("null");
            return JsonValue::null();
        }
        return number();
    }

    const std::string& s_;
    size_t pos_ = 0;
};

} // namespace

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, *this);
    return out;
}

JsonValue
jsonParse(const std::string& text)
{
    return Parser(text).parse();
}

bool
jsonTryParse(const std::string& text, JsonValue* out, std::string* err)
{
    try {
        *out = jsonParse(text);
        return true;
    } catch (const std::exception& e) {
        if (err)
            *err = e.what();
        return false;
    }
}

} // namespace service
} // namespace ch
