#include "service/codec.h"

#include <cstdio>

#include "common/logging.h"

namespace ch {
namespace service {

uint64_t
fnv1a(const void* data, size_t len, uint64_t h)
{
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hashHex(uint64_t h)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

uint64_t
programHash(const Program& prog)
{
    uint64_t h = kFnvBasis;
    const auto mix = [&h](const void* data, size_t len) {
        h = fnv1a(data, len, h);
    };
    const int isa = static_cast<int>(prog.isa);
    mix(&isa, sizeof(isa));
    mix(&prog.textBase, sizeof(prog.textBase));
    mix(&prog.entry, sizeof(prog.entry));
    const uint64_t textWords = prog.text.size();
    mix(&textWords, sizeof(textWords));
    mix(prog.text.data(), prog.text.size() * sizeof(uint32_t));
    const uint64_t segs = prog.data.size();
    mix(&segs, sizeof(segs));
    for (const Program::DataSeg& seg : prog.data) {
        mix(&seg.base, sizeof(seg.base));
        const uint64_t n = seg.bytes.size();
        mix(&n, sizeof(n));
        mix(seg.bytes.data(), seg.bytes.size());
    }
    return h;
}

const char*
isaTagName(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return "riscv";
      case Isa::Straight: return "straight";
      case Isa::Clockhands: return "clockhands";
    }
    return "unknown";
}

Isa
isaFromTag(const std::string& tag)
{
    if (tag == "riscv")
        return Isa::Riscv;
    if (tag == "straight")
        return Isa::Straight;
    if (tag == "clockhands")
        return Isa::Clockhands;
    fatal("unknown isa tag: '", tag, "'");
}

// The MachineConfig field lists. Keep these in sync with
// src/uarch/config.h: a field added there must appear here, or farm
// workers would silently simulate the default value for it.
#define CH_SERVICE_CFG_INT_FIELDS(X) \
    X(fetchWidth) \
    X(renameStagesOverride) \
    X(issueWidth) \
    X(issueLatency) \
    X(commitWidth) \
    X(robSize) \
    X(schedSize) \
    X(loadQueue) \
    X(storeQueue) \
    X(btbEntries) \
    X(btbWays) \
    X(rasEntries) \
    X(l1iSizeKiB) \
    X(l1iWays) \
    X(l1iLatency) \
    X(l1dSizeKiB) \
    X(l1dWays) \
    X(l1dLatency) \
    X(l2SizeKiB) \
    X(l2Ways) \
    X(l2Latency) \
    X(memLatency) \
    X(lineBytes) \
    X(prefetchDistance) \
    X(prefetchDegree) \
    X(ssitEntries) \
    X(lfstEntries) \
    X(latIntAlu) \
    X(latMove) \
    X(latBranch) \
    X(latIntMul) \
    X(latIntDiv) \
    X(latFpAlu) \
    X(latFpDiv) \
    X(latStoreAgu) \
    X(latForward) \
    X(replayPenalty)

#define CH_SERVICE_FU_FIELDS(X) \
    X(intAlu) \
    X(fp) \
    X(load) \
    X(store) \
    X(iMul) \
    X(iDiv) \
    X(fDiv)

JsonValue
machineConfigToJson(const MachineConfig& cfg)
{
    JsonValue v = JsonValue::object();
#define X(field) v.add(#field, JsonValue::number(cfg.field));
    CH_SERVICE_CFG_INT_FIELDS(X)
#undef X
    JsonValue fu = JsonValue::object();
#define X(field) fu.add(#field, JsonValue::number(cfg.fu.field));
    CH_SERVICE_FU_FIELDS(X)
#undef X
    v.add("fu", std::move(fu));
    v.add("equalHandQuota", JsonValue::boolean_(cfg.equalHandQuota));
    v.add("coreModel", JsonValue::str(coreModelName(cfg.coreModel)));
    JsonValue sc = JsonValue::object();
    sc.add("intervalInsts", JsonValue::number(cfg.sampling.intervalInsts));
    sc.add("sampleInsts", JsonValue::number(cfg.sampling.sampleInsts));
    sc.add("warmupInsts", JsonValue::number(cfg.sampling.warmupInsts));
    sc.add("seedOffset", JsonValue::number(cfg.sampling.seedOffset));
    // Shard knobs are emitted only off their defaults: the wire form
    // doubles as the store key (specKeyJson), and a K=1 run must hash —
    // and therefore dedupe — identically to a pre-shard record.
    if (cfg.sampling.shards != 1)
        sc.add("shards", JsonValue::number(cfg.sampling.shards));
    if (cfg.sampling.shardWarmupInsts != 0) {
        sc.add("shardWarmupInsts",
               JsonValue::number(cfg.sampling.shardWarmupInsts));
    }
    sc.add("functionalWarming",
           JsonValue::boolean_(cfg.sampling.functionalWarming));
    v.add("sampling", std::move(sc));
    // The pipe-trace path is a host-side label: excluded from the store
    // key (specKeyJson drops it) but carried on the wire so a local
    // config round-trips losslessly.
    if (!cfg.pipeTracePath.empty())
        v.add("pipeTracePath", JsonValue::str(cfg.pipeTracePath));
    return v;
}

MachineConfig
machineConfigFromJson(const JsonValue& v)
{
    if (!v.isObject())
        fatal("machine config: expected a JSON object");
    MachineConfig cfg;
#define X(field) \
    cfg.field = static_cast<int>(v.getI64(#field, cfg.field));
    CH_SERVICE_CFG_INT_FIELDS(X)
#undef X
    if (const JsonValue* fu = v.find("fu")) {
#define X(field) \
    cfg.fu.field = static_cast<int>(fu->getI64(#field, cfg.fu.field));
        CH_SERVICE_FU_FIELDS(X)
#undef X
    }
    cfg.equalHandQuota = v.getBool("equalHandQuota", cfg.equalHandQuota);
    const std::string model = v.getString("coreModel", "detailed");
    if (!parseCoreModel(model, &cfg.coreModel))
        fatal("machine config: unknown coreModel '", model, "'");
    if (const JsonValue* sc = v.find("sampling")) {
        cfg.sampling.intervalInsts =
            sc->getU64("intervalInsts", cfg.sampling.intervalInsts);
        cfg.sampling.sampleInsts =
            sc->getU64("sampleInsts", cfg.sampling.sampleInsts);
        cfg.sampling.warmupInsts =
            sc->getU64("warmupInsts", cfg.sampling.warmupInsts);
        cfg.sampling.seedOffset =
            sc->getU64("seedOffset", cfg.sampling.seedOffset);
        cfg.sampling.shards = static_cast<int>(
            sc->getI64("shards", cfg.sampling.shards));
        cfg.sampling.shardWarmupInsts =
            sc->getU64("shardWarmupInsts", cfg.sampling.shardWarmupInsts);
        cfg.sampling.functionalWarming = sc->getBool(
            "functionalWarming", cfg.sampling.functionalWarming);
    }
    cfg.pipeTracePath = v.getString("pipeTracePath", "");
    return cfg;
}

std::string
specKeyJson(const JobSpec& spec)
{
    // Canonical form: fixed member order, the full config, no labels.
    // Drop the pipe-trace path — the store is never consulted for
    // tracing jobs (simJob), so it must not split the key space.
    JobSpec keySpec = spec;
    keySpec.cfg.pipeTracePath.clear();
    // Fold an unresolved per-job rung pin into the config it will run
    // as (SweepRunner::addSim does the same before simulating), so a
    // pinned spec can never alias a differently-rung stored result.
    if (keySpec.coreModel)
        keySpec.cfg.coreModel = *keySpec.coreModel;
    JsonValue v = JsonValue::object();
    v.add("schema", JsonValue::str("ch-spec-key-v1"));
    v.add("workload", JsonValue::str(keySpec.workload));
    v.add("isa", JsonValue::str(isaTagName(keySpec.isa)));
    v.add("maxInsts", JsonValue::number(keySpec.maxInsts));
    v.add("cfg", machineConfigToJson(keySpec.cfg));
    return v.dump();
}

uint64_t
specHash(const JobSpec& spec)
{
    const std::string key = specKeyJson(spec);
    return fnv1a(key.data(), key.size());
}

JsonValue
jobSpecToJson(const JobSpec& spec)
{
    JsonValue v = JsonValue::object();
    v.add("id", JsonValue::str(spec.id));
    v.add("workload", JsonValue::str(spec.workload));
    v.add("isa", JsonValue::str(isaTagName(spec.isa)));
    v.add("maxInsts", JsonValue::number(spec.maxInsts));
    v.add("seed", JsonValue::number(spec.seed));
    v.add("priority", JsonValue::number(spec.priority));
    if (spec.coreModel) {
        v.add("coreModelPin",
              JsonValue::str(coreModelName(*spec.coreModel)));
    }
    v.add("cfg", machineConfigToJson(spec.cfg));
    return v;
}

JobSpec
jobSpecFromJson(const JsonValue& v)
{
    if (!v.isObject())
        fatal("job spec: expected a JSON object");
    JobSpec spec;
    spec.id = v.getString("id", "");
    spec.workload = v.getString("workload", "");
    spec.isa = isaFromTag(v.getString("isa", "riscv"));
    spec.maxInsts = v.getU64("maxInsts", ~0ull);
    spec.seed = v.getU64("seed", 0);
    spec.priority = static_cast<int>(v.getI64("priority", 0));
    if (const JsonValue* pin = v.find("coreModelPin")) {
        CoreModelKind kind;
        if (!parseCoreModel(pin->asString(), &kind))
            fatal("job spec: unknown coreModelPin '", pin->asString(),
                  "'");
        spec.coreModel = kind;
    }
    if (const JsonValue* cfg = v.find("cfg"))
        spec.cfg = machineConfigFromJson(*cfg);
    return spec;
}

JsonValue
jobMetricsToJson(const JobMetrics& m)
{
    JsonValue v = JsonValue::object();
    v.add("exited", JsonValue::boolean_(m.exited));
    v.add("exitCode", JsonValue::number(m.exitCode));
    v.add("cycles", JsonValue::number(m.cycles));
    v.add("insts", JsonValue::number(m.insts));
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : m.counters)
        counters.add(name, JsonValue::number(value));
    v.add("counters", std::move(counters));
    JsonValue values = JsonValue::object();
    for (const auto& [name, value] : m.values)
        values.add(name, JsonValue::number(value));
    v.add("values", std::move(values));
    v.add("wallMs", JsonValue::number(m.wallMs));
    v.add("peakRssKiB", JsonValue::number(m.peakRssKiB));
    JsonValue host = JsonValue::object();
    for (const auto& [name, value] : m.hostCounters)
        host.add(name, JsonValue::number(value));
    v.add("hostCounters", std::move(host));
    return v;
}

JobMetrics
jobMetricsFromJson(const JsonValue& v)
{
    if (!v.isObject())
        fatal("job metrics: expected a JSON object");
    JobMetrics m;
    m.exited = v.getBool("exited", false);
    m.exitCode = v.getI64("exitCode", 0);
    m.cycles = v.getU64("cycles", 0);
    m.insts = v.getU64("insts", 0);
    if (const JsonValue* counters = v.find("counters")) {
        for (const auto& [name, value] : counters->members)
            m.counters[name] = value.asU64();
    }
    if (const JsonValue* values = v.find("values")) {
        for (const auto& [name, value] : values->members)
            m.values[name] = value.asDouble();
    }
    m.wallMs = v.getDouble("wallMs", 0);
    m.peakRssKiB = v.getI64("peakRssKiB", 0);
    if (const JsonValue* host = v.find("hostCounters")) {
        for (const auto& [name, value] : host->members)
            m.hostCounters[name] = value.asU64();
    }
    return m;
}

} // namespace service
} // namespace ch
