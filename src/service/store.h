#ifndef CH_SERVICE_STORE_H
#define CH_SERVICE_STORE_H

/**
 * @file
 * Persistent content-addressed store for simulation results and
 * committed traces (docs/SERVICE.md).
 *
 * Layout under the root (CH_STORE_DIR, default ~/.cache/clockhands):
 *
 *   v1/results/<hh>/<binhash>-<spechash>.json   one JobMetrics record
 *   v1/traces/<hh>/<binhash>-<maxinsts>.chtrace encoded TraceBuffer
 *
 * where <binhash> digests the executable program content and
 * <spechash> the canonical simulation-relevant spec (service/codec.h);
 * <hh> is a 256-way fan-out on the first result-name byte. Any source
 * change that alters the compiled program or the spec changes the key,
 * so a stale entry can never be served — invalidation is structural,
 * not TTL-based.
 *
 * Writes are tmp-file + rename(2), so concurrent farm workers and
 * direct runs can share one root without locking: readers see either
 * nothing or a complete record. Trace files are mmap(2)-loaded and
 * handed to TraceBuffer::setExternal(), so a warm run replays straight
 * from the page cache with no decode or copy.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "runner/runner.h"
#include "runner/trace_cache.h"

namespace ch {
namespace service {

/** Disk-backed JobResultStore + TracePersistence; see file docs. */
class PersistentStore : public JobResultStore, public TracePersistence
{
  public:
    /**
     * Open (creating directories as needed) the store at @p rootDir;
     * empty selects defaultDir(). Throws FatalError when the root
     * cannot be created or written.
     */
    explicit PersistentStore(std::string rootDir = "");

    /** CH_STORE_DIR, else ~/.cache/clockhands (HOME), else a /tmp dir. */
    static std::string defaultDir();

    const std::string& root() const { return root_; }

    // -- JobResultStore -----------------------------------------------
    bool load(const JobSpec& spec, const Program& prog,
              JobMetrics* out) override;
    void save(const JobSpec& spec, const Program& prog,
              const JobMetrics& m) override;

    // -- TracePersistence ---------------------------------------------
    std::shared_ptr<const TraceBuffer> load(const Program& prog,
                                            uint64_t maxInsts) override;
    void save(const Program& prog, uint64_t maxInsts,
              const TraceBuffer& trace) override;

    // -- effectiveness counters (tests, chfarmd stats) ----------------
    uint64_t resultHits() const { return resultHits_.load(); }
    uint64_t resultMisses() const { return resultMisses_.load(); }
    uint64_t traceHits() const { return traceHits_.load(); }
    uint64_t traceMisses() const { return traceMisses_.load(); }

  private:
    std::string resultPath(const JobSpec& spec,
                           const Program& prog) const;
    std::string tracePath(const Program& prog, uint64_t maxInsts) const;

    std::string root_;
    std::atomic<uint64_t> resultHits_{0};
    std::atomic<uint64_t> resultMisses_{0};
    std::atomic<uint64_t> traceHits_{0};
    std::atomic<uint64_t> traceMisses_{0};
};

/**
 * Attach a PersistentStore to @p opt (`--store`, docs/SERVICE.md): the
 * one instance serves as both the result store and the trace backing.
 * Throws FatalError when the directory cannot be opened.
 */
void attachStore(RunnerOptions& opt, const std::string& dir = "");

} // namespace service
} // namespace ch

#endif // CH_SERVICE_STORE_H
