#ifndef CH_SERVICE_FARM_H
#define CH_SERVICE_FARM_H

/**
 * @file
 * The simulation farm (docs/SERVICE.md): `chfarmd` accepts JobSpec
 * grids as newline-delimited JSON over a Unix or TCP socket and shards
 * them across forked worker processes.
 *
 * Process model: the master forks each worker up front and talks to it
 * over a socketpair, one in-flight job per worker. Fork isolation is
 * the crash-containment boundary — a SIGSEGV/abort in a simulation
 * kills only that worker's current job (reported to the client as a
 * structured error row) and the master forks a replacement; the daemon
 * and every other queued job keep running.
 *
 * Scheduling: each job lands on its affinity worker — hash(workload,
 * isa) % workers — so one worker's in-process compile/trace caches
 * serve all configs of a (workload, ISA) pair. Queues are
 * priority-ordered deques; an idle worker with an empty queue steals
 * from the tail (lowest-priority end) of the longest queue. A bounded
 * global backlog turns extra submissions into `busy` replies, which
 * clients absorb by waiting for a result before retrying.
 *
 * Wire protocol (one JSON object per line, both directions):
 *
 *   client -> server: {"type":"submit","id":N,"spec":{...}}
 *                     {"type":"ping"|"stats"|"shutdown"}
 *   server -> client: {"type":"accepted"|"busy","id":N}
 *                     {"type":"result","id":N,"ok":B,"error":S,
 *                      "store_hit":B,"metrics":{...}}
 *                     {"type":"pong"} {"type":"stats",...} {"type":"bye"}
 *
 * A submit may carry "fault_inject":true, which makes the worker
 * abort() mid-job — the hook the crash-containment test uses.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runner/runner.h"

namespace ch {
namespace service {

/** chfarmd configuration. */
struct FarmOptions {
    /**
     * Listen address: a path (or "unix:path") binds a Unix socket, a
     * "host:port" pair binds TCP.
     */
    std::string socket;

    /** Worker processes; 0 selects the hardware concurrency. */
    int workers = 0;

    /**
     * Persistent-store root shared by all workers (empty disables; "-"
     * selects the default directory). Workers then serve repeated
     * (program, spec) points from disk and back their trace caches with
     * it.
     */
    std::string storeDir;
    bool useStore = false;

    /** Max queued (not yet running) jobs before `busy` replies. */
    size_t queueBound = 1024;

    /** Per-job log lines on stderr. */
    bool verbose = false;
};

/** The chfarmd daemon core; single-threaded poll loop over all fds. */
class FarmServer
{
  public:
    explicit FarmServer(FarmOptions opt);
    ~FarmServer();

    FarmServer(const FarmServer&) = delete;
    FarmServer& operator=(const FarmServer&) = delete;

    /**
     * Bind the socket and fork the workers; throws FatalError on any
     * setup failure. After start() returns the address is connectable.
     */
    void start();

    /** Serve until requestStop() or a client shutdown message. */
    void serve();

    /** Ask serve() to return (signal-handler and cross-thread safe). */
    void requestStop() { stop_.store(true); }

    int workerCount() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::atomic<bool> stop_{false};
    friend struct Impl;
};

/** Client side of the wire protocol; blocking, one connection. */
class FarmClient
{
  public:
    /** Connect to @p address; throws FatalError when unreachable. */
    explicit FarmClient(const std::string& address);
    ~FarmClient();

    FarmClient(const FarmClient&) = delete;
    FarmClient& operator=(const FarmClient&) = delete;

    /** One request/reply round trip returning the reply's JSON text. */
    std::string request(const std::string& line);

    /**
     * Submit every spec and invoke @p done(index, result) as results
     * stream back (any order). `busy` replies are absorbed by waiting
     * for an outstanding result before retrying. @p faultInject marks
     * specs that should crash their worker (tests); pass {} for none.
     * @p onAccepted, when set, fires as each submission is accepted —
     * the submit timestamp hook of bench/loadgen_farm.cc.
     */
    void runJobs(const std::vector<JobSpec>& specs,
                 const std::vector<char>& faultInject,
                 const std::function<void(size_t, JobResult)>& done,
                 const std::function<void(size_t)>& onAccepted = {});

  private:
    void sendLine(const std::string& line);
    std::string readLine();

    int fd_ = -1;
    std::string inBuf_;
};

/** RunnerOptions::executor backed by a farm connection (`--farm`). */
class FarmSweepExecutor : public SimJobExecutor
{
  public:
    /**
     * Validate @p address by a ping round trip; throws FatalError when
     * the daemon is unreachable (callers turn that into exit 2 at
     * option-parse time).
     */
    explicit FarmSweepExecutor(std::string address);

    void
    execute(const std::vector<JobSpec>& specs,
            const std::function<void(size_t, JobResult)>& done) override;

    const std::string& address() const { return address_; }

  private:
    std::string address_;
};

/** attachStore()'s sibling for `--farm`; throws when unreachable. */
void attachFarm(RunnerOptions& opt, const std::string& address);

} // namespace service
} // namespace ch

#endif // CH_SERVICE_FARM_H
