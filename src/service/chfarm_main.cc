/**
 * chfarm -- client CLI for the simulation farm (docs/SERVICE.md).
 *
 *   chfarm ping     --socket ADDR
 *   chfarm stats    --socket ADDR          # "key value" lines
 *   chfarm shutdown --socket ADDR
 *   chfarm submit   --socket ADDR --spec FILE [--bench NAME]
 *                   [--metrics-dir DIR] [--host-metrics] [--progress]
 *
 * The submit spec file (JSON; FILE may be "-" for stdin) either names a
 * grid to expand or lists explicit jobs:
 *
 *   {
 *     "workloads": ["coremark", "mcf"],
 *     "isas": ["riscv", "clockhands"],
 *     "fetch_widths": [4, 8],
 *     "max_insts": 200000,
 *     "core_model": "fast",          // optional run-wide rung
 *     "priority": 0,                 // optional
 *     "jobs": [ { ...full JobSpec json... } ]   // optional extras
 *   }
 *
 * Result rows stream to stdout as CSV the moment each job finishes
 * (completion order); the final ch-sweep-metrics-v1 .json/.csv files
 * are written in submission order, byte-identical to a local run of
 * the same grid.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/metrics.h"
#include "service/codec.h"
#include "service/farm.h"
#include "service/json.h"

using namespace ch;
using service::JsonValue;

namespace {

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: chfarm <ping|stats|shutdown|submit> --socket ADDR\n"
        "              [--spec FILE] [--bench NAME] [--metrics-dir D]\n"
        "              [--host-metrics] [--progress]\n");
    std::exit(code);
}

std::string
readSpecFile(const std::string& path)
{
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        return buf.str();
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "chfarm: cannot read spec file '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Expand the spec-file grid (see file docs) into JobSpecs. */
std::vector<JobSpec>
expandGrid(const JsonValue& v)
{
    std::vector<JobSpec> specs;
    const uint64_t maxInsts = v.getU64("max_insts", ~0ull);
    const int priority =
        static_cast<int>(v.getI64("priority", 0));
    CoreModelKind runModel = CoreModelKind::Detailed;
    bool haveRunModel = false;
    if (const JsonValue* m = v.find("core_model")) {
        if (!parseCoreModel(m->asString(), &runModel))
            fatal("spec file: unknown core_model '", m->asString(),
                  "'");
        haveRunModel = true;
    }
    std::vector<int> widths;
    if (const JsonValue* fw = v.find("fetch_widths")) {
        for (const JsonValue& w : fw->items)
            widths.push_back(static_cast<int>(w.asI64()));
    } else {
        widths.push_back(8);
    }
    if (const JsonValue* wls = v.find("workloads")) {
        const JsonValue* isas = v.find("isas");
        if (!isas || isas->items.empty())
            fatal("spec file: \"workloads\" needs \"isas\"");
        for (const JsonValue& wl : wls->items) {
            for (const JsonValue& isa : isas->items) {
                for (int fw : widths) {
                    JobSpec spec;
                    spec.workload = wl.asString();
                    spec.isa = service::isaFromTag(isa.asString());
                    spec.cfg = MachineConfig::preset(fw);
                    spec.maxInsts = maxInsts;
                    spec.priority = priority;
                    if (haveRunModel)
                        spec.cfg.coreModel = runModel;
                    const char* tag =
                        spec.isa == Isa::Riscv
                            ? "R"
                            : spec.isa == Isa::Straight ? "S" : "C";
                    spec.id = spec.workload + "/" + tag + "/" +
                              std::to_string(fw) + "f";
                    spec.seed = jobSeed(spec);
                    specs.push_back(std::move(spec));
                }
            }
        }
    }
    if (const JsonValue* jobs = v.find("jobs")) {
        for (const JsonValue& j : jobs->items) {
            JobSpec spec = service::jobSpecFromJson(j);
            if (spec.seed == 0)
                spec.seed = jobSeed(spec);
            specs.push_back(std::move(spec));
        }
    }
    if (specs.empty())
        fatal("spec file: no jobs (need \"workloads\" or \"jobs\")");
    return specs;
}

int
cmdSubmit(const std::string& socket, const std::string& specPath,
          const std::string& bench, const std::string& metricsDir,
          bool hostMetrics, bool progress)
{
    JsonValue spec;
    std::string err;
    if (!service::jsonTryParse(readSpecFile(specPath), &spec, &err) ||
        !spec.isObject()) {
        std::fprintf(stderr, "chfarm: malformed spec file: %s\n",
                     err.c_str());
        return 2;
    }
    const std::vector<JobSpec> specs = expandGrid(spec);

    std::vector<JobResult> results(specs.size());
    size_t finished = 0;
    service::FarmClient client(socket);
    // Stream one CSV row per result as it lands; the schema matches the
    // core rows of the final metrics CSV.
    std::printf("bench,id,workload,isa,ok,kind,metric,value\n");
    client.runJobs(specs, {}, [&](size_t i, JobResult r) {
        ++finished;
        if (progress) {
            std::fprintf(stderr, "[chfarm %3zu/%zu] %s%s%s\n", finished,
                         specs.size(), r.spec.id.c_str(),
                         r.ok ? "" : " FAILED: ",
                         r.ok ? "" : r.error.c_str());
        }
        std::printf("%s,%s,%s,%s,%d,core,cycles,%llu\n", bench.c_str(),
                    r.spec.id.c_str(), r.spec.workload.c_str(),
                    service::isaTagName(r.spec.isa), r.ok ? 1 : 0,
                    static_cast<unsigned long long>(r.metrics.cycles));
        std::fflush(stdout);
        results[i] = std::move(r);
    });

    MetricsOptions opt;
    opt.bench = bench;
    opt.hostMetrics = hostMetrics;
    const std::string path =
        writeMetricsFiles(metricsDir, opt, results);
    std::fprintf(stderr, "chfarm: metrics: %s (+ .csv)\n",
                 path.c_str());
    for (const JobResult& r : results) {
        if (!r.ok) {
            std::fprintf(stderr, "chfarm: job %s failed: %s\n",
                         r.spec.id.c_str(), r.error.c_str());
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        usage(2);
    const std::string cmd = argv[1];
    std::string socket, specPath, bench = "chfarm", metricsDir = ".";
    bool hostMetrics = false, progress = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "chfarm: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            socket = next();
        else if (arg == "--spec")
            specPath = next();
        else if (arg == "--bench")
            bench = next();
        else if (arg == "--metrics-dir")
            metricsDir = next();
        else if (arg == "--host-metrics")
            hostMetrics = true;
        else if (arg == "--progress")
            progress = true;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else {
            std::fprintf(stderr, "chfarm: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (socket.empty()) {
        std::fprintf(stderr, "chfarm: --socket is required\n");
        usage(2);
    }

    try {
        if (cmd == "ping") {
            service::FarmClient client(socket);
            const JsonValue v = service::jsonParse(
                client.request("{\"type\":\"ping\"}"));
            if (v.getString("type", "") != "pong") {
                std::fprintf(stderr, "chfarm: unexpected reply\n");
                return 1;
            }
            std::printf("pong\n");
            return 0;
        }
        if (cmd == "stats") {
            service::FarmClient client(socket);
            const JsonValue v = service::jsonParse(
                client.request("{\"type\":\"stats\"}"));
            for (const auto& [key, value] : v.members) {
                if (key == "type")
                    continue;
                std::printf("%s %s\n", key.c_str(),
                            value.text.c_str());
            }
            return 0;
        }
        if (cmd == "shutdown") {
            service::FarmClient client(socket);
            client.request("{\"type\":\"shutdown\"}");
            std::printf("shutdown requested\n");
            return 0;
        }
        if (cmd == "submit") {
            if (specPath.empty()) {
                std::fprintf(stderr,
                             "chfarm: submit needs --spec FILE\n");
                return 2;
            }
            return cmdSubmit(socket, specPath, bench, metricsDir,
                             hostMetrics, progress);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "chfarm: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "chfarm: unknown command '%s'\n", cmd.c_str());
    usage(2);
}
