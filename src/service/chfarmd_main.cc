/**
 * chfarmd -- the simulation-farm daemon (docs/SERVICE.md).
 *
 * Accepts JobSpec grids over a Unix or TCP socket and shards them
 * across forked worker processes; see src/service/farm.h for the
 * process model and wire protocol.
 *
 *   chfarmd --socket /tmp/chfarm.sock [--workers N] [--store]
 *           [--store-dir DIR] [--queue-bound N] [--verbose]
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "service/farm.h"
#include "service/store.h"

namespace {

ch::service::FarmServer* g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop();
}

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: chfarmd --socket ADDR [--workers N] [--store]\n"
        "               [--store-dir DIR] [--queue-bound N] "
        "[--verbose]\n"
        "\n"
        "  ADDR is a Unix socket path (or unix:PATH) or host:port.\n"
        "  --store        persist results/traces under the default\n"
        "                 store directory (CH_STORE_DIR or\n"
        "                 ~/.cache/clockhands)\n"
        "  --store-dir D  persist under D instead\n");
    std::exit(code);
}

int
parseCount(const char* what, const char* s, int lo, int hi)
{
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < lo || v > hi) {
        std::fprintf(stderr, "chfarmd: %s expects %d..%d, got '%s'\n",
                     what, lo, hi, s);
        std::exit(2);
    }
    return static_cast<int>(v);
}

} // namespace

int
main(int argc, char** argv)
{
    ch::service::FarmOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "chfarmd: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socket = next();
        } else if (arg == "--workers") {
            opt.workers = parseCount("--workers", next(), 1, 1024);
        } else if (arg == "--store") {
            opt.useStore = true;
        } else if (arg == "--store-dir") {
            opt.storeDir = next();
            opt.useStore = true;
        } else if (arg == "--queue-bound") {
            opt.queueBound = static_cast<size_t>(
                parseCount("--queue-bound", next(), 1, 1 << 20));
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "chfarmd: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opt.socket.empty()) {
        std::fprintf(stderr, "chfarmd: --socket is required\n");
        usage(2);
    }

    try {
        const std::string address = opt.socket;
        ch::service::FarmServer server(std::move(opt));
        server.start();
        g_server = &server;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        // Scripts (CI's farm-smoke job) wait for this line before
        // connecting.
        std::printf("chfarmd: listening on %s (%d workers)\n",
                    address.c_str(), server.workerCount());
        std::fflush(stdout);
        server.serve();
        g_server = nullptr;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "chfarmd: %s\n", e.what());
        return 1;
    }
    return 0;
}
