#include "service/farm.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <thread>

#include "common/logging.h"
#include "runner/trace_cache.h"
#include "service/codec.h"
#include "service/json.h"
#include "service/store.h"
#include "workloads/workloads.h"

namespace ch {
namespace service {

namespace {

// ---------------------------------------------------------------------
// Socket plumbing.
// ---------------------------------------------------------------------

/** True when @p address names a Unix socket path (see FarmOptions). */
bool
isUnixAddress(const std::string& address, std::string* path)
{
    if (address.rfind("unix:", 0) == 0) {
        *path = address.substr(5);
        return true;
    }
    if (address.find('/') != std::string::npos) {
        *path = address;
        return true;
    }
    return false;
}

void
splitHostPort(const std::string& address, std::string* host,
              std::string* port)
{
    std::string rest = address;
    if (rest.rfind("tcp:", 0) == 0)
        rest = rest.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 >= rest.size())
        fatal("farm: '", address, "' is not host:port or a socket path");
    *host = rest.substr(0, colon);
    if (host->empty())
        *host = "127.0.0.1";
    *port = rest.substr(colon + 1);
}

int
listenOn(const std::string& address, std::string* unixPath)
{
    std::string path;
    if (isUnixAddress(address, &path)) {
        if (path.empty())
            fatal("farm: empty Unix socket path");
        sockaddr_un sa = {};
        sa.sun_family = AF_UNIX;
        if (path.size() >= sizeof(sa.sun_path))
            fatal("farm: socket path too long: '", path, "'");
        std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("farm: socket(): ", std::strerror(errno));
        ::unlink(path.c_str());   // replace a stale socket file
        if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
            0) {
            const int err = errno;
            ::close(fd);
            fatal("farm: cannot bind '", path, "': ",
                  std::strerror(err));
        }
        if (::listen(fd, 64) != 0) {
            const int err = errno;
            ::close(fd);
            fatal("farm: listen on '", path, "': ", std::strerror(err));
        }
        *unixPath = path;
        return fd;
    }

    std::string host, port;
    splitHostPort(address, &host, &port);
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints,
                                 &res);
    if (rc != 0)
        fatal("farm: cannot resolve '", address, "': ",
              gai_strerror(rc));
    int fd = -1;
    std::string err = "no addresses";
    for (addrinfo* ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0)
            break;
        err = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        fatal("farm: cannot listen on '", address, "': ", err);
    unixPath->clear();
    return fd;
}

int
connectTo(const std::string& address)
{
    std::string path;
    if (isUnixAddress(address, &path)) {
        sockaddr_un sa = {};
        sa.sun_family = AF_UNIX;
        if (path.empty() || path.size() >= sizeof(sa.sun_path))
            fatal("farm: bad Unix socket path: '", path, "'");
        std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("farm: socket(): ", std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr*>(&sa),
                      sizeof(sa)) != 0) {
            const int err = errno;
            ::close(fd);
            fatal("farm: cannot connect to '", path, "': ",
                  std::strerror(err));
        }
        return fd;
    }

    std::string host, port;
    splitHostPort(address, &host, &port);
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints,
                                 &res);
    if (rc != 0)
        fatal("farm: cannot resolve '", address, "': ",
              gai_strerror(rc));
    int fd = -1;
    std::string err = "no addresses";
    for (addrinfo* ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        err = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        fatal("farm: cannot connect to '", address, "': ", err);
    return fd;
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Write all of @p data to @p fd, waiting out EAGAIN with poll(). */
bool
writeAll(int fd, const std::string& data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd, POLLOUT, 0};
            ::poll(&pfd, 1, 1000);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

/** Blocking line read into @p inBuf; false on EOF/error. */
bool
readLineBlocking(int fd, std::string& inBuf, std::string* line)
{
    for (;;) {
        const size_t nl = inBuf.find('\n');
        if (nl != std::string::npos) {
            *line = inBuf.substr(0, nl);
            inBuf.erase(0, nl + 1);
            return true;
        }
        char buf[65536];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            inBuf.append(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
}

// ---------------------------------------------------------------------
// Worker process.
// ---------------------------------------------------------------------

/**
 * The forked worker's main loop: read job lines, simulate, write done
 * lines; EOF on the master pipe is the shutdown signal. Never returns.
 */
[[noreturn]] void
workerMain(int fd, const FarmOptions& opt)
{
    ::signal(SIGPIPE, SIG_IGN);
    std::shared_ptr<PersistentStore> store;
    std::unique_ptr<TraceCache> ownedTraces;
    TraceCache* traces = &traceCache();
    try {
        if (opt.useStore) {
            store = std::make_shared<PersistentStore>(opt.storeDir);
            ownedTraces = std::make_unique<TraceCache>(
                TraceCache::defaultBudgetBytes(), store.get());
            traces = ownedTraces.get();
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "chfarmd worker: store setup failed: %s\n",
                     e.what());
        ::_exit(1);
    }

    std::string inBuf, line;
    while (readLineBlocking(fd, inBuf, &line)) {
        JsonValue msg;
        std::string err;
        if (!jsonTryParse(line, &msg, &err) ||
            msg.getString("type", "") != "job") {
            std::fprintf(stderr, "chfarmd worker: bad job line: %s\n",
                         err.c_str());
            continue;
        }
        const uint64_t tag = msg.getU64("tag", 0);
        if (msg.getBool("fault_inject", false)) {
            // Crash-containment hook (tests/service_test.cc): die the
            // way a simulator bug would, mid-job.
            std::fprintf(stderr,
                         "chfarmd worker: fault injection, aborting\n");
            std::abort();
        }
        JsonValue reply = JsonValue::object();
        reply.add("type", JsonValue::str("done"));
        reply.add("tag", JsonValue::number(tag));
        bool storeHit = false;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            JobSpec spec = jobSpecFromJson(*msg.find("spec"));
            if (spec.workload.empty())
                fatal("farm job without a workload");
            // Resolve a per-job rung pin into the config, exactly as
            // SweepRunner::addSim does locally: a pinned spec submitted
            // straight over the wire (chfarm submit) must simulate at
            // its pinned rung, not the config default.
            if (spec.coreModel)
                spec.cfg.coreModel = *spec.coreModel;
            const Program& prog =
                compiledWorkload(spec.workload, spec.isa);
            JobContext ctx{spec, &prog, programCache(), traces,
                           store.get()};
            JobMetrics m = simJob(ctx);
            storeHit = ctx.storeHit;
            const auto t1 = std::chrono::steady_clock::now();
            m.wallMs =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            m.peakRssKiB = currentPeakRssKiB();
            if (traces) {
                m.hostCounters["trace_cache.hits"] = traces->hitCount();
                m.hostCounters["trace_cache.misses"] =
                    traces->missCount();
                m.hostCounters["trace_cache.evictions"] =
                    traces->evictionCount();
            }
            reply.add("ok", JsonValue::boolean_(true));
            reply.add("store_hit", JsonValue::boolean_(storeHit));
            reply.add("metrics", jobMetricsToJson(m));
        } catch (const std::exception& e) {
            reply.add("ok", JsonValue::boolean_(false));
            reply.add("error", JsonValue::str(e.what()));
            reply.add("store_hit", JsonValue::boolean_(false));
            reply.add("metrics", jobMetricsToJson(JobMetrics{}));
        }
        if (!writeAll(fd, reply.dump() + "\n"))
            break;
    }
    ::_exit(0);
}

} // namespace

// ---------------------------------------------------------------------
// FarmServer.
// ---------------------------------------------------------------------

struct FarmServer::Impl {
    struct PendingJob {
        uint64_t tag = 0;
        int clientFd = -1;       ///< -1: owner disconnected, drop result
        uint64_t clientId = 0;
        int priority = 0;
        std::string wireLine;    ///< prebuilt master->worker job line
        std::string label;       ///< spec id, for verbose logs
    };

    struct WorkerSlot {
        pid_t pid = -1;
        int fd = -1;
        std::string inBuf;
        std::deque<PendingJob> queue;
        bool busy = false;
        PendingJob current;
    };

    struct ClientConn {
        std::string inBuf;
        std::string outBuf;
    };

    FarmOptions opt;
    FarmServer* self = nullptr;
    int listenFd = -1;
    std::string unixPath;
    std::vector<WorkerSlot> workers;
    std::map<int, ClientConn> clients;
    uint64_t nextTag = 1;
    size_t queuedJobs = 0;

    // Lifetime counters, reported by the stats message.
    uint64_t jobsDone = 0;
    uint64_t jobsFailed = 0;
    uint64_t crashes = 0;
    uint64_t simulated = 0;    ///< results that actually ran a simulation
    uint64_t storeHits = 0;    ///< results served from the store
    uint64_t busyReplies = 0;

    int
    resolvedWorkers() const
    {
        int n = opt.workers;
        if (n <= 0)
            n = static_cast<int>(std::thread::hardware_concurrency());
        return n > 0 ? n : 1;
    }

    void
    spawnWorker(WorkerSlot& w)
    {
        int sp[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0)
            fatal("farm: socketpair(): ", std::strerror(errno));
        const pid_t pid = ::fork();
        if (pid < 0)
            fatal("farm: fork(): ", std::strerror(errno));
        if (pid == 0) {
            // Child: drop every master-side fd, then serve jobs.
            ::close(sp[0]);
            if (listenFd >= 0)
                ::close(listenFd);
            for (const auto& [fd, conn] : clients) {
                (void)conn;
                ::close(fd);
            }
            for (const WorkerSlot& other : workers) {
                if (other.fd >= 0)
                    ::close(other.fd);
            }
            workerMain(sp[1], opt);
        }
        ::close(sp[1]);
        setNonBlocking(sp[0]);
        w.pid = pid;
        w.fd = sp[0];
        w.inBuf.clear();
        w.busy = false;
    }

    void
    start()
    {
        ::signal(SIGPIPE, SIG_IGN);
        listenFd = listenOn(opt.socket, &unixPath);
        setNonBlocking(listenFd);
        workers.resize(static_cast<size_t>(resolvedWorkers()));
        for (WorkerSlot& w : workers)
            spawnWorker(w);
    }

    size_t
    affinity(const JobSpec& spec) const
    {
        uint64_t h = fnv1a(spec.workload.data(), spec.workload.size());
        const int isa = static_cast<int>(spec.isa);
        h = fnv1a(&isa, sizeof(isa), h);
        return static_cast<size_t>(h % workers.size());
    }

    void
    enqueue(PendingJob job)
    {
        WorkerSlot& w = workers[affinity(jobOf(job))];
        // Priority order, stable within a priority level: insert after
        // the last entry with priority >= ours.
        auto it = w.queue.begin();
        while (it != w.queue.end() && it->priority >= job.priority)
            ++it;
        w.queue.insert(it, std::move(job));
        ++queuedJobs;
    }

    /** The job's spec — only the scheduling fields are needed, so the
     *  wire line is re-parsed lazily exactly once per enqueue. */
    JobSpec
    jobOf(const PendingJob& job) const
    {
        const JsonValue v = jsonParse(job.wireLine);
        return jobSpecFromJson(*v.find("spec"));
    }

    void
    sendToClient(int fd, const std::string& line)
    {
        auto it = clients.find(fd);
        if (it == clients.end())
            return;
        it->second.outBuf += line;
        it->second.outBuf += '\n';
        flushClient(fd);
    }

    void
    flushClient(int fd)
    {
        auto it = clients.find(fd);
        if (it == clients.end())
            return;
        std::string& out = it->second.outBuf;
        while (!out.empty()) {
            const ssize_t n = ::write(fd, out.data(), out.size());
            if (n > 0) {
                out.erase(0, static_cast<size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                          errno == EINTR))
                return;   // POLLOUT will resume
            dropClient(fd);
            return;
        }
    }

    void
    dropClient(int fd)
    {
        auto it = clients.find(fd);
        if (it == clients.end())
            return;
        ::close(fd);
        clients.erase(it);
        // Orphan this client's work: queued jobs go away, the running
        // one finishes but its result is dropped.
        for (WorkerSlot& w : workers) {
            for (auto jit = w.queue.begin(); jit != w.queue.end();) {
                if (jit->clientFd == fd) {
                    jit = w.queue.erase(jit);
                    --queuedJobs;
                } else {
                    ++jit;
                }
            }
            if (w.busy && w.current.clientFd == fd)
                w.current.clientFd = -1;
        }
    }

    void
    dispatch()
    {
        for (WorkerSlot& w : workers) {
            if (w.busy || w.fd < 0)
                continue;
            PendingJob job;
            if (!w.queue.empty()) {
                job = std::move(w.queue.front());
                w.queue.pop_front();
            } else {
                // Work stealing: raid the longest queue from its tail,
                // the lowest-priority end, so the victim keeps its most
                // urgent work close to its warm caches.
                WorkerSlot* victim = nullptr;
                for (WorkerSlot& other : workers) {
                    if (!other.queue.empty() &&
                        (!victim ||
                         other.queue.size() > victim->queue.size()))
                        victim = &other;
                }
                if (!victim)
                    continue;
                job = std::move(victim->queue.back());
                victim->queue.pop_back();
            }
            --queuedJobs;
            if (opt.verbose) {
                std::fprintf(stderr, "chfarmd: worker %d <- %s\n",
                             static_cast<int>(w.pid),
                             job.label.c_str());
            }
            if (!writeAll(w.fd, job.wireLine)) {
                // The worker died between jobs; the poll loop will reap
                // and respawn it. Requeue at the front.
                w.queue.push_front(std::move(job));
                ++queuedJobs;
                continue;
            }
            w.current = std::move(job);
            w.busy = true;
        }
    }

    void
    handleClientLine(int fd, const std::string& line)
    {
        JsonValue msg;
        std::string err;
        if (!jsonTryParse(line, &msg, &err) || !msg.isObject()) {
            JsonValue r = JsonValue::object();
            r.add("type", JsonValue::str("error"));
            r.add("error", JsonValue::str("malformed request: " + err));
            sendToClient(fd, r.dump());
            return;
        }
        const std::string type = msg.getString("type", "");
        if (type == "ping") {
            sendToClient(fd, "{\"type\":\"pong\"}");
            return;
        }
        if (type == "stats") {
            size_t running = 0;
            for (const WorkerSlot& w : workers)
                running += w.busy ? 1 : 0;
            JsonValue r = JsonValue::object();
            r.add("type", JsonValue::str("stats"));
            r.add("workers",
                  JsonValue::number(static_cast<uint64_t>(
                      workers.size())));
            r.add("queue_depth",
                  JsonValue::number(static_cast<uint64_t>(queuedJobs)));
            r.add("running",
                  JsonValue::number(static_cast<uint64_t>(running)));
            r.add("jobs_done", JsonValue::number(jobsDone));
            r.add("jobs_failed", JsonValue::number(jobsFailed));
            r.add("worker_crashes", JsonValue::number(crashes));
            r.add("simulated", JsonValue::number(simulated));
            r.add("store_hits", JsonValue::number(storeHits));
            r.add("busy_replies", JsonValue::number(busyReplies));
            sendToClient(fd, r.dump());
            return;
        }
        if (type == "shutdown") {
            sendToClient(fd, "{\"type\":\"bye\"}");
            self->requestStop();
            return;
        }
        if (type == "submit") {
            const uint64_t id = msg.getU64("id", 0);
            if (queuedJobs >= opt.queueBound) {
                ++busyReplies;
                JsonValue r = JsonValue::object();
                r.add("type", JsonValue::str("busy"));
                r.add("id", JsonValue::number(id));
                sendToClient(fd, r.dump());
                return;
            }
            const JsonValue* spec = msg.find("spec");
            if (!spec) {
                JsonValue r = JsonValue::object();
                r.add("type", JsonValue::str("error"));
                r.add("error", JsonValue::str("submit without a spec"));
                sendToClient(fd, r.dump());
                return;
            }
            PendingJob job;
            job.tag = nextTag++;
            job.clientFd = fd;
            job.clientId = id;
            try {
                const JobSpec parsed = jobSpecFromJson(*spec);
                job.priority = parsed.priority;
                job.label = parsed.id;
            } catch (const std::exception& e) {
                // Accept anyway: the worker re-parses and reports the
                // error as a structured result row for this id.
                job.label = "unparsed";
            }
            JsonValue wire = JsonValue::object();
            wire.add("type", JsonValue::str("job"));
            wire.add("tag", JsonValue::number(job.tag));
            if (msg.getBool("fault_inject", false))
                wire.add("fault_inject", JsonValue::boolean_(true));
            wire.add("spec", *spec);
            job.wireLine = wire.dump() + "\n";
            enqueue(std::move(job));
            JsonValue r = JsonValue::object();
            r.add("type", JsonValue::str("accepted"));
            r.add("id", JsonValue::number(id));
            sendToClient(fd, r.dump());
            dispatch();
            return;
        }
        JsonValue r = JsonValue::object();
        r.add("type", JsonValue::str("error"));
        r.add("error", JsonValue::str("unknown request type '" + type +
                                      "'"));
        sendToClient(fd, r.dump());
    }

    void
    finishJob(const PendingJob& job, bool ok, const std::string& error,
              bool storeHit, const JsonValue* metrics)
    {
        ++jobsDone;
        if (!ok)
            ++jobsFailed;
        else if (storeHit)
            ++storeHits;
        if (ok && !storeHit)
            ++simulated;
        if (job.clientFd < 0)
            return;   // owner disconnected
        JsonValue r = JsonValue::object();
        r.add("type", JsonValue::str("result"));
        r.add("id", JsonValue::number(job.clientId));
        r.add("ok", JsonValue::boolean_(ok));
        if (!ok)
            r.add("error", JsonValue::str(error));
        r.add("store_hit", JsonValue::boolean_(storeHit));
        r.add("metrics",
              metrics ? *metrics : jobMetricsToJson(JobMetrics{}));
        sendToClient(job.clientFd, r.dump());
    }

    void
    handleWorkerLine(WorkerSlot& w, const std::string& line)
    {
        JsonValue msg;
        std::string err;
        if (!jsonTryParse(line, &msg, &err) ||
            msg.getString("type", "") != "done") {
            warn("chfarmd: dropping malformed worker line: ", err);
            return;
        }
        if (!w.busy || msg.getU64("tag", 0) != w.current.tag) {
            warn("chfarmd: worker result for an unexpected tag");
            return;
        }
        const PendingJob job = std::move(w.current);
        w.busy = false;
        finishJob(job, msg.getBool("ok", false),
                  msg.getString("error", "simulation failed"),
                  msg.getBool("store_hit", false), msg.find("metrics"));
        dispatch();
    }

    /** A worker fd hit EOF: reap, fail its in-flight job, respawn. */
    void
    workerDied(WorkerSlot& w)
    {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        std::string detail = "exited";
        if (WIFSIGNALED(status)) {
            detail = "killed by signal " +
                     std::to_string(WTERMSIG(status));
        } else if (WIFEXITED(status)) {
            detail = "exit status " +
                     std::to_string(WEXITSTATUS(status));
        }
        ::close(w.fd);
        w.fd = -1;
        ++crashes;
        if (opt.verbose || w.busy) {
            std::fprintf(stderr,
                         "chfarmd: worker %d crashed (%s)%s%s; "
                         "respawning\n",
                         static_cast<int>(w.pid), detail.c_str(),
                         w.busy ? " during " : "",
                         w.busy ? w.current.label.c_str() : "");
        }
        if (w.busy) {
            const PendingJob job = std::move(w.current);
            w.busy = false;
            finishJob(job, false,
                      "farm worker crashed (" + detail +
                          "); job isolated, worker respawned",
                      false, nullptr);
        }
        spawnWorker(w);
        dispatch();
    }

    void
    serve()
    {
        while (!self->stop_.load(std::memory_order_relaxed)) {
            std::vector<pollfd> fds;
            fds.push_back({listenFd, POLLIN, 0});
            const size_t workerBase = fds.size();
            for (const WorkerSlot& w : workers)
                fds.push_back({w.fd, POLLIN, 0});
            const size_t clientBase = fds.size();
            std::vector<int> clientFds;
            for (const auto& [fd, conn] : clients) {
                short events = POLLIN;
                if (!conn.outBuf.empty())
                    events |= POLLOUT;
                fds.push_back({fd, events, 0});
                clientFds.push_back(fd);
            }

            const int n = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()), 200);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("farm: poll(): ", std::strerror(errno));
            }
            if (n == 0)
                continue;

            if (fds[0].revents & POLLIN) {
                for (;;) {
                    const int cfd = ::accept(listenFd, nullptr, nullptr);
                    if (cfd < 0)
                        break;
                    setNonBlocking(cfd);
                    clients[cfd];
                }
            }

            for (size_t i = 0; i < workers.size(); ++i) {
                const short re = fds[workerBase + i].revents;
                if (!(re & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                WorkerSlot& w = workers[i];
                bool died = false;
                for (;;) {
                    char buf[65536];
                    const ssize_t r = ::read(w.fd, buf, sizeof(buf));
                    if (r > 0) {
                        w.inBuf.append(buf, static_cast<size_t>(r));
                        continue;
                    }
                    if (r < 0 && (errno == EAGAIN ||
                                  errno == EWOULDBLOCK))
                        break;
                    if (r < 0 && errno == EINTR)
                        continue;
                    died = true;   // EOF or hard error
                    break;
                }
                size_t nl;
                while ((nl = w.inBuf.find('\n')) != std::string::npos) {
                    const std::string line = w.inBuf.substr(0, nl);
                    w.inBuf.erase(0, nl + 1);
                    handleWorkerLine(w, line);
                }
                if (died)
                    workerDied(w);
            }

            for (size_t i = 0; i < clientFds.size(); ++i) {
                const int cfd = clientFds[i];
                const short re = fds[clientBase + i].revents;
                if (re & POLLOUT)
                    flushClient(cfd);
                if (!clients.count(cfd))
                    continue;
                if (!(re & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                bool gone = false;
                auto& conn = clients[cfd];
                for (;;) {
                    char buf[65536];
                    const ssize_t r = ::read(cfd, buf, sizeof(buf));
                    if (r > 0) {
                        conn.inBuf.append(buf,
                                          static_cast<size_t>(r));
                        continue;
                    }
                    if (r < 0 && (errno == EAGAIN ||
                                  errno == EWOULDBLOCK))
                        break;
                    if (r < 0 && errno == EINTR)
                        continue;
                    gone = true;
                    break;
                }
                size_t nl;
                while (clients.count(cfd) &&
                       (nl = conn.inBuf.find('\n')) !=
                           std::string::npos) {
                    const std::string line = conn.inBuf.substr(0, nl);
                    conn.inBuf.erase(0, nl + 1);
                    handleClientLine(cfd, line);
                }
                if (gone)
                    dropClient(cfd);
            }
        }
        cleanup();
    }

    void
    cleanup()
    {
        // Best-effort flush of final replies (the shutdown "bye").
        for (auto& [fd, conn] : clients) {
            if (!conn.outBuf.empty())
                writeAll(fd, conn.outBuf);
            ::close(fd);
        }
        clients.clear();
        for (WorkerSlot& w : workers) {
            if (w.fd >= 0) {
                ::close(w.fd);   // EOF: worker _exit(0)s
                w.fd = -1;
            }
            if (w.pid > 0) {
                ::waitpid(w.pid, nullptr, 0);
                w.pid = -1;
            }
        }
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        if (!unixPath.empty()) {
            ::unlink(unixPath.c_str());
            unixPath.clear();
        }
    }
};

FarmServer::FarmServer(FarmOptions opt) : impl_(new Impl)
{
    impl_->opt = std::move(opt);
    impl_->self = this;
}

FarmServer::~FarmServer()
{
    impl_->cleanup();
}

void
FarmServer::start()
{
    impl_->start();
}

void
FarmServer::serve()
{
    impl_->serve();
}

int
FarmServer::workerCount() const
{
    return impl_->resolvedWorkers();
}

// ---------------------------------------------------------------------
// FarmClient.
// ---------------------------------------------------------------------

FarmClient::FarmClient(const std::string& address)
{
    ::signal(SIGPIPE, SIG_IGN);
    fd_ = connectTo(address);
}

FarmClient::~FarmClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
FarmClient::sendLine(const std::string& line)
{
    if (!writeAll(fd_, line + "\n"))
        fatal("farm: connection lost while sending");
}

std::string
FarmClient::readLine()
{
    std::string line;
    if (!readLineBlocking(fd_, inBuf_, &line))
        fatal("farm: connection closed by the daemon");
    return line;
}

std::string
FarmClient::request(const std::string& line)
{
    sendLine(line);
    return readLine();
}

void
FarmClient::runJobs(const std::vector<JobSpec>& specs,
                    const std::vector<char>& faultInject,
                    const std::function<void(size_t, JobResult)>& done,
                    const std::function<void(size_t)>& onAccepted)
{
    size_t next = 0;
    size_t inFlight = 0;
    size_t finished = 0;

    const auto submit = [&](size_t i) {
        JsonValue msg = JsonValue::object();
        msg.add("type", JsonValue::str("submit"));
        msg.add("id", JsonValue::number(static_cast<uint64_t>(i)));
        if (i < faultInject.size() && faultInject[i])
            msg.add("fault_inject", JsonValue::boolean_(true));
        msg.add("spec", jobSpecToJson(specs[i]));
        sendLine(msg.dump());
    };

    const auto handleResult = [&](const JsonValue& v) {
        const uint64_t id = v.getU64("id", ~0ull);
        if (id >= specs.size())
            fatal("farm: result for unknown job id ", id);
        JobResult r;
        r.spec = specs[id];
        r.ok = v.getBool("ok", false);
        if (!r.ok)
            r.error = v.getString("error", "farm job failed");
        if (const JsonValue* m = v.find("metrics"))
            r.metrics = jobMetricsFromJson(*m);
        --inFlight;
        ++finished;
        done(static_cast<size_t>(id), std::move(r));
    };

    while (finished < specs.size()) {
        if (next < specs.size()) {
            submit(next);
            // Read until this submit is decided; results interleave.
            for (bool decided = false; !decided;) {
                const JsonValue v = jsonParse(readLine());
                const std::string type = v.getString("type", "");
                if (type == "accepted") {
                    if (onAccepted)
                        onAccepted(next);
                    ++inFlight;
                    ++next;
                    decided = true;
                } else if (type == "busy") {
                    // Backpressure: drain one result (or back off when
                    // nothing of ours is queued) and resubmit.
                    if (inFlight == 0) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(20));
                    } else {
                        for (;;) {
                            const JsonValue r = jsonParse(readLine());
                            if (r.getString("type", "") == "result") {
                                handleResult(r);
                                break;
                            }
                        }
                    }
                    decided = true;   // outer loop resubmits `next`
                } else if (type == "result") {
                    handleResult(v);
                } else if (type == "error") {
                    fatal("farm: ", v.getString("error", "unknown"));
                } else {
                    fatal("farm: unexpected reply '", type, "'");
                }
            }
        } else {
            const JsonValue v = jsonParse(readLine());
            const std::string type = v.getString("type", "");
            if (type == "result")
                handleResult(v);
            else if (type == "error")
                fatal("farm: ", v.getString("error", "unknown"));
            else
                fatal("farm: unexpected reply '", type, "'");
        }
    }
}

// ---------------------------------------------------------------------
// FarmSweepExecutor.
// ---------------------------------------------------------------------

FarmSweepExecutor::FarmSweepExecutor(std::string address)
    : address_(std::move(address))
{
    // Fail fast with a clear error while options are being parsed, not
    // after the sweep has been built.
    FarmClient probe(address_);
    const JsonValue v = jsonParse(probe.request("{\"type\":\"ping\"}"));
    if (v.getString("type", "") != "pong")
        fatal("farm: '", address_, "' did not answer the ping");
}

void
FarmSweepExecutor::execute(
    const std::vector<JobSpec>& specs,
    const std::function<void(size_t, JobResult)>& done)
{
    FarmClient client(address_);
    client.runJobs(specs, {}, done);
}

void
attachFarm(RunnerOptions& opt, const std::string& address)
{
    opt.executor = std::make_shared<FarmSweepExecutor>(address);
}

} // namespace service
} // namespace ch
