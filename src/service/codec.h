#ifndef CH_SERVICE_CODEC_H
#define CH_SERVICE_CODEC_H

/**
 * @file
 * JobSpec/JobMetrics <-> JSON conversions plus the content-addressed
 * keys of the persistent store (docs/SERVICE.md).
 *
 * Two key invariants:
 *
 *  - Exactness: every field round-trips bit-for-bit (uint64 counters as
 *    raw integer tokens, doubles via %.17g), so a farm or store round
 *    trip re-emits byte-identical ch-sweep-metrics-v1 files.
 *
 *  - Content addressing: programHash() digests what the emulator
 *    actually executes (ISA, layout, text, data); specKeyJson() is a
 *    canonical serialization of the simulation-relevant spec fields.
 *    Labels that cannot change any metric — id, seed, priority, the
 *    pipe-trace path — are excluded, so relabeled grids still hit.
 */

#include <cstdint>
#include <string>

#include "runner/runner.h"
#include "service/json.h"

namespace ch {
namespace service {

/** Incremental FNV-1a64 (same constants as jobSeed()). */
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
uint64_t fnv1a(const void* data, size_t len,
               uint64_t h = kFnvBasis);

/** 16-lowercase-hex-digit form of a hash. */
std::string hashHex(uint64_t h);

/** Digest of the executable content of @p prog; see file docs. */
uint64_t programHash(const Program& prog);

/** Canonical JSON of the simulation-relevant spec fields. */
std::string specKeyJson(const JobSpec& spec);

/** fnv1a over specKeyJson(). */
uint64_t specHash(const JobSpec& spec);

// -- wire/file conversions (all fields, labels included) --------------
JsonValue machineConfigToJson(const MachineConfig& cfg);
MachineConfig machineConfigFromJson(const JsonValue& v);

JsonValue jobSpecToJson(const JobSpec& spec);
JobSpec jobSpecFromJson(const JsonValue& v);

JsonValue jobMetricsToJson(const JobMetrics& m);
JobMetrics jobMetricsFromJson(const JsonValue& v);

/** Canonical ISA tag ("riscv"/"straight"/"clockhands"). */
const char* isaTagName(Isa isa);
/** Parse an ISA tag; throws FatalError on anything else. */
Isa isaFromTag(const std::string& tag);

} // namespace service
} // namespace ch

#endif // CH_SERVICE_CODEC_H
