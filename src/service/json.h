#ifndef CH_SERVICE_JSON_H
#define CH_SERVICE_JSON_H

/**
 * @file
 * Minimal JSON model shared by the farm wire protocol and the
 * persistent store (docs/SERVICE.md). Numbers are kept as their raw
 * source token: a uint64_t or a %.17g double round-trips through
 * parse -> dump without any binary->decimal->binary loss, which the
 * byte-identical-metrics contract depends on.
 *
 * Objects preserve insertion order, so a canonical writer (the spec
 * hasher) controls the exact byte sequence it hashes.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ch {
namespace service {

/** One JSON value; see file docs for the number representation. */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;

    /** String: decoded text. Number: the raw numeric token. */
    std::string text;

    std::vector<JsonValue> items;                           ///< Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    // -- constructors -------------------------------------------------
    static JsonValue null() { return JsonValue{}; }
    static JsonValue boolean_(bool b);
    static JsonValue number(uint64_t v);
    static JsonValue number(int64_t v);
    static JsonValue number(int v) { return number(static_cast<int64_t>(v)); }
    static JsonValue number(double v);     ///< %.17g raw token
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();

    // -- accessors ----------------------------------------------------
    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Object member by key, or null when absent / not an object. */
    const JsonValue* find(const std::string& key) const;

    /** Typed reads; throw FatalError on a kind/format mismatch. */
    bool asBool() const;
    uint64_t asU64() const;
    int64_t asI64() const;
    double asDouble() const;
    const std::string& asString() const;

    /** Object member with a typed default when absent. */
    uint64_t getU64(const std::string& key, uint64_t dflt) const;
    int64_t getI64(const std::string& key, int64_t dflt) const;
    double getDouble(const std::string& key, double dflt) const;
    bool getBool(const std::string& key, bool dflt) const;
    std::string getString(const std::string& key,
                          const std::string& dflt) const;

    // -- builders -----------------------------------------------------
    /** Append an object member (no duplicate check; writer-controlled). */
    JsonValue& add(std::string key, JsonValue v);
    /** Append an array element. */
    JsonValue& push(JsonValue v);

    /** Compact single-line serialization (ndjson-safe: no newlines). */
    std::string dump() const;
};

/** Parse @p text; throws FatalError with a position on malformed input. */
JsonValue jsonParse(const std::string& text);

/** Parse without throwing; false + @p err on malformed input. */
bool jsonTryParse(const std::string& text, JsonValue* out,
                  std::string* err);

} // namespace service
} // namespace ch

#endif // CH_SERVICE_JSON_H
