#include "service/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "common/logging.h"
#include "service/codec.h"
#include "service/json.h"

namespace ch {
namespace service {

namespace {

/** mkdir -p for the two-level store paths; EEXIST is success. */
void
makeDirs(const std::string& path)
{
    std::string partial;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/')
            continue;
        partial = path.substr(0, i);
        if (partial.empty() || partial == ".")
            continue;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("store: cannot create '", partial, "': ",
                  std::strerror(errno));
    }
}

/** Write @p data to @p path atomically (tmp file + rename). */
void
atomicWrite(const std::string& path, const void* data, size_t size)
{
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), ".tmp.%d",
                  static_cast<int>(::getpid()));
    const std::string tmpPath = path + tmp;
    const int fd =
        ::open(tmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0)
        fatal("store: cannot write '", tmpPath, "': ",
              std::strerror(errno));
    const auto* p = static_cast<const uint8_t*>(data);
    size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, p + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            ::unlink(tmpPath.c_str());
            fatal("store: write to '", tmpPath, "' failed: ",
                  std::strerror(err));
        }
        off += static_cast<size_t>(n);
    }
    ::close(fd);
    if (::rename(tmpPath.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmpPath.c_str());
        fatal("store: rename to '", path, "' failed: ",
              std::strerror(err));
    }
}

/**
 * Fixed-size header of a version-1 .chtrace file (all fields
 * little-endian). Still accepted by load(): v1 files carry no keyframe
 * index, so a replayRange() on them falls back to skip-decoding from
 * the start of the stream (src/trace/trace_buffer.h).
 */
struct TraceFileHeaderV1 {
    char magic[8];        // "CHTRACE1"
    uint64_t instCount;
    uint64_t firstSeq;
    int64_t exitCode;
    uint64_t encodedBytes;
    uint8_t exited;
    uint8_t pad[7];
};
static_assert(sizeof(TraceFileHeaderV1) == 48, "stable on-disk layout");

/**
 * Version-2 header: adds the keyframe-index length. File layout is
 * header, then encodedBytes of trace payload, then keyframeCount raw
 * TraceKeyframe records (32 bytes each) — the index trails the payload
 * so the mmap'd payload keeps the same alignment as v1.
 */
struct TraceFileHeader {
    char magic[8];        // "CHTRACE2"
    uint64_t instCount;
    uint64_t firstSeq;
    int64_t exitCode;
    uint64_t encodedBytes;
    uint64_t keyframeCount;
    uint8_t exited;
    uint8_t pad[7];
};
static_assert(sizeof(TraceFileHeader) == 56, "stable on-disk layout");
static_assert(sizeof(TraceKeyframe) == 32 &&
                  std::is_trivially_copyable<TraceKeyframe>::value,
              "keyframes serialize as raw 32-byte records");

constexpr char kTraceMagicV1[8] = {'C', 'H', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kTraceMagic[8] = {'C', 'H', 'T', 'R', 'A', 'C', 'E', '2'};

/** An mmap'd file region; unmapped when the last trace handle drops. */
struct Mapping {
    void* base = nullptr;
    size_t size = 0;

    ~Mapping()
    {
        if (base)
            ::munmap(base, size);
    }
};

} // namespace

std::string
PersistentStore::defaultDir()
{
    if (const char* env = std::getenv("CH_STORE_DIR"); env && *env)
        return env;
    if (const char* home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.cache/clockhands";
    return "/tmp/clockhands-store";
}

PersistentStore::PersistentStore(std::string rootDir)
    : root_(rootDir.empty() ? defaultDir() : std::move(rootDir))
{
    makeDirs(root_ + "/v1/results");
    makeDirs(root_ + "/v1/traces");
    if (::access(root_.c_str(), W_OK) != 0)
        fatal("store: '", root_, "' is not writable");
}

std::string
PersistentStore::resultPath(const JobSpec& spec,
                            const Program& prog) const
{
    const std::string bin = hashHex(programHash(prog));
    const std::string key = hashHex(specHash(spec));
    return root_ + "/v1/results/" + bin.substr(0, 2) + "/" + bin + "-" +
           key + ".json";
}

std::string
PersistentStore::tracePath(const Program& prog, uint64_t maxInsts) const
{
    const std::string bin = hashHex(programHash(prog));
    char cap[24];
    std::snprintf(cap, sizeof(cap), "%llu",
                  static_cast<unsigned long long>(maxInsts));
    return root_ + "/v1/traces/" + bin.substr(0, 2) + "/" + bin + "-" +
           cap + ".chtrace";
}

bool
PersistentStore::load(const JobSpec& spec, const Program& prog,
                      JobMetrics* out)
{
    const std::string path = resultPath(spec, prog);
    std::ifstream in(path);
    if (!in) {
        resultMisses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue v;
    std::string err;
    if (!jsonTryParse(buf.str(), &v, &err) || !v.isObject() ||
        v.getString("schema", "") != "ch-store-result-v1") {
        warn("store: ignoring malformed record '", path, "'");
        resultMisses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    try {
        *out = jobMetricsFromJson(*v.find("metrics"));
    } catch (const std::exception& e) {
        warn("store: ignoring unreadable record '", path, "': ",
             e.what());
        resultMisses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    resultHits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
PersistentStore::save(const JobSpec& spec, const Program& prog,
                      const JobMetrics& m)
{
    const std::string path = resultPath(spec, prog);
    makeDirs(path.substr(0, path.rfind('/')));
    JsonValue v = JsonValue::object();
    v.add("schema", JsonValue::str("ch-store-result-v1"));
    // The spec key is stored verbatim for debuggability (`python3 -m
    // json.tool` on a record shows what produced it); load() trusts the
    // content-addressed file name alone.
    v.add("key", jsonParse(specKeyJson(spec)));
    v.add("metrics", jobMetricsToJson(m));
    const std::string text = v.dump();
    atomicWrite(path, text.data(), text.size());
}

std::shared_ptr<const TraceBuffer>
PersistentStore::load(const Program& prog, uint64_t maxInsts)
{
    const std::string path = tracePath(prog, maxInsts);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        traceMisses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<size_t>(st.st_size) < sizeof(TraceFileHeaderV1)) {
        ::close(fd);
        warn("store: ignoring truncated trace '", path, "'");
        traceMisses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    const size_t fileSize = static_cast<size_t>(st.st_size);
    void* base = ::mmap(nullptr, fileSize, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        warn("store: mmap of '", path, "' failed: ",
             std::strerror(errno));
        traceMisses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    auto mapping = std::make_shared<Mapping>();
    mapping->base = base;
    mapping->size = fileSize;
    const auto* bytes = static_cast<const uint8_t*>(base);

    // Both format versions load: v1 (no keyframe index) decodes from
    // offset zero on a mid-stream seek, v2 carries the index inline.
    TraceFileHeader hdr = {};
    size_t payloadOff = 0;
    std::vector<TraceKeyframe> keyframes;
    if (std::memcmp(bytes, kTraceMagicV1, sizeof(kTraceMagicV1)) == 0) {
        TraceFileHeaderV1 v1;
        std::memcpy(&v1, bytes, sizeof(v1));
        if (v1.encodedBytes != fileSize - sizeof(v1)) {
            warn("store: ignoring malformed trace '", path, "'");
            traceMisses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        hdr.instCount = v1.instCount;
        hdr.firstSeq = v1.firstSeq;
        hdr.exitCode = v1.exitCode;
        hdr.encodedBytes = v1.encodedBytes;
        hdr.exited = v1.exited;
        payloadOff = sizeof(v1);
    } else if (std::memcmp(bytes, kTraceMagic, sizeof(kTraceMagic)) == 0 &&
               fileSize >= sizeof(TraceFileHeader)) {
        std::memcpy(&hdr, bytes, sizeof(hdr));
        payloadOff = sizeof(hdr);
        if (hdr.keyframeCount >
                (fileSize - payloadOff) / sizeof(TraceKeyframe) ||
            fileSize != payloadOff + hdr.encodedBytes +
                            hdr.keyframeCount * sizeof(TraceKeyframe)) {
            warn("store: ignoring malformed trace '", path, "'");
            traceMisses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        keyframes.resize(hdr.keyframeCount);
        std::memcpy(keyframes.data(), bytes + payloadOff + hdr.encodedBytes,
                    hdr.keyframeCount * sizeof(TraceKeyframe));
        // A corrupt index would make replayRange() decode garbage from
        // mid-record offsets, so reject loudly instead of trusting it:
        // offsets and indices must be in-range and strictly increasing.
        uint64_t prevInst = 0;
        uint64_t prevOff = 0;
        for (const TraceKeyframe& k : keyframes) {
            if (k.instIndex == 0 || k.instIndex >= hdr.instCount ||
                k.byteOffset == 0 || k.byteOffset >= hdr.encodedBytes ||
                k.instIndex <= prevInst || k.byteOffset <= prevOff) {
                warn("store: ignoring trace with corrupt keyframe "
                     "index '", path, "'");
                traceMisses_.fetch_add(1, std::memory_order_relaxed);
                return nullptr;
            }
            prevInst = k.instIndex;
            prevOff = k.byteOffset;
        }
    } else {
        warn("store: ignoring malformed trace '", path, "'");
        traceMisses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    auto trace = std::make_shared<TraceBuffer>();
    trace->setExternal(mapping, bytes + payloadOff,
                       static_cast<size_t>(hdr.encodedBytes),
                       hdr.instCount, hdr.firstSeq, hdr.exited != 0,
                       hdr.exitCode, std::move(keyframes));
    traceHits_.fetch_add(1, std::memory_order_relaxed);
    return trace;
}

void
PersistentStore::save(const Program& prog, uint64_t maxInsts,
                      const TraceBuffer& trace)
{
    CH_ASSERT(!trace.overLimit(), "persisting a truncated trace");
    const std::string path = tracePath(prog, maxInsts);
    makeDirs(path.substr(0, path.rfind('/')));
    const std::vector<TraceKeyframe>& kfs = trace.keyframes();
    TraceFileHeader hdr = {};
    std::memcpy(hdr.magic, kTraceMagic, sizeof(kTraceMagic));
    hdr.instCount = trace.instCount();
    hdr.firstSeq = trace.firstSeq();
    hdr.exitCode = trace.exitCode();
    hdr.encodedBytes = trace.byteSize();
    hdr.keyframeCount = kfs.size();
    hdr.exited = trace.exited() ? 1 : 0;
    const size_t indexBytes = kfs.size() * sizeof(TraceKeyframe);
    std::string blob(sizeof(hdr) + trace.byteSize() + indexBytes, '\0');
    std::memcpy(blob.data(), &hdr, sizeof(hdr));
    std::memcpy(blob.data() + sizeof(hdr), trace.data(),
                trace.byteSize());
    if (indexBytes) {
        std::memcpy(blob.data() + sizeof(hdr) + trace.byteSize(),
                    kfs.data(), indexBytes);
    }
    atomicWrite(path, blob.data(), blob.size());
}

void
attachStore(RunnerOptions& opt, const std::string& dir)
{
    auto store = std::make_shared<PersistentStore>(dir);
    opt.resultStore = store;
    opt.tracePersistence = store;
}

} // namespace service
} // namespace ch
