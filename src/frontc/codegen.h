#ifndef CH_FRONTC_CODEGEN_H
#define CH_FRONTC_CODEGEN_H

/**
 * @file
 * MiniC AST -> VCode generation: the ISA-independent front half of the
 * compiler (Fig. 10's "compiler front end" + "instruction select"). Type
 * checking happens here; scalar locals become virtual registers (so the
 * register-lifetime phenomena the paper studies are real), while arrays,
 * structs, and address-taken locals live in frame slots.
 */

#include <string_view>

#include "frontc/ast.h"
#include "ir/vcode.h"

namespace ch {

/** Lower a parsed unit to VCode; fatal() on semantic errors. */
VModule generateVCode(const Ast& ast);

/** Parse + lower in one step. */
VModule compileToVCode(std::string_view source);

} // namespace ch

#endif // CH_FRONTC_CODEGEN_H
