#include "frontc/ast.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace ch {

int64_t
CType::size() const
{
    switch (kind) {
      case Void: return 0;
      case Char: return 1;
      case Int: return 4;
      case Long: return 8;
      case Double: return 8;
      case Ptr: return 8;
      case Array: return base->size() * arrayLen;
      case Struct: return strct->size;
    }
    return 0;
}

int64_t
CType::align() const
{
    switch (kind) {
      case Void: return 1;
      case Char: return 1;
      case Int: return 4;
      case Long: return 8;
      case Double: return 8;
      case Ptr: return 8;
      case Array: return base->align();
      case Struct: return strct->align;
    }
    return 1;
}

const StructDef::Field*
StructDef::findField(const std::string& n) const
{
    for (const auto& f : fields)
        if (f.name == n)
            return &f;
    return nullptr;
}

Ast::Ast()
{
    auto make = [&](CType::Kind k) {
        typeArena.push_back(CType{k, nullptr, 0, nullptr});
        return &typeArena.back();
    };
    voidTy = make(CType::Void);
    charTy = make(CType::Char);
    intTy = make(CType::Int);
    longTy = make(CType::Long);
    doubleTy = make(CType::Double);
}

const CType*
Ast::ptrTo(const CType* base) const
{
    for (const auto& t : typeArena) {
        if (t.kind == CType::Ptr && t.base == base)
            return &t;
    }
    typeArena.push_back(CType{CType::Ptr, base, 0, nullptr});
    return &typeArena.back();
}

const CType*
Ast::arrayOf(const CType* base, int64_t len) const
{
    typeArena.push_back(CType{CType::Array, base, len, nullptr});
    return &typeArena.back();
}

const FuncDecl*
Ast::findFunc(const std::string& name) const
{
    for (const auto& f : funcs)
        if (f.name == name)
            return &f;
    return nullptr;
}

} // namespace ch
