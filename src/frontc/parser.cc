#include "frontc/parser.h"

#include "common/bitutil.h"
#include "common/logging.h"
#include "frontc/lexer.h"

namespace ch {

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view source)
        : toks_(lexMiniC(source))
    {
    }

    Ast
    run()
    {
        while (!at(Tok::End))
            topLevel();
        return std::move(ast_);
    }

  private:
    // --- token helpers ----------------------------------------------------

    const Token& cur() const { return toks_[pos_]; }
    const Token& ahead(int n = 1) const
    {
        return toks_[std::min(pos_ + n, toks_.size() - 1)];
    }

    bool at(Tok k) const { return cur().kind == k; }

    bool
    atText(const char* text) const
    {
        return (cur().kind == Tok::Punct || cur().kind == Tok::Keyword) &&
               cur().text == text;
    }

    void advance() { if (!at(Tok::End)) ++pos_; }

    bool
    accept(const char* text)
    {
        if (atText(text)) {
            advance();
            return true;
        }
        return false;
    }

    void
    expect(const char* text)
    {
        if (!accept(text))
            err(concat("expected '", text, "', got '", cur().text, "'"));
    }

    std::string
    expectIdent()
    {
        if (!at(Tok::Ident))
            err("expected identifier");
        std::string name = cur().text;
        advance();
        return name;
    }

    [[noreturn]] void
    err(const std::string& msg)
    {
        fatal("minic line ", cur().line, ": ", msg);
    }

    // --- types -------------------------------------------------------------

    bool
    atTypeStart() const
    {
        if (cur().kind != Tok::Keyword)
            return false;
        const std::string& t = cur().text;
        return t == "void" || t == "char" || t == "int" || t == "long" ||
               t == "double" || t == "struct";
    }

    /** Parse a type specifier plus pointer stars. */
    const CType*
    parseTypeSpec()
    {
        const CType* ty = nullptr;
        if (accept("void")) {
            ty = ast_.voidTy;
        } else if (accept("char")) {
            ty = ast_.charTy;
        } else if (accept("int")) {
            ty = ast_.intTy;
        } else if (accept("long")) {
            accept("long");  // "long long" accepted as long
            accept("int");
            ty = ast_.longTy;
        } else if (accept("double")) {
            ty = ast_.doubleTy;
        } else if (accept("struct")) {
            std::string name = expectIdent();
            auto it = ast_.structs.find(name);
            if (it == ast_.structs.end())
                err(concat("unknown struct '", name, "'"));
            ast_.typeArena.push_back(
                CType{CType::Struct, nullptr, 0, it->second});
            ty = &ast_.typeArena.back();
        } else {
            err("expected type");
        }
        while (accept("*"))
            ty = ast_.ptrTo(ty);
        return ty;
    }

    /** Array dimensions after a declarator name; outermost first. */
    const CType*
    parseArrayDims(const CType* base, bool allowEmptyFirst, bool* wasEmpty)
    {
        std::vector<int64_t> dims;
        bool empty = false;
        bool first = true;
        while (accept("[")) {
            if (first && allowEmptyFirst && atText("]")) {
                empty = true;
                dims.push_back(0);
            } else {
                dims.push_back(parseConstExpr());
            }
            expect("]");
            first = false;
        }
        if (wasEmpty)
            *wasEmpty = empty;
        const CType* ty = base;
        for (auto it = dims.rbegin(); it != dims.rend(); ++it)
            ty = ast_.arrayOf(ty, *it);
        return ty;
    }

    /** Constant integer expression (array dims, initializer elements). */
    int64_t
    parseConstExpr()
    {
        ExprPtr e = parseExpr();
        return evalConst(*e);
    }

    int64_t
    evalConst(const Expr& e)
    {
        switch (e.kind) {
          case Expr::IntLit:
            return e.intValue;
          case Expr::Unary:
            if (e.op == "-")
                return -evalConst(*e.a);
            if (e.op == "~")
                return ~evalConst(*e.a);
            if (e.op == "!")
                return !evalConst(*e.a);
            break;
          case Expr::Binary: {
            const int64_t a = evalConst(*e.a);
            const int64_t b = evalConst(*e.b);
            if (e.op == "+") return a + b;
            if (e.op == "-") return a - b;
            if (e.op == "*") return a * b;
            if (e.op == "/") return b ? a / b : 0;
            if (e.op == "%") return b ? a % b : 0;
            if (e.op == "<<") return a << (b & 63);
            if (e.op == ">>") return a >> (b & 63);
            if (e.op == "&") return a & b;
            if (e.op == "|") return a | b;
            if (e.op == "^") return a ^ b;
            break;
          }
          case Expr::SizeofTy:
            return e.castType->size();
          default:
            break;
        }
        fatal("minic line ", e.line, ": expected constant expression");
    }

    // --- top level ----------------------------------------------------------

    void
    topLevel()
    {
        // struct definition?
        if (atText("struct") && ahead().kind == Tok::Ident &&
            ahead(2).text == "{") {
            parseStructDef();
            return;
        }
        const CType* base = parseTypeSpec();
        std::string name = expectIdent();
        if (atText("(")) {
            parseFunction(base, std::move(name));
        } else {
            parseGlobal(base, std::move(name));
            while (accept(",")) {
                std::string next = expectIdent();
                parseGlobal(base, std::move(next));
            }
            expect(";");
        }
    }

    void
    parseStructDef()
    {
        expect("struct");
        std::string name = expectIdent();
        expect("{");
        ast_.structArena.emplace_back();
        StructDef* def = &ast_.structArena.back();
        def->name = name;
        if (ast_.structs.count(name))
            err(concat("duplicate struct '", name, "'"));
        ast_.structs[name] = def;

        int64_t offset = 0;
        while (!accept("}")) {
            const CType* base = parseTypeSpec();
            do {
                std::string fname = expectIdent();
                const CType* fty = parseArrayDims(base, false, nullptr);
                offset = alignUp(offset, fty->align());
                def->fields.push_back({fname, fty, offset});
                offset += fty->size();
                def->align = std::max(def->align, fty->align());
            } while (accept(","));
            expect(";");
        }
        expect(";");
        def->size = alignUp(std::max<int64_t>(offset, 1), def->align);
    }

    void
    parseFunction(const CType* retType, std::string name)
    {
        FuncDecl fn;
        fn.name = std::move(name);
        fn.retType = retType;
        fn.line = cur().line;
        expect("(");
        if (!accept(")")) {
            if (atText("void") && ahead().text == ")") {
                advance();
            } else {
                do {
                    const CType* pty = parseTypeSpec();
                    std::string pname = expectIdent();
                    // Array parameters decay to pointers.
                    bool dummy;
                    const CType* full =
                        parseArrayDims(pty, true, &dummy);
                    if (full->kind == CType::Array)
                        full = ast_.ptrTo(full->base);
                    fn.params.emplace_back(std::move(pname), full);
                } while (accept(","));
            }
            expect(")");
        }
        if (accept(";"))
            return;  // forward declaration: ignored (single-unit model)
        fn.body = parseBlock();
        ast_.funcs.push_back(std::move(fn));
    }

    void
    parseGlobal(const CType* base, std::string name)
    {
        GlobalDecl g;
        g.name = std::move(name);
        g.line = cur().line;
        bool emptyDim = false;
        const CType* ty = parseArrayDims(base, true, &emptyDim);
        if (accept("=")) {
            if (atText("{")) {
                expect("{");
                if (!atText("}")) {
                    do {
                        g.init.push_back(parseAssign());
                    } while (accept(","));
                }
                expect("}");
            } else if (at(Tok::StrLit)) {
                g.hasStrInit = true;
                g.strInit = cur().strValue;
                advance();
            } else {
                g.init.push_back(parseAssign());
            }
        }
        if (emptyDim) {
            int64_t len = 0;
            if (g.hasStrInit)
                len = static_cast<int64_t>(g.strInit.size()) + 1;
            else if (!g.init.empty())
                len = static_cast<int64_t>(g.init.size());
            else
                err("array of unknown size needs an initializer");
            // Rebuild the array type with the inferred outermost length.
            const CType* elem =
                ty->kind == CType::Array ? ty->base : ty;
            ty = ast_.arrayOf(elem, len);
        }
        g.type = ty;
        ast_.globals.push_back(std::move(g));
    }

    // --- statements ----------------------------------------------------------

    StmtPtr
    makeStmt(Stmt::Kind k)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = k;
        s->line = cur().line;
        return s;
    }

    StmtPtr
    parseBlock()
    {
        auto blk = makeStmt(Stmt::Block);
        expect("{");
        while (!accept("}"))
            blk->stmts.push_back(parseStmt());
        return blk;
    }

    /** One or more declarations: `type name [dims] (= init)? (, ...)* ;` */
    StmtPtr
    parseDecl()
    {
        const CType* base = parseTypeSpec();
        auto list = makeStmt(Stmt::Block);
        do {
            auto d = makeStmt(Stmt::DeclStmt);
            d->declName = expectIdent();
            d->declType = parseArrayDims(base, false, nullptr);
            if (accept("="))
                d->declValue = parseAssign();
            list->stmts.push_back(std::move(d));
        } while (accept(","));
        expect(";");
        if (list->stmts.size() == 1)
            return std::move(list->stmts[0]);
        list->declGroup = true;
        return list;
    }

    StmtPtr
    parseStmt()
    {
        if (atText("{"))
            return parseBlock();
        if (atTypeStart())
            return parseDecl();
        if (accept(";"))
            return makeStmt(Stmt::Empty);
        if (accept("if")) {
            auto s = makeStmt(Stmt::If);
            expect("(");
            s->expr = parseExpr();
            expect(")");
            s->body = parseStmt();
            if (accept("else"))
                s->elseBody = parseStmt();
            return s;
        }
        if (accept("while")) {
            auto s = makeStmt(Stmt::While);
            expect("(");
            s->expr = parseExpr();
            expect(")");
            s->body = parseStmt();
            return s;
        }
        if (accept("do")) {
            auto s = makeStmt(Stmt::DoWhile);
            s->body = parseStmt();
            expect("while");
            expect("(");
            s->expr = parseExpr();
            expect(")");
            expect(";");
            return s;
        }
        if (accept("for")) {
            auto s = makeStmt(Stmt::For);
            expect("(");
            if (!atText(";")) {
                if (atTypeStart())
                    s->declInit = parseDecl();  // consumes the ';'
                else {
                    s->init = parseExpr();
                    expect(";");
                }
            } else {
                expect(";");
            }
            if (!atText(";"))
                s->expr = parseExpr();
            expect(";");
            if (!atText(")"))
                s->step = parseExpr();
            expect(")");
            s->body = parseStmt();
            return s;
        }
        if (accept("return")) {
            auto s = makeStmt(Stmt::Return);
            if (!atText(";"))
                s->expr = parseExpr();
            expect(";");
            return s;
        }
        if (accept("break")) {
            expect(";");
            return makeStmt(Stmt::Break);
        }
        if (accept("continue")) {
            expect(";");
            return makeStmt(Stmt::Continue);
        }
        auto s = makeStmt(Stmt::ExprStmt);
        s->expr = parseExpr();
        expect(";");
        return s;
    }

    // --- expressions -----------------------------------------------------------

    ExprPtr
    makeExpr(Expr::Kind k)
    {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->line = cur().line;
        return e;
    }

    ExprPtr
    parseExpr()
    {
        return parseAssign();
    }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseCond();
        static const char* assignOps[] = {"=", "+=", "-=", "*=", "/=", "%=",
                                          "&=", "|=", "^=", "<<=", ">>="};
        for (const char* op : assignOps) {
            if (atText(op)) {
                auto e = makeExpr(Expr::Assign);
                e->op = op;
                advance();
                e->a = std::move(lhs);
                e->b = parseAssign();
                return e;
            }
        }
        return lhs;
    }

    ExprPtr
    parseCond()
    {
        ExprPtr c = parseBinary(0);
        if (accept("?")) {
            auto e = makeExpr(Expr::Cond);
            e->a = std::move(c);
            e->b = parseExpr();
            expect(":");
            e->c = parseCond();
            return e;
        }
        return c;
    }

    /** Binary operator precedence levels, low to high. */
    ExprPtr
    parseBinary(int level)
    {
        static const std::vector<std::vector<const char*>> levels = {
            {"||"},
            {"&&"},
            {"|"},
            {"^"},
            {"&"},
            {"==", "!="},
            {"<", ">", "<=", ">="},
            {"<<", ">>"},
            {"+", "-"},
            {"*", "/", "%"},
        };
        if (level >= static_cast<int>(levels.size()))
            return parseUnary();
        ExprPtr lhs = parseBinary(level + 1);
        while (true) {
            bool matched = false;
            for (const char* op : levels[level]) {
                if (atText(op)) {
                    auto e = makeExpr(Expr::Binary);
                    e->op = op;
                    advance();
                    e->a = std::move(lhs);
                    e->b = parseBinary(level + 1);
                    lhs = std::move(e);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return lhs;
        }
    }

    ExprPtr
    parseUnary()
    {
        static const char* unaryOps[] = {"-", "!", "~", "*", "&"};
        for (const char* op : unaryOps) {
            if (atText(op)) {
                auto e = makeExpr(Expr::Unary);
                e->op = op;
                advance();
                e->a = parseUnary();
                return e;
            }
        }
        if (atText("++") || atText("--")) {
            auto e = makeExpr(Expr::Unary);
            e->op = cur().text == "++" ? "preinc" : "predec";
            advance();
            e->a = parseUnary();
            return e;
        }
        if (accept("sizeof")) {
            if (atText("(") && isTypeAhead(1)) {
                expect("(");
                auto e = makeExpr(Expr::SizeofTy);
                e->castType = parseTypeSpec();
                expect(")");
                return e;
            }
            auto e = makeExpr(Expr::SizeofEx);
            e->a = parseUnary();
            return e;
        }
        // Cast: "(type)" followed by a unary expression.
        if (atText("(") && isTypeAhead(1)) {
            expect("(");
            auto e = makeExpr(Expr::Cast);
            e->castType = parseTypeSpec();
            expect(")");
            e->a = parseUnary();
            return e;
        }
        return parsePostfix();
    }

    bool
    isTypeAhead(int off) const
    {
        const Token& t = toks_[std::min(pos_ + off, toks_.size() - 1)];
        if (t.kind != Tok::Keyword)
            return false;
        return t.text == "void" || t.text == "char" || t.text == "int" ||
               t.text == "long" || t.text == "double" || t.text == "struct";
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (true) {
            if (accept("[")) {
                auto idx = makeExpr(Expr::Index);
                idx->a = std::move(e);
                idx->b = parseExpr();
                expect("]");
                e = std::move(idx);
            } else if (accept(".")) {
                auto m = makeExpr(Expr::Member);
                m->op = expectIdent();
                m->intValue = 1;  // dot access
                m->a = std::move(e);
                e = std::move(m);
            } else if (accept("->")) {
                auto m = makeExpr(Expr::Member);
                m->op = expectIdent();
                m->intValue = 0;  // arrow access
                m->a = std::move(e);
                e = std::move(m);
            } else if (atText("++") || atText("--")) {
                auto p = makeExpr(Expr::Postfix);
                p->op = cur().text == "++" ? "postinc" : "postdec";
                advance();
                p->a = std::move(e);
                e = std::move(p);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        if (at(Tok::IntLit) || at(Tok::CharLit)) {
            auto e = makeExpr(Expr::IntLit);
            e->intValue = cur().intValue;
            advance();
            return e;
        }
        if (at(Tok::FloatLit)) {
            auto e = makeExpr(Expr::FloatLit);
            e->floatValue = cur().floatValue;
            advance();
            return e;
        }
        if (at(Tok::StrLit)) {
            auto e = makeExpr(Expr::StrLit);
            e->strValue = cur().strValue;
            advance();
            return e;
        }
        if (at(Tok::Ident)) {
            std::string name = cur().text;
            advance();
            if (accept("(")) {
                auto call = makeExpr(Expr::Call);
                call->op = std::move(name);
                if (!accept(")")) {
                    do {
                        call->args.push_back(parseAssign());
                    } while (accept(","));
                    expect(")");
                }
                return call;
            }
            auto e = makeExpr(Expr::Ident);
            e->op = std::move(name);
            return e;
        }
        if (accept("(")) {
            ExprPtr e = parseExpr();
            expect(")");
            return e;
        }
        err(concat("unexpected token '", cur().text, "'"));
    }

    Ast ast_;
    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace

Ast
parseMiniC(std::string_view source)
{
    Parser parser(source);
    return parser.run();
}

} // namespace ch
