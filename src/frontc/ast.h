#ifndef CH_FRONTC_AST_H
#define CH_FRONTC_AST_H

/**
 * @file
 * Abstract syntax tree and type representation for MiniC. Types are
 * arena-allocated and owned by the Ast object; nodes reference them by
 * pointer. Semantic typing happens during codegen (frontc/codegen.cc),
 * which annotates nothing back into the tree.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ch {

struct StructDef;

/** A MiniC type. */
struct CType {
    enum Kind { Void, Char, Int, Long, Double, Ptr, Array, Struct } kind;
    const CType* base = nullptr;   ///< Ptr/Array element type
    int64_t arrayLen = 0;
    const StructDef* strct = nullptr;

    bool isInteger() const
    {
        return kind == Char || kind == Int || kind == Long;
    }
    bool isArith() const { return isInteger() || kind == Double; }
    bool isPtr() const { return kind == Ptr; }
    bool isScalar() const { return isArith() || isPtr(); }

    int64_t size() const;
    int64_t align() const;
};

/** A struct definition: ordered fields with computed offsets. */
struct StructDef {
    std::string name;
    struct Field {
        std::string name;
        const CType* type;
        int64_t offset;
    };
    std::vector<Field> fields;
    int64_t size = 0;
    int64_t align = 1;

    const Field* findField(const std::string& n) const;
};

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    enum Kind {
        IntLit, FloatLit, StrLit, Ident,
        Unary,     // op: - ! ~ * & preinc predec
        Postfix,   // op: postinc postdec
        Binary,    // op: + - * / % & | ^ << >> < > <= >= == != && ||
        Assign,    // op: = += -= *= /= %= &= |= ^= <<= >>=
        Cond,      // a ? b : c
        Call,
        Index,     // a[b]
        Member,    // a.f (dot=true) / a->f (dot=false)
        Cast,
        SizeofTy,  // sizeof(type)
        SizeofEx,  // sizeof expr
    } kind;

    int line = 0;
    std::string op;        ///< operator spelling / callee / field name
    int64_t intValue = 0;
    double floatValue = 0.0;
    std::string strValue;
    const CType* castType = nullptr;  ///< Cast / SizeofTy
    ExprPtr a, b, c;
    std::vector<ExprPtr> args;
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
    enum Kind {
        ExprStmt, DeclStmt, If, While, DoWhile, For, Return, Break,
        Continue, Block, Empty,
    } kind;

    int line = 0;
    ExprPtr expr;          ///< ExprStmt / condition / return value
    ExprPtr init, step;    ///< For clauses (init may be a DeclStmt body)
    StmtPtr body, elseBody;
    std::vector<StmtPtr> stmts;  ///< Block
    StmtPtr declInit;            ///< For: declaration-style init

    /** Block only: true for multi-declarator groups ("long a, b;"),
     *  which must not open a new scope. */
    bool declGroup = false;

    // DeclStmt:
    const CType* declType = nullptr;
    std::string declName;
    ExprPtr declValue;           ///< optional initializer
};

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

struct FuncDecl {
    std::string name;
    const CType* retType;
    std::vector<std::pair<std::string, const CType*>> params;
    StmtPtr body;
    int line = 0;
};

struct GlobalDecl {
    std::string name;
    const CType* type;
    /** Scalar initializers or brace list; empty = zero-init. */
    std::vector<ExprPtr> init;
    std::string strInit;  ///< for char arrays initialized from a string
    bool hasStrInit = false;
    int line = 0;
};

/** A parsed translation unit; owns all types and struct definitions. */
struct Ast {
    std::vector<FuncDecl> funcs;
    std::vector<GlobalDecl> globals;

    // Type arena (mutable: type lookups during codegen may intern new
    // pointer/array types on a logically-const Ast).
    mutable std::deque<CType> typeArena;
    std::deque<StructDef> structArena;
    std::map<std::string, StructDef*> structs;

    const CType* voidTy;
    const CType* charTy;
    const CType* intTy;
    const CType* longTy;
    const CType* doubleTy;

    Ast();
    const CType* ptrTo(const CType* base) const;
    const CType* arrayOf(const CType* base, int64_t len) const;

    const FuncDecl* findFunc(const std::string& name) const;
};

} // namespace ch

#endif // CH_FRONTC_AST_H
