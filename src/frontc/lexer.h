#ifndef CH_FRONTC_LEXER_H
#define CH_FRONTC_LEXER_H

/**
 * @file
 * Lexer for MiniC, the C subset used to author this repository's
 * benchmark workloads. Supports decimal/hex integer literals, floating
 * literals, character and string literals, all C operators used by the
 * grammar, and '//' and slash-star comments.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ch {

enum class Tok : uint8_t {
    End, Ident, IntLit, FloatLit, CharLit, StrLit, Punct, Keyword,
};

/** One token with source position for diagnostics. */
struct Token {
    Tok kind = Tok::End;
    std::string text;       ///< identifier / punctuator / keyword spelling
    int64_t intValue = 0;
    double floatValue = 0.0;
    std::string strValue;   ///< decoded string literal bytes
    int line = 0;
};

/** Tokenize MiniC source; fatal() with a line number on bad input. */
std::vector<Token> lexMiniC(std::string_view source);

/** True when @p name is a MiniC keyword. */
bool isMiniCKeyword(std::string_view name);

} // namespace ch

#endif // CH_FRONTC_LEXER_H
