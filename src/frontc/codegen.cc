#include "frontc/codegen.h"

#include <bit>
#include <map>
#include <set>

#include "common/bitutil.h"
#include "common/logging.h"
#include "frontc/parser.h"

namespace ch {

namespace {

/** How a named variable is stored. */
struct VarInfo {
    enum Kind { Reg, Frame, Global } kind;
    int vreg = -1;
    int frameSlot = -1;
    std::string globalName;
    const CType* type = nullptr;
};

/** An rvalue during expression generation. */
struct Value {
    int vreg = -1;
    const CType* type = nullptr;
};

/** An assignable location. */
struct LValue {
    enum Kind { Reg, Mem } kind;
    int vreg = -1;  ///< Reg: the variable's vreg; Mem: address vreg
    const CType* type = nullptr;
};

class FuncGen
{
  public:
    FuncGen(const Ast& ast, const FuncDecl& decl, VModule& mod,
            const std::map<std::string, const CType*>& globalTypes)
        : ast_(ast), decl_(decl), mod_(mod), globalTypes_(globalTypes)
    {
    }

    VFunc
    run()
    {
        fn_.name = decl_.name;
        fn_.numParams = static_cast<int>(decl_.params.size());

        collectAddressTaken(*decl_.body);

        switchTo(newBlock());
        pushScope();
        // Bind parameters. Params occupy vregs 0..n-1 by convention;
        // address-taken parameters are copied into a frame slot.
        for (const auto& [pname, pty] : decl_.params) {
            const int v = fn_.newVReg(pty->kind == CType::Double);
            VarInfo info;
            info.type = pty;
            if (addressTaken_.count(pname)) {
                info.kind = VarInfo::Frame;
                info.frameSlot = newFrameSlot(pty, pname);
                const int addr = frameAddr(info.frameSlot);
                storeTo(addr, 0, pty, v);
            } else {
                info.kind = VarInfo::Reg;
                info.vreg = v;
            }
            declare(pname, info);
        }

        genStmt(*decl_.body);

        // Implicit return for functions that fall off the end.
        if (!blockTerminated()) {
            if (decl_.retType->kind == CType::Void) {
                emitRet(-1);
            } else {
                emitRet(loadImm(0, false));
            }
        }
        popScope();
        return std::move(fn_);
    }

  private:
    // =====================================================================
    // Block and emission machinery
    // =====================================================================

    int
    newBlock(const std::string& name = {})
    {
        VBlock b;
        b.id = static_cast<int>(fn_.blocks.size());
        b.name = name;
        fn_.blocks.push_back(std::move(b));
        return fn_.blocks.back().id;
    }

    void switchTo(int b) { cur_ = b; }

    VBlock& curBlock() { return fn_.blocks[cur_]; }

    void
    emit(VInst inst)
    {
        CH_ASSERT(!blockTerminated(), "emitting into terminated block");
        curBlock().insts.push_back(std::move(inst));
    }

    bool
    blockTerminated()
    {
        const auto& insts = curBlock().insts;
        if (!insts.empty()) {
            const VInst& last = insts.back();
            if (last.vop == VOp::Ret || last.isTerminatorBranch())
                return true;
        }
        return curBlock().fallThrough >= 0;
    }

    /** Unconditional jump terminator. */
    void
    jump(int target)
    {
        VInst j;
        j.op = Op::J;
        j.target = target;
        emit(std::move(j));
    }

    /** Conditional branch terminator. */
    void
    condBranch(Op op, int s1, int s2, int taken, int fall)
    {
        VInst br;
        br.op = op;
        br.src1 = s1;
        br.src2 = s2;
        br.target = taken;
        emit(std::move(br));
        curBlock().fallThrough = fall;
    }

    /** The branch with the opposite outcome, same operand order. */
    static Op
    invertBr(Op op)
    {
        switch (op) {
          case Op::BEQ: return Op::BNE;
          case Op::BNE: return Op::BEQ;
          case Op::BLT: return Op::BGE;
          case Op::BGE: return Op::BLT;
          case Op::BLTU: return Op::BGEU;
          case Op::BGEU: return Op::BLTU;
          default: panic("not an invertible branch");
        }
    }

    /**
     * Emit a conditional branch choosing the orientation that lets the
     * true block (created first, laid out next) be entered by fall-
     * through: branch-if-false to @p falseB, fall into @p trueB.
     */
    void
    condBranchTo(Op opIfTrue, int s1, int s2, int trueB, int falseB)
    {
        condBranch(invertBr(opIfTrue), s1, s2, falseB, trueB);
    }

    void
    emitRet(int src)
    {
        VInst r;
        r.vop = VOp::Ret;
        r.src1 = src;
        emit(std::move(r));
    }

    // --- small emission helpers -----------------------------------------

    int
    newReg(bool fp = false)
    {
        return fn_.newVReg(fp);
    }

    /** dst = imm (64-bit). */
    int
    loadImm(int64_t imm, bool fp)
    {
        VInst li;
        li.vop = VOp::LoadImm;
        li.dst = newReg(false);
        li.imm = imm;
        const int tmp = li.dst;
        emit(std::move(li));
        if (!fp)
            return tmp;
        VInst mv;
        mv.op = Op::FMV_D_X;
        mv.dst = newReg(true);
        mv.src1 = tmp;
        const int out = mv.dst;
        emit(std::move(mv));
        return out;
    }

    int
    loadDouble(double v)
    {
        return loadImm(static_cast<int64_t>(std::bit_cast<uint64_t>(v)),
                       true);
    }

    /** dst = op(src1, src2). */
    int
    emitRR(Op op, int s1, int s2, bool fpDst = false)
    {
        VInst i;
        i.op = op;
        i.dst = newReg(fpDst);
        i.src1 = s1;
        i.src2 = s2;
        const int d = i.dst;
        emit(std::move(i));
        return d;
    }

    /** dst = op(src1, imm). */
    int
    emitRI(Op op, int s1, int64_t imm, bool fpDst = false)
    {
        VInst i;
        i.op = op;
        i.dst = newReg(fpDst);
        i.src1 = s1;
        i.imm = imm;
        const int d = i.dst;
        emit(std::move(i));
        return d;
    }

    /** Copy value into an existing vreg (variable assignment). */
    void
    copyInto(int dstVreg, int srcVreg, bool fp)
    {
        VInst mv;
        mv.op = fp ? Op::FMV_D : Op::MV;
        mv.dst = dstVreg;
        mv.src1 = srcVreg;
        emit(std::move(mv));
    }

    int
    frameAddr(int slot)
    {
        VInst fa;
        fa.vop = VOp::FrameAddr;
        fa.dst = newReg(false);
        fa.frameSlot = slot;
        const int d = fa.dst;
        emit(std::move(fa));
        return d;
    }

    int
    globalAddr(const std::string& name)
    {
        VInst la;
        la.vop = VOp::LoadAddr;
        la.dst = newReg(false);
        la.sym = name;
        const int d = la.dst;
        emit(std::move(la));
        return d;
    }

    /** Memory load of @p type from addr+off. */
    int
    loadFrom(int addrVreg, int64_t off, const CType* ty)
    {
        Op op;
        bool fp = false;
        switch (ty->kind) {
          case CType::Char: op = Op::LB; break;
          case CType::Int: op = Op::LW; break;
          case CType::Long: op = Op::LD; break;
          case CType::Ptr: op = Op::LD; break;
          case CType::Double: op = Op::FLD; fp = true; break;
          default:
            fatal("cannot load value of this type");
        }
        VInst ld;
        ld.op = op;
        ld.dst = newReg(fp);
        ld.src1 = addrVreg;
        ld.imm = off;
        const int d = ld.dst;
        emit(std::move(ld));
        return d;
    }

    /** Memory store of @p type to addr+off. */
    void
    storeTo(int addrVreg, int64_t off, const CType* ty, int valueVreg)
    {
        Op op;
        switch (ty->kind) {
          case CType::Char: op = Op::SB; break;
          case CType::Int: op = Op::SW; break;
          case CType::Long: op = Op::SD; break;
          case CType::Ptr: op = Op::SD; break;
          case CType::Double: op = Op::FSD; break;
          default:
            fatal("cannot store value of this type");
        }
        VInst st;
        st.op = op;
        st.src1 = addrVreg;  // base
        st.src2 = valueVreg; // data
        st.imm = off;
        emit(std::move(st));
    }

    // =====================================================================
    // Scopes
    // =====================================================================

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    void
    declare(const std::string& name, VarInfo info)
    {
        scopes_.back()[name] = std::move(info);
    }

    const VarInfo*
    lookup(const std::string& name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        auto g = globalTypes_.find(name);
        if (g != globalTypes_.end()) {
            VarInfo& info = globalCache_[name];
            info.kind = VarInfo::Global;
            info.globalName = name;
            info.type = g->second;
            return &info;
        }
        return nullptr;
    }

    int
    newFrameSlot(const CType* ty, const std::string& name)
    {
        FrameSlot slot;
        slot.size = std::max<int64_t>(ty->size(), 1);
        slot.align = ty->align();
        slot.name = name;
        fn_.frameSlots.push_back(slot);
        return static_cast<int>(fn_.frameSlots.size()) - 1;
    }

    // =====================================================================
    // Address-taken pre-pass
    // =====================================================================

    void
    collectAddressTaken(const Stmt& s)
    {
        if (s.expr)
            collectAddressTakenExpr(*s.expr);
        if (s.init)
            collectAddressTakenExpr(*s.init);
        if (s.step)
            collectAddressTakenExpr(*s.step);
        if (s.declValue)
            collectAddressTakenExpr(*s.declValue);
        if (s.declInit)
            collectAddressTaken(*s.declInit);
        if (s.body)
            collectAddressTaken(*s.body);
        if (s.elseBody)
            collectAddressTaken(*s.elseBody);
        for (const auto& sub : s.stmts)
            collectAddressTaken(*sub);
    }

    void
    collectAddressTakenExpr(const Expr& e)
    {
        if (e.kind == Expr::Unary && e.op == "&" &&
            e.a->kind == Expr::Ident) {
            addressTaken_.insert(e.a->op);
        }
        if (e.a)
            collectAddressTakenExpr(*e.a);
        if (e.b)
            collectAddressTakenExpr(*e.b);
        if (e.c)
            collectAddressTakenExpr(*e.c);
        for (const auto& arg : e.args)
            collectAddressTakenExpr(*arg);
    }

    // =====================================================================
    // Statements
    // =====================================================================

    void
    genStmt(const Stmt& s)
    {
        switch (s.kind) {
          case Stmt::Block: {
            if (!s.declGroup)
                pushScope();
            for (const auto& sub : s.stmts) {
                if (blockTerminated()) {
                    // Unreachable code after break/return: start a fresh
                    // (dangling) block so emission remains well formed.
                    switchTo(newBlock("dead"));
                }
                genStmt(*sub);
            }
            if (!s.declGroup)
                popScope();
            break;
          }
          case Stmt::Empty:
            break;
          case Stmt::ExprStmt:
            genExpr(*s.expr);
            break;
          case Stmt::DeclStmt:
            genDecl(s);
            break;
          case Stmt::Return: {
            if (s.expr) {
                Value v = genExpr(*s.expr);
                v = convert(v, decl_.retType, s.line);
                emitRet(v.vreg);
            } else {
                emitRet(-1);
            }
            break;
          }
          case Stmt::If: {
            const int thenB = newBlock("then");
            const int elseB = s.elseBody ? newBlock("else") : -1;
            const int joinB = newBlock("endif");
            genCond(*s.expr, thenB, s.elseBody ? elseB : joinB);
            switchTo(thenB);
            genStmt(*s.body);
            if (!blockTerminated())
                jump(joinB);
            if (s.elseBody) {
                switchTo(elseB);
                genStmt(*s.elseBody);
                if (!blockTerminated())
                    jump(joinB);
            }
            switchTo(joinB);
            break;
          }
          case Stmt::While: {
            const int condB = newBlock("while.cond");
            const int bodyB = newBlock("while.body");
            const int exitB = newBlock("while.end");
            jump(condB);
            switchTo(condB);
            genCond(*s.expr, bodyB, exitB);
            loops_.push_back({exitB, condB});
            switchTo(bodyB);
            genStmt(*s.body);
            if (!blockTerminated())
                jump(condB);
            loops_.pop_back();
            switchTo(exitB);
            break;
          }
          case Stmt::DoWhile: {
            const int bodyB = newBlock("do.body");
            const int condB = newBlock("do.cond");
            const int exitB = newBlock("do.end");
            jump(bodyB);
            loops_.push_back({exitB, condB});
            switchTo(bodyB);
            genStmt(*s.body);
            if (!blockTerminated())
                jump(condB);
            switchTo(condB);
            genCond(*s.expr, bodyB, exitB);
            loops_.pop_back();
            switchTo(exitB);
            break;
          }
          case Stmt::For: {
            pushScope();
            if (s.declInit)
                genStmt(*s.declInit);
            else if (s.init)
                genExpr(*s.init);
            const int condB = newBlock("for.cond");
            const int bodyB = newBlock("for.body");
            const int stepB = newBlock("for.step");
            const int exitB = newBlock("for.end");
            jump(condB);
            switchTo(condB);
            if (s.expr)
                genCond(*s.expr, bodyB, exitB);
            else
                jump(bodyB);
            loops_.push_back({exitB, stepB});
            switchTo(bodyB);
            genStmt(*s.body);
            if (!blockTerminated())
                jump(stepB);
            switchTo(stepB);
            if (s.step)
                genExpr(*s.step);
            if (!blockTerminated())
                jump(condB);
            loops_.pop_back();
            popScope();
            switchTo(exitB);
            break;
          }
          case Stmt::Break:
            if (loops_.empty())
                fatal("minic line ", s.line, ": break outside loop");
            jump(loops_.back().breakTarget);
            break;
          case Stmt::Continue:
            if (loops_.empty())
                fatal("minic line ", s.line, ": continue outside loop");
            jump(loops_.back().continueTarget);
            break;
        }
    }

    void
    genDecl(const Stmt& s)
    {
        const CType* ty = s.declType;
        VarInfo info;
        info.type = ty;
        const bool needsMemory = ty->kind == CType::Array ||
                                 ty->kind == CType::Struct ||
                                 addressTaken_.count(s.declName);
        if (needsMemory) {
            info.kind = VarInfo::Frame;
            info.frameSlot = newFrameSlot(ty, s.declName);
            if (s.declValue) {
                if (!ty->isScalar()) {
                    fatal("minic line ", s.line,
                          ": local aggregate initializers not supported");
                }
                Value v = convert(genExpr(*s.declValue), ty, s.line);
                storeTo(frameAddr(info.frameSlot), 0, ty, v.vreg);
            }
        } else {
            info.kind = VarInfo::Reg;
            info.vreg = newReg(ty->kind == CType::Double);
            if (s.declValue) {
                Value v = convert(genExpr(*s.declValue), ty, s.line);
                copyInto(info.vreg, v.vreg, ty->kind == CType::Double);
            } else {
                // Deterministic zero init keeps runs reproducible.
                VInst li;
                li.vop = VOp::LoadImm;
                li.dst = info.vreg;
                li.imm = 0;
                if (ty->kind == CType::Double) {
                    const int tmp = loadImm(0, false);
                    VInst mv;
                    mv.op = Op::FMV_D_X;
                    mv.dst = info.vreg;
                    mv.src1 = tmp;
                    emit(std::move(mv));
                } else {
                    emit(std::move(li));
                }
            }
        }
        declare(s.declName, std::move(info));
    }

    // =====================================================================
    // Conditions (control-flow generation)
    // =====================================================================

    void
    genCond(const Expr& e, int trueB, int falseB)
    {
        if (e.kind == Expr::Binary && e.op == "&&") {
            const int mid = newBlock("and.rhs");
            genCond(*e.a, mid, falseB);
            switchTo(mid);
            genCond(*e.b, trueB, falseB);
            return;
        }
        if (e.kind == Expr::Binary && e.op == "||") {
            const int mid = newBlock("or.rhs");
            genCond(*e.a, trueB, mid);
            switchTo(mid);
            genCond(*e.b, trueB, falseB);
            return;
        }
        if (e.kind == Expr::Unary && e.op == "!") {
            genCond(*e.a, falseB, trueB);
            return;
        }
        if (e.kind == Expr::Binary && isComparison(e.op)) {
            Value a = genExpr(*e.a);
            Value b = genExpr(*e.b);
            const CType* common = usualArith(a.type, b.type, e.line);
            a = convert(a, common, e.line);
            b = convert(b, common, e.line);
            if (common->kind == CType::Double) {
                const int flag = fpCompare(e.op, a.vreg, b.vreg);
                condBranchTo(Op::BNE, flag, kVZero, trueB, falseB);
                return;
            }
            const bool unsignedCmp = common->isPtr();
            Op op;
            int s1 = a.vreg, s2 = b.vreg;
            if (e.op == "==") {
                op = Op::BEQ;
            } else if (e.op == "!=") {
                op = Op::BNE;
            } else if (e.op == "<") {
                op = unsignedCmp ? Op::BLTU : Op::BLT;
            } else if (e.op == ">=") {
                op = unsignedCmp ? Op::BGEU : Op::BGE;
            } else if (e.op == ">") {
                op = unsignedCmp ? Op::BLTU : Op::BLT;
                std::swap(s1, s2);
            } else {  // "<="
                op = unsignedCmp ? Op::BGEU : Op::BGE;
                std::swap(s1, s2);
            }
            condBranchTo(op, s1, s2, trueB, falseB);
            return;
        }
        // Generic: value != 0.
        Value v = genExpr(e);
        if (v.type->kind == CType::Double) {
            const int zero = loadDouble(0.0);
            const int flag = emitRR(Op::FEQ_D, v.vreg, zero);
            condBranchTo(Op::BEQ, flag, kVZero, trueB, falseB);
        } else {
            condBranchTo(Op::BNE, v.vreg, kVZero, trueB, falseB);
        }
    }

    static bool
    isComparison(const std::string& op)
    {
        return op == "==" || op == "!=" || op == "<" || op == ">" ||
               op == "<=" || op == ">=";
    }

    /** FP comparison producing a 0/1 integer vreg. */
    int
    fpCompare(const std::string& op, int a, int b)
    {
        if (op == "==")
            return emitRR(Op::FEQ_D, a, b);
        if (op == "!=")
            return emitRI(Op::XORI, emitRR(Op::FEQ_D, a, b), 1);
        if (op == "<")
            return emitRR(Op::FLT_D, a, b);
        if (op == "<=")
            return emitRR(Op::FLE_D, a, b);
        if (op == ">")
            return emitRR(Op::FLT_D, b, a);
        return emitRR(Op::FLE_D, b, a);  // >=
    }

    // =====================================================================
    // Type handling
    // =====================================================================

    /** Usual arithmetic conversions (MiniC flavour). */
    const CType*
    usualArith(const CType* a, const CType* b, int line)
    {
        if (a->kind == CType::Double || b->kind == CType::Double)
            return ast_.doubleTy;
        if (a->isPtr() || b->isPtr()) {
            // Pointer comparisons / subtraction handled by callers;
            // here both being pointers means an unsigned comparison.
            if (a->isPtr() && b->isPtr())
                return a;
            return a->isPtr() ? a : b;
        }
        if (a->kind == CType::Long || b->kind == CType::Long)
            return ast_.longTy;
        return ast_.intTy;
    }

    /** Convert a value to @p to. */
    Value
    convert(Value v, const CType* to, int line)
    {
        const CType* from = v.type;
        if (from == to || (from->kind == to->kind &&
                           from->kind != CType::Ptr))
            return {v.vreg, to};
        if (from->kind == CType::Ptr && to->kind == CType::Ptr)
            return {v.vreg, to};
        if (from->isInteger() && to->kind == CType::Double) {
            return {emitRR(Op::FCVT_D_L, v.vreg, -1, true), to};
        }
        if (from->kind == CType::Double && to->isInteger()) {
            int r = emitRR(Op::FCVT_L_D, v.vreg, -1, false);
            return {narrowInt(r, to), to};
        }
        if (from->isInteger() && to->isInteger())
            return {narrowInt(v.vreg, to), to};
        if (from->isInteger() && to->isPtr())
            return {v.vreg, to};
        if (from->isPtr() && to->isInteger())
            return {narrowInt(v.vreg, to), to};
        if (from->kind == CType::Array && to->isPtr())
            return {v.vreg, to};
        fatal("minic line ", line, ": unsupported conversion");
    }

    /** Re-canonicalize an integer value into @p to's range (sign-extend). */
    int
    narrowInt(int vreg, const CType* to)
    {
        switch (to->kind) {
          case CType::Char: {
            const int t = emitRI(Op::SLLI, vreg, 56);
            return emitRI(Op::SRAI, t, 56);
          }
          case CType::Int:
            return emitRI(Op::ADDIW, vreg, 0);
          default:
            return vreg;
        }
    }

    // =====================================================================
    // Expressions
    // =====================================================================

    Value
    genExpr(const Expr& e)
    {
        switch (e.kind) {
          case Expr::IntLit: {
            const CType* ty = fitsSigned(e.intValue, 32) ? ast_.intTy
                                                         : ast_.longTy;
            return {loadImm(e.intValue, false), ty};
          }
          case Expr::FloatLit:
            return {loadDouble(e.floatValue), ast_.doubleTy};
          case Expr::StrLit: {
            const std::string name = internString(e.strValue);
            return {globalAddr(name), ast_.ptrTo(ast_.charTy)};
          }
          case Expr::Ident: {
            const VarInfo* var = lookup(e.op);
            if (!var)
                fatal("minic line ", e.line, ": unknown variable '", e.op,
                      "'");
            return loadVar(*var);
          }
          case Expr::Unary:
            return genUnary(e);
          case Expr::Postfix:
            return genIncDec(e, /*pre=*/false,
                             e.op == "postinc" ? 1 : -1);
          case Expr::Binary:
            return genBinary(e);
          case Expr::Assign:
            return genAssign(e);
          case Expr::Cond:
            return genTernary(e);
          case Expr::Call:
            return genCall(e);
          case Expr::Index:
          case Expr::Member: {
            LValue lv = genLValue(e);
            return loadLValue(lv, e.line);
          }
          case Expr::Cast: {
            Value v = genExpr(*e.a);
            return convert(v, e.castType, e.line);
          }
          case Expr::SizeofTy:
            return {loadImm(e.castType->size(), false), ast_.longTy};
          case Expr::SizeofEx: {
            const CType* ty = typeOf(*e.a);
            return {loadImm(ty->size(), false), ast_.longTy};
          }
        }
        fatal("minic line ", e.line, ": unhandled expression");
    }

    /** Static type of an expression without generating code (sizeof). */
    const CType*
    typeOf(const Expr& e)
    {
        switch (e.kind) {
          case Expr::IntLit: return ast_.intTy;
          case Expr::FloatLit: return ast_.doubleTy;
          case Expr::Ident: {
            const VarInfo* var = lookup(e.op);
            if (!var)
                fatal("minic line ", e.line, ": unknown variable '", e.op,
                      "'");
            return var->type;
          }
          case Expr::Index: {
            const CType* base = typeOf(*e.a);
            if (base->kind == CType::Array || base->kind == CType::Ptr)
                return base->base;
            fatal("minic line ", e.line, ": indexing non-array");
          }
          case Expr::Unary:
            if (e.op == "*") {
                const CType* p = typeOf(*e.a);
                if (p->kind != CType::Ptr && p->kind != CType::Array)
                    fatal("minic line ", e.line, ": deref of non-pointer");
                return p->base;
            }
            return typeOf(*e.a);
          case Expr::Member: {
            const CType* base = typeOf(*e.a);
            const StructDef* sd = nullptr;
            if (e.intValue) {  // dot
                if (base->kind != CType::Struct)
                    fatal("minic line ", e.line, ": '.' on non-struct");
                sd = base->strct;
            } else {
                if (base->kind != CType::Ptr ||
                    base->base->kind != CType::Struct) {
                    fatal("minic line ", e.line,
                          ": '->' on non-struct-pointer");
                }
                sd = base->base->strct;
            }
            const auto* f = sd->findField(e.op);
            if (!f)
                fatal("minic line ", e.line, ": no field '", e.op, "'");
            return f->type;
          }
          default:
            return ast_.longTy;
        }
    }

    Value
    loadVar(const VarInfo& var)
    {
        if (var.kind == VarInfo::Reg)
            return {var.vreg, var.type};
        // Memory-resident: arrays decay to their address.
        int addr = var.kind == VarInfo::Frame ? frameAddr(var.frameSlot)
                                              : globalAddr(var.globalName);
        if (var.type->kind == CType::Array)
            return {addr, ast_.ptrTo(var.type->base)};
        if (var.type->kind == CType::Struct)
            return {addr, ast_.ptrTo(var.type)};
        return {loadFrom(addr, 0, var.type), var.type};
    }

    Value
    loadLValue(const LValue& lv, int line)
    {
        if (lv.kind == LValue::Reg)
            return {lv.vreg, lv.type};
        if (lv.type->kind == CType::Array)
            return {lv.vreg, ast_.ptrTo(lv.type->base)};
        if (lv.type->kind == CType::Struct)
            return {lv.vreg, ast_.ptrTo(lv.type)};
        return {loadFrom(lv.vreg, 0, lv.type), lv.type};
    }

    LValue
    genLValue(const Expr& e)
    {
        switch (e.kind) {
          case Expr::Ident: {
            const VarInfo* var = lookup(e.op);
            if (!var)
                fatal("minic line ", e.line, ": unknown variable '", e.op,
                      "'");
            if (var->kind == VarInfo::Reg)
                return {LValue::Reg, var->vreg, var->type};
            const int addr = var->kind == VarInfo::Frame
                                 ? frameAddr(var->frameSlot)
                                 : globalAddr(var->globalName);
            return {LValue::Mem, addr, var->type};
          }
          case Expr::Unary:
            if (e.op == "*") {
                Value p = genExpr(*e.a);
                if (p.type->kind != CType::Ptr)
                    fatal("minic line ", e.line, ": deref of non-pointer");
                return {LValue::Mem, p.vreg, p.type->base};
            }
            break;
          case Expr::Index: {
            Value base = genExpr(*e.a);
            if (base.type->kind != CType::Ptr)
                fatal("minic line ", e.line, ": indexing non-pointer");
            Value idx = convert(genExpr(*e.b), ast_.longTy, e.line);
            const int64_t esize = base.type->base->size();
            int scaled = idx.vreg;
            if (esize != 1) {
                if (isPowerOf2(static_cast<uint64_t>(esize))) {
                    scaled = emitRI(Op::SLLI, idx.vreg,
                                    floorLog2(esize));
                } else {
                    const int sz = loadImm(esize, false);
                    scaled = emitRR(Op::MUL, idx.vreg, sz);
                }
            }
            const int addr = emitRR(Op::ADD, base.vreg, scaled);
            return {LValue::Mem, addr, base.type->base};
          }
          case Expr::Member: {
            const StructDef* sd;
            int addr;
            if (e.intValue) {  // a.f
                LValue base = genLValue(*e.a);
                if (base.kind != LValue::Mem ||
                    base.type->kind != CType::Struct) {
                    fatal("minic line ", e.line, ": '.' on non-struct");
                }
                sd = base.type->strct;
                addr = base.vreg;
            } else {  // a->f
                Value p = genExpr(*e.a);
                if (p.type->kind != CType::Ptr ||
                    p.type->base->kind != CType::Struct) {
                    fatal("minic line ", e.line,
                          ": '->' on non-struct-pointer");
                }
                sd = p.type->base->strct;
                addr = p.vreg;
            }
            const auto* f = sd->findField(e.op);
            if (!f)
                fatal("minic line ", e.line, ": no field '", e.op, "'");
            const int faddr =
                f->offset ? emitRI(Op::ADDI, addr, f->offset) : addr;
            return {LValue::Mem, faddr, f->type};
          }
          default:
            break;
        }
        fatal("minic line ", e.line, ": expression is not assignable");
    }

    void
    storeLValue(const LValue& lv, Value v, int line)
    {
        Value cv = convert(v, lv.type, line);
        if (lv.kind == LValue::Reg) {
            copyInto(lv.vreg, cv.vreg, lv.type->kind == CType::Double);
        } else {
            storeTo(lv.vreg, 0, lv.type, cv.vreg);
        }
    }

    Value
    genUnary(const Expr& e)
    {
        if (e.op == "&") {
            LValue lv = genLValue(*e.a);
            if (lv.kind != LValue::Mem)
                fatal("minic line ", e.line, ": cannot take address");
            return {lv.vreg, ast_.ptrTo(lv.type)};
        }
        if (e.op == "*") {
            LValue lv = genLValue(e);
            return loadLValue(lv, e.line);
        }
        if (e.op == "preinc" || e.op == "predec") {
            return genIncDec(e, /*pre=*/true, e.op == "preinc" ? 1 : -1);
        }
        Value v = genExpr(*e.a);
        if (e.op == "-") {
            if (v.type->kind == CType::Double)
                return {emitRR(Op::FSGNJN_D, v.vreg, v.vreg, true), v.type};
            const Op op = v.type->kind == CType::Int ? Op::SUBW : Op::SUB;
            VInst i;
            i.op = op;
            i.dst = newReg(false);
            i.src1 = kVZero;
            i.src2 = v.vreg;
            const int d = i.dst;
            emit(std::move(i));
            return {d, v.type->isInteger() ? v.type : ast_.longTy};
        }
        if (e.op == "~") {
            return {emitRI(Op::XORI, v.vreg, -1), v.type};
        }
        if (e.op == "!") {
            if (v.type->kind == CType::Double) {
                const int zero = loadDouble(0.0);
                return {emitRR(Op::FEQ_D, v.vreg, zero), ast_.intTy};
            }
            return {emitRI(Op::SLTIU, v.vreg, 1), ast_.intTy};
        }
        fatal("minic line ", e.line, ": unhandled unary '", e.op, "'");
    }

    Value
    genIncDec(const Expr& e, bool pre, int dir)
    {
        LValue lv = genLValue(*e.a);
        Value old = loadLValue(lv, e.line);
        if (!pre && lv.kind == LValue::Reg) {
            // Post-inc/dec of a register variable: the "old" value must be
            // snapshotted, since the update below writes the same vreg.
            const bool fp = lv.type->kind == CType::Double;
            const int copy = newReg(fp);
            copyInto(copy, old.vreg, fp);
            old.vreg = copy;
        }
        int64_t delta = dir;
        if (lv.type->isPtr())
            delta = dir * lv.type->base->size();
        int updated;
        if (lv.type->kind == CType::Double) {
            const int one = loadDouble(static_cast<double>(dir));
            updated = emitRR(Op::FADD_D, old.vreg, one, true);
        } else {
            const Op op =
                lv.type->kind == CType::Int ? Op::ADDIW : Op::ADDI;
            updated = emitRI(op, old.vreg, delta);
        }
        storeLValue(lv, {updated, lv.type}, e.line);
        return pre ? Value{updated, lv.type} : old;
    }

    Value
    genBinary(const Expr& e)
    {
        if (e.op == "&&" || e.op == "||" || isComparison(e.op))
            return materializeBool(e);

        Value a = genExpr(*e.a);
        Value b = genExpr(*e.b);

        // Pointer arithmetic.
        if (e.op == "+" || e.op == "-") {
            if (a.type->isPtr() && b.type->isInteger())
                return ptrOffset(a, b, e.op == "-" ? -1 : 1, e.line);
            if (b.type->isPtr() && a.type->isInteger() && e.op == "+")
                return ptrOffset(b, a, 1, e.line);
            if (a.type->isPtr() && b.type->isPtr() && e.op == "-") {
                const int diff = emitRR(Op::SUB, a.vreg, b.vreg);
                const int64_t esize = a.type->base->size();
                int out = diff;
                if (esize > 1) {
                    if (isPowerOf2(static_cast<uint64_t>(esize)))
                        out = emitRI(Op::SRAI, diff, floorLog2(esize));
                    else
                        out = emitRR(Op::DIV, diff, loadImm(esize, false));
                }
                return {out, ast_.longTy};
            }
        }

        const CType* common = usualArith(a.type, b.type, e.line);
        a = convert(a, common, e.line);
        b = convert(b, common, e.line);

        if (common->kind == CType::Double) {
            Op op;
            if (e.op == "+") op = Op::FADD_D;
            else if (e.op == "-") op = Op::FSUB_D;
            else if (e.op == "*") op = Op::FMUL_D;
            else if (e.op == "/") op = Op::FDIV_D;
            else
                fatal("minic line ", e.line, ": bad double operator '",
                      e.op, "'");
            return {emitRR(op, a.vreg, b.vreg, true), common};
        }

        const bool w = common->kind == CType::Int;
        Op op;
        if (e.op == "+") op = w ? Op::ADDW : Op::ADD;
        else if (e.op == "-") op = w ? Op::SUBW : Op::SUB;
        else if (e.op == "*") op = w ? Op::MULW : Op::MUL;
        else if (e.op == "/") op = w ? Op::DIVW : Op::DIV;
        else if (e.op == "%") op = w ? Op::REMW : Op::REM;
        else if (e.op == "&") op = Op::AND;
        else if (e.op == "|") op = Op::OR;
        else if (e.op == "^") op = Op::XOR;
        else if (e.op == "<<") op = w ? Op::SLLW : Op::SLL;
        else if (e.op == ">>") op = w ? Op::SRAW : Op::SRA;
        else
            fatal("minic line ", e.line, ": bad operator '", e.op, "'");
        return {emitRR(op, a.vreg, b.vreg), common};
    }

    Value
    ptrOffset(Value ptr, Value idx, int sign, int line)
    {
        idx = convert(idx, ast_.longTy, line);
        const int64_t esize = ptr.type->base->size();
        int scaled = idx.vreg;
        if (esize != 1) {
            if (isPowerOf2(static_cast<uint64_t>(esize)))
                scaled = emitRI(Op::SLLI, idx.vreg, floorLog2(esize));
            else
                scaled = emitRR(Op::MUL, idx.vreg, loadImm(esize, false));
        }
        const Op op = sign > 0 ? Op::ADD : Op::SUB;
        return {emitRR(op, ptr.vreg, scaled), ptr.type};
    }

    /** Comparison / logical expression used as a data value (0 or 1). */
    Value
    materializeBool(const Expr& e)
    {
        if (e.kind == Expr::Binary && isComparison(e.op)) {
            Value a = genExpr(*e.a);
            Value b = genExpr(*e.b);
            const CType* common = usualArith(a.type, b.type, e.line);
            a = convert(a, common, e.line);
            b = convert(b, common, e.line);
            if (common->kind == CType::Double)
                return {fpCompare(e.op, a.vreg, b.vreg), ast_.intTy};
            const bool u = common->isPtr();
            if (e.op == "<")
                return {emitRR(u ? Op::SLTU : Op::SLT, a.vreg, b.vreg),
                        ast_.intTy};
            if (e.op == ">")
                return {emitRR(u ? Op::SLTU : Op::SLT, b.vreg, a.vreg),
                        ast_.intTy};
            if (e.op == "<=") {
                const int gt = emitRR(u ? Op::SLTU : Op::SLT, b.vreg, a.vreg);
                return {emitRI(Op::XORI, gt, 1), ast_.intTy};
            }
            if (e.op == ">=") {
                const int lt = emitRR(u ? Op::SLTU : Op::SLT, a.vreg, b.vreg);
                return {emitRI(Op::XORI, lt, 1), ast_.intTy};
            }
            const int x = emitRR(Op::XOR, a.vreg, b.vreg);
            if (e.op == "==")
                return {emitRI(Op::SLTIU, x, 1), ast_.intTy};
            // "!=": 0 < x (unsigned)
            VInst i;
            i.op = Op::SLTU;
            i.dst = newReg(false);
            i.src1 = kVZero;
            i.src2 = x;
            const int d = i.dst;
            emit(std::move(i));
            return {d, ast_.intTy};
        }
        // Short-circuit logicals (and any other condition): route through
        // control flow into a result register.
        const int result = newReg(false);
        const int trueB = newBlock("bool.true");
        const int falseB = newBlock("bool.false");
        const int joinB = newBlock("bool.join");
        genCond(e, trueB, falseB);
        switchTo(trueB);
        {
            VInst li;
            li.vop = VOp::LoadImm;
            li.dst = result;
            li.imm = 1;
            emit(std::move(li));
        }
        jump(joinB);
        switchTo(falseB);
        {
            VInst li;
            li.vop = VOp::LoadImm;
            li.dst = result;
            li.imm = 0;
            emit(std::move(li));
        }
        jump(joinB);
        switchTo(joinB);
        return {result, ast_.intTy};
    }

    Value
    genTernary(const Expr& e)
    {
        const int thenB = newBlock("sel.then");
        const int elseB = newBlock("sel.else");
        const int joinB = newBlock("sel.join");
        genCond(*e.a, thenB, elseB);

        // Generate both arms into a common vreg; types must agree after
        // the usual conversions (computed from a dry type pass).
        switchTo(thenB);
        Value tv = genExpr(*e.b);
        const int thenEnd = cur_;
        switchTo(elseB);
        Value fv = genExpr(*e.c);
        const int elseEnd = cur_;

        const CType* common =
            tv.type->isPtr() ? tv.type : usualArith(tv.type, fv.type, e.line);
        const int result = newReg(common->kind == CType::Double);

        switchTo(thenEnd);
        Value tc = convert(tv, common, e.line);
        copyInto(result, tc.vreg, common->kind == CType::Double);
        jump(joinB);
        switchTo(elseEnd);
        Value fc = convert(fv, common, e.line);
        copyInto(result, fc.vreg, common->kind == CType::Double);
        jump(joinB);
        switchTo(joinB);
        return {result, common};
    }

    Value
    genAssign(const Expr& e)
    {
        if (e.op == "=") {
            LValue lv = genLValue(*e.a);
            Value v = genExpr(*e.b);
            storeLValue(lv, v, e.line);
            return {convert(v, lv.type, e.line).vreg, lv.type};
        }
        // Compound assignment: load, op, store.
        LValue lv = genLValue(*e.a);
        Value old = loadLValue(lv, e.line);
        Value rhs = genExpr(*e.b);

        const std::string binOp = e.op.substr(0, e.op.size() - 1);
        Value result = applyBinary(binOp, old, rhs, e.line);
        storeLValue(lv, result, e.line);
        return {convert(result, lv.type, e.line).vreg, lv.type};
    }

    Value
    applyBinary(const std::string& op, Value a, Value b, int line)
    {
        // Pointer += / -=.
        if (a.type->isPtr() && (op == "+" || op == "-"))
            return ptrOffset(a, b, op == "-" ? -1 : 1, line);
        const CType* common = usualArith(a.type, b.type, line);
        Value ca = convert(a, common, line);
        Value cb = convert(b, common, line);
        if (common->kind == CType::Double) {
            Op fop;
            if (op == "+") fop = Op::FADD_D;
            else if (op == "-") fop = Op::FSUB_D;
            else if (op == "*") fop = Op::FMUL_D;
            else if (op == "/") fop = Op::FDIV_D;
            else
                fatal("minic line ", line, ": bad double operator");
            return {emitRR(fop, ca.vreg, cb.vreg, true), common};
        }
        const bool w = common->kind == CType::Int;
        Op iop;
        if (op == "+") iop = w ? Op::ADDW : Op::ADD;
        else if (op == "-") iop = w ? Op::SUBW : Op::SUB;
        else if (op == "*") iop = w ? Op::MULW : Op::MUL;
        else if (op == "/") iop = w ? Op::DIVW : Op::DIV;
        else if (op == "%") iop = w ? Op::REMW : Op::REM;
        else if (op == "&") iop = Op::AND;
        else if (op == "|") iop = Op::OR;
        else if (op == "^") iop = Op::XOR;
        else if (op == "<<") iop = w ? Op::SLLW : Op::SLL;
        else if (op == ">>") iop = w ? Op::SRAW : Op::SRA;
        else
            fatal("minic line ", line, ": bad operator '", op, "'");
        return {emitRR(iop, ca.vreg, cb.vreg), common};
    }

    Value
    genCall(const Expr& e)
    {
        // Builtins lower to ECALL.
        if (e.op == "putchar" || e.op == "exit") {
            if (e.args.size() != 1)
                fatal("minic line ", e.line, ": ", e.op, " takes 1 arg");
            Value arg = convert(genExpr(*e.args[0]), ast_.longTy, e.line);
            VInst ec;
            ec.op = Op::ECALL;
            ec.dst = newReg(false);
            ec.src1 = arg.vreg;
            ec.imm = e.op == "exit" ? 0 : 1;
            const int d = ec.dst;
            emit(std::move(ec));
            return {d, ast_.intTy};
        }

        const FuncDecl* callee = ast_.findFunc(e.op);
        if (!callee)
            fatal("minic line ", e.line, ": unknown function '", e.op, "'");
        if (callee->params.size() != e.args.size())
            fatal("minic line ", e.line, ": wrong arity calling '", e.op,
                  "'");
        VInst call;
        call.vop = VOp::Call;
        call.sym = e.op;
        for (size_t i = 0; i < e.args.size(); ++i) {
            Value a = convert(genExpr(*e.args[i]), callee->params[i].second,
                              e.line);
            call.args.push_back(a.vreg);
        }
        const CType* retTy = callee->retType;
        if (retTy->kind != CType::Void)
            call.dst = newReg(retTy->kind == CType::Double);
        const int d = call.dst;
        emit(std::move(call));
        return {d, retTy->kind == CType::Void ? ast_.intTy : retTy};
    }

    // =====================================================================
    // String literals
    // =====================================================================

    std::string
    internString(const std::string& s)
    {
        VGlobal g;
        g.name = "__str" + std::to_string(mod_.globals.size());
        g.size = static_cast<int64_t>(s.size()) + 1;
        g.align = 1;
        g.init.assign(s.begin(), s.end());
        g.init.push_back(0);
        mod_.globals.push_back(std::move(g));
        return mod_.globals.back().name;
    }

    // =====================================================================

    struct LoopCtx {
        int breakTarget;
        int continueTarget;
    };

    const Ast& ast_;
    const FuncDecl& decl_;
    VModule& mod_;
    const std::map<std::string, const CType*>& globalTypes_;
    std::map<std::string, VarInfo> globalCache_;
    VFunc fn_;
    int cur_ = 0;
    std::vector<std::map<std::string, VarInfo>> scopes_;
    std::set<std::string> addressTaken_;
    std::vector<LoopCtx> loops_;
};

/** Evaluate a constant initializer expression to raw bytes. */
int64_t
constIntValue(const Expr& e)
{
    switch (e.kind) {
      case Expr::IntLit:
        return e.intValue;
      case Expr::FloatLit:
        return static_cast<int64_t>(std::bit_cast<uint64_t>(e.floatValue));
      case Expr::Unary:
        if (e.op == "-")
            return -constIntValue(*e.a);
        break;
      default:
        break;
    }
    fatal("minic line ", e.line, ": global initializer must be constant");
}

double
constDoubleValue(const Expr& e)
{
    switch (e.kind) {
      case Expr::FloatLit:
        return e.floatValue;
      case Expr::IntLit:
        return static_cast<double>(e.intValue);
      case Expr::Unary:
        if (e.op == "-")
            return -constDoubleValue(*e.a);
        break;
      default:
        break;
    }
    fatal("minic line ", e.line, ": global initializer must be constant");
}

void
writeScalar(std::vector<uint8_t>& bytes, int64_t off, const CType* ty,
            const Expr& e)
{
    uint64_t v;
    if (ty->kind == CType::Double)
        v = std::bit_cast<uint64_t>(constDoubleValue(e));
    else
        v = static_cast<uint64_t>(constIntValue(e));
    const int64_t n = ty->size();
    for (int64_t i = 0; i < n; ++i)
        bytes[off + i] = static_cast<uint8_t>(v >> (8 * i));
}

} // namespace

VModule
generateVCode(const Ast& ast)
{
    VModule mod;

    // Globals first so codegen can reference them.
    std::set<std::string> globalNames;
    for (const auto& g : ast.globals) {
        VGlobal vg;
        vg.name = g.name;
        vg.size = std::max<int64_t>(g.type->size(), 1);
        vg.align = g.type->align();
        if (g.hasStrInit) {
            vg.init.assign(g.strInit.begin(), g.strInit.end());
            vg.init.push_back(0);
            vg.init.resize(vg.size, 0);
        } else if (!g.init.empty()) {
            vg.init.assign(vg.size, 0);
            if (g.type->kind == CType::Array) {
                const CType* elem = g.type->base;
                const int64_t es = elem->size();
                if (static_cast<int64_t>(g.init.size()) >
                    g.type->arrayLen) {
                    fatal("too many initializers for '", g.name, "'");
                }
                for (size_t i = 0; i < g.init.size(); ++i)
                    writeScalar(vg.init, i * es, elem, *g.init[i]);
            } else {
                writeScalar(vg.init, 0, g.type, *g.init[0]);
            }
        }
        globalNames.insert(g.name);
        mod.globals.push_back(std::move(vg));
    }

    // Compile each function with globals visible.
    std::map<std::string, const CType*> globalTypes;
    for (const auto& g : ast.globals)
        globalTypes[g.name] = g.type;
    for (const auto& f : ast.funcs) {
        FuncGen gen(ast, f, mod, globalTypes);
        mod.funcs.push_back(gen.run());
    }
    return mod;
}

VModule
compileToVCode(std::string_view source)
{
    Ast ast = parseMiniC(source);
    return generateVCode(ast);
}

} // namespace ch
