#ifndef CH_FRONTC_PARSER_H
#define CH_FRONTC_PARSER_H

/**
 * @file
 * Recursive-descent parser for MiniC producing an Ast. MiniC covers the
 * C subset the benchmark corpus needs: char/int/long/double scalars,
 * pointers, multi-dimensional arrays, structs (by pointer/member access),
 * all arithmetic/logical/bitwise operators, the full statement set
 * (if/else, while, do-while, for, break, continue, return), function
 * definitions, and globals with constant initializers.
 */

#include <string_view>

#include "frontc/ast.h"

namespace ch {

/** Parse a translation unit; fatal() with line info on syntax errors. */
Ast parseMiniC(std::string_view source);

} // namespace ch

#endif // CH_FRONTC_PARSER_H
