#include "frontc/lexer.h"

#include <cctype>
#include <set>

#include "common/logging.h"

namespace ch {

bool
isMiniCKeyword(std::string_view name)
{
    static const std::set<std::string_view> kw = {
        "void", "char", "int", "long", "double", "struct",
        "if", "else", "while", "for", "do", "return", "break",
        "continue", "sizeof",
    };
    return kw.count(name) != 0;
}

namespace {

/** Multi-character punctuators, longest first within each first-char. */
const char* kPuncts[] = {
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
    "=", "(", ")", "{", "}", "[", "]", ",", ";", ":", "?", ".",
};

char
decodeEscape(char c, int line)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        fatal("line ", line, ": bad escape '\\", c, "'");
    }
}

} // namespace

std::vector<Token>
lexMiniC(std::string_view src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;

    auto peek = [&](size_t off = 0) -> char {
        return i + off < src.size() ? src[i + off] : '\0';
    };

    while (i < src.size()) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i + 1 < src.size() &&
                   !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= src.size())
                fatal("line ", line, ": unterminated comment");
            i += 2;
            continue;
        }

        Token tok;
        tok.line = line;

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_')) {
                ++i;
            }
            tok.text = std::string(src.substr(start, i - start));
            tok.kind = isMiniCKeyword(tok.text) ? Tok::Keyword : Tok::Ident;
            out.push_back(std::move(tok));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            bool isFloat = false;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                i += 2;
                while (std::isxdigit(static_cast<unsigned char>(peek())))
                    ++i;
            } else {
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    ++i;
                if (peek() == '.') {
                    isFloat = true;
                    ++i;
                    while (std::isdigit(static_cast<unsigned char>(peek())))
                        ++i;
                }
                if (peek() == 'e' || peek() == 'E') {
                    isFloat = true;
                    ++i;
                    if (peek() == '+' || peek() == '-')
                        ++i;
                    while (std::isdigit(static_cast<unsigned char>(peek())))
                        ++i;
                }
            }
            const std::string text(src.substr(start, i - start));
            if (isFloat) {
                tok.kind = Tok::FloatLit;
                tok.floatValue = std::stod(text);
            } else {
                tok.kind = Tok::IntLit;
                tok.intValue =
                    static_cast<int64_t>(std::stoull(text, nullptr, 0));
            }
            out.push_back(std::move(tok));
            continue;
        }

        if (c == '\'') {
            ++i;
            char v = peek();
            if (v == '\\') {
                ++i;
                v = decodeEscape(peek(), line);
            }
            ++i;
            if (peek() != '\'')
                fatal("line ", line, ": unterminated char literal");
            ++i;
            tok.kind = Tok::CharLit;
            tok.intValue = v;
            out.push_back(std::move(tok));
            continue;
        }

        if (c == '"') {
            ++i;
            std::string s;
            while (i < src.size() && src[i] != '"') {
                char v = src[i];
                if (v == '\\') {
                    ++i;
                    v = decodeEscape(peek(), line);
                }
                s.push_back(v);
                ++i;
            }
            if (i >= src.size())
                fatal("line ", line, ": unterminated string literal");
            ++i;
            tok.kind = Tok::StrLit;
            tok.strValue = std::move(s);
            out.push_back(std::move(tok));
            continue;
        }

        bool matched = false;
        for (const char* p : kPuncts) {
            const size_t len = std::char_traits<char>::length(p);
            if (src.substr(i, len) == p) {
                tok.kind = Tok::Punct;
                tok.text = p;
                i += len;
                out.push_back(std::move(tok));
                matched = true;
                break;
            }
        }
        if (!matched)
            fatal("line ", line, ": unexpected character '", c, "'");
    }

    Token end;
    end.kind = Tok::End;
    end.line = line;
    out.push_back(std::move(end));
    return out;
}

} // namespace ch
