#ifndef CH_RUNNER_TRACE_CACHE_H
#define CH_RUNNER_TRACE_CACHE_H

/**
 * @file
 * Thread-safe execute-once cache of (workload, ISA, maxInsts) ->
 * committed TraceBuffer. The committed instruction stream is a pure
 * function of those three keys, so a timing grid that sweeps machine
 * configurations captures each stream exactly once and replays it into
 * every CycleSim — the functional-emulation cost of an N-config sweep
 * drops from N runs to one (docs/PERFORMANCE.md).
 *
 * Mirrors CompiledProgramCache: distinct keys capture concurrently under
 * per-entry std::call_once; threads requesting a key already being
 * captured block until it is ready.
 *
 * Memory budget: the sum of all cached encodings is capped (default
 * 1024 MiB, override with CH_TRACE_CACHE_MB). A capture that would
 * exceed the cap is abandoned, a warn() note goes to stderr exactly
 * once per key, and get() returns nullptr — callers fall back to direct
 * re-emulation, so truncation is never silent and never changes results.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "isa/isa.h"
#include "mem/program.h"
#include "trace/trace_buffer.h"

namespace ch {

/** Execute-once, replay-many committed-trace cache; see file docs. */
class TraceCache
{
  public:
    /** @p budgetBytes caps the total encoded size; 0 = unlimited. */
    explicit TraceCache(size_t budgetBytes = defaultBudgetBytes());

    /**
     * The committed trace of running @p prog (the compiled image of
     * @p workload for @p isa) for up to @p maxInsts instructions,
     * capturing it on first request. Returns nullptr when caching the
     * stream would exceed the byte budget; the caller then re-emulates.
     * Safe to call from any thread.
     */
    const TraceBuffer* get(const std::string& workload, Isa isa,
                           uint64_t maxInsts, const Program& prog);

    /** Total encoded bytes currently held. */
    size_t bytesUsed() const { return bytes_.load(); }

    /** Captures actually performed (not lookups). */
    uint64_t captureCount() const { return captures_.load(); }

    /** get() calls served. */
    uint64_t lookupCount() const { return lookups_.load(); }

    /** CH_TRACE_CACHE_MB in bytes; 1024 MiB when unset or invalid. */
    static size_t defaultBudgetBytes();

  private:
    struct Entry {
        std::once_flag once;
        std::unique_ptr<TraceBuffer> trace;  ///< null when over budget
    };

    using Key = std::tuple<std::string, int, uint64_t>;

    const size_t budget_;
    std::mutex mutex_;
    std::map<Key, std::unique_ptr<Entry>> entries_;
    std::atomic<size_t> bytes_{0};
    std::atomic<uint64_t> captures_{0};
    std::atomic<uint64_t> lookups_{0};
};

/** The process-wide cache shared by all sweep runners. */
TraceCache& traceCache();

} // namespace ch

#endif // CH_RUNNER_TRACE_CACHE_H
