#ifndef CH_RUNNER_TRACE_CACHE_H
#define CH_RUNNER_TRACE_CACHE_H

/**
 * @file
 * Thread-safe execute-once cache of (workload, ISA, maxInsts) ->
 * committed TraceBuffer. The committed instruction stream is a pure
 * function of those three keys, so a timing grid that sweeps machine
 * configurations captures each stream exactly once and replays it into
 * every CycleSim — the functional-emulation cost of an N-config sweep
 * drops from N runs to one (docs/PERFORMANCE.md).
 *
 * Mirrors CompiledProgramCache: distinct keys capture concurrently under
 * per-entry std::call_once; threads requesting a key already being
 * captured block until it is ready.
 *
 * Memory budget: the sum of all cached encodings is capped (default
 * 1024 MiB, override with CH_TRACE_CACHE_MB). Without a persistent
 * backing, a capture that would exceed the cap is abandoned, a warn()
 * note goes to stderr exactly once per key, and get() returns nullptr —
 * callers fall back to direct re-emulation, so truncation is never
 * silent and never changes results.
 *
 * With a TracePersistence backing attached (the persistent store of
 * docs/SERVICE.md), the cache instead evicts least-recently-used
 * entries to make room: evicted streams survive on disk and reload via
 * mmap, so over-budget grids degrade to cheap page-cache reads instead
 * of full re-emulation. get() hands out shared_ptr handles, so a
 * replay in flight keeps its trace alive across a concurrent eviction.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "isa/isa.h"
#include "mem/program.h"
#include "trace/trace_buffer.h"

namespace ch {

/**
 * On-disk backing for committed traces, keyed by program content
 * (docs/SERVICE.md). Implemented by service::PersistentStore; declared
 * here so ch_runner does not depend on the service layer.
 */
class TracePersistence
{
  public:
    virtual ~TracePersistence() = default;

    /** The stored stream of (prog, maxInsts), or null when absent. */
    virtual std::shared_ptr<const TraceBuffer>
    load(const Program& prog, uint64_t maxInsts) = 0;

    /** Persist a fully captured stream (atomic write-then-rename). */
    virtual void save(const Program& prog, uint64_t maxInsts,
                      const TraceBuffer& trace) = 0;
};

/** Execute-once, replay-many committed-trace cache; see file docs. */
class TraceCache
{
  public:
    /**
     * @p budgetBytes caps the total encoded size; 0 = unlimited.
     * @p persist enables the on-disk backing and LRU eviction.
     */
    explicit TraceCache(size_t budgetBytes = defaultBudgetBytes(),
                        TracePersistence* persist = nullptr);

    /**
     * The committed trace of running @p prog (the compiled image of
     * @p workload for @p isa) for up to @p maxInsts instructions,
     * capturing (or store-loading) it on first request. Returns null
     * when caching the stream would exceed the byte budget and no
     * persistent backing is attached; the caller then re-emulates.
     * Safe to call from any thread; the handle stays valid across a
     * concurrent eviction.
     */
    std::shared_ptr<const TraceBuffer> get(const std::string& workload,
                                           Isa isa, uint64_t maxInsts,
                                           const Program& prog);

    /** Total encoded bytes currently held. */
    size_t bytesUsed() const { return bytes_.load(); }

    /** Captures actually performed by emulation (not lookups). */
    uint64_t captureCount() const { return captures_.load(); }

    /** get() calls served. */
    uint64_t lookupCount() const { return lookups_.load(); }

    /** get() calls served without a new emulation capture. */
    uint64_t hitCount() const { return hits_.load(); }

    /** get() calls that had to emulate (or fell back over budget). */
    uint64_t missCount() const { return misses_.load(); }

    /** Entries dropped by LRU eviction (persistent backing only). */
    uint64_t evictionCount() const { return evictions_.load(); }

    /** CH_TRACE_CACHE_MB in bytes; 1024 MiB when unset or invalid. */
    static size_t defaultBudgetBytes();

  private:
    struct Entry {
        std::once_flag once;
        std::shared_ptr<const TraceBuffer> trace;  ///< null: over budget
        std::atomic<bool> ready{false};      ///< trace assignment done
        std::atomic<bool> fromCapture{false};///< emulated, not store-read
        std::atomic<bool> counted{false};    ///< hit/miss attributed
        std::atomic<uint64_t> lastUse{0};    ///< LRU tick
    };

    using Key = std::tuple<std::string, int, uint64_t>;

    /** Evict ready LRU entries until @p need more bytes fit. */
    void evictToFit(size_t need);

    const size_t budget_;
    TracePersistence* const persist_;
    std::mutex mutex_;
    std::map<Key, std::shared_ptr<Entry>> entries_;
    std::atomic<size_t> bytes_{0};
    std::atomic<uint64_t> tick_{0};
    std::atomic<uint64_t> captures_{0};
    std::atomic<uint64_t> lookups_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
};

/** The process-wide cache shared by all sweep runners. */
TraceCache& traceCache();

} // namespace ch

#endif // CH_RUNNER_TRACE_CACHE_H
