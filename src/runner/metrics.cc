#include "runner/metrics.h"

#include <sys/stat.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace ch {

namespace {

/** Minimal JSON string escaping (control chars, quote, backslash). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trippable double form; locale-independent. */
std::string
fmtJsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char*
isaTag(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return "riscv";
      case Isa::Straight: return "straight";
      case Isa::Clockhands: return "clockhands";
    }
    return "unknown";
}

} // namespace

void
writeMetricsJson(std::ostream& os, const MetricsOptions& opt,
                 const std::vector<JobResult>& results)
{
    os << "{\n";
    os << "  \"schema\": \"ch-sweep-metrics-v1\",\n";
    os << "  \"bench\": \"" << jsonEscape(opt.bench) << "\",\n";
    os << "  \"jobs\": [";
    for (size_t i = 0; i < results.size(); ++i) {
        const JobResult& r = results[i];
        const JobMetrics& m = r.metrics;
        os << (i ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"id\": \"" << jsonEscape(r.spec.id) << "\",\n";
        os << "      \"workload\": \"" << jsonEscape(r.spec.workload)
           << "\",\n";
        os << "      \"isa\": \"" << isaTag(r.spec.isa) << "\",\n";
        if (r.spec.maxInsts != ~0ull)
            os << "      \"max_insts\": " << r.spec.maxInsts << ",\n";
        os << "      \"seed\": " << r.spec.seed << ",\n";
        // Non-default fidelity rungs are distinguishable in the schema;
        // the field is absent on the detailed default, so detailed-only
        // output stays byte-identical (docs/FIDELITY.md).
        if (r.spec.cfg.coreModel != CoreModelKind::Detailed) {
            os << "      \"core_model\": \""
               << coreModelName(r.spec.cfg.coreModel) << "\",\n";
        }
        // Sampled runs are distinguishable in the schema: the block is
        // only present when sampling was enabled for the job, so
        // sampling-off output stays byte-identical.
        if (r.spec.cfg.sampling.enabled()) {
            const SamplingConfig& sc = r.spec.cfg.sampling;
            os << "      \"sampling\": {\n";
            os << "        \"interval_insts\": " << sc.intervalInsts
               << ",\n";
            os << "        \"sample_insts\": " << sc.sampleInsts << ",\n";
            os << "        \"warmup_insts\": " << sc.warmupInsts << ",\n";
            os << "        \"seed_offset\": " << sc.seedOffset << ",\n";
            // Shard fields appear only on K>1 runs, so K=1 output stays
            // byte-identical to pre-shard binaries (cmp-verified in CI).
            if (sc.shards > 1) {
                os << "        \"shards\": " << sc.shards << ",\n";
                os << "        \"shard_warmup_insts\": "
                   << (sc.shardWarmupInsts ? sc.shardWarmupInsts
                                           : sc.intervalInsts)
                   << ",\n";
            }
            os << "        \"functional_warming\": "
               << (sc.functionalWarming ? "true" : "false") << "\n";
            os << "      },\n";
        }
        os << "      \"ok\": " << (r.ok ? "true" : "false") << ",\n";
        if (!r.ok)
            os << "      \"error\": \"" << jsonEscape(r.error) << "\",\n";
        os << "      \"exited\": " << (m.exited ? "true" : "false")
           << ",\n";
        os << "      \"exit_code\": " << m.exitCode << ",\n";
        os << "      \"cycles\": " << m.cycles << ",\n";
        os << "      \"insts\": " << m.insts << ",\n";
        os << "      \"ipc\": " << fmtJsonDouble(m.ipc());
        if (opt.hostMetrics) {
            os << ",\n      \"wall_ms\": " << fmtJsonDouble(m.wallMs);
            os << ",\n      \"peak_rss_kib\": " << m.peakRssKiB;
            // Cache-effectiveness snapshots (trace_cache.*): host-only
            // because they depend on scheduling order.
            for (const auto& [name, value] : m.hostCounters) {
                os << ",\n      \"" << jsonEscape(name)
                   << "\": " << value;
            }
        }
        if (!m.counters.empty()) {
            os << ",\n      \"counters\": {";
            bool first = true;
            for (const auto& [name, value] : m.counters) {
                os << (first ? "\n" : ",\n");
                os << "        \"" << jsonEscape(name) << "\": " << value;
                first = false;
            }
            os << "\n      }";
        }
        if (!m.values.empty()) {
            os << ",\n      \"values\": {";
            bool first = true;
            for (const auto& [name, value] : m.values) {
                os << (first ? "\n" : ",\n");
                os << "        \"" << jsonEscape(name)
                   << "\": " << fmtJsonDouble(value);
                first = false;
            }
            os << "\n      }";
        }
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

namespace {

/** CSV field quoting per RFC 4180 when the value needs it. */
std::string
csvField(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
writeMetricsCsv(std::ostream& os, const MetricsOptions& opt,
                const std::vector<JobResult>& results)
{
    os << "bench,id,workload,isa,ok,kind,metric,value\n";
    for (const JobResult& r : results) {
        const JobMetrics& m = r.metrics;
        auto row = [&](const char* kind, const std::string& metric,
                       const std::string& value) {
            os << csvField(opt.bench) << ',' << csvField(r.spec.id) << ','
               << csvField(r.spec.workload) << ',' << isaTag(r.spec.isa)
               << ',' << (r.ok ? 1 : 0) << ',' << kind << ','
               << csvField(metric) << ',' << value << '\n';
        };
        if (r.spec.cfg.coreModel != CoreModelKind::Detailed) {
            row("config", "core_model",
                coreModelName(r.spec.cfg.coreModel));
        }
        if (r.spec.cfg.sampling.enabled()) {
            const SamplingConfig& sc = r.spec.cfg.sampling;
            row("sampling", "interval_insts",
                std::to_string(sc.intervalInsts));
            row("sampling", "sample_insts",
                std::to_string(sc.sampleInsts));
            row("sampling", "warmup_insts",
                std::to_string(sc.warmupInsts));
            row("sampling", "seed_offset",
                std::to_string(sc.seedOffset));
            if (sc.shards > 1) {
                row("sampling", "shards", std::to_string(sc.shards));
                row("sampling", "shard_warmup_insts",
                    std::to_string(sc.shardWarmupInsts
                                       ? sc.shardWarmupInsts
                                       : sc.intervalInsts));
            }
            row("sampling", "functional_warming",
                sc.functionalWarming ? "1" : "0");
        }
        row("core", "exited", m.exited ? "1" : "0");
        row("core", "exit_code", std::to_string(m.exitCode));
        row("core", "cycles", std::to_string(m.cycles));
        row("core", "insts", std::to_string(m.insts));
        row("core", "ipc", fmtJsonDouble(m.ipc()));
        if (opt.hostMetrics) {
            row("host", "wall_ms", fmtJsonDouble(m.wallMs));
            row("host", "peak_rss_kib", std::to_string(m.peakRssKiB));
            for (const auto& [name, value] : m.hostCounters)
                row("host", name, std::to_string(value));
        }
        for (const auto& [name, value] : m.counters)
            row("counter", name, std::to_string(value));
        for (const auto& [name, value] : m.values)
            row("value", name, fmtJsonDouble(value));
    }
}

std::string
metricsJsonString(const MetricsOptions& opt,
                  const std::vector<JobResult>& results)
{
    std::ostringstream os;
    writeMetricsJson(os, opt, results);
    return os.str();
}

std::string
writeMetricsFiles(const std::string& dir, const MetricsOptions& opt,
                  const std::vector<JobResult>& results)
{
    if (!dir.empty() && dir != ".")
        ::mkdir(dir.c_str(), 0777);   // single level is enough here
    const std::string base =
        (dir.empty() ? std::string(".") : dir) + "/" + opt.bench;

    const std::string jsonPath = base + ".json";
    {
        std::ofstream os(jsonPath);
        if (!os)
            fatal("cannot write metrics file: ", jsonPath);
        writeMetricsJson(os, opt, results);
    }
    const std::string csvPath = base + ".csv";
    {
        std::ofstream os(csvPath);
        if (!os)
            fatal("cannot write metrics file: ", csvPath);
        writeMetricsCsv(os, opt, results);
    }
    return jsonPath;
}

} // namespace ch
