#ifndef CH_RUNNER_METRICS_H
#define CH_RUNNER_METRICS_H

/**
 * @file
 * Machine-readable sinks for sweep results: a JSON document per bench
 * (schema in docs/RUNNER.md) and a long-format CSV (one row per metric)
 * for direct ingestion by plotting scripts.
 *
 * The default output is deterministic: identical for --jobs 1 and
 * --jobs N runs of the same sweep. Host-side observations (per-job
 * wall-clock, process peak RSS) are only emitted when hostMetrics is
 * set, because they vary run to run.
 */

#include <ostream>
#include <string>
#include <vector>

#include "runner/runner.h"

namespace ch {

struct MetricsOptions {
    std::string bench;        ///< bench binary name, e.g. "fig13_performance"
    bool hostMetrics = false; ///< include wall_ms / peak_rss_kib
};

/** Serialize @p results as the versioned JSON document. */
void writeMetricsJson(std::ostream& os, const MetricsOptions& opt,
                      const std::vector<JobResult>& results);

/** Serialize @p results as long-format CSV. */
void writeMetricsCsv(std::ostream& os, const MetricsOptions& opt,
                     const std::vector<JobResult>& results);

/** JSON string of the document (runner tests compare these bytes). */
std::string metricsJsonString(const MetricsOptions& opt,
                              const std::vector<JobResult>& results);

/**
 * Write <dir>/<bench>.json and <dir>/<bench>.csv; creates @p dir when
 * missing. Returns the JSON path. fatal() on I/O failure.
 */
std::string writeMetricsFiles(const std::string& dir,
                              const MetricsOptions& opt,
                              const std::vector<JobResult>& results);

} // namespace ch

#endif // CH_RUNNER_METRICS_H
