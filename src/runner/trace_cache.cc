#include "runner/trace_cache.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "emu/emulator.h"

namespace ch {

namespace {

/** Emulate in chunks so an over-budget capture aborts early. */
constexpr uint64_t kCaptureChunk = 1u << 16;

} // namespace

size_t
TraceCache::defaultBudgetBytes()
{
    constexpr size_t kDefaultMb = 1024;
    const char* env = std::getenv("CH_TRACE_CACHE_MB");
    if (!env || !*env)
        return kDefaultMb << 20;
    errno = 0;
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-') || mb > (SIZE_MAX >> 20)) {
        warn("CH_TRACE_CACHE_MB='", env, "' is not a valid MiB count; ",
             "using the default of ", kDefaultMb);
        return kDefaultMb << 20;
    }
    return static_cast<size_t>(mb) << 20;
}

TraceCache::TraceCache(size_t budgetBytes) : budget_(budgetBytes)
{
}

const TraceBuffer*
TraceCache::get(const std::string& workload, Isa isa, uint64_t maxInsts,
                const Program& prog)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    Entry* entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& slot =
            entries_[{workload, static_cast<int>(isa), maxInsts}];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        auto trace = std::make_unique<TraceBuffer>();
        const size_t used = bytes_.load(std::memory_order_relaxed);
        if (budget_) {
            if (used >= budget_) {
                warn("trace cache: budget of ", budget_ >> 20,
                     " MiB exhausted; ", workload, "/", isaName(isa),
                     " falls back to re-emulation "
                     "(raise CH_TRACE_CACHE_MB)");
                return;
            }
            trace->setByteLimit(budget_ - used);
        }

        Emulator emu(prog);
        uint64_t left = maxInsts;
        RunResult res;
        while (!emu.done() && left > 0 && !trace->overLimit()) {
            const uint64_t chunk = std::min(left, kCaptureChunk);
            const uint64_t before = emu.instCount();
            res = emu.run(chunk, trace.get());
            left -= emu.instCount() - before;
        }
        if (trace->overLimit()) {
            warn("trace cache: ", workload, "/", isaName(isa),
                 " does not fit the remaining ",
                 (budget_ - used) >> 20, " MiB of the ", budget_ >> 20,
                 " MiB budget; falls back to re-emulation "
                 "(raise CH_TRACE_CACHE_MB)");
            return;
        }
        trace->setRunOutcome(res.exited, res.exitCode);
        bytes_.fetch_add(trace->byteSize(), std::memory_order_relaxed);
        captures_.fetch_add(1, std::memory_order_relaxed);
        entry->trace = std::move(trace);
    });
    return entry->trace.get();
}

TraceCache&
traceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace ch
