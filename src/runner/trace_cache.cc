#include "runner/trace_cache.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "emu/emulator.h"

namespace ch {

namespace {

/** Emulate in chunks so an over-budget capture aborts early. */
constexpr uint64_t kCaptureChunk = 1u << 16;

/** Run @p prog for @p maxInsts into a fresh TraceBuffer. */
std::unique_ptr<TraceBuffer>
captureTrace(const Program& prog, uint64_t maxInsts, size_t byteLimit)
{
    auto trace = std::make_unique<TraceBuffer>();
    if (byteLimit)
        trace->setByteLimit(byteLimit);
    Emulator emu(prog);
    uint64_t left = maxInsts;
    RunResult res;
    while (!emu.done() && left > 0 && !trace->overLimit()) {
        const uint64_t chunk = std::min(left, kCaptureChunk);
        const uint64_t before = emu.instCount();
        res = emu.run(chunk, trace.get());
        left -= emu.instCount() - before;
    }
    trace->setRunOutcome(res.exited, res.exitCode);
    return trace;
}

} // namespace

size_t
TraceCache::defaultBudgetBytes()
{
    constexpr size_t kDefaultMb = 1024;
    const char* env = std::getenv("CH_TRACE_CACHE_MB");
    if (!env || !*env)
        return kDefaultMb << 20;
    errno = 0;
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-') || mb > (SIZE_MAX >> 20)) {
        warn("CH_TRACE_CACHE_MB='", env, "' is not a valid MiB count; ",
             "using the default of ", kDefaultMb);
        return kDefaultMb << 20;
    }
    return static_cast<size_t>(mb) << 20;
}

TraceCache::TraceCache(size_t budgetBytes, TracePersistence* persist)
    : budget_(budgetBytes), persist_(persist)
{
}

void
TraceCache::evictToFit(size_t need)
{
    std::lock_guard<std::mutex> lock(mutex_);
    while (budget_ && bytes_.load(std::memory_order_relaxed) + need >
                          budget_) {
        auto victim = entries_.end();
        uint64_t oldest = ~0ull;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            Entry& e = *it->second;
            if (!e.ready.load(std::memory_order_acquire) || !e.trace)
                continue;
            const uint64_t use = e.lastUse.load(std::memory_order_relaxed);
            if (use < oldest) {
                oldest = use;
                victim = it;
            }
        }
        if (victim == entries_.end())
            break;  // nothing evictable: accept a soft overrun
        bytes_.fetch_sub(victim->second->trace->byteSize(),
                         std::memory_order_relaxed);
        entries_.erase(victim);  // in-flight handles stay alive
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::shared_ptr<const TraceBuffer>
TraceCache::get(const std::string& workload, Isa isa, uint64_t maxInsts,
                const Program& prog)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& slot =
            entries_[{workload, static_cast<int>(isa), maxInsts}];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    std::call_once(entry->once, [&] {
        // 1. Persistent backing: a warm store serves the stream as an
        //    mmap'd file — no emulation, memory is page-cache backed.
        if (persist_) {
            if (auto loaded = persist_->load(prog, maxInsts)) {
                evictToFit(loaded->byteSize());
                bytes_.fetch_add(loaded->byteSize(),
                                 std::memory_order_relaxed);
                entry->trace = std::move(loaded);
                entry->ready.store(true, std::memory_order_release);
                return;
            }
        }

        // 2. Capture by emulation. Without eviction the stream must fit
        //    the *remaining* budget; with a persistent backing it only
        //    needs to fit the whole budget, since LRU entries can go.
        const size_t used = bytes_.load(std::memory_order_relaxed);
        size_t limit = 0;
        if (budget_) {
            if (!persist_ && used >= budget_) {
                warn("trace cache: budget of ", budget_ >> 20,
                     " MiB exhausted; ", workload, "/", isaName(isa),
                     " falls back to re-emulation "
                     "(raise CH_TRACE_CACHE_MB)");
                entry->ready.store(true, std::memory_order_release);
                return;
            }
            limit = persist_ ? budget_ : budget_ - used;
        }
        auto trace = captureTrace(prog, maxInsts, limit);
        entry->fromCapture.store(true, std::memory_order_relaxed);
        if (trace->overLimit()) {
            warn("trace cache: ", workload, "/", isaName(isa),
                 " does not fit the remaining ", limit >> 20,
                 " MiB of the ", budget_ >> 20,
                 " MiB budget; falls back to re-emulation "
                 "(raise CH_TRACE_CACHE_MB)");
            entry->ready.store(true, std::memory_order_release);
            return;
        }
        captures_.fetch_add(1, std::memory_order_relaxed);
        std::shared_ptr<const TraceBuffer> result = std::move(trace);
        if (persist_) {
            persist_->save(prog, maxInsts, *result);
            // Prefer the store's mmap-backed copy: its pages are file
            // backed, so the OS can reclaim them under memory pressure.
            if (auto reloaded = persist_->load(prog, maxInsts))
                result = std::move(reloaded);
            evictToFit(result->byteSize());
        }
        bytes_.fetch_add(result->byteSize(), std::memory_order_relaxed);
        entry->trace = std::move(result);
        entry->ready.store(true, std::memory_order_release);
    });
    // Attribute the entry's creation outcome exactly once: the call
    // that sees `counted` unset books a miss when emulation ran (or the
    // over-budget fallback hit); every other call is a hit.
    if (!entry->counted.exchange(true, std::memory_order_relaxed) &&
        (entry->fromCapture.load(std::memory_order_relaxed) ||
         !entry->trace)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
    }
    entry->lastUse.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    return entry->trace;
}

TraceCache&
traceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace ch
