#ifndef CH_RUNNER_RUNNER_H
#define CH_RUNNER_RUNNER_H

/**
 * @file
 * Thread-pool sweep engine for the figure/table harness. A sweep is a
 * list of jobs, each pairing a (workload, ISA) program with a machine
 * configuration (or a trace analyzer) and producing a JobMetrics record.
 *
 * Determinism contract (see docs/RUNNER.md):
 *  - results are returned in add() order, independent of scheduling;
 *  - each job gets a seed derived from its spec, not from time or
 *    thread identity;
 *  - all simulation inputs are deterministic, so every metric except the
 *    host-side wallMs/peakRssKiB fields is byte-identical between a
 *    --jobs 1 and a --jobs N run.
 *
 * Programs come from a shared CompiledProgramCache: each (workload, ISA)
 * pair is compiled exactly once per process however many jobs use it.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runner/trace_cache.h"
#include "uarch/config.h"
#include "workloads/prog_cache.h"

namespace ch {

struct JobSpec;
struct JobMetrics;
struct JobResult;

/**
 * Persistent result cache consulted by simJob(): a deterministic
 * JobMetrics record keyed by (program content, spec content), so a
 * repeated sweep is a pure cache read (docs/SERVICE.md). Implemented by
 * service::PersistentStore; declared here so ch_runner stays free of
 * the service layer.
 */
class JobResultStore
{
  public:
    virtual ~JobResultStore() = default;

    /** Fill @p out from the store; false when the key is absent. */
    virtual bool load(const JobSpec& spec, const Program& prog,
                      JobMetrics* out) = 0;

    /** Persist a freshly computed record (atomic write-then-rename). */
    virtual void save(const JobSpec& spec, const Program& prog,
                      const JobMetrics& m) = 0;
};

/**
 * Remote execution backend for addSim() jobs: ships specs to an
 * external service and delivers one JobResult per spec, in any order.
 * Implemented by service::FarmSweepExecutor (`--farm`, docs/SERVICE.md).
 */
class SimJobExecutor
{
  public:
    virtual ~SimJobExecutor() = default;

    /**
     * Run every spec and invoke @p done(index, result) exactly once per
     * spec, from the calling thread. Throws on transport failure.
     */
    virtual void
    execute(const std::vector<JobSpec>& specs,
            const std::function<void(size_t, JobResult)>& done) = 0;
};

/** Sweep-wide knobs; see benchInit() for the env/CLI plumbing. */
struct RunnerOptions {
    /** Worker threads; 0 selects std::thread::hardware_concurrency(). */
    int jobs = 0;

    /** Emit a per-job completion line on stderr. */
    bool progress = false;

    /** Prefix for progress lines (usually the bench name). */
    std::string tag = "sweep";

    /**
     * When non-empty, every addSim() job writes a Kanata pipeline trace
     * to `<pipeTraceDir>/<sanitized job id>.kanata`. Per-job files keep
     * parallel sweeps from interleaving one trace stream; tracing never
     * changes any deterministic metric (docs/OBSERVABILITY.md).
     */
    std::string pipeTraceDir;

    /**
     * Capture each (workload, ISA, maxInsts) committed stream once and
     * replay it into every addSim() config instead of re-emulating
     * (docs/PERFORMANCE.md). Replay feeds the identical stream, so all
     * deterministic metrics are byte-identical either way; disable with
     * `--no-trace-cache` to cross-check or to shed memory.
     */
    bool traceCache = true;

    /**
     * Interval-sampling knobs applied to every addSim() job whose config
     * does not set its own (docs/PERFORMANCE.md, "Sampled simulation").
     * Disabled by default: every job times 100% of the committed stream
     * and all metrics stay byte-identical to earlier binaries.
     */
    SamplingConfig sampling;

    /**
     * Fidelity-ladder rung applied to every addSim() job whose config
     * keeps the detailed default (docs/FIDELITY.md): detailed (the
     * reference), fast (in-order + cache/branch penalties), or analytic
     * (zero-execution per-loop prediction). Detailed by default — when
     * left alone the metrics files stay byte-identical to earlier
     * binaries, and no core_model field/row is emitted.
     */
    CoreModelKind coreModel = CoreModelKind::Detailed;

    /**
     * Attach the static verifier's dead-write/pressure statistics
     * (docs/VERIFIER.md) to every addSim() job as verify.* counters:
     * verify.deadWrites plus verify.pressure.<group>.{writes,reads,dead}
     * with group regs (RISC), ring (STRAIGHT) or t/u/v/s (Clockhands).
     * Off by default; when off no verify.* key is ever inserted, so the
     * metrics files stay byte-identical to earlier binaries.
     */
    bool verifyStats = false;

    /**
     * Remote execution backend (`--farm <socket>`, docs/SERVICE.md).
     * When set, every addSim() job runs on the farm instead of the
     * local thread pool; custom-body add() jobs still run locally. The
     * deterministic metrics are byte-identical either way.
     */
    std::shared_ptr<SimJobExecutor> executor;

    /**
     * Persistent result cache (`--store`, docs/SERVICE.md). When set,
     * simJob() serves repeated (program, spec) points from disk without
     * simulating and persists fresh results. Byte-identical metrics
     * either way; never consulted for pipe-tracing jobs (a cache hit
     * would skip the trace side effect).
     */
    std::shared_ptr<JobResultStore> resultStore;

    /**
     * Persistent committed-trace backing (docs/SERVICE.md). When set,
     * the runner uses a private TraceCache wired to it: streams load
     * mmap-style from disk across runs and the memory budget degrades
     * to LRU eviction instead of re-emulation.
     */
    std::shared_ptr<TracePersistence> tracePersistence;
};

/** One simulation/analysis job of a sweep. */
struct JobSpec {
    std::string id;        ///< unique label, e.g. "coremark/C/8f"
    std::string workload;  ///< corpus name; empty for model-only jobs
    Isa isa = Isa::Riscv;
    MachineConfig cfg;     ///< used by cycle-sim jobs
    uint64_t maxInsts = ~0ull;

    /**
     * Deterministic per-job seed; derived from the other spec fields by
     * SweepRunner::add() when left 0.
     */
    uint64_t seed = 0;

    /**
     * Per-job fidelity-ladder rung pin (docs/FIDELITY.md). Unset by
     * default: the job follows cfg.coreModel, which a non-detailed
     * RunnerOptions::coreModel may override. Setting it pins the job's
     * rung — including pinning Detailed under a non-detailed run-wide
     * default — so one sweep (or one farm grid) can mix rungs while
     * detailed rows stay byte-identical to an all-detailed run.
     */
    std::optional<CoreModelKind> coreModel;

    /**
     * Scheduling priority on the farm (higher dispatches first within a
     * worker queue); ignored by the local thread pool and excluded from
     * the result-store key, since it never changes any metric.
     */
    int priority = 0;
};

/** Structured result record of one job. */
struct JobMetrics {
    bool exited = false;      ///< the emulated program ran to completion
    int64_t exitCode = 0;
    uint64_t cycles = 0;      ///< 0 for pure trace/model jobs
    uint64_t insts = 0;

    /** Integer event counters (commit/cache/branch stats). */
    std::map<std::string, uint64_t> counters;

    /** Derived scalar metrics (analyzer fractions, model estimates). */
    std::map<std::string, double> values;

    // Host-side observations, filled by the runner. Excluded from the
    // deterministic metrics output unless host metrics are requested.
    double wallMs = 0;
    int64_t peakRssKiB = 0;

    /**
     * Host-side cache-effectiveness counters (trace_cache.{hits,misses,
     * evictions}, ...): snapshots taken at job completion, emitted only
     * with host metrics because they depend on scheduling order.
     */
    std::map<std::string, uint64_t> hostCounters;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(insts) / cycles;
    }
};

/** What a job body gets handed when it runs. */
struct JobContext {
    const JobSpec& spec;

    /** Compiled program for (spec.workload, spec.isa); null when the
     *  spec names no workload. */
    const Program* program;

    CompiledProgramCache& cache;

    /** Committed-trace cache for capture/replay; null when disabled. */
    TraceCache* traces = nullptr;

    /** Persistent result cache; null when disabled (docs/SERVICE.md). */
    JobResultStore* store = nullptr;

    /** Set by simJob() when the store served the job (no simulation). */
    mutable bool storeHit = false;
};

using JobFn = std::function<JobMetrics(const JobContext&)>;

/** One sweep entry after execution. */
struct JobResult {
    JobSpec spec;
    JobMetrics metrics;
    bool ok = false;
    std::string error;   ///< exception text when !ok
};

/**
 * The sweep engine. Typical use:
 *
 *   SweepRunner runner(opts);
 *   for (...) runner.addSim({id, workload, isa, cfg, maxInsts});
 *   for (const JobResult& r : runner.run()) ...
 */
class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opt = {},
                         CompiledProgramCache* cache = nullptr);

    /** Queue a job with a custom body; returns its index. */
    size_t add(JobSpec spec, JobFn fn);

    /** Queue a standard cycle-level simulation job. */
    size_t addSim(JobSpec spec);

    /**
     * Execute all queued jobs on the thread pool and return results in
     * add() order. Runs each job at most once; later calls return the
     * same results.
     */
    const std::vector<JobResult>& run();

    size_t jobCount() const { return specs_.size(); }
    CompiledProgramCache& cache() { return *cache_; }

    /** Resolved worker count for this host (after the 0 default). */
    int threadCount() const;

  private:
    void worker();

    RunnerOptions opt_;
    CompiledProgramCache* cache_;
    std::unique_ptr<TraceCache> ownedTraces_;  ///< store-backed cache
    TraceCache* traces_;
    std::vector<JobSpec> specs_;
    std::vector<JobFn> fns_;
    std::vector<char> isSim_;  ///< addSim() jobs (trace warm-up list)
    std::vector<JobResult> results_;
    bool ran_ = false;
};

/** Stable FNV-1a seed for a job spec (ignores the seed field itself). */
uint64_t jobSeed(const JobSpec& spec);

/**
 * Standard cycle-sim job body: simulate() + stats -> JobMetrics. When
 * ctx.traces is set, the committed stream is captured once per
 * (workload, ISA, maxInsts) and replayed into the CycleSim; past the
 * cache budget it transparently falls back to direct emulation.
 */
JobMetrics simJob(const JobContext& ctx);

/** Peak resident set size of this process, in KiB (getrusage). */
int64_t currentPeakRssKiB();

} // namespace ch

#endif // CH_RUNNER_RUNNER_H
