#include "runner/runner.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "analyze/analytic_model.h"
#include "common/logging.h"
#include "isa/isa.h"
#include "uarch/sampling.h"
#include "uarch/sim.h"
#include "verify/verify.h"

namespace ch {

uint64_t
jobSeed(const JobSpec& spec)
{
    // FNV-1a over the identifying spec fields; stable across hosts and
    // schedules so reruns see the same seed.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](const void* data, size_t len) {
        const auto* p = static_cast<const uint8_t*>(data);
        for (size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    mix(spec.id.data(), spec.id.size());
    mix(spec.workload.data(), spec.workload.size());
    const int isa = static_cast<int>(spec.isa);
    mix(&isa, sizeof(isa));
    mix(&spec.maxInsts, sizeof(spec.maxInsts));
    return h ? h : 1;
}

JobMetrics
simJob(const JobContext& ctx)
{
    CH_ASSERT(ctx.program, "simJob needs a workload program: ",
              ctx.spec.id);
    // Pipe-tracing jobs never consult the store: a hit would skip the
    // Kanata side effect the caller asked for (docs/SERVICE.md).
    const bool storable =
        ctx.store && ctx.spec.cfg.pipeTracePath.empty();
    if (storable) {
        JobMetrics cached;
        if (ctx.store->load(ctx.spec, *ctx.program, &cached)) {
            ctx.storeHit = true;
            return cached;
        }
    }
    const std::shared_ptr<const TraceBuffer> cachedTrace =
        ctx.traces ? ctx.traces->get(ctx.spec.workload, ctx.spec.isa,
                                     ctx.spec.maxInsts, *ctx.program)
                   : nullptr;
    const TraceBuffer* trace = cachedTrace.get();
    const SamplingConfig& sc = ctx.spec.cfg.sampling;
    SimResult r;
    if (ctx.spec.cfg.coreModel == CoreModelKind::Analytic) {
        // The analytic rung predicts from the static program; it has no
        // stall accounting, so sampling it is undefined (rejected at
        // option-parse time by bench_util.h).
        CH_ASSERT(!sc.enabled(),
                  "sampling needs a trace-driven core model: ",
                  ctx.spec.id);
        r = analyze::simulateAnalytic(*ctx.program, ctx.spec.cfg, trace,
                                      ctx.spec.maxInsts);
    } else if (sc.enabled()) {
        r = trace ? simulateSampled(*trace, ctx.spec.isa, ctx.spec.cfg,
                                    sc)
                  : simulateSampled(*ctx.program, ctx.spec.cfg, sc,
                                    ctx.spec.maxInsts);
    } else {
        r = trace ? simulateReplay(*trace, ctx.spec.isa, ctx.spec.cfg)
                  : simulate(*ctx.program, ctx.spec.cfg,
                             ctx.spec.maxInsts);
    }
    JobMetrics m;
    m.exited = r.exited;
    m.exitCode = r.exitCode;
    m.cycles = r.cycles;
    m.insts = r.insts;
    for (const auto& [name, value] : r.stats.dump())
        m.counters[name] = value;
    if (r.sampled) {
        m.values["sample.ipc"] = r.sample.ipcMean;
        m.values["sample.ipc.stderr"] = r.sample.ipcStderr;
        m.values["sample.ipc.ci95"] = r.sample.ipcCi95;
        m.values["sample.relerr"] = r.sample.relErr();
        // Per-shard wall times are scheduling-dependent, so they ride
        // as host counters (emitted only under --host-metrics) and only
        // on sharded runs, keeping K=1 output byte-identical.
        for (size_t k = 0; k < r.sample.shardWallMs.size(); ++k) {
            m.hostCounters["sample.shard" + std::to_string(k) +
                           ".wall_us"] =
                static_cast<uint64_t>(
                    std::llround(r.sample.shardWallMs[k] * 1000.0));
        }
    }
    if (storable)
        ctx.store->save(ctx.spec, *ctx.program, m);
    return m;
}

int64_t
currentPeakRssKiB()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<int64_t>(ru.ru_maxrss);
}

SweepRunner::SweepRunner(RunnerOptions opt, CompiledProgramCache* cache)
    : opt_(std::move(opt)), cache_(cache ? cache : &programCache())
{
    if (!opt_.traceCache) {
        traces_ = nullptr;
    } else if (opt_.tracePersistence) {
        // A store-backed run gets its own cache wired to the disk
        // backing: streams survive the process and over-budget grids
        // evict LRU instead of re-emulating (docs/SERVICE.md).
        ownedTraces_ = std::make_unique<TraceCache>(
            TraceCache::defaultBudgetBytes(),
            opt_.tracePersistence.get());
        traces_ = ownedTraces_.get();
    } else {
        traces_ = &traceCache();
    }
}

size_t
SweepRunner::add(JobSpec spec, JobFn fn)
{
    CH_ASSERT(!ran_, "cannot add jobs after run()");
    if (spec.seed == 0)
        spec.seed = jobSeed(spec);
    specs_.push_back(std::move(spec));
    fns_.push_back(std::move(fn));
    isSim_.push_back(0);
    return specs_.size() - 1;
}

namespace {

/** Job id -> safe file-name stem ("coremark/C/8f" -> "coremark_C_8f"). */
std::string
sanitizeJobId(const std::string& id)
{
    std::string out;
    out.reserve(id.size());
    for (char ch : id) {
        const bool keep = (ch >= 'a' && ch <= 'z') ||
                          (ch >= 'A' && ch <= 'Z') ||
                          (ch >= '0' && ch <= '9') || ch == '-' ||
                          ch == '.';
        out.push_back(keep ? ch : '_');
    }
    return out.empty() ? std::string("job") : out;
}

/**
 * Merge the verifier's program-level statistics into @p m. The static
 * pressure groups mirror formatPressure(): one "regs"/"ring" group for
 * the flat-register ISAs, the four hand names for Clockhands.
 */
void
addVerifyStats(const JobContext& ctx, JobMetrics& m)
{
    CH_ASSERT(ctx.program, "verify stats need a workload program: ",
              ctx.spec.id);
    const VerifyResult v = verifyProgram(*ctx.program);
    uint64_t dead = 0;
    auto group = [&m](const std::string& name, const HandPressure& p) {
        const std::string key = "verify.pressure." + name;
        m.counters[key + ".writes"] = p.writes;
        m.counters[key + ".reads"] = p.reads;
        m.counters[key + ".dead"] = p.deadWrites;
    };
    switch (ctx.program->isa) {
      case Isa::Riscv:
        group("regs", v.pressure[0]);
        break;
      case Isa::Straight:
        group("ring", v.pressure[0]);
        break;
      case Isa::Clockhands:
        for (int h = 0; h < kNumHands; ++h) {
            group(std::string(1, handName(static_cast<uint8_t>(h))),
                  v.pressure[static_cast<size_t>(h)]);
        }
        break;
    }
    for (const HandPressure& p : v.pressure)
        dead += p.deadWrites;
    m.counters["verify.deadWrites"] = dead;
}

} // namespace

size_t
SweepRunner::addSim(JobSpec spec)
{
    if (!opt_.pipeTraceDir.empty() && spec.cfg.pipeTracePath.empty()) {
        spec.cfg.pipeTracePath =
            opt_.pipeTraceDir + "/" + sanitizeJobId(spec.id) + ".kanata";
    }
    if (opt_.sampling.enabled() && !spec.cfg.sampling.enabled())
        spec.cfg.sampling = opt_.sampling;
    if (spec.coreModel) {
        // A per-spec pin beats the run-wide default either way — it can
        // pin Detailed under a fast/analytic run, which the fallthrough
        // override below cannot express.
        spec.cfg.coreModel = *spec.coreModel;
    } else if (opt_.coreModel != CoreModelKind::Detailed &&
               spec.cfg.coreModel == CoreModelKind::Detailed) {
        spec.cfg.coreModel = opt_.coreModel;
    }
    JobFn body = simJob;
    if (opt_.verifyStats) {
        body = [](const JobContext& ctx) {
            JobMetrics m = simJob(ctx);
            addVerifyStats(ctx, m);
            return m;
        };
    }
    const size_t idx = add(std::move(spec), std::move(body));
    isSim_[idx] = 1;
    return idx;
}

int
SweepRunner::threadCount() const
{
    int n = opt_.jobs;
    if (n <= 0)
        n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0)
        n = 1;
    return n;
}

namespace {

/** Shared per-run scheduling state (kept off the SweepRunner ABI). */
struct RunState {
    std::atomic<size_t> nextCompile{0};
    std::atomic<size_t> nextCapture{0};
    std::atomic<size_t> nextJob{0};
    std::atomic<size_t> done{0};
    std::mutex printMutex;
};

} // namespace

const std::vector<JobResult>&
SweepRunner::run()
{
    if (ran_)
        return results_;
    ran_ = true;
    results_.resize(specs_.size());

    // Remote set: with an executor attached, every addSim() job ships
    // to the farm; custom-body jobs always run locally. Remote jobs are
    // excluded from the local warm-up lists — the client side neither
    // compiles nor captures for them.
    std::vector<char> isRemote(specs_.size(), 0);
    std::vector<size_t> remoteIdx;
    if (opt_.executor) {
        for (size_t i = 0; i < specs_.size(); ++i) {
            if (isSim_[i]) {
                isRemote[i] = 1;
                remoteIdx.push_back(i);
            }
        }
    }

    // Warm-up work list: the distinct (workload, ISA) pairs, so workers
    // front-load compilation instead of serializing on the first job
    // that needs each program.
    std::vector<std::pair<std::string, Isa>> pairs;
    for (size_t i = 0; i < specs_.size(); ++i) {
        const JobSpec& spec = specs_[i];
        if (spec.workload.empty() || isRemote[i])
            continue;
        std::pair<std::string, Isa> key{spec.workload, spec.isa};
        bool seen = false;
        for (const auto& p : pairs)
            seen = seen || p == key;
        if (!seen)
            pairs.push_back(std::move(key));
    }

    // Same idea for trace capture: the distinct sim-job streams, so a
    // wide grid captures them in parallel up front instead of electing
    // one capturing thread per stream mid-sweep.
    struct CaptureKey {
        std::string workload;
        Isa isa;
        uint64_t maxInsts;

        bool
        operator==(const CaptureKey& o) const
        {
            return workload == o.workload && isa == o.isa &&
                   maxInsts == o.maxInsts;
        }
    };
    std::vector<CaptureKey> captures;
    if (traces_) {
        for (size_t i = 0; i < specs_.size(); ++i) {
            if (!isSim_[i] || specs_[i].workload.empty() || isRemote[i])
                continue;
            CaptureKey key{specs_[i].workload, specs_[i].isa,
                           specs_[i].maxInsts};
            bool seen = false;
            for (const auto& k : captures)
                seen = seen || k == key;
            if (!seen)
                captures.push_back(std::move(key));
        }
    }

    RunState state;
    auto work = [&] {
        for (;;) {
            const size_t ci =
                state.nextCompile.fetch_add(1, std::memory_order_relaxed);
            if (ci >= pairs.size())
                break;
            try {
                cache_->get(pairs[ci].first, pairs[ci].second);
            } catch (const std::exception&) {
                // The owning job reports the compile error below.
            }
        }
        for (;;) {
            const size_t ti =
                state.nextCapture.fetch_add(1, std::memory_order_relaxed);
            if (ti >= captures.size())
                break;
            try {
                const CaptureKey& key = captures[ti];
                traces_->get(key.workload, key.isa, key.maxInsts,
                             cache_->get(key.workload, key.isa));
            } catch (const std::exception&) {
                // The owning job reports the error below.
            }
        }
        for (;;) {
            const size_t i =
                state.nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs_.size())
                break;
            if (isRemote[i])
                continue;
            JobResult& res = results_[i];
            res.spec = specs_[i];
            const auto t0 = std::chrono::steady_clock::now();
            try {
                const Program* prog =
                    res.spec.workload.empty()
                        ? nullptr
                        : &cache_->get(res.spec.workload, res.spec.isa);
                JobContext ctx{res.spec, prog, *cache_, traces_,
                               opt_.resultStore.get()};
                res.metrics = fns_[i](ctx);
                res.ok = true;
            } catch (const std::exception& e) {
                res.ok = false;
                res.error = e.what();
            }
            const auto t1 = std::chrono::steady_clock::now();
            res.metrics.wallMs =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            res.metrics.peakRssKiB = currentPeakRssKiB();
            if (traces_) {
                res.metrics.hostCounters["trace_cache.hits"] =
                    traces_->hitCount();
                res.metrics.hostCounters["trace_cache.misses"] =
                    traces_->missCount();
                res.metrics.hostCounters["trace_cache.evictions"] =
                    traces_->evictionCount();
            }
            const size_t finished =
                state.done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opt_.progress) {
                std::lock_guard<std::mutex> lock(state.printMutex);
                std::fprintf(stderr, "[%s %3zu/%zu] %s%s%s (%.0f ms)\n",
                             opt_.tag.c_str(), finished, specs_.size(),
                             res.spec.id.c_str(),
                             res.ok ? "" : " FAILED: ",
                             res.ok ? "" : res.error.c_str(),
                             res.metrics.wallMs);
            }
        }
    };

    // Farm path: ship the remote set from this thread while the local
    // pool (if any custom-body jobs exist) drains concurrently.
    auto runRemote = [&] {
        std::vector<JobSpec> remoteSpecs;
        remoteSpecs.reserve(remoteIdx.size());
        for (size_t i : remoteIdx)
            remoteSpecs.push_back(specs_[i]);
        opt_.executor->execute(remoteSpecs, [&](size_t k, JobResult r) {
            CH_ASSERT(k < remoteIdx.size(), "executor index out of range");
            const size_t i = remoteIdx[k];
            r.spec = specs_[i];
            results_[i] = std::move(r);
            const size_t finished =
                state.done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opt_.progress) {
                const JobResult& res = results_[i];
                std::lock_guard<std::mutex> lock(state.printMutex);
                std::fprintf(stderr, "[%s %3zu/%zu] %s%s%s (farm)\n",
                             opt_.tag.c_str(), finished, specs_.size(),
                             res.spec.id.c_str(),
                             res.ok ? "" : " FAILED: ",
                             res.ok ? "" : res.error.c_str());
            }
        });
    };

    const size_t localCount = specs_.size() - remoteIdx.size();
    // Intra-job sampling shards and job-level workers share one host
    // thread budget: a K-shard sampled job occupies K threads while it
    // runs, so the pool shrinks to threadCount()/K workers instead of
    // oversubscribing the host by jobs x shards.
    int maxShards = 1;
    for (size_t i = 0; i < specs_.size(); ++i) {
        if (!isSim_[i] || isRemote[i])
            continue;
        const SamplingConfig& ssc = specs_[i].cfg.sampling;
        if (ssc.enabled())
            maxShards = std::max(maxShards, std::max(1, ssc.shards));
    }
    const int threads = std::max(
        1, std::min<int>(threadCount() / maxShards,
                         static_cast<int>(localCount)));
    if (localCount == 0) {
        if (!remoteIdx.empty())
            runRemote();
        return results_;
    }
    if (remoteIdx.empty() && threads <= 1) {
        work();
        return results_;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(work);
    if (!remoteIdx.empty())
        runRemote();
    for (auto& th : pool)
        th.join();
    return results_;
}

} // namespace ch
