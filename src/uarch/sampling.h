#ifndef CH_UARCH_SAMPLING_H
#define CH_UARCH_SAMPLING_H

/**
 * @file
 * Interval-sampled timing simulation (SMARTS-style) layered on the
 * trace-replay path — docs/PERFORMANCE.md, "Sampled simulation".
 *
 * The committed stream is split into fixed-size intervals. Each interval
 * is simulated in three phases:
 *
 *   1. functional warming — the skipped portions update long-lived
 *      microarchitectural state (cache tags/LRU, TAGE, BTB, RAS and the
 *      prefetcher) via the selected rung's warmInst at trace-decode
 *      speed (the fast rung warms by fully timing instead — see
 *      docs/FIDELITY.md),
 *   2. detailed warmup — warmupInsts run through the full timing model
 *      but are excluded from measurement, reconstructing the short-lived
 *      pipeline/queue state the warming pass cannot carry, and
 *   3. measurement — sampleInsts are timed and their IPC recorded.
 *
 * The detailed segment sits at a per-interval pseudo-random offset drawn
 * from a deterministic LCG (seeded from seedOffset), so measuring never
 * aliases against loop phases commensurate with the interval length and
 * identical configs always reproduce identical windows.
 *
 * A single core-model instance spans the whole run on one continuously
 * increasing cycle clock: detailed segments stitch onto the clock where
 * the previous segment left off, so predictor and cache contents persist
 * across intervals, structural-queue entries drain naturally, and the
 * stall accountant's cycle attribution stays globally consistent. The
 * per-interval IPCs feed a CLT estimate: mean, stderr = sd/sqrt(n), and
 * a 95% confidence interval (1.96 * stderr), surfaced in
 * SimResult::sample and as sample.* counters in the StatGroup.
 *
 * With SamplingConfig::shards > 1 the interval sequence is partitioned
 * into K contiguous runs timed concurrently, one core model and thread
 * each; every shard seeks to its start via the keyframed trace index,
 * functionally re-warms for shardWarmupInsts (default one interval),
 * and the per-window samples merge in shard order into the same CLT
 * estimate — deterministic for fixed K, ~Kx lower wall time at a small
 * warming-truncation accuracy cost (docs/PERFORMANCE.md). K=1 runs the
 * original serial schedule and stays byte-identical to it.
 *
 * With sampling disabled (SamplingConfig::enabled() false) callers take
 * the ordinary full-detail path and every metric stays byte-identical.
 */

#include "uarch/sim.h"

namespace ch {

/**
 * Time @p trace on @p cfg's machine, measuring only the sampled windows
 * described by @p sc. Falls back to an exact simulateReplay() (result
 * has sampled == false) when the trace is too short to hold one complete
 * interval after the seed offset, or when sampling is disabled.
 */
SimResult simulateSampled(const TraceBuffer& trace, Isa isa,
                          const MachineConfig& cfg,
                          const SamplingConfig& sc);

/**
 * Convenience overload: capture the committed stream of @p prog first
 * (one emulator pass), then sample it. Equivalent to TraceCache::get()
 * followed by the TraceBuffer overload.
 */
SimResult simulateSampled(const Program& prog, const MachineConfig& cfg,
                          const SamplingConfig& sc,
                          uint64_t maxInsts = ~0ull);

} // namespace ch

#endif // CH_UARCH_SAMPLING_H
