#include "uarch/config.h"

#include "common/logging.h"

namespace ch {

const char*
coreModelName(CoreModelKind kind)
{
    switch (kind) {
      case CoreModelKind::Detailed: return "detailed";
      case CoreModelKind::Fast: return "fast";
      case CoreModelKind::Analytic: return "analytic";
    }
    return "unknown";
}

bool
parseCoreModel(const std::string& text, CoreModelKind* out)
{
    if (text == "detailed")
        *out = CoreModelKind::Detailed;
    else if (text == "fast")
        *out = CoreModelKind::Fast;
    else if (text == "analytic")
        *out = CoreModelKind::Analytic;
    else
        return false;
    return true;
}

MachineConfig
MachineConfig::preset(int fetchWidth)
{
    MachineConfig cfg;
    cfg.fetchWidth = fetchWidth;
    cfg.commitWidth = fetchWidth;

    // Table 2: ROB grows aggressively; scheduler and LSQ conservatively.
    switch (fetchWidth) {
      case 4:
        cfg.robSize = 256;
        cfg.schedSize = 128;
        break;
      case 6:
        cfg.robSize = 640;
        cfg.schedSize = 192;
        break;
      case 8:
        cfg.robSize = 1024;
        cfg.schedSize = 256;
        break;
      case 12:
        cfg.robSize = 2048;
        cfg.schedSize = 384;
        break;
      case 16:
        cfg.robSize = 4096;
        cfg.schedSize = 512;
        break;
      default:
        fatal("no Table 2 preset for fetch width ", fetchWidth);
    }
    cfg.loadQueue = cfg.schedSize / 2;
    cfg.storeQueue = 3 * cfg.schedSize / 8;

    // Issue width and execution units: the full complement for the 12-
    // and 16-fetch models, halved (ceil) for the smaller ones.
    if (fetchWidth >= 12) {
        cfg.issueWidth = 16;
        cfg.fu = {8, 4, 3, 2, 2, 1, 1};
    } else {
        cfg.issueWidth = 8;
        cfg.fu = {4, 2, 2, 1, 1, 1, 1};
    }
    return cfg;
}

} // namespace ch
