#include "uarch/pipe_trace.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "isa/encoding.h"

namespace ch {

namespace {

std::string
hexPc(uint64_t pc)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%06" PRIx64, pc);
    return buf;
}

/** Rebuild the static instruction record for disassembly. */
Inst
staticInst(const DynInst& di)
{
    Inst inst;
    inst.op = di.op;
    inst.dst = di.dst;
    inst.src1 = di.src1;
    inst.src2 = di.src2;
    inst.src1Hand = di.src1Hand;
    inst.src2Hand = di.src2Hand;
    inst.imm = di.imm;
    return inst;
}

} // namespace

PipeTracer::PipeTracer(std::ostream& os, Isa isa,
                       const MachineConfig& cfg)
    : writer_(os), isa_(isa),
      renameStages_(cfg.frontendDepth(isa) - 5)
{
}

void
PipeTracer::onTimedInst(const DynInst& di, const PipeTimes& t)
{
    const uint64_t id = di.seq;
    const uint64_t f = t.fetch;

    writer_.insn(id, di.seq, 0, f);
    writer_.label(id, 0,
                  hexPc(di.pc) + ": " + disassemble(isa_, staticInst(di)),
                  f);
    writer_.label(id, 1,
                  concat("seq=", di.seq, " prod1=",
                         static_cast<int64_t>(di.prod1), " prod2=",
                         static_cast<int64_t>(di.prod2),
                         di.info().isMem()
                             ? concat(" addr=0x", hexPc(di.memAddr))
                             : std::string()),
                  f);

    // Front end: F(3) + Dc(1) [+ Rn for conventional RISC], then Ds
    // stretches until the actual dispatch cycle absorbs the stall.
    writer_.stageStart(id, 0, "F", f);
    writer_.stageStart(id, 0, "Dc", f + 3);
    uint64_t dsStart = f + 4;
    if (renameStages_ > 0) {
        writer_.stageStart(id, 0, "Rn", f + 4);
        dsStart = f + 4 + renameStages_;
    }
    writer_.stageStart(id, 0, "Ds", dsStart);
    writer_.stageStart(id, 0, "Is", t.dispatch + 1);
    writer_.stageStart(id, 0, "Ex", t.issue + 1);
    writer_.stageStart(id, 0, "Wb", t.result + 1);
    writer_.stageStart(id, 0, "Cm", t.complete + 1);
    writer_.stageEnd(id, 0, "Cm", t.commit + 1);
    writer_.retire(id, di.seq, /*flushed=*/false, t.commit + 1);

    const OpInfo& info = di.info();
    if (info.numSrcs >= 1 && di.prod1 != kNoProducer)
        writer_.dependency(id, di.prod1, 0, t.dispatch + 1);
    if (info.numSrcs >= 2 && di.prod2 != kNoProducer &&
        di.prod2 != di.prod1) {
        writer_.dependency(id, di.prod2, 0, t.dispatch + 1);
    }

    ++traced_;
    // Fetch cycles are monotone and every other pipeline event of a
    // later instruction is later still, so events before this fetch
    // cycle are final: stream them out to bound the buffer.
    writer_.flushBefore(f);
}

void
PipeTracer::finish()
{
    writer_.finish();
}

} // namespace ch
