#include "uarch/cache.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace ch {

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

Cache::Cache(int sizeKiB, int ways, int lineBytes)
    : ways_(ways), lineShift_(static_cast<int>(floorLog2(lineBytes)))
{
    CH_ASSERT(ways <= static_cast<int>(kLruMask),
              "way count exceeds the packed LRU field");
    const int64_t lines = int64_t{sizeKiB} * 1024 / lineBytes;
    sets_ = static_cast<int>(lines / ways);
    CH_ASSERT(sets_ > 0 && isPowerOf2(static_cast<uint64_t>(sets_)),
              "cache sets must be a power of two");
    lines_.assign(static_cast<size_t>(sets_) * ways_, Line{});
    // Unique LRU ranks per set (0 = MRU .. ways-1 = LRU victim); the
    // reset tag (all ones) is kept so empty ways never match.
    for (int set = 0; set < sets_; ++set) {
        for (int w = 0; w < ways_; ++w) {
            Line& line = lines_[static_cast<size_t>(set) * ways_ + w];
            line.word = (line.word & ~kLruMask) |
                        static_cast<uint64_t>(w);
        }
    }
}

size_t
Cache::lineIndex(uint64_t addr, int* setOut) const
{
    const uint64_t line = addr >> lineShift_;
    const int set = static_cast<int>(line & (sets_ - 1));
    *setOut = set;
    return static_cast<size_t>(set) * ways_;
}

bool
Cache::access(uint64_t addr)
{
    int set;
    const size_t base = lineIndex(addr, &set);
    const uint64_t want = (addr >> lineShift_) << kLruBits;
    for (int w = 0; w < ways_; ++w) {
        Line& line = lines_[base + w];
        if (((line.word ^ want) & ~kLruMask) == 0) {
            // Already-MRU hits (the common case) make the rank loop a
            // no-op; skip it.
            const uint64_t lru = line.word & kLruMask;
            if (lru != 0) {
                // An lru increment is word + 1: the rank stays below
                // ways_, so it never carries into the tag bits.
                for (int x = 0; x < ways_; ++x) {
                    if ((lines_[base + x].word & kLruMask) < lru)
                        ++lines_[base + x].word;
                }
                line.word = want;
            }
            return true;
        }
    }
    fill(addr);
    return false;
}

bool
Cache::fill(uint64_t addr)
{
    int set;
    const size_t base = lineIndex(addr, &set);
    const uint64_t want = (addr >> lineShift_) << kLruBits;
    Line* victim = &lines_[base];
    for (int w = 0; w < ways_; ++w) {
        Line& line = lines_[base + w];
        if (((line.word ^ want) & ~kLruMask) == 0)
            return false;  // already present
        if ((line.word & kLruMask) >= (victim->word & kLruMask))
            victim = &line;
    }
    const uint64_t lru = victim->word & kLruMask;
    for (int x = 0; x < ways_; ++x) {
        if ((lines_[base + x].word & kLruMask) < lru)
            ++lines_[base + x].word;
    }
    victim->word = want;
    return true;
}

bool
Cache::probe(uint64_t addr) const
{
    int set;
    const size_t base = lineIndex(addr, &set);
    const uint64_t want = (addr >> lineShift_) << kLruBits;
    for (int w = 0; w < ways_; ++w) {
        if (((lines_[base + w].word ^ want) & ~kLruMask) == 0)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// StreamPrefetcher
// ---------------------------------------------------------------------

StreamPrefetcher::StreamPrefetcher(int distance, int degree, int lineBytes)
    : distance_(distance),
      degree_(degree),
      lineShift_(static_cast<int>(floorLog2(lineBytes))),
      streams_(16)
{
}

std::vector<uint64_t>
StreamPrefetcher::onMiss(uint64_t addr)
{
    const uint64_t line = addr >> lineShift_;
    std::vector<uint64_t> out;

    // Find a stream this miss continues.
    for (auto& s : streams_) {
        if (s.lastLine == 0)
            continue;
        const int64_t delta =
            static_cast<int64_t>(line) - static_cast<int64_t>(s.lastLine);
        if (delta != 0 && delta >= -2 && delta <= 2) {
            const int dir = delta > 0 ? 1 : -1;
            if (s.dir == dir || s.dir == 0) {
                s.dir = dir;
                s.lastLine = line;
                if (s.confidence < 4)
                    ++s.confidence;
                if (s.confidence >= 2) {
                    for (int d = 0; d < degree_; ++d) {
                        const int64_t target =
                            static_cast<int64_t>(line) +
                            int64_t{dir} * (distance_ + d);
                        if (target > 0) {
                            out.push_back(static_cast<uint64_t>(target)
                                          << lineShift_);
                        }
                    }
                }
                return out;
            }
        }
    }
    // Allocate (round-robin by line hash).
    Stream& s = streams_[line % streams_.size()];
    s.lastLine = line;
    s.dir = 0;
    s.confidence = 0;
    return out;
}

// ---------------------------------------------------------------------
// MemoryHierarchy
// ---------------------------------------------------------------------

MemoryHierarchy::MemoryHierarchy(const MachineConfig& cfg, StatGroup* stats)
    : cfg_(cfg),
      stats_(stats),
      l1i_(cfg.l1iSizeKiB, cfg.l1iWays, cfg.lineBytes),
      l1d_(cfg.l1dSizeKiB, cfg.l1dWays, cfg.lineBytes),
      l2_(cfg.l2SizeKiB, cfg.l2Ways, cfg.lineBytes),
      prefetcher_(cfg.prefetchDistance, cfg.prefetchDegree, cfg.lineBytes)
{
}

int
MemoryHierarchy::sharedAccess(uint64_t addr)
{
    ++hot(cL2Accesses_, "cache.l2.accesses");
    if (l2_.access(addr))
        return cfg_.l2Latency;
    ++hot(cL2Misses_, "cache.l2.misses");
    for (uint64_t pf : prefetcher_.onMiss(addr)) {
        if (l2_.fill(pf))
            ++hot(cL2Prefetches_, "cache.l2.prefetches");
    }
    return cfg_.l2Latency + cfg_.memLatency;
}

void
MemoryHierarchy::warmShared(uint64_t addr)
{
    if (l2_.access(addr))
        return;
    for (uint64_t pf : prefetcher_.onMiss(addr))
        l2_.fill(pf);
}

void
MemoryHierarchy::warmFetch(uint64_t pc)
{
    if (!l1i_.access(pc))
        warmShared(pc);
}

void
MemoryHierarchy::warmData(uint64_t addr)
{
    if (!l1d_.access(addr))
        warmShared(addr);
}

int
MemoryHierarchy::fetchAccess(uint64_t pc)
{
    ++hot(cL1iAccesses_, "cache.l1i.accesses");
    if (l1i_.access(pc))
        return cfg_.l1iLatency;
    ++hot(cL1iMisses_, "cache.l1i.misses");
    return cfg_.l1iLatency + sharedAccess(pc);
}

int
MemoryHierarchy::dataAccess(uint64_t addr, bool isStore)
{
    ++(isStore ? hot(cL1dWrites_, "cache.l1d.writes")
               : hot(cL1dReads_, "cache.l1d.reads"));
    if (l1d_.access(addr))
        return cfg_.l1dLatency;
    ++hot(cL1dMisses_, "cache.l1d.misses");
    return cfg_.l1dLatency + sharedAccess(addr);
}

} // namespace ch
