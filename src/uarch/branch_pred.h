#ifndef CH_UARCH_BRANCH_PRED_H
#define CH_UARCH_BRANCH_PRED_H

/**
 * @file
 * Branch prediction for the cycle-level model (Table 2): an 8-component
 * TAGE direction predictor with up to 130 bits of global history and an
 * 8 KiB budget, a 4-way 8192-entry BTB, and a 16-entry return address
 * stack. All three ISAs share the same front-end predictors, as in the
 * paper's machine models.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "uarch/config.h"

namespace ch {

/** Folded global branch history (up to 192 bits kept). */
class GlobalHistory
{
  public:
    void
    push(bool taken)
    {
        const uint64_t carry1 = bits_[0] >> 63;
        const uint64_t carry2 = bits_[1] >> 63;
        bits_[0] = (bits_[0] << 1) | (taken ? 1 : 0);
        bits_[1] = (bits_[1] << 1) | carry1;
        bits_[2] = (bits_[2] << 1) | carry2;
    }

    /** XOR-fold the newest @p len history bits down to @p outBits. */
    uint64_t
    fold(int len, int outBits) const
    {
        uint64_t acc = 0;
        int taken = 0;
        for (int w = 0; w < 3 && taken < len; ++w) {
            const int take = std::min(64, len - taken);
            uint64_t v = bits_[w];
            if (take < 64)
                v &= (1ull << take) - 1;
            acc ^= v;
            taken += take;
        }
        // Reduce 64 bits to outBits.
        uint64_t out = 0;
        for (int i = 0; i < 64; i += outBits)
            out ^= (acc >> i);
        return out & ((1ull << outBits) - 1);
    }

  private:
    std::array<uint64_t, 3> bits_{};
};

/** 8-component TAGE direction predictor. */
class Tage
{
  public:
    Tage();

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(uint64_t pc);

    /** Update with the architectural outcome, then advance history. */
    void update(uint64_t pc, bool taken);

    /**
     * predict() + update() fused into a single table walk; returns what
     * predict() would have. Equivalent to the pair whenever nothing
     * observes another branch in between (the tables are only read and
     * written through these entry points), at half the lookup cost —
     * the fast rung's per-branch path uses this.
     */
    bool observe(uint64_t pc, bool taken);

  private:
    static constexpr int kTables = 7;     ///< tagged tables (+1 base)
    static constexpr int kBaseBits = 12;  ///< 4K-entry bimodal base
    static constexpr int kIdxBits = 9;    ///< 512 entries per tagged table
    static constexpr int kTagBits = 9;

    struct Entry {
        uint16_t tag = 0;
        int8_t ctr = 0;     ///< -4..3, taken when >= 0
        uint8_t useful = 0;
    };

    int index(uint64_t pc, int table) const;
    uint16_t tag(uint64_t pc, int table) const;

    /**
     * history_.fold(histLen_[table], 9), memoized until the next
     * history push. index() and tag() hash the same folded value
     * (kIdxBits == kTagBits), and one predict-update round folds per
     * table several times over — the memo makes each fold happen once
     * per branch with bit-identical results.
     */
    uint64_t fold9(int table) const;

    // Prediction bookkeeping between predict() and update().
    struct Lookup {
        int provider = -1;   ///< -1 = base
        int providerIdx = 0;
        bool pred = false;
        bool altPred = false;
    };
    Lookup look(uint64_t pc) const;

    std::vector<int8_t> base_;                       ///< 2-bit counters
    std::array<std::vector<Entry>, kTables> tables_;
    std::array<int, kTables> histLen_;
    GlobalHistory history_;
    uint64_t rng_ = 0x853c49e6748fea9bull;
    mutable std::array<uint64_t, kTables> foldCache_{};
    mutable uint8_t foldValid_ = 0;   ///< per-table bit; cleared on push
};

/** Set-associative branch target buffer. */
class Btb
{
  public:
    Btb(int entries, int ways);

    /** Predicted target for @p pc; 0 when absent. */
    uint64_t lookup(uint64_t pc);

    void insert(uint64_t pc, uint64_t target);

  private:
    struct Entry {
        uint64_t tag = ~0ull;
        uint64_t target = 0;
        uint8_t lru = 0;
    };

    int set(uint64_t pc) const;

    int sets_;
    int ways_;
    uint64_t setMask_;   ///< sets_ - 1 when sets_ is a power of two, else 0
    std::vector<Entry> entries_;
};

/** Return address stack. */
class Ras
{
  public:
    explicit Ras(int entries) : stack_(entries, 0) {}

    void
    push(uint64_t addr)
    {
        top_ = (top_ + 1) % stack_.size();
        stack_[top_] = addr;
    }

    uint64_t
    pop()
    {
        const uint64_t addr = stack_[top_];
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        return addr;
    }

  private:
    std::vector<uint64_t> stack_;
    size_t top_ = 0;
};

} // namespace ch

#endif // CH_UARCH_BRANCH_PRED_H
