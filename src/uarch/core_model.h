#ifndef CH_UARCH_CORE_MODEL_H
#define CH_UARCH_CORE_MODEL_H

/**
 * @file
 * The fidelity-ladder interface (docs/FIDELITY.md): every timing model
 * consumes the committed-trace stream (TraceBuffer::replay / TraceSink)
 * and reports cycles, instruction counts and counters through one
 * virtual surface, so drivers — simulate(), simulateReplay(),
 * simulateSampled(), the sweep runner — are model-agnostic.
 *
 * Three rungs implement it:
 *
 *  - CycleSim (uarch/core.h): the detailed out-of-order reference,
 *  - FastSim (uarch/fastsim.h): in-order front end/commit with cache and
 *    branch-misprediction penalties, ~5-10x the replay throughput,
 *  - AnalyticModel (analyze/analytic_model.h): zero-execution per-loop
 *    throughput prediction (needs the Program, so it is constructed via
 *    simulateAnalytic() rather than makeCoreModel()).
 *
 * The rung is selected by MachineConfig::coreModel
 * (--core-model={detailed,fast,analytic} on every bench binary).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "trace/trace_buffer.h"
#include "uarch/config.h"
#include "uarch/stall_account.h"

namespace ch {

class PipeObserver;

/**
 * Per-run sampling estimate (docs/PERFORMANCE.md, "Sampled simulation").
 * Populated only by simulateSampled(); the IPC estimate is the mean of
 * the per-interval measured-window IPCs with a CLT-based 95% confidence
 * interval (stderr = sd/sqrt(n), ci95 = 1.96 * stderr).
 */
struct SampleSummary {
    uint64_t intervals = 0;      ///< measured windows that completed
    uint64_t measuredInsts = 0;  ///< instructions timed and measured
    uint64_t warmupInsts = 0;    ///< instructions timed but unmeasured
    uint64_t warmedInsts = 0;    ///< instructions functionally warmed
    uint64_t shards = 1;         ///< parallel shards merged (1 = serial)
    uint64_t shardWarmInsts = 0; ///< resolved per-shard warming prefix
    double ipcMean = 0.0;
    double ipcStderr = 0.0;
    double ipcCi95 = 0.0;

    /**
     * Host-side per-shard wall times in milliseconds, populated only
     * when shards > 1. Scheduling-dependent, so it surfaces only as
     * host counters (--host-metrics), never in deterministic output.
     */
    std::vector<double> shardWallMs;

    /** Half-width of the 95% CI relative to the mean (0 when n < 2). */
    double
    relErr() const
    {
        return ipcMean > 0.0 ? ipcCi95 / ipcMean : 0.0;
    }
};

/** Outcome of one timed run. */
struct SimResult {
    uint64_t cycles = 0;
    uint64_t insts = 0;
    bool exited = false;
    int64_t exitCode = 0;
    StatGroup stats;

    /** True when this result came from simulateSampled() with sampling
     *  actually engaged; cycles is then an estimate, not a count. */
    bool sampled = false;
    SampleSummary sample;

    double
    ipc() const
    {
        if (sampled)
            return sample.ipcMean;
        return cycles == 0 ? 0.0
                           : static_cast<double>(insts) / cycles;
    }
};

/**
 * One rung of the fidelity ladder: a timing model over the committed
 * stream. Feed instructions through onInst() (or warmInst() for
 * functional-warming-only updates), then call finish() exactly once.
 */
class CoreModel : public TraceSink
{
  public:
    ~CoreModel() override = default;

    /**
     * Update only long-lived microarchitectural state (cache tags,
     * predictors) for one skipped instruction — no timing, no counters.
     * Rungs whose timing is cheap enough may warm by fully timing the
     * instruction instead ("functional+timing warming"; FastSim does).
     */
    virtual void warmInst(const DynInst& di) = 0;

    /**
     * Warming→detailed boundary (sampled simulation): forget any
     * fetch-line filters so the first fetch of a detailed segment
     * performs a real I-cache access.
     */
    virtual void beginDetailedSegment() {}

    /** Complete the run; returns total cycles. Call exactly once. */
    virtual uint64_t finish() = 0;

    virtual uint64_t cycles() const = 0;
    virtual uint64_t instCount() const = 0;
    virtual const StatGroup& stats() const = 0;
    virtual StatGroup& stats() = 0;

    /** Cycles attributed to @p cat so far (sum over cats == cycles()). */
    virtual uint64_t stallCycles(StallCat cat) const = 0;

    /**
     * Attach a (non-owned) stage-schedule observer; nullptr detaches.
     * Only the detailed rung emits stage schedules — the default ignores
     * the observer (drivers reject pipe tracing on other rungs).
     */
    virtual void setPipeObserver(PipeObserver* observer) { (void)observer; }

    /**
     * Drain @p trace through this model and package the outcome — the
     * shared replay boilerplate (replay + finish + result assembly) every
     * rung would otherwise duplicate. Routes the drain through
     * consumeTrace() so a rung can substitute a devirtualized decode
     * loop.
     */
    SimResult replayResult(const TraceBuffer& trace);

    /**
     * Drain @p trace through onInst(); the default decodes through the
     * generic TraceSink path. A `final` rung may override with
     * trace.replayTo(*this) to fuse the decode loop with its onInst —
     * same DynInst sequence, no per-instruction virtual hop (FastSim
     * does; worth ~25% of its replay time).
     */
    virtual void consumeTrace(const TraceBuffer& trace);

    /** Assemble a SimResult from this model's state after finish(). */
    SimResult packageResult(bool exited, int64_t exitCode);
};

/**
 * Construct the selected trace-driven rung. The analytic rung predicts
 * from the static program, not the trace, so it has no trace-driven
 * construction — requesting it here is fatal; use simulateAnalytic()
 * (analyze/analytic_model.h).
 */
std::unique_ptr<CoreModel> makeCoreModel(const MachineConfig& cfg, Isa isa);

} // namespace ch

#endif // CH_UARCH_CORE_MODEL_H
