#ifndef CH_UARCH_PIPE_TRACE_H
#define CH_UARCH_PIPE_TRACE_H

/**
 * @file
 * Per-instruction pipeline tracing for the cycle-level model, emitted in
 * the Kanata format so traces load directly in the Konata viewer (see
 * docs/OBSERVABILITY.md for usage). The core computes each committed
 * instruction's full stage schedule in one onInst() pass; PipeTracer
 * maps those timestamps onto Kanata stage intervals:
 *
 *   F  fetch (3 cycles)          Is scheduler wait
 *   Dc decode (1 cycle)          Ex execute
 *   Rn rename (RISC only)        Wb writeback / payload pipeline
 *   Ds dispatch (stretches       Cm commit wait, ends at retirement
 *      while stalled)
 *
 * The tracer is attached with CycleSim::setPipeTracer() and costs
 * nothing when absent (a single null check per instruction). The model
 * times the committed path only, so every traced instruction retires;
 * Kanata's flush records (R type 1) never appear.
 */

#include <cstdint>
#include <ostream>

#include "trace/dyninst.h"
#include "trace/kanata.h"
#include "uarch/config.h"

namespace ch {

/** Stage timestamps the core hands over per committed instruction. */
struct PipeTimes {
    uint64_t fetch = 0;     ///< first fetch cycle
    uint64_t dispatch = 0;  ///< entered the scheduler
    uint64_t issue = 0;     ///< selected for execution
    uint64_t result = 0;    ///< result available to consumers
    uint64_t complete = 0;  ///< commit-eligible
    uint64_t commit = 0;    ///< retired
};

/**
 * Consumer of per-committed-instruction stage schedules. The Kanata
 * tracer below is one implementation; analysis probes (e.g. the
 * per-loop IPC attribution in bench/fig_static_ipc.cc) are others.
 * Attached with CycleSim::setPipeObserver(); costs one null check per
 * instruction when absent and never changes timing.
 */
class PipeObserver
{
  public:
    virtual ~PipeObserver() = default;

    /** One committed instruction's schedule, in commit order. */
    virtual void onTimedInst(const DynInst& di, const PipeTimes& t) = 0;
};

/** Streams one Kanata record per committed instruction. */
class PipeTracer : public PipeObserver
{
  public:
    /** Trace to @p os; @p cfg/@p isa fix the front-end stage split. */
    PipeTracer(std::ostream& os, Isa isa, const MachineConfig& cfg);

    /** Record one committed instruction's schedule. */
    void onTimedInst(const DynInst& di, const PipeTimes& t) override;

    /** Drain buffered events; call once after the run. */
    void finish();

    uint64_t tracedInsts() const { return traced_; }

  private:
    KanataWriter writer_;
    Isa isa_;
    int renameStages_;      ///< front-end depth beyond the 5-cycle base
    uint64_t traced_ = 0;
};

} // namespace ch

#endif // CH_UARCH_PIPE_TRACE_H
