#ifndef CH_UARCH_CORE_H
#define CH_UARCH_CORE_H

/**
 * @file
 * Cycle-level out-of-order core model in the spirit of Onikiri2. It
 * consumes the committed-path instruction stream from the functional
 * emulator (execution-driven-then-timed) and models:
 *
 *  - front end: fetch-width/taken-branch limits, L1I misses, TAGE + BTB
 *    + RAS prediction with full squash-and-refill penalties whose depth
 *    differs per ISA (RISC renames in 2 extra stages: 7 vs 5 cycles),
 *  - the physical-register-allocation stage: RISC free-list pressure
 *    (PRF = R) vs the rename-free ring allocation of STRAIGHT/Clockhands
 *    (128 + R registers, per-hand quotas and wraparound stalls),
 *  - dispatch with ROB/IQ/LSQ occupancy limits,
 *  - issue with per-class FU counts, issue-width arbitration and a
 *    4-cycle payload/register-read issue pipeline,
 *  - a load/store queue with store-set dependence prediction,
 *    store-to-load forwarding and memory-order-violation replays,
 *  - the L1I/L1D/L2+stream-prefetcher hierarchy, and
 *  - in-order commit bounded by the commit width.
 *
 * Every event of interest increments a named counter in the StatGroup;
 * the energy model (src/energy) consumes those counts. Two observability
 * layers ride on top (docs/OBSERVABILITY.md): a StallAccountant that
 * attributes every simulated cycle to one top-down category (the six
 * stall.* counters sum exactly to sim.cycles), and an optional
 * PipeTracer that writes a Kanata log for the Konata viewer — a single
 * null check per instruction when disabled.
 */

#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "trace/dyninst.h"
#include "uarch/branch_pred.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/core_model.h"
#include "uarch/stall_account.h"
#include "uarch/storeset.h"

namespace ch {

class PipeObserver;

/** Per-cycle resource usage counters over a sliding window. */
class CycleCounts
{
  public:
    explicit CycleCounts(int logSize = 17)
        : mask_((1ull << logSize) - 1), slots_(1ull << logSize)
    {
    }

    uint32_t
    get(uint64_t cycle) const
    {
        const auto& s = slots_[cycle & mask_];
        return s.cycle == cycle ? s.count : 0;
    }

    void
    inc(uint64_t cycle)
    {
        auto& s = slots_[cycle & mask_];
        if (s.cycle != cycle) {
            s.cycle = cycle;
            s.count = 0;
        }
        ++s.count;
    }

  private:
    struct Slot {
        uint64_t cycle = ~0ull;
        uint32_t count = 0;
    };

    uint64_t mask_;
    std::vector<Slot> slots_;
};

/**
 * Departure queue for structures whose entries are pushed with
 * nondecreasing departure cycles (LSQ slots and register windows depart
 * at commit, and commit times are monotone in seq). Under that ordering
 * a FIFO is behaviourally identical to a min-heap — the front is always
 * the minimum — at O(1) per operation instead of an O(log n) sift.
 * pop() on an empty queue is a no-op, so drain loops need no guard.
 */
struct MonoQueue {
    bool empty() const { return data.empty(); }
    size_t size() const { return data.size(); }
    uint64_t top() const { return data.front(); }

    void
    pop()
    {
        if (!data.empty())
            data.pop_front();
    }

    void
    push(uint64_t v)
    {
        CH_DASSERT(data.empty() || v >= data.back(),
                   "MonoQueue pushes must be nondecreasing");
        data.push_back(v);
    }

    std::deque<uint64_t> data;
};

/** The detailed core model (the fidelity ladder's reference rung);
 *  feed it the committed stream, then call finish(). */
class CycleSim : public CoreModel
{
  public:
    CycleSim(const MachineConfig& cfg, Isa isa);

    void onInst(const DynInst& di) override;

    /**
     * Functional warming (docs/PERFORMANCE.md, "Sampled simulation"):
     * update only the long-lived microarchitectural state — L1/L2 cache
     * tags and LRU, TAGE/BTB/RAS — for one skipped instruction, at
     * trace-decode speed. Touches no timing state, no counters, and no
     * stall accounting, so a warmed instruction is invisible everywhere
     * except in the predictor/cache contents the next measured interval
     * starts from.
     */
    void warmInst(const DynInst& di) override;

    /**
     * Warming→detailed boundary: forget the fetch-line filters so the
     * first fetch of a detailed segment performs a real I-cache access
     * instead of riding a line touched megacycles earlier.
     */
    void
    beginDetailedSegment() override
    {
        lastFetchLine_ = ~0ull;
        warmFetchLine_ = ~0ull;
    }

    /** Complete the run; returns total cycles (last commit). */
    uint64_t finish() override;

    uint64_t cycles() const override { return lastCommit_; }
    uint64_t instCount() const override { return seq_; }
    const StatGroup& stats() const override { return stats_; }
    StatGroup& stats() override { return stats_; }

    uint64_t
    stallCycles(StallCat cat) const override
    {
        return stalls_.category(cat);
    }

    /**
     * Attach a (non-owned) stage-schedule observer (Kanata tracer,
     * analysis probe, ...); nullptr detaches. Observers only see the
     * computed timestamps — attaching one never changes cycles or any
     * deterministic statistic.
     */
    void setPipeObserver(PipeObserver* observer) override
    {
        tracer_ = observer;
    }

    /** Back-compat alias for setPipeObserver(). */
    void setPipeTracer(PipeObserver* tracer) { tracer_ = tracer; }

    /** The per-cycle stall attribution accumulated so far. */
    const StallAccountant& stallAccount() const { return stalls_; }

  private:
    struct RingU64 {
        explicit RingU64(size_t n) : mask(n - 1), data(n, 0) {}
        uint64_t get(uint64_t seq) const { return data[seq & mask]; }
        void set(uint64_t seq, uint64_t v) { data[seq & mask] = v; }
        size_t mask;
        std::vector<uint64_t> data;
    };

    struct StoreRec {
        uint64_t seq;
        uint64_t pc;
        uint64_t addr;
        uint32_t size;
        uint64_t dataReady;
        uint64_t commit;
        uint32_t setId;
    };

    int fuLatency(OpClass cls) const;
    int fuPoolLimit(OpClass cls) const;
    int fuPoolId(OpClass cls) const;

    uint64_t stageFetch(const DynInst& di);
    uint64_t stageDispatch(const DynInst& di, uint64_t fetchCycle);
    void handleBranchPrediction(const DynInst& di, uint64_t resolveCycle);

    /**
     * Hot-path counter accessor: resolves the name once and caches the
     * pointer (StatGroup's map nodes are stable). Binding lazily keeps
     * the reported counter set identical to on-demand registration — a
     * counter whose event never fires is never created, so the metrics
     * files stay byte-identical.
     */
    Counter&
    hot(Counter*& slot, const char* name)
    {
        if (slot == nullptr)
            slot = &stats_.counter(name);
        return *slot;
    }

    /** Earliest cycle >= @p from with a free issue slot + FU of @p pool. */
    uint64_t arbitrate(int pool, int limit, uint64_t from);

    const MachineConfig cfg_;
    Isa isa_;
    StatGroup stats_;

    Tage tage_;
    Btb btb_;
    Ras ras_;
    MemoryHierarchy mem_;
    StoreSets storeSets_;

    // Front-end state.
    uint64_t fetchCycle_ = 1;
    int fetchedThisCycle_ = 0;
    uint64_t lastFetchLine_ = ~0ull;
    uint64_t redirectAt_ = 0;  ///< earliest fetch cycle after a squash
    uint64_t lastRedirect_ = 0;  ///< fetch cycle of the last squash refill
    uint64_t warmFetchLine_ = ~0ull;  ///< warming-pass I-side line filter

    // Per-instruction timestamp rings.
    uint64_t seq_ = 0;
    RingU64 readyForUse_;   ///< producer result usable by consumers
    RingU64 complete_;      ///< fully complete (commit-eligible)
    RingU64 commit_;
    RingU64 resultFromMiss_;  ///< 1 if the result waited on a D$ miss
    RingU64 producedValue_;   ///< 1 if the producer wrote a real value

    // Observability (docs/OBSERVABILITY.md).
    PipeObserver* tracer_ = nullptr;
    StallAccountant stalls_;
    // Per-instruction stall causes, filled by the stage helpers.
    bool curSquashDelayed_ = false;   ///< fetch waited on a redirect
    bool curIcacheDelayed_ = false;   ///< fetch waited on an I$ miss
    bool curDispatchMem_ = false;     ///< dispatch stall dominated by LSQ

    uint64_t lastCommit_ = 0;
    uint64_t lastDispatch_ = 0;

    // Structural occupancy: queues of departure cycles.
    using MinHeap = std::priority_queue<uint64_t, std::vector<uint64_t>,
                                        std::greater<uint64_t>>;

    MinHeap iq_;  ///< freed at issue — issue cycles are not monotone
    MonoQueue loadQ_;
    MonoQueue storeQ_;
    MonoQueue physRegs_;               ///< RISC free-list pressure
    std::array<MonoQueue, kNumHands> handRegs_;  ///< ring quotas
    MonoQueue ringRegs_;               ///< STRAIGHT unified ring

    // Issue arbitration.
    CycleCounts issueSlots_;
    std::array<CycleCounts, 7> fuSlots_;

    // In-flight stores (newest at back).
    std::deque<StoreRec> stores_;
    std::unordered_map<uint32_t, uint64_t> lastStoreOfSet_;

    // Dependent-commit bookkeeping.
    std::deque<uint64_t> recentCommits_;  ///< last commitWidth commits

    // Cached per-instruction counters (see hot()).
    Counter* cFetchInsts_ = nullptr;
    Counter* cDispatchInsts_ = nullptr;
    Counter* cRenameDstWrites_ = nullptr;
    Counter* cRenameCheckpoints_ = nullptr;
    Counter* cStallFreeList_ = nullptr;
    Counter* cStallDistanceWindow_ = nullptr;
    Counter* cBranchConds_ = nullptr;
    Counter* cBranchMispredicts_ = nullptr;
    Counter* cBranchBtbMisses_ = nullptr;
    Counter* cFetchWrongPath_ = nullptr;
    Counter* cIqWakeups_ = nullptr;
    Counter* cRfReads_ = nullptr;
    Counter* cRfWrites_ = nullptr;
    Counter* cReadJunkSlots_ = nullptr;
    Counter* cIqIssues_ = nullptr;
    Counter* cFuOps_ = nullptr;
    Counter* cRobCommits_ = nullptr;
    Counter* cLsqLoads_ = nullptr;
    Counter* cLsqStores_ = nullptr;
    Counter* cLsqSearches_ = nullptr;
    Counter* cLsqForwards_ = nullptr;
    Counter* cLsqViolations_ = nullptr;
    std::array<Counter*, kNumHands> cHandWrites_{};
    std::array<Counter*, kNumHands> cHandReads_{};
};

} // namespace ch

#endif // CH_UARCH_CORE_H
