#include "uarch/stall_account.h"

#include <algorithm>

namespace ch {

const char*
stallCatCounterName(int cat)
{
    switch (static_cast<StallCat>(cat)) {
      case StallCat::Retiring: return "stall.retiring";
      case StallCat::FrontendLatency: return "stall.frontendLatency";
      case StallCat::FrontendBandwidth: return "stall.frontendBandwidth";
      case StallCat::BadSpeculation: return "stall.badSpeculation";
      case StallCat::BackendMemory: return "stall.backendMemory";
      case StallCat::BackendCore: return "stall.backendCore";
    }
    return "stall.unknown";
}

void
StallAccountant::onCommit(uint64_t commit, const StallCauses& c)
{
    if (commit <= accounted_)
        return;  // later commit in a same-cycle group

    // Gap cycles are [accounted_+1, commit-1]; the commit cycle itself
    // is retiring. Consume the gap region by region — the boundaries are
    // ordered (frontEntry <= dispatch < issue+1 <= result+1 <= commit),
    // so each cycle lands in exactly one category and the sum of all
    // additions is exactly commit - accounted_.
    uint64_t lo = accounted_ + 1;
    auto seg = [&](uint64_t bound, StallCat cat) {
        const uint64_t end = std::min(bound, commit);
        if (lo < end) {
            cats_[static_cast<int>(cat)] += end - lo;
            lo = end;
        }
    };
    const StallCat frontCat = c.squashDelayed ? StallCat::BadSpeculation
                              : c.icacheDelayed
                                  ? StallCat::FrontendLatency
                                  : StallCat::FrontendBandwidth;
    seg(c.frontEntry, frontCat);
    seg(c.dispatch, c.dispatchMem ? StallCat::BackendMemory
                                  : StallCat::BackendCore);
    seg(c.issue + 1, c.waitMem ? StallCat::BackendMemory
                               : StallCat::BackendCore);
    seg(c.result + 1, c.execMem ? StallCat::BackendMemory
                                : StallCat::BackendCore);
    seg(commit, StallCat::BackendCore);  // writeback/commit drain

    cats_[static_cast<int>(StallCat::Retiring)] += 1;
    accounted_ = commit;
}

uint64_t
StallAccountant::total() const
{
    uint64_t sum = 0;
    for (uint64_t v : cats_)
        sum += v;
    return sum;
}

void
StallAccountant::exportInto(StatGroup& stats) const
{
    for (int i = 0; i < kNumStallCats; ++i)
        stats.counter(stallCatCounterName(i)).set(cats_[i]);
}

} // namespace ch
