#ifndef CH_UARCH_CACHE_H
#define CH_UARCH_CACHE_H

/**
 * @file
 * Set-associative LRU caches and the two-level hierarchy used by the
 * cycle-level model (Table 2): 128 KiB L1I and L1D, a shared 8 MiB L2
 * with a stream prefetcher (distance 8, degree 2), and flat-latency main
 * memory.
 */

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "uarch/config.h"

namespace ch {

/** One set-associative cache level (tag/LRU state only). */
class Cache
{
  public:
    Cache(int sizeKiB, int ways, int lineBytes);

    /** Access a line; returns true on hit and updates LRU / fills. */
    bool access(uint64_t addr);

    /** Fill without an access (prefetch). Returns true if newly filled. */
    bool fill(uint64_t addr);

    /** True when the line is present (no LRU update). */
    bool probe(uint64_t addr) const;

  private:
    /**
     * (tag << kLruBits) | lru packed in one word, so an 8-way set spans
     * a single host cache line (16-way: two) instead of two (four) —
     * the tag arrays of a large modeled L2 far exceed the host L1, and
     * the way scan is the hot loop of every model access. The all-ones
     * reset word decodes to a tag no real address reaches.
     */
    struct Line {
        uint64_t word = ~0ull;
    };

    static constexpr int kLruBits = 5;   ///< ways <= 32
    static constexpr uint64_t kLruMask = (1u << kLruBits) - 1;

    size_t lineIndex(uint64_t addr, int* setOut) const;

    int sets_;
    int ways_;
    int lineShift_;
    std::vector<Line> lines_;
};

/** Simple stream prefetcher (Srinath-style distance/degree). */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(int distance, int degree, int lineBytes);

    /** Observe a demand miss; returns lines to prefetch. */
    std::vector<uint64_t> onMiss(uint64_t addr);

  private:
    struct Stream {
        uint64_t lastLine = 0;
        int dir = 0;
        int confidence = 0;
    };

    int distance_;
    int degree_;
    int lineShift_;
    std::vector<Stream> streams_;
};

/** The full hierarchy: returns access latency and counts events. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const MachineConfig& cfg, StatGroup* stats);

    /** Instruction-fetch access latency for the line at @p pc. */
    int fetchAccess(uint64_t pc);

    /** Data access latency (loads and committed stores). */
    int dataAccess(uint64_t addr, bool isStore);

    /**
     * Functional-warming accesses (docs/PERFORMANCE.md): update tags,
     * LRU state, and the prefetcher exactly like the timed paths, but
     * touch no latency bookkeeping and no counters, so warming skipped
     * instructions never shows up in any reported statistic.
     */
    void warmFetch(uint64_t pc);
    void warmData(uint64_t addr);

  private:
    int sharedAccess(uint64_t addr);  ///< L2 + memory + prefetch
    void warmShared(uint64_t addr);   ///< counter-free sharedAccess

    /**
     * Per-access counter, resolved once and cached (StatGroup map nodes
     * are stable; lazy binding keeps the reported counter set — and so
     * the metrics bytes — identical to on-demand registration).
     */
    Counter&
    hot(Counter*& slot, const char* name)
    {
        if (slot == nullptr)
            slot = &stats_->counter(name);
        return *slot;
    }

    const MachineConfig& cfg_;
    StatGroup* stats_;
    Counter* cL2Accesses_ = nullptr;
    Counter* cL2Misses_ = nullptr;
    Counter* cL2Prefetches_ = nullptr;
    Counter* cL1iAccesses_ = nullptr;
    Counter* cL1iMisses_ = nullptr;
    Counter* cL1dReads_ = nullptr;
    Counter* cL1dWrites_ = nullptr;
    Counter* cL1dMisses_ = nullptr;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    StreamPrefetcher prefetcher_;
};

} // namespace ch

#endif // CH_UARCH_CACHE_H
