#include "uarch/core.h"

#include "common/bitutil.h"
#include "common/logging.h"
#include "uarch/pipe_trace.h"

namespace ch {

namespace {

/** Smallest power of two >= n. */
size_t
pow2At(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Per-hand counter names, indexed by Hand (avoids hot-path concat). */
constexpr const char* kHandWriteCounter[kNumHands] = {
    "hand.t.writes", "hand.u.writes", "hand.v.writes", "hand.s.writes",
};
constexpr const char* kHandReadCounter[kNumHands] = {
    "hand.t.reads", "hand.u.reads", "hand.v.reads", "hand.s.reads",
};

} // namespace

CycleSim::CycleSim(const MachineConfig& cfg, Isa isa)
    : cfg_(cfg),
      isa_(isa),
      btb_(cfg.btbEntries, cfg.btbWays),
      ras_(cfg.rasEntries),
      mem_(cfg_, &stats_),
      storeSets_(cfg.ssitEntries, cfg.lfstEntries),
      readyForUse_(pow2At(cfg.robSize * 2)),
      complete_(pow2At(cfg.robSize * 2)),
      commit_(pow2At(cfg.robSize * 2)),
      resultFromMiss_(pow2At(cfg.robSize * 2)),
      producedValue_(pow2At(cfg.robSize * 2))
{
}

int
CycleSim::fuLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu: return cfg_.latIntAlu;
      case OpClass::Move: return cfg_.latMove;
      case OpClass::Nop: return cfg_.latMove;
      case OpClass::Syscall: return cfg_.latIntAlu;
      case OpClass::IntMul: return cfg_.latIntMul;
      case OpClass::IntDiv: return cfg_.latIntDiv;
      case OpClass::FpAlu: return cfg_.latFpAlu;
      case OpClass::FpDiv: return cfg_.latFpDiv;
      case OpClass::CondBr:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Ret: return cfg_.latBranch;
      case OpClass::Store: return cfg_.latStoreAgu;
      case OpClass::Load: return 1;  // AGU; cache latency added separately
    }
    return 1;
}

int
CycleSim::fuPoolId(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntMul: return 1;
      case OpClass::IntDiv: return 2;
      case OpClass::FpAlu: return 3;
      case OpClass::FpDiv: return 4;
      case OpClass::Load: return 5;
      case OpClass::Store: return 6;
      default: return 0;  // integer ALU pool (incl. branches, moves)
    }
}

int
CycleSim::fuPoolLimit(OpClass cls) const
{
    switch (fuPoolId(cls)) {
      case 1: return cfg_.fu.iMul;
      case 2: return cfg_.fu.iDiv;
      case 3: return cfg_.fu.fp;
      case 4: return cfg_.fu.fDiv;
      case 5: return cfg_.fu.load;
      case 6: return cfg_.fu.store;
      default: return cfg_.fu.intAlu;
    }
}

uint64_t
CycleSim::arbitrate(int pool, int limit, uint64_t from)
{
    uint64_t c = from;
    while (static_cast<int>(fuSlots_[pool].get(c)) >= limit ||
           static_cast<int>(issueSlots_.get(c)) >= cfg_.issueWidth) {
        ++c;
    }
    fuSlots_[pool].inc(c);
    issueSlots_.inc(c);
    return c;
}

uint64_t
CycleSim::stageFetch(const DynInst& di)
{
    curIcacheDelayed_ = false;

    // Respect redirects (squashes) and per-cycle fetch bandwidth.
    if (fetchCycle_ < redirectAt_) {
        fetchCycle_ = redirectAt_;
        fetchedThisCycle_ = 0;
        lastFetchLine_ = ~0ull;
        lastRedirect_ = redirectAt_;
    }
    if (fetchedThisCycle_ >= cfg_.fetchWidth) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
    }

    // Instruction cache: one tag access per new line touched.
    const uint64_t line = di.pc / cfg_.lineBytes;
    if (line != lastFetchLine_) {
        const int lat = mem_.fetchAccess(di.pc);
        if (lat > cfg_.l1iLatency) {
            fetchCycle_ += lat - cfg_.l1iLatency;
            fetchedThisCycle_ = 0;
            curIcacheDelayed_ = true;
        }
        lastFetchLine_ = line;
    }

    const uint64_t cycle = fetchCycle_;
    // The whole refill group after a squash is speculation-delayed; the
    // I-cache flag wins only when the miss pushed fetch past the refill.
    curSquashDelayed_ = cycle == lastRedirect_ && lastRedirect_ != 0;
    if (curSquashDelayed_)
        curIcacheDelayed_ = false;
    ++fetchedThisCycle_;
    ++hot(cFetchInsts_, "fetch.insts");

    // A taken control transfer ends the fetch group.
    if (di.info().isBranch() && di.taken) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
        lastFetchLine_ = ~0ull;
    }
    return cycle;
}

uint64_t
CycleSim::stageDispatch(const DynInst& di, uint64_t fetchCycle)
{
    const OpInfo& info = di.info();
    uint64_t c = fetchCycle + cfg_.frontendDepth(isa_);
    if (c < lastDispatch_)
        c = lastDispatch_;  // in-order dispatch

    // ROB slot: the (seq - R)-th instruction must have committed.
    uint64_t coreDelay = 0;
    if (seq_ >= static_cast<uint64_t>(cfg_.robSize)) {
        const uint64_t freer = commit_.get(seq_ - cfg_.robSize) + 1;
        if (c < freer) {
            coreDelay += freer - c;
            c = freer;
        }
    }

    // Each constraint reports how far it pushed dispatch, so the stall
    // accounting can tell memory-side pressure (LQ/SQ) from core-side
    // pressure (ROB/IQ) and register-window pressure apart.
    auto queueConstraint = [&](auto& q, int cap) -> uint64_t {
        const uint64_t before = c;
        while (!q.empty() && q.top() <= c)
            q.pop();
        while (static_cast<int>(q.size()) >= cap) {
            if (c < q.top())
                c = q.top();
            q.pop();
        }
        return c - before;
    };

    // Scheduler entry (freed at issue).
    coreDelay += queueConstraint(iq_, cfg_.schedSize);
    // LSQ entries (freed at commit).
    uint64_t memDelay = 0;
    if (info.isLoad())
        memDelay += queueConstraint(loadQ_, cfg_.loadQueue);
    if (info.isStore())
        memDelay += queueConstraint(storeQ_, cfg_.storeQueue);

    // Physical register allocation.
    uint64_t regDelay = 0;
    const bool allocates =
        isa_ == Isa::Straight ? true : info.hasDst;
    if (allocates) {
        switch (isa_) {
          case Isa::Riscv:
            // Free list: PRF (= R) minus the 64 architectural mappings.
            regDelay = queueConstraint(physRegs_, cfg_.physRegsRisc() - 64);
            if (regDelay)
                hot(cStallFreeList_, "stall.freeList") += regDelay;
            ++hot(cRenameDstWrites_, "rename.dstWrites");
            break;
          case Isa::Straight:
            // Ring wraparound: stall within maxdist of the oldest RP.
            regDelay = queueConstraint(ringRegs_,
                                       cfg_.physRegsRenameFree() - 128);
            if (regDelay)
                hot(cStallDistanceWindow_, "stall.distanceWindow") += regDelay;
            ++hot(cRenameDstWrites_, "rename.dstWrites");
            break;
          case Isa::Clockhands:
            regDelay = queueConstraint(handRegs_[di.dst],
                                       cfg_.handQuota(di.dst) - kHandDepth);
            if (regDelay)
                hot(cStallDistanceWindow_, "stall.distanceWindow") += regDelay;
            ++hot(cRenameDstWrites_, "rename.dstWrites");
            ++hot(cHandWrites_[di.dst], kHandWriteCounter[di.dst]);
            break;
        }
    }
    curDispatchMem_ = memDelay > coreDelay + regDelay;
    lastDispatch_ = c;
    ++hot(cDispatchInsts_, "dispatch.insts");
    if (info.isBranch())
        ++hot(cRenameCheckpoints_, "rename.checkpoints");
    return c;
}

void
CycleSim::handleBranchPrediction(const DynInst& di, uint64_t resolveCycle)
{
    const OpInfo& info = di.info();
    bool mispredict = false;

    switch (info.brKind) {
      case BrKind::Cond: {
        ++hot(cBranchConds_, "branch.conds");
        const bool pred = tage_.predict(di.pc);
        tage_.update(di.pc, di.taken);
        if (pred != di.taken) {
            mispredict = true;
            ++hot(cBranchMispredicts_, "branch.mispredicts");
        } else if (di.taken && btb_.lookup(di.pc) != di.nextPc) {
            // Correct direction but no target: redirect from decode.
            btb_.insert(di.pc, di.nextPc);
            ++hot(cBranchBtbMisses_, "branch.btbMisses");
            redirectAt_ = std::max(redirectAt_, fetchCycle_ + 3);
        }
        break;
      }
      case BrKind::Jump:
        // Direct target; BTB learns it, penalty only on first sight.
        if (btb_.lookup(di.pc) != di.nextPc) {
            btb_.insert(di.pc, di.nextPc);
            ++hot(cBranchBtbMisses_, "branch.btbMisses");
            redirectAt_ = std::max(redirectAt_, fetchCycle_ + 3);
        }
        break;
      case BrKind::Call:
        ras_.push(di.pc + 4);
        if (btb_.lookup(di.pc) != di.nextPc) {
            btb_.insert(di.pc, di.nextPc);
            ++hot(cBranchBtbMisses_, "branch.btbMisses");
            redirectAt_ = std::max(redirectAt_, fetchCycle_ + 3);
        }
        break;
      case BrKind::IndCall: {
        ras_.push(di.pc + 4);
        const uint64_t pred = btb_.lookup(di.pc);
        btb_.insert(di.pc, di.nextPc);
        if (pred != di.nextPc) {
            mispredict = true;
            ++hot(cBranchMispredicts_, "branch.mispredicts");
        }
        break;
      }
      case BrKind::Ret: {
        const uint64_t pred = ras_.pop();
        if (pred != di.nextPc) {
            mispredict = true;
            ++hot(cBranchMispredicts_, "branch.mispredicts");
        }
        break;
      }
      case BrKind::None:
        return;
    }

    if (mispredict) {
        redirectAt_ = std::max(redirectAt_, resolveCycle + 1);
        // Wrong-path activity estimate for the energy model: the front
        // end keeps fetching for roughly its own depth before the squash.
        hot(cFetchWrongPath_, "fetch.wrongPath") +=
            static_cast<uint64_t>(cfg_.frontendDepth(isa_)) *
            cfg_.fetchWidth / 2;
    }
}

void
CycleSim::warmInst(const DynInst& di)
{
    const OpInfo& info = di.info();

    // I-side: one tag touch per new line, like stageFetch.
    const uint64_t line = di.pc / cfg_.lineBytes;
    if (line != warmFetchLine_) {
        mem_.warmFetch(di.pc);
        warmFetchLine_ = line;
    }
    if (info.isBranch() && di.taken)
        warmFetchLine_ = ~0ull;

    // Predictors: same training as handleBranchPrediction, no outcome
    // bookkeeping and no redirects.
    switch (info.brKind) {
      case BrKind::Cond:
        tage_.update(di.pc, di.taken);
        if (di.taken && btb_.lookup(di.pc) != di.nextPc)
            btb_.insert(di.pc, di.nextPc);
        break;
      case BrKind::Jump:
        if (btb_.lookup(di.pc) != di.nextPc)
            btb_.insert(di.pc, di.nextPc);
        break;
      case BrKind::Call:
        ras_.push(di.pc + 4);
        if (btb_.lookup(di.pc) != di.nextPc)
            btb_.insert(di.pc, di.nextPc);
        break;
      case BrKind::IndCall:
        ras_.push(di.pc + 4);
        btb_.insert(di.pc, di.nextPc);
        break;
      case BrKind::Ret:
        ras_.pop();
        break;
      case BrKind::None:
        break;
    }

    // D-side: tags, LRU and prefetcher streams.
    if (info.isLoad() || info.isStore())
        mem_.warmData(di.memAddr);
}

void
CycleSim::onInst(const DynInst& di)
{
    const OpInfo& info = di.info();
    CH_ASSERT(di.seq == seq_, "trace sequence gap");
    const uint64_t fetchCycle = stageFetch(di);
    const uint64_t dispatch = stageDispatch(di, fetchCycle);

    // Operand readiness via producer timestamps. Remember whether the
    // binding (latest) producer was itself delayed by a D$ miss, so the
    // stall accountant can attribute the operand wait to memory.
    uint64_t ready = dispatch + 1;
    bool waitMem = false;
    auto needProducer = [&](uint64_t prod) {
        if (prod == kNoProducer)
            return;
        if (seq_ - prod < readyForUse_.mask) {
            const uint64_t r = readyForUse_.get(prod);
            if (r > ready) {
                ready = r;
                waitMem = resultFromMiss_.get(prod) != 0;
            }
        }
        ++hot(cIqWakeups_, "iq.wakeups");
    };
    if (info.numSrcs >= 1)
        needProducer(di.prod1);
    if (info.numSrcs >= 2)
        needProducer(di.prod2);
    hot(cRfReads_, "rf.reads") += info.numSrcs;

    // Read-quality counters for the rename-free ISAs: which hand each
    // Clockhands read targets, and how many reads hit "junk" slots —
    // ring slots whose writer carried no real value (STRAIGHT allocates
    // a slot for every instruction) or slots never written at all. The
    // architectural zero and SP encodings are not junk by definition
    // (Clockhands folds both into the s hand: s[15] is zero and the
    // initial SP is pre-written into s[0] with no dynamic producer).
    if (isa_ != Isa::Riscv) {
        auto classifyRead = [&](uint64_t prod, uint8_t hand, uint8_t enc) {
            if (isa_ == Isa::Clockhands && hand < kNumHands)
                ++hot(cHandReads_[hand], kHandReadCounter[hand]);
            bool junk = false;
            if (prod == kNoProducer) {
                if (isa_ == Isa::Clockhands)
                    junk = hand != HandS;
                else
                    junk = enc != kStraightZeroDist &&
                           enc != kStraightSpBase;
            } else if (seq_ - prod < producedValue_.mask) {
                junk = producedValue_.get(prod) == 0;
            }
            if (junk)
                ++hot(cReadJunkSlots_, "read.junkSlots");
        };
        if (info.numSrcs >= 1)
            classifyRead(di.prod1, di.src1Hand, di.src1);
        if (info.numSrcs >= 2)
            classifyRead(di.prod2, di.src2Hand, di.src2);
    }

    // Store-set dependence prediction: a load predicted dependent waits
    // for the youngest in-flight store of its set.
    uint64_t predictedWait = 0;
    const StoreRec* violator = nullptr;
    if (info.isLoad()) {
        ++hot(cLsqLoads_, "lsq.loads");
        const uint32_t setId = storeSets_.setOf(di.pc);
        if (setId != StoreSets::kInvalid) {
            auto it = lastStoreOfSet_.find(setId);
            if (it != lastStoreOfSet_.end()) {
                for (auto rit = stores_.rbegin(); rit != stores_.rend();
                     ++rit) {
                    if (rit->seq == it->second) {
                        predictedWait = rit->dataReady;
                        break;
                    }
                }
            }
        }
        if (predictedWait > ready)
            ready = predictedWait;
    }

    // Issue: FU pool + issue-width arbitration.
    const int pool = fuPoolId(info.cls);
    const uint64_t issue = arbitrate(pool, fuPoolLimit(info.cls), ready);
    iq_.push(issue);
    ++hot(cIqIssues_, "iq.issues");
    hot(cFuOps_, "fu.ops") += 1;

    // Execute.
    uint64_t resultAt = issue + fuLatency(info.cls);
    bool execMem = false;
    if (info.isLoad()) {
        ++hot(cLsqSearches_, "lsq.searches");
        // Search older in-flight stores for an overlap.
        const StoreRec* match = nullptr;
        for (auto rit = stores_.rbegin(); rit != stores_.rend(); ++rit) {
            if (rit->commit <= issue)
                continue;  // already left the store queue
            const uint64_t a0 = std::max(rit->addr, di.memAddr);
            const uint64_t a1 = std::min(rit->addr + rit->size,
                                         di.memAddr + info.memBytes);
            if (a0 < a1) {
                match = &*rit;
                break;
            }
        }
        if (match && match->dataReady <= issue) {
            // Store-to-load forwarding.
            resultAt = issue + cfg_.latForward;
            ++hot(cLsqForwards_, "lsq.forwards");
        } else if (match && match->dataReady > issue &&
                   predictedWait < match->dataReady) {
            // Memory-order violation: replay after the store resolves.
            violator = match;
            resultAt = match->dataReady + cfg_.latForward +
                       cfg_.replayPenalty;
            execMem = true;
            ++hot(cLsqViolations_, "lsq.violations");
            storeSets_.train(di.pc, match->pc);
        } else {
            const int dlat = mem_.dataAccess(di.memAddr, false);
            resultAt = issue + 1 + dlat;
            execMem = dlat > cfg_.l1dLatency;
        }
        (void)violator;
    }
    if (predictedWait > dispatch + 1 && predictedWait >= ready)
        waitMem = true;  // store-set wait bound the issue cycle

    const uint64_t readyForUse = resultAt;
    const uint64_t complete = resultAt + cfg_.issueLatency;

    // Branch resolution & prediction outcome.
    handleBranchPrediction(di, complete);

    // In-order commit, bounded by commit width.
    uint64_t commit = complete + 1;
    if (seq_ > 0)
        commit = std::max(commit, commit_.get(seq_ - 1));
    if (seq_ >= static_cast<uint64_t>(cfg_.commitWidth)) {
        commit = std::max(commit,
                          commit_.get(seq_ - cfg_.commitWidth) + 1);
    }

    readyForUse_.set(seq_, readyForUse);
    complete_.set(seq_, complete);
    commit_.set(seq_, commit);
    resultFromMiss_.set(seq_, (execMem || waitMem) ? 1 : 0);
    producedValue_.set(seq_, info.hasDst ? 1 : 0);
    lastCommit_ = commit;
    ++hot(cRobCommits_, "rob.commits");
    if (info.hasDst)
        ++hot(cRfWrites_, "rf.writes");

    // Per-cycle stall attribution (docs/OBSERVABILITY.md).
    StallCauses sc;
    sc.frontEntry = fetchCycle + cfg_.frontendDepth(isa_);
    sc.dispatch = dispatch;
    sc.issue = issue;
    sc.result = resultAt;
    sc.squashDelayed = curSquashDelayed_;
    sc.icacheDelayed = curIcacheDelayed_;
    sc.dispatchMem = curDispatchMem_;
    sc.waitMem = waitMem;
    sc.execMem = execMem;
    stalls_.onCommit(commit, sc);

    if (tracer_) {
        tracer_->onTimedInst(
            di, PipeTimes{fetchCycle, dispatch, issue, resultAt,
                          complete, commit});
    }

    // Structure departures.
    if (info.isLoad())
        loadQ_.push(commit);
    if (info.isStore()) {
        ++stats_.counter("lsq.stores");
        storeQ_.push(commit);
        StoreRec rec;
        rec.seq = seq_;
        rec.pc = di.pc;
        rec.addr = di.memAddr;
        rec.size = info.memBytes;
        rec.dataReady = resultAt;
        rec.commit = commit;
        rec.setId = storeSets_.setOf(di.pc);
        if (rec.setId != StoreSets::kInvalid)
            lastStoreOfSet_[rec.setId] = seq_;
        stores_.push_back(rec);
        if (stores_.size() > static_cast<size_t>(cfg_.storeQueue))
            stores_.pop_front();
        // The store writes the data cache when it retires.
        mem_.dataAccess(di.memAddr, true);
    }
    const bool allocates = isa_ == Isa::Straight ? true : info.hasDst;
    if (allocates) {
        switch (isa_) {
          case Isa::Riscv: physRegs_.push(commit); break;
          case Isa::Straight: ringRegs_.push(commit); break;
          case Isa::Clockhands: handRegs_[di.dst].push(commit); break;
        }
    }

    ++seq_;
}

uint64_t
CycleSim::finish()
{
    stats_.counter("sim.cycles").set(lastCommit_);
    stats_.counter("sim.insts").set(seq_);
    stalls_.exportInto(stats_);
    CH_ASSERT(stalls_.total() == lastCommit_,
              "stall categories must sum to total cycles");
    return lastCommit_;
}

} // namespace ch
