#include "uarch/branch_pred.h"

#include "common/bitutil.h"

namespace ch {

// ---------------------------------------------------------------------
// TAGE
// ---------------------------------------------------------------------

Tage::Tage()
    : base_(1 << kBaseBits, 0),
      histLen_{4, 8, 16, 32, 64, 96, 130}
{
    for (auto& t : tables_)
        t.assign(1 << kIdxBits, Entry{});
}

uint64_t
Tage::fold9(int table) const
{
    static_assert(kIdxBits == kTagBits,
                  "index and tag share one folded value per table");
    if (!(foldValid_ & (1u << table))) {
        foldCache_[table] = history_.fold(histLen_[table], kIdxBits);
        foldValid_ |= static_cast<uint8_t>(1u << table);
    }
    return foldCache_[table];
}

int
Tage::index(uint64_t pc, int table) const
{
    const uint64_t folded = fold9(table);
    return static_cast<int>(
        ((pc >> 2) ^ (pc >> (kIdxBits + 2)) ^ folded ^
         static_cast<uint64_t>(table) * 0x9e3779b9u) &
        ((1u << kIdxBits) - 1));
}

uint16_t
Tage::tag(uint64_t pc, int table) const
{
    const uint64_t folded = fold9(table);
    return static_cast<uint16_t>(
        ((pc >> 2) ^ (pc >> (kTagBits + 2)) ^ (folded << 1) ^
         static_cast<uint64_t>(table) * 0x45d9f3bu) &
        ((1u << kTagBits) - 1));
}

Tage::Lookup
Tage::look(uint64_t pc) const
{
    Lookup lk;
    const int baseIdx =
        static_cast<int>((pc >> 2) & ((1u << kBaseBits) - 1));
    lk.pred = base_[baseIdx] >= 0;
    lk.altPred = lk.pred;
    for (int t = kTables - 1; t >= 0; --t) {
        const int idx = index(pc, t);
        if (tables_[t][idx].tag == tag(pc, t)) {
            if (lk.provider < 0) {
                lk.provider = t;
                lk.providerIdx = idx;
                lk.altPred = lk.pred;
                lk.pred = tables_[t][idx].ctr >= 0;
            } else {
                lk.altPred = tables_[t][idx].ctr >= 0;
                break;
            }
        }
    }
    return lk;
}

bool
Tage::predict(uint64_t pc)
{
    return look(pc).pred;
}

void
Tage::update(uint64_t pc, bool taken)
{
    observe(pc, taken);
}

bool
Tage::observe(uint64_t pc, bool taken)
{
    Lookup lk = look(pc);
    const int baseIdx =
        static_cast<int>((pc >> 2) & ((1u << kBaseBits) - 1));

    auto bump = [](int8_t& ctr, bool up, int lo, int hi) {
        if (up && ctr < hi)
            ++ctr;
        else if (!up && ctr > lo)
            --ctr;
    };

    if (lk.provider >= 0) {
        Entry& e = tables_[lk.provider][lk.providerIdx];
        bump(e.ctr, taken, -4, 3);
        if (lk.pred != lk.altPred) {
            if (lk.pred == taken && e.useful < 3)
                ++e.useful;
            else if (lk.pred != taken && e.useful > 0)
                --e.useful;
        }
    } else {
        bump(base_[baseIdx], taken, -2, 1);
    }

    // Allocate a longer-history entry on a misprediction.
    if (lk.pred != taken && lk.provider < kTables - 1) {
        rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
        const int start = lk.provider + 1;
        bool allocated = false;
        for (int t = start; t < kTables && !allocated; ++t) {
            const int idx = index(pc, t);
            Entry& e = tables_[t][idx];
            if (e.useful == 0) {
                e.tag = tag(pc, t);
                e.ctr = taken ? 0 : -1;
                allocated = true;
            }
        }
        if (!allocated) {
            // Decay a useful bit somewhere to make room eventually.
            const int t = start + static_cast<int>((rng_ >> 33) %
                                                   (kTables - start));
            const int idx = index(pc, t);
            if (tables_[t][idx].useful > 0)
                --tables_[t][idx].useful;
        }
    }

    history_.push(taken);
    foldValid_ = 0;
    return lk.pred;
}

// ---------------------------------------------------------------------
// BTB
// ---------------------------------------------------------------------

Btb::Btb(int entries, int ways)
    : sets_(entries / ways),
      ways_(ways),
      setMask_((sets_ & (sets_ - 1)) == 0
                   ? static_cast<uint64_t>(sets_ - 1)
                   : 0),
      entries_(entries)
{
    // Unique LRU ranks per set (0 = MRU .. ways-1 = LRU victim).
    for (int set = 0; set < sets_; ++set) {
        for (int w = 0; w < ways_; ++w)
            entries_[static_cast<size_t>(set) * ways_ + w].lru =
                static_cast<uint8_t>(w);
    }
}

// Same set for either path; the mask just avoids a hardware divide on
// the (universal in practice) power-of-two geometry.
int
Btb::set(uint64_t pc) const
{
    return setMask_ ? static_cast<int>((pc >> 2) & setMask_)
                    : static_cast<int>((pc >> 2) % sets_);
}

uint64_t
Btb::lookup(uint64_t pc)
{
    Entry* base = &entries_[static_cast<size_t>(set(pc)) * ways_];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].tag == pc) {
            // Already-MRU hits make the rank loop a no-op; skip it.
            if (base[w].lru != 0) {
                for (int x = 0; x < ways_; ++x) {
                    if (base[x].lru < base[w].lru)
                        ++base[x].lru;
                }
                base[w].lru = 0;
            }
            return base[w].target;
        }
    }
    return 0;
}

void
Btb::insert(uint64_t pc, uint64_t target)
{
    Entry* base = &entries_[static_cast<size_t>(set(pc)) * ways_];
    Entry* victim = &base[0];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].tag == pc) {
            victim = &base[w];
            break;
        }
        if (base[w].lru >= victim->lru)
            victim = &base[w];
    }
    for (int x = 0; x < ways_; ++x) {
        if (base[x].lru < victim->lru)
            ++base[x].lru;
    }
    victim->tag = pc;
    victim->target = target;
    victim->lru = 0;
}

} // namespace ch
