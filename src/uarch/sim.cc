#include "uarch/sim.h"

namespace ch {

SimResult
simulate(const Program& prog, const MachineConfig& cfg, uint64_t maxInsts)
{
    CycleSim core(cfg, prog.isa);
    Emulator emu(prog);
    RunResult run = emu.run(maxInsts, &core);
    core.finish();

    SimResult res;
    res.cycles = core.cycles();
    res.insts = core.instCount();
    res.exited = run.exited;
    res.exitCode = run.exitCode;
    res.stats = core.stats();
    return res;
}

} // namespace ch
