#include "uarch/sim.h"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/logging.h"
#include "uarch/pipe_trace.h"

namespace ch {

namespace {

/** Resolve the trace path: config first, CH_PIPE_TRACE as fallback. */
std::string
tracePathFor(const MachineConfig& cfg)
{
    if (!cfg.pipeTracePath.empty())
        return cfg.pipeTracePath;
    const char* env = std::getenv("CH_PIPE_TRACE");
    return env ? std::string(env) : std::string();
}

} // namespace

SimResult
simulate(const Program& prog, const MachineConfig& cfg, uint64_t maxInsts)
{
    CycleSim core(cfg, prog.isa);

    std::ofstream traceFile;
    std::unique_ptr<PipeTracer> tracer;
    const std::string tracePath = tracePathFor(cfg);
    if (!tracePath.empty()) {
        traceFile.open(tracePath, std::ios::binary);
        if (!traceFile.is_open())
            fatal("cannot open pipe-trace file: ", tracePath);
        tracer = std::make_unique<PipeTracer>(traceFile, prog.isa, cfg);
        core.setPipeTracer(tracer.get());
    }

    Emulator emu(prog);
    RunResult run = emu.run(maxInsts, &core);
    core.finish();
    if (tracer)
        tracer->finish();

    SimResult res;
    res.cycles = core.cycles();
    res.insts = core.instCount();
    res.exited = run.exited;
    res.exitCode = run.exitCode;
    res.stats = core.stats();
    return res;
}

} // namespace ch
