#include "uarch/sim.h"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/logging.h"
#include "uarch/pipe_trace.h"

namespace ch {

namespace {

/** Resolve the trace path: config first, CH_PIPE_TRACE as fallback. */
std::string
tracePathFor(const MachineConfig& cfg)
{
    if (!cfg.pipeTracePath.empty())
        return cfg.pipeTracePath;
    const char* env = std::getenv("CH_PIPE_TRACE");
    return env ? std::string(env) : std::string();
}

/** Optional Kanata tracer attached to @p core for one run. */
class ScopedPipeTracer
{
  public:
    ScopedPipeTracer(CycleSim& core, Isa isa, const MachineConfig& cfg)
    {
        const std::string tracePath = tracePathFor(cfg);
        if (tracePath.empty())
            return;
        file_.open(tracePath, std::ios::binary);
        if (!file_.is_open())
            fatal("cannot open pipe-trace file: ", tracePath);
        tracer_ = std::make_unique<PipeTracer>(file_, isa, cfg);
        core.setPipeTracer(tracer_.get());
    }

    void
    finish()
    {
        if (tracer_)
            tracer_->finish();
    }

  private:
    std::ofstream file_;
    std::unique_ptr<PipeTracer> tracer_;
};

SimResult
coreResult(CycleSim& core, bool exited, int64_t exitCode)
{
    SimResult res;
    res.cycles = core.cycles();
    res.insts = core.instCount();
    res.exited = exited;
    res.exitCode = exitCode;
    res.stats = core.stats();
    return res;
}

} // namespace

SimResult
simulate(const Program& prog, const MachineConfig& cfg, uint64_t maxInsts)
{
    CycleSim core(cfg, prog.isa);
    ScopedPipeTracer tracer(core, prog.isa, cfg);

    Emulator emu(prog);
    RunResult run = emu.run(maxInsts, &core);
    core.finish();
    tracer.finish();
    return coreResult(core, run.exited, run.exitCode);
}

SimResult
simulateReplay(const TraceBuffer& trace, Isa isa, const MachineConfig& cfg)
{
    CycleSim core(cfg, isa);
    ScopedPipeTracer tracer(core, isa, cfg);

    trace.replay(core);
    core.finish();
    tracer.finish();
    return coreResult(core, trace.exited(), trace.exitCode());
}

} // namespace ch
