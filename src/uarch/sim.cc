#include "uarch/sim.h"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/logging.h"
#include "uarch/pipe_trace.h"

namespace ch {

namespace {

/** Resolve the trace path: config first, CH_PIPE_TRACE as fallback. */
std::string
tracePathFor(const MachineConfig& cfg)
{
    if (!cfg.pipeTracePath.empty())
        return cfg.pipeTracePath;
    const char* env = std::getenv("CH_PIPE_TRACE");
    return env ? std::string(env) : std::string();
}

/** Optional Kanata tracer attached to @p core for one run. Stage
 *  schedules only exist on the detailed rung, so requesting a trace on
 *  any other core model is a configuration error. */
class ScopedPipeTracer
{
  public:
    ScopedPipeTracer(CoreModel& core, Isa isa, const MachineConfig& cfg)
    {
        const std::string tracePath = tracePathFor(cfg);
        if (tracePath.empty())
            return;
        if (cfg.coreModel != CoreModelKind::Detailed) {
            fatal("pipe tracing needs the detailed core model, not ",
                  coreModelName(cfg.coreModel));
        }
        file_.open(tracePath, std::ios::binary);
        if (!file_.is_open())
            fatal("cannot open pipe-trace file: ", tracePath);
        tracer_ = std::make_unique<PipeTracer>(file_, isa, cfg);
        core.setPipeObserver(tracer_.get());
    }

    void
    finish()
    {
        if (tracer_)
            tracer_->finish();
    }

  private:
    std::ofstream file_;
    std::unique_ptr<PipeTracer> tracer_;
};

} // namespace

SimResult
simulate(const Program& prog, const MachineConfig& cfg, uint64_t maxInsts)
{
    std::unique_ptr<CoreModel> core = makeCoreModel(cfg, prog.isa);
    ScopedPipeTracer tracer(*core, prog.isa, cfg);

    Emulator emu(prog);
    RunResult run = emu.run(maxInsts, core.get());
    core->finish();
    tracer.finish();
    return core->packageResult(run.exited, run.exitCode);
}

SimResult
simulateReplay(const TraceBuffer& trace, Isa isa, const MachineConfig& cfg)
{
    std::unique_ptr<CoreModel> core = makeCoreModel(cfg, isa);
    ScopedPipeTracer tracer(*core, isa, cfg);

    SimResult res = core->replayResult(trace);
    tracer.finish();
    return res;
}

} // namespace ch
