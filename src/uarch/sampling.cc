#include "uarch/sampling.h"

#include <cmath>

#include "common/logging.h"

namespace ch {

namespace {

/**
 * TraceSink that routes each replayed instruction into the warming or
 * detailed path according to its position in the interval schedule, and
 * accumulates the per-interval measured-window statistics.
 *
 * Interval layout (after the seedOffset warming prefix):
 *
 *     [ skip (warmed) | warmup (timed, unmeasured) | measure | skip ]
 *
 * The detailed segment is placed at a per-interval pseudo-random offset
 * (a deterministic LCG, so every run of the same config reproduces the
 * same windows). Always measuring at a fixed position inside the
 * interval would alias against loop phases whose period divides the
 * interval length — a systematic bias the variance-based CI cannot
 * see; drawing the position uniformly turns that phase structure into
 * ordinary between-window variance, which the CI does capture.
 *
 * Detailed segments (warmup + measure) are stitched onto the core's
 * continuous cycle clock. Sequence numbers and producer links are
 * rebased so the segment looks locally contiguous to the core model;
 * producers older than the segment become kNoProducer — their results
 * committed megacycles ago and would be ready anyway.
 *
 * The feeder drives any fidelity-ladder rung through the CoreModel
 * interface. The rung chooses its own warming strategy: CycleSim warms
 * state-only (warmInst), FastSim warms by fully timing the skipped
 * instructions — functional+timing warming at the same cost.
 */
class SampledFeeder : public TraceSink
{
  public:
    SampledFeeder(CoreModel& core, const SamplingConfig& sc)
        : core_(core),
          sc_(sc),
          skipBudget_(sc.intervalInsts - sc.warmupInsts - sc.sampleInsts),
          rng_(0x9e3779b97f4a7c15ull ^ sc.seedOffset)
    {
        drawWindow();
    }

    void
    onInst(const DynInst& di) override
    {
        if (pos_ < sc_.seedOffset) {
            ++pos_;
            warm(di);
            return;
        }
        const uint64_t p = (pos_ - sc_.seedOffset) % sc_.intervalInsts;
        ++pos_;
        if (p < segStart_ || p >= segStart_ + segLen()) {
            warm(di);
            if (p + 1 == sc_.intervalInsts)
                drawWindow();
            return;
        }
        if (p == segStart_)
            beginSegment(di);
        if (p == segStart_ + sc_.warmupInsts)
            snapshotMeasureStart();

        DynInst local = di;
        local.seq = segLocalBase_ + (di.seq - segOrigBase_);
        local.prod1 = rebase(di.prod1);
        local.prod2 = rebase(di.prod2);
        core_.onInst(local);
        ++detailedFed_;

        if (p + 1 == segStart_ + segLen()) {
            closeInterval();
            if (p + 1 == sc_.intervalInsts)
                drawWindow();
        }
    }

    /**
     * Build the CLT estimate over the closed intervals. Statistics are
     * computed in CPI space: the measured windows all hold sampleInsts
     * instructions, so the aggregate CPI over them is exactly the
     * arithmetic mean of the per-window CPIs (a mean of per-window IPCs
     * — rates — would overestimate). The CPI mean and stderr are then
     * mapped to IPC via the delta method (d(1/x) = -dx/x^2).
     */
    SampleSummary
    summary() const
    {
        SampleSummary s;
        s.intervals = n_;
        s.measuredInsts = measuredInsts_;
        s.warmupInsts = detailedFed_ - measuredInsts_;
        s.warmedInsts = warmedInsts_;
        if (n_ == 0)
            return s;
        const double n = static_cast<double>(n_);
        const double cpiMean = sum_ / n;
        if (cpiMean <= 0.0)
            return s;
        s.ipcMean = 1.0 / cpiMean;
        if (n_ >= 2) {
            double var = (sumSq_ - n * cpiMean * cpiMean) / (n - 1.0);
            if (var < 0.0)
                var = 0.0;  // floating-point cancellation guard
            const double cpiStderr = std::sqrt(var / n);
            s.ipcStderr = cpiStderr / (cpiMean * cpiMean);
            s.ipcCi95 = 1.96 * s.ipcStderr;
        }
        return s;
    }

    uint64_t measuredCycles() const { return measuredCycles_; }
    uint64_t measuredStall(int cat) const { return measuredStalls_[cat]; }

  private:
    void
    warm(const DynInst& di)
    {
        if (!sc_.functionalWarming)
            return;
        core_.warmInst(di);
        ++warmedInsts_;
    }

    uint64_t segLen() const { return sc_.warmupInsts + sc_.sampleInsts; }

    /**
     * Place the next interval's detailed segment: uniform over the
     * skip budget via a 64-bit LCG (Knuth's MMIX constants), seeded
     * from seedOffset so a given config always draws the same windows.
     */
    void
    drawWindow()
    {
        rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
        segStart_ = skipBudget_ ? (rng_ >> 33) % (skipBudget_ + 1) : 0;
    }

    void
    beginSegment(const DynInst& di)
    {
        segOrigBase_ = di.seq;
        segLocalBase_ = core_.instCount();
        core_.beginDetailedSegment();
    }

    uint64_t
    rebase(uint64_t prod) const
    {
        if (prod == kNoProducer || prod < segOrigBase_)
            return kNoProducer;
        return segLocalBase_ + (prod - segOrigBase_);
    }

    void
    snapshotMeasureStart()
    {
        measStartCycles_ = core_.cycles();
        for (int c = 0; c < kNumStallCats; ++c)
            stallAtStart_[c] = core_.stallCycles(static_cast<StallCat>(c));
    }

    void
    closeInterval()
    {
        const uint64_t dCycles = core_.cycles() - measStartCycles_;
        uint64_t stallSum = 0;
        for (int c = 0; c < kNumStallCats; ++c) {
            const uint64_t d =
                core_.stallCycles(static_cast<StallCat>(c)) -
                stallAtStart_[c];
            measuredStalls_[c] += d;
            stallSum += d;
        }
        CH_ASSERT(stallSum == dCycles,
                  "stall categories must sum to measured cycles");
        const double cpi =
            static_cast<double>(dCycles) / sc_.sampleInsts;
        sum_ += cpi;
        sumSq_ += cpi * cpi;
        ++n_;
        measuredInsts_ += sc_.sampleInsts;
        measuredCycles_ += dCycles;
    }

    CoreModel& core_;
    const SamplingConfig sc_;
    const uint64_t skipBudget_;  ///< interval minus the detailed segment
    uint64_t rng_;               ///< LCG state for window placement
    uint64_t segStart_ = 0;      ///< this interval's segment offset

    uint64_t pos_ = 0;           ///< replayed instructions seen
    uint64_t segOrigBase_ = 0;   ///< trace seq of the segment's first inst
    uint64_t segLocalBase_ = 0;  ///< core seq the segment starts at

    uint64_t warmedInsts_ = 0;
    uint64_t detailedFed_ = 0;
    uint64_t measuredInsts_ = 0;
    uint64_t measuredCycles_ = 0;

    uint64_t measStartCycles_ = 0;
    uint64_t stallAtStart_[kNumStallCats] = {};
    uint64_t measuredStalls_[kNumStallCats] = {};

    // Per-interval CPI accumulators for the CLT estimate.
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
};

/** Fixed-point export of a ratio into a uint64 counter (1e-6 units). */
uint64_t
toE6(double x)
{
    return x > 0.0 ? static_cast<uint64_t>(std::llround(x * 1e6)) : 0;
}

} // namespace

SimResult
simulateSampled(const TraceBuffer& trace, Isa isa,
                const MachineConfig& cfg, const SamplingConfig& sc)
{
    CH_ASSERT(sc.wellFormed(),
              "sampling windows must fit inside one interval");

    // Too short to complete even one interval (or sampling off): the
    // exact run is both correct and cheap, so take it. The result then
    // carries no sample.* counters and stays byte-identical to an
    // unsampled run.
    if (!sc.enabled() ||
        trace.instCount() < sc.seedOffset + sc.intervalInsts) {
        return simulateReplay(trace, isa, cfg);
    }

    std::unique_ptr<CoreModel> core = makeCoreModel(cfg, isa);
    SampledFeeder feeder(*core, sc);
    trace.replay(feeder);
    core->finish();

    const SampleSummary s = feeder.summary();
    SimResult res = core->packageResult(trace.exited(), trace.exitCode());
    res.sampled = true;
    res.sample = s;
    res.insts = trace.instCount();
    res.cycles =
        s.ipcMean > 0.0
            ? static_cast<uint64_t>(
                  std::llround(static_cast<double>(res.insts) / s.ipcMean))
            : 0;

    // The raw pipeline counters keep their warmup contributions (they
    // describe everything the detailed model did), but the headline and
    // stall counters are rewritten to the measured-window view so the
    // six stall.* counters sum exactly to the measured cycles.
    res.stats.counter("sim.cycles").set(res.cycles);
    res.stats.counter("sim.insts").set(res.insts);
    uint64_t stallSum = 0;
    for (int c = 0; c < kNumStallCats; ++c) {
        res.stats.counter(stallCatCounterName(c))
            .set(feeder.measuredStall(c));
        stallSum += feeder.measuredStall(c);
    }
    CH_ASSERT(stallSum == feeder.measuredCycles(),
              "stall categories must sum to measured cycles");

    res.stats.counter("sample.intervals").set(s.intervals);
    res.stats.counter("sample.insts.measured").set(s.measuredInsts);
    res.stats.counter("sample.insts.warmup").set(s.warmupInsts);
    res.stats.counter("sample.insts.warmed").set(s.warmedInsts);
    res.stats.counter("sample.cycles.measured")
        .set(feeder.measuredCycles());
    res.stats.counter("sample.ipc.e6").set(toE6(s.ipcMean));
    res.stats.counter("sample.ipc.stderr.e6").set(toE6(s.ipcStderr));
    res.stats.counter("sample.ipc.ci95.e6").set(toE6(s.ipcCi95));
    res.stats.counter("sample.relerr.e6").set(toE6(s.relErr()));
    return res;
}

SimResult
simulateSampled(const Program& prog, const MachineConfig& cfg,
                const SamplingConfig& sc, uint64_t maxInsts)
{
    TraceBuffer buf;
    Emulator emu(prog);
    RunResult run = emu.run(maxInsts, &buf);
    buf.setRunOutcome(run.exited, run.exitCode);
    return simulateSampled(buf, prog.isa, cfg, sc);
}

} // namespace ch
