#include "uarch/sampling.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace ch {

namespace {

/// Seed basis for the window-placement LCG; XORed with seedOffset so a
/// given config always draws the same windows.
constexpr uint64_t kSampleSeedBasis = 0x9e3779b97f4a7c15ull;

/// Per-shard seed mix (the splitmix64 multiplier): shard s draws from
/// base ^ (kShardSeedMix * s), so shard 0 keeps the serial stream and
/// the streams are spec-derived — identical across runs and hosts.
constexpr uint64_t kShardSeedMix = 0xbf58476d1ce4e5b9ull;

/**
 * Build the CLT estimate over @p n closed intervals. Statistics are
 * computed in CPI space: the measured windows all hold sampleInsts
 * instructions, so the aggregate CPI over them is exactly the
 * arithmetic mean of the per-window CPIs (a mean of per-window IPCs
 * — rates — would overestimate). The CPI mean and stderr are then
 * mapped to IPC via the delta method (d(1/x) = -dx/x^2). Shared by the
 * serial path and the shard merge: merging is just summing each shard's
 * (n, sum, sumSq) — the estimate cannot drift between the two paths.
 */
SampleSummary
makeEstimate(uint64_t n, double sum, double sumSq, uint64_t measuredInsts,
             uint64_t warmupInsts, uint64_t warmedInsts)
{
    SampleSummary s;
    s.intervals = n;
    s.measuredInsts = measuredInsts;
    s.warmupInsts = warmupInsts;
    s.warmedInsts = warmedInsts;
    if (n == 0)
        return s;
    const double dn = static_cast<double>(n);
    const double cpiMean = sum / dn;
    if (cpiMean <= 0.0)
        return s;
    s.ipcMean = 1.0 / cpiMean;
    if (n >= 2) {
        double var = (sumSq - dn * cpiMean * cpiMean) / (dn - 1.0);
        if (var < 0.0)
            var = 0.0;  // floating-point cancellation guard
        const double cpiStderr = std::sqrt(var / dn);
        s.ipcStderr = cpiStderr / (cpiMean * cpiMean);
        s.ipcCi95 = 1.96 * s.ipcStderr;
    }
    return s;
}

/**
 * TraceSink that routes each replayed instruction into the warming or
 * detailed path according to its position in the interval schedule, and
 * accumulates the per-interval measured-window statistics.
 *
 * Interval layout (after the warming-only prefix):
 *
 *     [ skip (warmed) | warmup (timed, unmeasured) | measure | skip ]
 *
 * The detailed segment is placed at a per-interval pseudo-random offset
 * (a deterministic LCG, so every run of the same config reproduces the
 * same windows). Always measuring at a fixed position inside the
 * interval would alias against loop phases whose period divides the
 * interval length — a systematic bias the variance-based CI cannot
 * see; drawing the position uniformly turns that phase structure into
 * ordinary between-window variance, which the CI does capture.
 *
 * Detailed segments (warmup + measure) are stitched onto the core's
 * continuous cycle clock. Sequence numbers and producer links are
 * rebased so the segment looks locally contiguous to the core model;
 * producers older than the segment become kNoProducer — their results
 * committed megacycles ago and would be ready anyway.
 *
 * The feeder drives any fidelity-ladder rung through the CoreModel
 * interface. The rung chooses its own warming strategy: CycleSim warms
 * state-only (warmInst), FastSim warms by fully timing the skipped
 * instructions — functional+timing warming at the same cost.
 *
 * One feeder covers one contiguous run of intervals: the serial path
 * feeds the whole trace through a single feeder whose prefix is the
 * seedOffset; the shard path feeds each shard's slice through its own
 * feeder whose prefix is that shard's re-warming window.
 */
class SampledFeeder : public TraceSink
{
  public:
    SampledFeeder(CoreModel& core, const SamplingConfig& sc,
                  uint64_t warmPrefixInsts, uint64_t rngSeed)
        : core_(core),
          sc_(sc),
          prefix_(warmPrefixInsts),
          skipBudget_(sc.intervalInsts - sc.warmupInsts - sc.sampleInsts),
          rng_(rngSeed)
    {
        drawWindow();
    }

    void
    onInst(const DynInst& di) override
    {
        if (pos_ < prefix_) {
            ++pos_;
            warm(di);
            return;
        }
        const uint64_t p = (pos_ - prefix_) % sc_.intervalInsts;
        ++pos_;
        if (p < segStart_ || p >= segStart_ + segLen()) {
            warm(di);
            if (p + 1 == sc_.intervalInsts)
                drawWindow();
            return;
        }
        if (p == segStart_)
            beginSegment(di);
        if (p == segStart_ + sc_.warmupInsts)
            snapshotMeasureStart();

        DynInst local = di;
        local.seq = segLocalBase_ + (di.seq - segOrigBase_);
        local.prod1 = rebase(di.prod1);
        local.prod2 = rebase(di.prod2);
        core_.onInst(local);
        ++detailedFed_;

        if (p + 1 == segStart_ + segLen()) {
            closeInterval();
            if (p + 1 == sc_.intervalInsts)
                drawWindow();
        }
    }

    /** CLT estimate over this feeder's closed intervals (serial path). */
    SampleSummary
    summary() const
    {
        return makeEstimate(n_, sum_, sumSq_, measuredInsts_,
                            warmupInsts(), warmedInsts_);
    }

    // Raw accumulators, so the shard merge can recombine per-window
    // samples from many feeders into one estimate.
    uint64_t intervals() const { return n_; }
    double cpiSum() const { return sum_; }
    double cpiSumSq() const { return sumSq_; }
    uint64_t measuredInsts() const { return measuredInsts_; }
    uint64_t warmupInsts() const { return detailedFed_ - measuredInsts_; }
    uint64_t warmedInsts() const { return warmedInsts_; }
    uint64_t measuredCycles() const { return measuredCycles_; }
    const uint64_t* measuredStalls() const { return measuredStalls_; }

  private:
    void
    warm(const DynInst& di)
    {
        if (!sc_.functionalWarming)
            return;
        core_.warmInst(di);
        ++warmedInsts_;
    }

    uint64_t segLen() const { return sc_.warmupInsts + sc_.sampleInsts; }

    /**
     * Place the next interval's detailed segment: uniform over the
     * skip budget via a 64-bit LCG (Knuth's MMIX constants), seeded
     * from the spec so a given config always draws the same windows.
     */
    void
    drawWindow()
    {
        rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
        segStart_ = skipBudget_ ? (rng_ >> 33) % (skipBudget_ + 1) : 0;
    }

    void
    beginSegment(const DynInst& di)
    {
        segOrigBase_ = di.seq;
        segLocalBase_ = core_.instCount();
        core_.beginDetailedSegment();
    }

    uint64_t
    rebase(uint64_t prod) const
    {
        if (prod == kNoProducer || prod < segOrigBase_)
            return kNoProducer;
        return segLocalBase_ + (prod - segOrigBase_);
    }

    void
    snapshotMeasureStart()
    {
        measStartCycles_ = core_.cycles();
        for (int c = 0; c < kNumStallCats; ++c)
            stallAtStart_[c] = core_.stallCycles(static_cast<StallCat>(c));
    }

    void
    closeInterval()
    {
        const uint64_t dCycles = core_.cycles() - measStartCycles_;
        uint64_t stallSum = 0;
        for (int c = 0; c < kNumStallCats; ++c) {
            const uint64_t d =
                core_.stallCycles(static_cast<StallCat>(c)) -
                stallAtStart_[c];
            measuredStalls_[c] += d;
            stallSum += d;
        }
        CH_ASSERT(stallSum == dCycles,
                  "stall categories must sum to measured cycles");
        const double cpi =
            static_cast<double>(dCycles) / sc_.sampleInsts;
        sum_ += cpi;
        sumSq_ += cpi * cpi;
        ++n_;
        measuredInsts_ += sc_.sampleInsts;
        measuredCycles_ += dCycles;
    }

    CoreModel& core_;
    const SamplingConfig sc_;
    const uint64_t prefix_;      ///< warming-only instructions up front
    const uint64_t skipBudget_;  ///< interval minus the detailed segment
    uint64_t rng_;               ///< LCG state for window placement
    uint64_t segStart_ = 0;      ///< this interval's segment offset

    uint64_t pos_ = 0;           ///< replayed instructions seen
    uint64_t segOrigBase_ = 0;   ///< trace seq of the segment's first inst
    uint64_t segLocalBase_ = 0;  ///< core seq the segment starts at

    uint64_t warmedInsts_ = 0;
    uint64_t detailedFed_ = 0;
    uint64_t measuredInsts_ = 0;
    uint64_t measuredCycles_ = 0;

    uint64_t measStartCycles_ = 0;
    uint64_t stallAtStart_[kNumStallCats] = {};
    uint64_t measuredStalls_[kNumStallCats] = {};

    // Per-interval CPI accumulators for the CLT estimate.
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
};

/** Fixed-point export of a ratio into a uint64 counter (1e-6 units). */
uint64_t
toE6(double x)
{
    return x > 0.0 ? static_cast<uint64_t>(std::llround(x * 1e6)) : 0;
}

/**
 * Shared result assembly for the serial and shard paths: rewrite the
 * headline and stall counters to the measured-window view (the raw
 * pipeline counters keep their warmup contributions — they describe
 * everything the detailed model did) and surface the sample.* counters.
 * The six stall.* counters sum exactly to the measured cycles.
 */
void
applySampleView(SimResult& res, uint64_t totalInsts,
                const SampleSummary& s, uint64_t measuredCycles,
                const uint64_t* measuredStalls)
{
    res.sampled = true;
    res.sample = s;
    res.insts = totalInsts;
    res.cycles =
        s.ipcMean > 0.0
            ? static_cast<uint64_t>(std::llround(
                  static_cast<double>(totalInsts) / s.ipcMean))
            : 0;
    res.stats.counter("sim.cycles").set(res.cycles);
    res.stats.counter("sim.insts").set(res.insts);
    uint64_t stallSum = 0;
    for (int c = 0; c < kNumStallCats; ++c) {
        res.stats.counter(stallCatCounterName(c)).set(measuredStalls[c]);
        stallSum += measuredStalls[c];
    }
    CH_ASSERT(stallSum == measuredCycles,
              "stall categories must sum to measured cycles");

    res.stats.counter("sample.intervals").set(s.intervals);
    res.stats.counter("sample.insts.measured").set(s.measuredInsts);
    res.stats.counter("sample.insts.warmup").set(s.warmupInsts);
    res.stats.counter("sample.insts.warmed").set(s.warmedInsts);
    res.stats.counter("sample.cycles.measured").set(measuredCycles);
    res.stats.counter("sample.ipc.e6").set(toE6(s.ipcMean));
    res.stats.counter("sample.ipc.stderr.e6").set(toE6(s.ipcStderr));
    res.stats.counter("sample.ipc.ci95.e6").set(toE6(s.ipcCi95));
    res.stats.counter("sample.relerr.e6").set(toE6(s.relErr()));
    // Shard provenance counters exist only on sharded runs, so K=1
    // output stays byte-identical to pre-shard binaries.
    if (s.shards > 1) {
        res.stats.counter("sample.shards").set(s.shards);
        res.stats.counter("sample.shard.warmInsts").set(s.shardWarmInsts);
    }
}

/**
 * Shard-parallel sampling (docs/PERFORMANCE.md, "Shard-parallel
 * sampling"): partition the interval sequence into @p shards contiguous
 * runs, time each on its own core model and thread, and merge the
 * per-window samples in shard order. Each shard functionally re-warms
 * its long-lived state from shardWarmupInsts (default one interval)
 * before its first interval via the keyframed replayRange() seek, so
 * wall time scales with the largest shard instead of the whole stream.
 * Deterministic for fixed K: the shard boundaries, per-shard LCG seeds
 * and the merge order are all derived from the spec alone.
 */
SimResult
simulateSharded(const TraceBuffer& trace, Isa isa,
                const MachineConfig& cfg, const SamplingConfig& sc,
                uint64_t totalIntervals, uint64_t shards)
{
    const uint64_t interval = sc.intervalInsts;
    const uint64_t warmLen =
        sc.shardWarmupInsts ? sc.shardWarmupInsts : interval;

    struct Shard {
        std::unique_ptr<CoreModel> core;
        std::unique_ptr<SampledFeeder> feeder;
        uint64_t replayStart = 0;  ///< first trace position replayed
        uint64_t replayEnd = 0;    ///< one past the last position
        double wallMs = 0.0;
        std::exception_ptr error;
    };
    std::vector<Shard> work(shards);
    for (uint64_t s = 0; s < shards; ++s) {
        Shard& sh = work[s];
        const uint64_t firstInterval = totalIntervals * s / shards;
        const uint64_t lastInterval = totalIntervals * (s + 1) / shards;
        const uint64_t startPos = sc.seedOffset + firstInterval * interval;
        sh.replayStart = startPos > warmLen ? startPos - warmLen : 0;
        sh.replayEnd = sc.seedOffset + lastInterval * interval;
        sh.core = makeCoreModel(cfg, isa);
        sh.feeder = std::make_unique<SampledFeeder>(
            *sh.core, sc, startPos - sh.replayStart,
            (kSampleSeedBasis ^ sc.seedOffset) ^ (kShardSeedMix * s));
    }

    auto runShard = [&trace](Shard& sh) {
        try {
            const auto t0 = std::chrono::steady_clock::now();
            trace.replayRange(*sh.feeder, sh.replayStart,
                              sh.replayEnd - sh.replayStart);
            sh.core->finish();
            sh.wallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        } catch (...) {
            sh.error = std::current_exception();
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(shards - 1);
    for (uint64_t s = 1; s < shards; ++s)
        pool.emplace_back(runShard, std::ref(work[s]));
    runShard(work[0]);
    for (std::thread& t : pool)
        t.join();
    for (Shard& sh : work) {
        if (sh.error)
            std::rethrow_exception(sh.error);
    }

    // Merge in shard order. The CLT accumulators are plain sums, the
    // raw pipeline counters add up counter-by-counter, and the measured
    // stall deltas keep their sum-to-measured-cycles invariant.
    SimResult res;
    res.exited = trace.exited();
    res.exitCode = trace.exitCode();
    uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    uint64_t measuredInsts = 0;
    uint64_t warmupInsts = 0;
    uint64_t warmedInsts = 0;
    uint64_t measuredCycles = 0;
    uint64_t measuredStalls[kNumStallCats] = {};
    for (const Shard& sh : work) {
        const SampledFeeder& f = *sh.feeder;
        n += f.intervals();
        sum += f.cpiSum();
        sumSq += f.cpiSumSq();
        measuredInsts += f.measuredInsts();
        warmupInsts += f.warmupInsts();
        warmedInsts += f.warmedInsts();
        measuredCycles += f.measuredCycles();
        for (int c = 0; c < kNumStallCats; ++c)
            measuredStalls[c] += f.measuredStalls()[c];
        for (const auto& [name, value] : sh.core->stats().dump())
            res.stats.counter(name) += value;
    }
    SampleSummary s = makeEstimate(n, sum, sumSq, measuredInsts,
                                   warmupInsts, warmedInsts);
    s.shards = shards;
    s.shardWarmInsts = warmLen;
    s.shardWallMs.reserve(shards);
    for (const Shard& sh : work)
        s.shardWallMs.push_back(sh.wallMs);

    applySampleView(res, trace.instCount(), s, measuredCycles,
                    measuredStalls);
    return res;
}

} // namespace

SimResult
simulateSampled(const TraceBuffer& trace, Isa isa,
                const MachineConfig& cfg, const SamplingConfig& sc)
{
    CH_ASSERT(sc.wellFormed(),
              "sampling windows must fit inside one interval");

    // Too short to complete even one interval (or sampling off): the
    // exact run is both correct and cheap, so take it. The result then
    // carries no sample.* counters and stays byte-identical to an
    // unsampled run.
    if (!sc.enabled() ||
        trace.instCount() < sc.seedOffset + sc.intervalInsts) {
        return simulateReplay(trace, isa, cfg);
    }

    // Clamp the shard count to the interval count: a shard with no
    // intervals would contribute nothing but an idle core model.
    const uint64_t totalIntervals =
        (trace.instCount() - sc.seedOffset) / sc.intervalInsts;
    const uint64_t shards = std::min<uint64_t>(
        sc.shards < 1 ? 1 : static_cast<uint64_t>(sc.shards),
        totalIntervals);
    if (shards > 1)
        return simulateSharded(trace, isa, cfg, sc, totalIntervals,
                               shards);

    std::unique_ptr<CoreModel> core = makeCoreModel(cfg, isa);
    SampledFeeder feeder(*core, sc, sc.seedOffset,
                         kSampleSeedBasis ^ sc.seedOffset);
    trace.replay(feeder);
    core->finish();

    SimResult res = core->packageResult(trace.exited(), trace.exitCode());
    applySampleView(res, trace.instCount(), feeder.summary(),
                    feeder.measuredCycles(), feeder.measuredStalls());
    return res;
}

SimResult
simulateSampled(const Program& prog, const MachineConfig& cfg,
                const SamplingConfig& sc, uint64_t maxInsts)
{
    TraceBuffer buf;
    Emulator emu(prog);
    RunResult run = emu.run(maxInsts, &buf);
    buf.setRunOutcome(run.exited, run.exitCode);
    return simulateSampled(buf, prog.isa, cfg, sc);
}

} // namespace ch
