#ifndef CH_UARCH_FASTSIM_H
#define CH_UARCH_FASTSIM_H

/**
 * @file
 * The fidelity ladder's fast rung (docs/FIDELITY.md): a timing model
 * with an in-order front end and in-order commit that keeps only the
 * first-order effects the detailed model attributes most cycles to —
 *
 *  - fetch groups: fetch-width and taken-branch limits, one I-cache tag
 *    access per new line, squash-and-refill redirects with the per-ISA
 *    front-end depth (RISC renames in 2 extra stages: 7 vs 5 cycles),
 *  - real TAGE + BTB + RAS prediction (the same components the detailed
 *    model trains) with full misprediction redirect penalties,
 *  - operand readiness through producer timestamps (di.prod1/prod2),
 *  - ROB occupancy (dispatch blocks until the instruction robSize
 *    older has committed), which also bounds the issue-arbitration
 *    backlog so FU-limited codes stay linear-time,
 *  - issue-width and per-class FU-pool arbitration with the detailed
 *    model's execution latencies,
 *  - the real L1I/L1D/L2 + stream-prefetcher hierarchy for load result
 *    latencies and store retirement traffic, and
 *  - commit-width-bounded in-order commit driving the same top-down
 *    StallAccountant, so the six stall.* counters sum exactly to
 *    sim.cycles, rung-independently.
 *
 * What it deliberately drops relative to CycleSim — IQ/LSQ/register
 * occupancy stalls, store sets, store-to-load forwarding, memory-order
 * replays, per-event energy counters, pipe tracing — is exactly the
 * bookkeeping that dominates the detailed model's runtime. The result
 * is a model several times faster whose corpus IPC stays within a few
 * percent of the reference (gated at 10% mean |error| by
 * bench/fig_fidelity_ladder.cc and ctest -L fidelity).
 *
 * Counters emitted: sim.cycles, sim.insts, the six stall.* counters,
 * branch.{conds,mispredicts,btbMisses}, and the cache.* family from the
 * shared MemoryHierarchy. The set is a strict subset of the detailed
 * model's — in particular nothing the energy model needs, so energy
 * figures must use the detailed rung.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "trace/dyninst.h"
#include "uarch/branch_pred.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/core.h"
#include "uarch/core_model.h"
#include "uarch/stall_account.h"

namespace ch {

/** The fast in-order rung; feed the committed stream, then finish().
 *  `final` so replayTo's decode loop can devirtualize onInst. */
class FastSim final : public CoreModel
{
  public:
    FastSim(const MachineConfig& cfg, Isa isa);

    void onInst(const DynInst& di) override;

    /** Fused decode+model loop (TraceBuffer::replayTo) — no virtual hop
     *  per instruction. */
    void consumeTrace(const TraceBuffer& trace) override;

    /**
     * Functional+timing warming: timing an instruction here costs about
     * as much as CycleSim::warmInst's state-only update, so warming
     * simply times it. Sampled runs on this rung therefore keep the
     * pipeline-coupled state (producer timestamps, fetch groups) warm
     * across skipped regions too, not just caches and predictors.
     */
    void warmInst(const DynInst& di) override { onInst(di); }

    void beginDetailedSegment() override { lastFetchLine_ = ~0ull; }

    /** Complete the run; returns total cycles (last commit). */
    uint64_t finish() override;

    uint64_t cycles() const override { return lastCommit_; }
    uint64_t instCount() const override { return seq_; }
    const StatGroup& stats() const override { return stats_; }
    StatGroup& stats() override { return stats_; }

    uint64_t
    stallCycles(StallCat cat) const override
    {
        return stalls_.category(cat);
    }

  private:
    /** Timestamp ring keyed by sequence number (same shape as the
     *  detailed model's; entries older than the span read as stale). */
    struct SeqRing {
        explicit SeqRing(size_t n) : mask(n - 1), data(n, 0) {}
        uint64_t get(uint64_t seq) const { return data[seq & mask]; }
        void set(uint64_t seq, uint64_t v) { data[seq & mask] = v; }
        size_t mask;
        std::vector<uint64_t> data;
    };

    /**
     * Per-cycle issue bookkeeping, packed so one slot access answers
     * both "is the issue width exhausted?" and "is this FU pool full?"
     * — the detailed model keeps eight separate CycleCounts rings and
     * pays four spread-out memory touches per arbitration attempt; the
     * fast rung pays one. Stale slots (tag mismatch) read as empty,
     * exactly like CycleCounts past its window.
     */
    struct IssueSlot {
        uint64_t cycle = ~0ull;
        uint8_t total = 0;      ///< instructions issued this cycle
        uint8_t pool[7] = {};   ///< per-FU-pool issues this cycle
    };

    /**
     * Cycles a previous arbitrate() scan proved unavailable for one FU
     * pool: [from, to). Issue counters only ever increase, so a cycle
     * once full (for the pool or for the issue width) stays full — the
     * next scan for the same pool may skip the interval outright. This
     * turns the backlog walk on FU-limited codes from O(backlog) per
     * instruction into O(1) amortized, with identical results.
     */
    struct PoolSkip {
        uint64_t from = 1;
        uint64_t to = 0;   ///< empty when to <= from
    };

    int fuLatency(OpClass cls) const;
    int fuPoolId(OpClass cls) const;
    int fuPoolLimit(OpClass cls) const;

    /** fuPoolId/fuPoolLimit/fuLatency flattened to one load per
     *  instruction (all three are pure functions of OpClass + config,
     *  so the ctor precomputes the 14-entry table). */
    struct FuCost {
        uint8_t pool = 0;
        uint8_t limit = 0;
        uint8_t latency = 0;
    };

    /** Earliest cycle >= @p from with a free issue slot + FU of @p pool. */
    uint64_t arbitrate(int pool, int limit, uint64_t from);

    void handleBranch(const DynInst& di, const OpInfo& info,
                      uint64_t resolveCycle);

    /** Same lazy counter binding as the detailed model (core.h). */
    Counter&
    hot(Counter*& slot, const char* name)
    {
        if (slot == nullptr)
            slot = &stats_.counter(name);
        return *slot;
    }

    const MachineConfig cfg_;
    const int frontendDepth_;
    const int lineShift_;     ///< log2(cfg.lineBytes); pc >> lineShift_
    StatGroup stats_;

    Tage tage_;
    Btb btb_;
    Ras ras_;
    MemoryHierarchy mem_;

    // Front-end state (mirrors CycleSim::stageFetch).
    uint64_t fetchCycle_ = 1;
    int fetchedThisCycle_ = 0;
    uint64_t lastFetchLine_ = ~0ull;
    uint64_t redirectAt_ = 0;
    uint64_t lastRedirect_ = 0;

    // Per-instruction timestamps.
    uint64_t seq_ = 0;
    uint64_t lastDispatch_ = 0;
    uint64_t lastCommit_ = 0;

    /** Producer result cycle << 1 | came-from-a-D$-miss bit, so one
     *  ring load answers both consumer questions. */
    SeqRing readyForUse_;
    SeqRing commit_;          ///< last commitWidth commit cycles

    // Issue arbitration (same mechanism as the detailed model; smaller
    // window — the live issue span is bounded by the dependence chains
    // and miss latencies, not the 128K-cycle detailed default).
    std::vector<IssueSlot> issueRing_;
    uint64_t issueMask_;
    std::array<PoolSkip, 7> poolSkip_{};
    std::array<FuCost, 14> fuCost_{};   ///< indexed by OpClass

    StallAccountant stalls_;

    Counter* cBranchConds_ = nullptr;
    Counter* cBranchMispredicts_ = nullptr;
    Counter* cBranchBtbMisses_ = nullptr;
};

} // namespace ch

#endif // CH_UARCH_FASTSIM_H
