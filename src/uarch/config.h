#ifndef CH_UARCH_CONFIG_H
#define CH_UARCH_CONFIG_H

/**
 * @file
 * Machine configurations for the cycle-level model, following the
 * paper's Table 2. The 6-fetch model derives from Apple M1-class
 * parameters; larger models scale the ROB aggressively and the
 * scheduler/LSQ conservatively, exactly as the paper describes.
 */

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace ch {

/**
 * Interval-sampling knobs for the timing model (docs/PERFORMANCE.md,
 * "Sampled simulation"). Sampling is **off by default** — a
 * default-constructed config times 100% of the committed stream and all
 * metrics stay byte-identical to earlier binaries.
 *
 * When enabled, each interval of intervalInsts committed instructions is
 * split into a functional-warming prefix (caches and branch predictors
 * updated at trace-decode speed, no timing), a detailed warmup of
 * warmupInsts (timed, not measured), and a measured window of
 * sampleInsts whose IPC feeds the CLT estimate.
 */
struct SamplingConfig {
    uint64_t intervalInsts = 0;  ///< interval length; 0 disables sampling
    uint64_t sampleInsts = 0;    ///< measured window per interval
    uint64_t warmupInsts = 0;    ///< detailed (unmeasured) warmup window
    uint64_t seedOffset = 0;     ///< warming-only prefix before interval 0

    /**
     * Update long-lived state (cache tags, branch predictors) during the
     * skipped portion of each interval. On by default; the off setting
     * exists to quantify the warming pass's error contribution.
     */
    bool functionalWarming = true;

    /**
     * Parallel sampling shards (docs/PERFORMANCE.md, "Shard-parallel
     * sampling"). 1 — the default — runs the original single-threaded
     * interval schedule and stays byte-identical to earlier binaries.
     * K>1 partitions the intervals into K contiguous runs, each timed by
     * its own core-model instance on its own thread after a functional
     * re-warming pass of shardWarmupInsts, then merges the per-window
     * samples in shard order (deterministic for fixed K).
     */
    int shards = 1;

    /**
     * Functional-warming prefix replayed before each shard's first
     * interval (shards > 1 only); 0 selects one full interval — the
     * SMARTS-style stale-state compromise.
     */
    uint64_t shardWarmupInsts = 0;

    bool
    enabled() const
    {
        return intervalInsts > 0 && sampleInsts > 0;
    }

    /** Warmup + measured windows must fit inside one interval. */
    bool
    wellFormed() const
    {
        return !enabled() ||
               (shards >= 1 && sampleInsts <= intervalInsts &&
                warmupInsts <= intervalInsts - sampleInsts);
    }
};

/**
 * Fidelity-ladder rung (docs/FIDELITY.md): which timing model consumes
 * the committed stream. Detailed is the default and the reference; the
 * cheaper rungs trade accuracy for throughput and are cross-validated
 * against it on every PR (bench/fig_fidelity_ladder.cc).
 */
enum class CoreModelKind {
    Detailed,  ///< cycle-level out-of-order CycleSim (uarch/core.h)
    Fast,      ///< in-order FastSim: cache + branch penalties (fastsim.h)
    Analytic,  ///< zero-execution per-loop predictor (analyze/)
};

/** Canonical name ("detailed" / "fast" / "analytic"). */
const char* coreModelName(CoreModelKind kind);

/** Parse a canonical name; returns false on anything else. */
bool parseCoreModel(const std::string& text, CoreModelKind* out);

/** Per-class functional-unit counts. */
struct FuCounts {
    int intAlu = 4;
    int fp = 2;
    int load = 2;
    int store = 1;
    int iMul = 1;
    int iDiv = 1;
    int fDiv = 1;
};

/** One simulated machine (Table 2 column). */
struct MachineConfig {
    int fetchWidth = 8;

    /**
     * Extra rename pipeline stages beyond the 5-cycle base front end; -1
     * selects the per-ISA default (2 for conventional RISC, 0 for the
     * rename-free ISAs, Table 2). Overridable for ablation studies.
     */
    int renameStagesOverride = -1;

    /**
     * Front-end depth in cycles: fetch(3) + decode(1) + dispatch(1), plus
     * rename(2) for conventional RISC only (Table 2: RISC-V 7 cycles,
     * STRAIGHT/Clockhands 5 cycles).
     */
    int frontendDepth(Isa isa) const
    {
        if (renameStagesOverride >= 0)
            return 5 + renameStagesOverride;
        return isa == Isa::Riscv ? 7 : 5;
    }

    int issueWidth = 8;
    int issueLatency = 4;   ///< payload RAM read + register read
    int commitWidth = 8;

    int robSize = 1024;
    int schedSize = 256;    ///< unified scheduler entries (S)
    int loadQueue = 128;    ///< S/2
    int storeQueue = 96;    ///< 3S/8

    FuCounts fu;

    // Physical registers.
    //  RISC: unified x robSize; STRAIGHT/Clockhands: 128 + robSize, with
    //  the per-hand quota split of Table 2.
    int physRegsRisc() const { return robSize; }
    int physRegsRenameFree() const { return 128 + robSize; }

    /**
     * Use an equal per-hand register split instead of Table 2's usage-
     * weighted quota (ablation knob).
     */
    bool equalHandQuota = false;

    /** Clockhands per-hand quota: s, t, u, v (Table 2). */
    int
    handQuota(int hand) const
    {
        if (equalHandQuota)
            return physRegsRenameFree() / kNumHands;
        const int r = robSize;
        switch (hand) {
          case HandS: return 32 + 2 * r / 64;
          case HandT: return 32 + 48 * r / 64;
          case HandU: return 32 + 9 * r / 64;
          case HandV: return 32 + 5 * r / 64;
        }
        return 0;
    }

    // Branch prediction.
    int btbEntries = 8192;
    int btbWays = 4;
    int rasEntries = 16;

    // Memory hierarchy (latencies in cycles).
    int l1iSizeKiB = 128, l1iWays = 8, l1iLatency = 3;
    int l1dSizeKiB = 128, l1dWays = 8, l1dLatency = 3;
    int l2SizeKiB = 8192, l2Ways = 16, l2Latency = 12;
    int memLatency = 80;
    int lineBytes = 64;
    int prefetchDistance = 8, prefetchDegree = 2;

    // Store sets.
    int ssitEntries = 4096;   ///< store IDs
    int lfstEntries = 512;    ///< producers

    // Execution latencies per class.
    int latIntAlu = 1;
    int latMove = 1;
    int latBranch = 1;
    int latIntMul = 3;
    int latIntDiv = 20;
    int latFpAlu = 4;
    int latFpDiv = 20;
    int latStoreAgu = 1;
    int latForward = 2;       ///< store-to-load forwarding
    int replayPenalty = 8;    ///< memory-order violation replay

    /**
     * Kanata pipeline-trace output file; empty disables tracing (the
     * CH_PIPE_TRACE environment variable is the fallback when empty).
     * Tracing never changes cycles or any statistic — see
     * docs/OBSERVABILITY.md.
     */
    std::string pipeTracePath;

    /**
     * Interval-sampling knobs; disabled by default so every run times
     * the full committed stream (docs/PERFORMANCE.md). simJob() switches
     * to simulateSampled() when sampling.enabled().
     */
    SamplingConfig sampling;

    /**
     * Fidelity-ladder rung timing this machine (docs/FIDELITY.md).
     * Detailed by default — selecting another rung is always an explicit
     * opt-in, and the detailed path's metrics stay byte-identical when
     * this field is left alone.
     */
    CoreModelKind coreModel = CoreModelKind::Detailed;

    /** Table 2 preset by fetch width (4, 6, 8, 12, 16). */
    static MachineConfig preset(int fetchWidth);
};

} // namespace ch

#endif // CH_UARCH_CONFIG_H
