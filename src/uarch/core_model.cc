#include "uarch/core_model.h"

#include "common/logging.h"
#include "uarch/core.h"
#include "uarch/fastsim.h"

namespace ch {

SimResult
CoreModel::replayResult(const TraceBuffer& trace)
{
    consumeTrace(trace);
    finish();
    return packageResult(trace.exited(), trace.exitCode());
}

void
CoreModel::consumeTrace(const TraceBuffer& trace)
{
    trace.replay(*this);
}

SimResult
CoreModel::packageResult(bool exited, int64_t exitCode)
{
    SimResult res;
    res.cycles = cycles();
    res.insts = instCount();
    res.exited = exited;
    res.exitCode = exitCode;
    res.stats = stats();
    return res;
}

std::unique_ptr<CoreModel>
makeCoreModel(const MachineConfig& cfg, Isa isa)
{
    switch (cfg.coreModel) {
      case CoreModelKind::Detailed:
        return std::make_unique<CycleSim>(cfg, isa);
      case CoreModelKind::Fast:
        return std::make_unique<FastSim>(cfg, isa);
      case CoreModelKind::Analytic:
        fatal("the analytic rung predicts from the static program, not "
              "the trace; use simulateAnalytic()");
    }
    fatal("unknown core model kind");
}

} // namespace ch
