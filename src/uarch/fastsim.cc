#include "uarch/fastsim.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"

namespace ch {

namespace {

/** Smallest power of two >= n. */
size_t
pow2At(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Issue-arbitration window (cycles). The live span of issue cycles is
 *  bounded by the producer-ring depth plus a few miss latencies, so a
 *  16K-cycle window behaves identically to the detailed model's 128K
 *  default while staying cache-resident. */
constexpr int kIssueWindowLog2 = 12;

} // namespace

FastSim::FastSim(const MachineConfig& cfg, Isa isa)
    : cfg_(cfg),
      frontendDepth_(cfg.frontendDepth(isa)),
      lineShift_(static_cast<int>(floorLog2(cfg.lineBytes))),
      btb_(cfg.btbEntries, cfg.btbWays),
      ras_(cfg.rasEntries),
      mem_(cfg_, &stats_),
      readyForUse_(pow2At(cfg.robSize * 2)),
      commit_(pow2At(cfg.robSize * 2)),
      issueRing_(1ull << kIssueWindowLog2),
      issueMask_((1ull << kIssueWindowLog2) - 1)
{
    for (size_t i = 0; i < fuCost_.size(); ++i) {
        const OpClass cls = static_cast<OpClass>(i);
        const int limit = fuPoolLimit(cls);
        const int lat = fuLatency(cls);
        CH_ASSERT(limit <= 255 && lat <= 255,
                  "FU table entry out of byte range");
        fuCost_[i].pool = static_cast<uint8_t>(fuPoolId(cls));
        fuCost_[i].limit = static_cast<uint8_t>(limit);
        fuCost_[i].latency = static_cast<uint8_t>(lat);
    }
}

// The latency/pool tables mirror CycleSim's exactly: the rungs must
// disagree only through what FastSim drops, never through different
// machine parameters.

int
FastSim::fuLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu: return cfg_.latIntAlu;
      case OpClass::Move: return cfg_.latMove;
      case OpClass::Nop: return cfg_.latMove;
      case OpClass::Syscall: return cfg_.latIntAlu;
      case OpClass::IntMul: return cfg_.latIntMul;
      case OpClass::IntDiv: return cfg_.latIntDiv;
      case OpClass::FpAlu: return cfg_.latFpAlu;
      case OpClass::FpDiv: return cfg_.latFpDiv;
      case OpClass::CondBr:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Ret: return cfg_.latBranch;
      case OpClass::Store: return cfg_.latStoreAgu;
      case OpClass::Load: return 1;  // AGU; cache latency added separately
    }
    return 1;
}

int
FastSim::fuPoolId(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntMul: return 1;
      case OpClass::IntDiv: return 2;
      case OpClass::FpAlu: return 3;
      case OpClass::FpDiv: return 4;
      case OpClass::Load: return 5;
      case OpClass::Store: return 6;
      default: return 0;  // integer ALU pool (incl. branches, moves)
    }
}

int
FastSim::fuPoolLimit(OpClass cls) const
{
    switch (fuPoolId(cls)) {
      case 1: return cfg_.fu.iMul;
      case 2: return cfg_.fu.iDiv;
      case 3: return cfg_.fu.fp;
      case 4: return cfg_.fu.fDiv;
      case 5: return cfg_.fu.load;
      case 6: return cfg_.fu.store;
      default: return cfg_.fu.intAlu;
    }
}

uint64_t
FastSim::arbitrate(int pool, int limit, uint64_t from)
{
    PoolSkip& skip = poolSkip_[pool];
    uint64_t c = from;
    if (c >= skip.from && c < skip.to)
        c = skip.to;   // proven full for this pool; see PoolSkip
    const uint64_t scanFrom = c;
    for (;; ++c) {
        IssueSlot& s = issueRing_[c & issueMask_];
        if (s.cycle != c) {
            s = IssueSlot();
            s.cycle = c;
        } else if (static_cast<int>(s.total) >= cfg_.issueWidth ||
                   static_cast<int>(s.pool[pool]) >= limit) {
            continue;
        }
        ++s.total;
        ++s.pool[pool];
        // [scanFrom, c) is now proven full for this pool; extend the
        // memo when contiguous with it, else restart it there.
        if (scanFrom == skip.to)
            skip.to = c;
        else if (c > scanFrom) {
            skip.from = scanFrom;
            skip.to = c;
        }
        return c;
    }
}

void
FastSim::handleBranch(const DynInst& di, const OpInfo& info,
                      uint64_t resolveCycle)
{
    bool mispredict = false;

    switch (info.brKind) {
      case BrKind::Cond: {
        ++hot(cBranchConds_, "branch.conds");
        const bool pred = tage_.observe(di.pc, di.taken);
        if (pred != di.taken) {
            mispredict = true;
            ++hot(cBranchMispredicts_, "branch.mispredicts");
        } else if (di.taken && btb_.lookup(di.pc) != di.nextPc) {
            btb_.insert(di.pc, di.nextPc);
            ++hot(cBranchBtbMisses_, "branch.btbMisses");
            redirectAt_ = std::max(redirectAt_, fetchCycle_ + 3);
        }
        break;
      }
      case BrKind::Jump:
        if (btb_.lookup(di.pc) != di.nextPc) {
            btb_.insert(di.pc, di.nextPc);
            ++hot(cBranchBtbMisses_, "branch.btbMisses");
            redirectAt_ = std::max(redirectAt_, fetchCycle_ + 3);
        }
        break;
      case BrKind::Call:
        ras_.push(di.pc + 4);
        if (btb_.lookup(di.pc) != di.nextPc) {
            btb_.insert(di.pc, di.nextPc);
            ++hot(cBranchBtbMisses_, "branch.btbMisses");
            redirectAt_ = std::max(redirectAt_, fetchCycle_ + 3);
        }
        break;
      case BrKind::IndCall: {
        ras_.push(di.pc + 4);
        const uint64_t pred = btb_.lookup(di.pc);
        btb_.insert(di.pc, di.nextPc);
        if (pred != di.nextPc) {
            mispredict = true;
            ++hot(cBranchMispredicts_, "branch.mispredicts");
        }
        break;
      }
      case BrKind::Ret: {
        const uint64_t pred = ras_.pop();
        if (pred != di.nextPc) {
            mispredict = true;
            ++hot(cBranchMispredicts_, "branch.mispredicts");
        }
        break;
      }
      case BrKind::None:
        return;
    }

    if (mispredict)
        redirectAt_ = std::max(redirectAt_, resolveCycle + 1);
}

void
FastSim::onInst(const DynInst& di)
{
    const OpInfo& info = di.info();

    // Front end: redirects, fetch bandwidth, one I$ access per line —
    // the same skeleton as CycleSim::stageFetch, without counters.
    bool icacheDelayed = false;
    if (fetchCycle_ < redirectAt_) {
        fetchCycle_ = redirectAt_;
        fetchedThisCycle_ = 0;
        lastFetchLine_ = ~0ull;
        lastRedirect_ = redirectAt_;
    }
    if (fetchedThisCycle_ >= cfg_.fetchWidth) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
    }
    const uint64_t line = di.pc >> lineShift_;
    if (line != lastFetchLine_) {
        const int lat = mem_.fetchAccess(di.pc);
        if (lat > cfg_.l1iLatency) {
            fetchCycle_ += lat - cfg_.l1iLatency;
            fetchedThisCycle_ = 0;
            icacheDelayed = true;
        }
        lastFetchLine_ = line;
    }
    const uint64_t fetchCycle = fetchCycle_;
    const bool squashDelayed = fetchCycle == lastRedirect_ &&
                               lastRedirect_ != 0;
    if (squashDelayed)
        icacheDelayed = false;
    ++fetchedThisCycle_;
    if (info.isBranch() && di.taken) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
        lastFetchLine_ = ~0ull;
    }

    // In-order dispatch at the front-end depth. ROB occupancy is the
    // one backend queue the fast rung does model: besides its timing
    // effect it bounds how far dispatch can run ahead of commit, which
    // keeps the issue-arbitration scan short (without it a sustained
    // FU-pool backlog grows without bound and each instruction rescans
    // it — quadratic time on FU-limited codes).
    const uint64_t frontEntry = fetchCycle + frontendDepth_;
    uint64_t dispatch = std::max(frontEntry, lastDispatch_);
    if (seq_ >= static_cast<uint64_t>(cfg_.robSize)) {
        dispatch = std::max(dispatch,
                            commit_.get(di.seq - cfg_.robSize) + 1);
    }
    lastDispatch_ = dispatch;

    // Operand readiness via producer timestamps. Branchless: the ring
    // loads are masked (always in-bounds), invalid producers select a
    // zero that never beats the dispatch floor, and the compares below
    // compile to conditional moves — producer validity is data, and
    // data-dependent branches here cost more than the loads they skip.
    uint64_t ready = dispatch + 1;
    bool waitMem = false;
    const uint64_t p1 = readyForUse_.get(di.prod1);
    const uint64_t p2 = readyForUse_.get(di.prod2);
    const bool v1 =
        di.prod1 != kNoProducer && di.seq - di.prod1 < readyForUse_.mask;
    const bool v2 =
        di.prod2 != kNoProducer && di.seq - di.prod2 < readyForUse_.mask;
    const uint64_t r1 = v1 ? p1 >> 1 : 0;
    const uint64_t r2 = v2 ? p2 >> 1 : 0;
    if (r1 > ready) {
        ready = r1;
        waitMem = (p1 & 1) != 0;
    }
    if (r2 > ready) {
        ready = r2;
        waitMem = (p2 & 1) != 0;
    }

    // Issue: FU pool + issue-width arbitration, then execute.
    const FuCost& fu = fuCost_[static_cast<size_t>(info.cls)];
    const uint64_t issue = arbitrate(fu.pool, fu.limit, ready);
    uint64_t resultAt = issue + fu.latency;
    bool execMem = false;
    if (info.isLoad()) {
        const int dlat = mem_.dataAccess(di.memAddr, false);
        resultAt = issue + 1 + dlat;
        execMem = dlat > cfg_.l1dLatency;
    }
    const uint64_t complete = resultAt + cfg_.issueLatency;

    if (info.brKind != BrKind::None)
        handleBranch(di, info, complete);

    if (info.isStore())
        mem_.dataAccess(di.memAddr, true);  // writes the D$ at retire

    // In-order commit, bounded by the commit width.
    uint64_t commit = std::max(complete + 1, lastCommit_);
    if (seq_ >= static_cast<uint64_t>(cfg_.commitWidth)) {
        commit = std::max(commit,
                          commit_.get(di.seq - cfg_.commitWidth) + 1);
    }
    commit_.set(di.seq, commit);
    readyForUse_.set(di.seq,
                     (resultAt << 1) | ((execMem || waitMem) ? 1 : 0));
    lastCommit_ = commit;
    ++seq_;

    StallCauses sc;
    sc.frontEntry = frontEntry;
    sc.dispatch = dispatch;
    sc.issue = issue;
    sc.result = resultAt;
    sc.squashDelayed = squashDelayed;
    sc.icacheDelayed = icacheDelayed;
    sc.waitMem = waitMem;
    sc.execMem = execMem;
    stalls_.onCommit(commit, sc);
}

void
FastSim::consumeTrace(const TraceBuffer& trace)
{
    trace.replayTo(*this);
}

uint64_t
FastSim::finish()
{
    stats_.counter("sim.cycles").set(lastCommit_);
    stats_.counter("sim.insts").set(seq_);
    stalls_.exportInto(stats_);
    CH_ASSERT(stalls_.total() == lastCommit_,
              "stall categories must sum to total cycles");
    return lastCommit_;
}

} // namespace ch
