#ifndef CH_UARCH_SIM_H
#define CH_UARCH_SIM_H

/**
 * @file
 * Top-level simulation driver: functional emulation feeding the
 * selected timing model (MachineConfig::coreModel — the fidelity
 * ladder, docs/FIDELITY.md), returning cycles, instruction counts, and
 * the event statistics the energy model consumes. SampleSummary and
 * SimResult live in uarch/core_model.h with the CoreModel interface.
 */

#include "emu/emulator.h"
#include "trace/trace_buffer.h"
#include "uarch/core.h"
#include "uarch/core_model.h"

namespace ch {

/**
 * Run @p prog on the machine described by @p cfg, timing the committed
 * stream with the rung cfg.coreModel selects (detailed or fast; the
 * analytic rung needs the static program and lives behind
 * simulateAnalytic() in analyze/analytic_model.h).
 */
SimResult simulate(const Program& prog, const MachineConfig& cfg,
                   uint64_t maxInsts = ~0ull);

/**
 * Time a previously captured committed stream on the machine described
 * by @p cfg, without re-running the functional emulator. The stream is
 * config-independent, so this produces byte-identical metrics to
 * simulate() of the same (program, maxInsts) — see docs/PERFORMANCE.md.
 */
SimResult simulateReplay(const TraceBuffer& trace, Isa isa,
                         const MachineConfig& cfg);

} // namespace ch

#endif // CH_UARCH_SIM_H
