#ifndef CH_UARCH_SIM_H
#define CH_UARCH_SIM_H

/**
 * @file
 * Top-level simulation driver: functional emulation feeding the
 * cycle-level core model, returning cycles, instruction counts, and the
 * event statistics the energy model consumes.
 */

#include <memory>

#include "emu/emulator.h"
#include "trace/trace_buffer.h"
#include "uarch/core.h"

namespace ch {

/**
 * Per-run sampling estimate (docs/PERFORMANCE.md, "Sampled simulation").
 * Populated only by simulateSampled(); the IPC estimate is the mean of
 * the per-interval measured-window IPCs with a CLT-based 95% confidence
 * interval (stderr = sd/sqrt(n), ci95 = 1.96 * stderr).
 */
struct SampleSummary {
    uint64_t intervals = 0;      ///< measured windows that completed
    uint64_t measuredInsts = 0;  ///< instructions timed and measured
    uint64_t warmupInsts = 0;    ///< instructions timed but unmeasured
    uint64_t warmedInsts = 0;    ///< instructions functionally warmed
    double ipcMean = 0.0;
    double ipcStderr = 0.0;
    double ipcCi95 = 0.0;

    /** Half-width of the 95% CI relative to the mean (0 when n < 2). */
    double
    relErr() const
    {
        return ipcMean > 0.0 ? ipcCi95 / ipcMean : 0.0;
    }
};

/** Outcome of one timed run. */
struct SimResult {
    uint64_t cycles = 0;
    uint64_t insts = 0;
    bool exited = false;
    int64_t exitCode = 0;
    StatGroup stats;

    /** True when this result came from simulateSampled() with sampling
     *  actually engaged; cycles is then an estimate, not a count. */
    bool sampled = false;
    SampleSummary sample;

    double
    ipc() const
    {
        if (sampled)
            return sample.ipcMean;
        return cycles == 0 ? 0.0
                           : static_cast<double>(insts) / cycles;
    }
};

/** Run @p prog on the machine described by @p cfg. */
SimResult simulate(const Program& prog, const MachineConfig& cfg,
                   uint64_t maxInsts = ~0ull);

/**
 * Time a previously captured committed stream on the machine described
 * by @p cfg, without re-running the functional emulator. The stream is
 * config-independent, so this produces byte-identical metrics to
 * simulate() of the same (program, maxInsts) — see docs/PERFORMANCE.md.
 */
SimResult simulateReplay(const TraceBuffer& trace, Isa isa,
                         const MachineConfig& cfg);

} // namespace ch

#endif // CH_UARCH_SIM_H
