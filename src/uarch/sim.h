#ifndef CH_UARCH_SIM_H
#define CH_UARCH_SIM_H

/**
 * @file
 * Top-level simulation driver: functional emulation feeding the
 * cycle-level core model, returning cycles, instruction counts, and the
 * event statistics the energy model consumes.
 */

#include <memory>

#include "emu/emulator.h"
#include "trace/trace_buffer.h"
#include "uarch/core.h"

namespace ch {

/** Outcome of one timed run. */
struct SimResult {
    uint64_t cycles = 0;
    uint64_t insts = 0;
    bool exited = false;
    int64_t exitCode = 0;
    StatGroup stats;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(insts) / cycles;
    }
};

/** Run @p prog on the machine described by @p cfg. */
SimResult simulate(const Program& prog, const MachineConfig& cfg,
                   uint64_t maxInsts = ~0ull);

/**
 * Time a previously captured committed stream on the machine described
 * by @p cfg, without re-running the functional emulator. The stream is
 * config-independent, so this produces byte-identical metrics to
 * simulate() of the same (program, maxInsts) — see docs/PERFORMANCE.md.
 */
SimResult simulateReplay(const TraceBuffer& trace, Isa isa,
                         const MachineConfig& cfg);

} // namespace ch

#endif // CH_UARCH_SIM_H
