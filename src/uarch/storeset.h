#ifndef CH_UARCH_STORESET_H
#define CH_UARCH_STORESET_H

/**
 * @file
 * Store-set memory dependence predictor (Chrysos & Emer), as configured
 * in Table 2: 512 producers, 4096 store IDs. Loads predicted dependent on
 * an in-flight store wait for it; violations merge the load and store
 * into one set.
 */

#include <cstdint>
#include <vector>

namespace ch {

class StoreSets
{
  public:
    StoreSets(int ssitEntries, int lfstEntries)
        : ssit_(ssitEntries, kInvalid), lfstSize_(lfstEntries)
    {
    }

    /** Store-set id for @p pc; kInvalid when none. */
    uint32_t
    setOf(uint64_t pc) const
    {
        return ssit_[index(pc)];
    }

    /** Merge the sets of a violating load/store pair. */
    void
    train(uint64_t loadPc, uint64_t storePc)
    {
        const size_t li = index(loadPc);
        const size_t si = index(storePc);
        uint32_t setId;
        if (ssit_[li] != kInvalid) {
            setId = ssit_[li];
        } else if (ssit_[si] != kInvalid) {
            setId = ssit_[si];
        } else {
            setId = nextSet_;
            nextSet_ = (nextSet_ + 1) % lfstSize_;
        }
        // Merge rule: both index the smaller set id (Chrysos & Emer).
        if (ssit_[li] != kInvalid && ssit_[si] != kInvalid) {
            setId = std::min(ssit_[li], ssit_[si]);
        }
        ssit_[li] = setId;
        ssit_[si] = setId;
    }

    static constexpr uint32_t kInvalid = ~0u;

  private:
    size_t
    index(uint64_t pc) const
    {
        return (pc >> 2) % ssit_.size();
    }

    std::vector<uint32_t> ssit_;
    int lfstSize_;
    uint32_t nextSet_ = 0;
};

} // namespace ch

#endif // CH_UARCH_STORESET_H
