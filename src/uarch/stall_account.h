#ifndef CH_UARCH_STALL_ACCOUNT_H
#define CH_UARCH_STALL_ACCOUNT_H

/**
 * @file
 * Top-down-style stall-cycle attribution for the commit-ordered timing
 * model. Every simulated cycle is attributed to exactly one category, so
 * the six counters sum to the run's total cycles — the invariant
 * tests/pipetrace_test.cc enforces across all (workload x ISA) pairs.
 *
 * The model commits in order, so at any cycle with no commit the oldest
 * uncommitted instruction is the one that eventually ends the gap. Each
 * gap cycle is classified by where that instruction was at the time
 * (still in the front end, stalled at dispatch, waiting for operands,
 * executing, draining the writeback pipeline) and by why that region was
 * slow (squash refill, I-cache miss, fetch bandwidth, memory vs core
 * resources). Cycles with at least one commit count as retiring.
 *
 * Category definitions and the classification walk-through live in
 * docs/OBSERVABILITY.md.
 */

#include <array>
#include <cstdint>

#include "common/stats.h"

namespace ch {

/** Where a simulated cycle went. */
enum class StallCat : int {
    Retiring = 0,        ///< >= 1 instruction committed this cycle
    FrontendLatency,     ///< front-end empty: I-cache miss refill
    FrontendBandwidth,   ///< front-end empty: fetch width / taken-branch
    BadSpeculation,      ///< front-end empty: squash redirect refill
    BackendMemory,       ///< waiting on D-cache misses, LSQ, replays
    BackendCore,         ///< waiting on FUs, dependencies, core queues
};

constexpr int kNumStallCats = 6;

/** Counter name for each category ("stall.retiring", ...). */
const char* stallCatCounterName(int cat);

/** Per-instruction cause record handed to onCommit(). */
struct StallCauses {
    uint64_t frontEntry = 0;  ///< fetch + frontendDepth: earliest dispatch
    uint64_t dispatch = 0;    ///< actual dispatch cycle
    uint64_t issue = 0;       ///< issue (FU selection) cycle
    uint64_t result = 0;      ///< execution result cycle

    bool squashDelayed = false;  ///< fetch waited on a squash redirect
    bool icacheDelayed = false;  ///< fetch waited on an I-cache miss
    bool dispatchMem = false;    ///< dominant dispatch stall was LQ/SQ
    bool waitMem = false;        ///< dominant operand wait was a memory op
    bool execMem = false;        ///< result latency came from a D$ miss
};

/** Accumulates the attribution; drive with commit cycles in order. */
class StallAccountant
{
  public:
    /**
     * Account all cycles up to and including @p commit. Commit cycles
     * must arrive in non-decreasing order (the model commits in order);
     * a repeat of the previous cycle (same-cycle commit group) adds
     * nothing, keeping cycles counted exactly once.
     */
    void onCommit(uint64_t commit, const StallCauses& c);

    /** Write the six counters into @p stats. */
    void exportInto(StatGroup& stats) const;

    /** Sum over all categories (== cycles accounted so far). */
    uint64_t total() const;

    uint64_t category(StallCat cat) const
    {
        return cats_[static_cast<int>(cat)];
    }

  private:
    uint64_t accounted_ = 0;   ///< cycles 1..accounted_ are attributed
    std::array<uint64_t, kNumStallCats> cats_{};
};

} // namespace ch

#endif // CH_UARCH_STALL_ACCOUNT_H
