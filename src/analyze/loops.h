#ifndef CH_ANALYZE_LOOPS_H
#define CH_ANALYZE_LOOPS_H

/**
 * @file
 * Natural-loop reconstruction over the shared binary CFG (cfg.h).
 * Dominators are computed with the Cooper-Harvey-Kennedy iterative
 * scheme, which converges in a couple of passes because buildBinFunc
 * already numbers blocks in reverse post-order. Back edges (b -> h
 * with h dominating b) identify loop headers; loops sharing a header
 * are merged, as a compiled `continue` produces multiple latches.
 */

#include <cstddef>
#include <vector>

#include "analyze/cfg.h"

namespace ch::analyze {

/** One natural loop of a reconstructed function. */
struct Loop {
    int header = 0;           ///< header block id (RPO numbering)
    std::vector<int> blocks;  ///< member block ids, ascending = RPO
    std::vector<int> body;    ///< straightened instruction indices
    int depth = 1;            ///< nesting depth, 1 = outermost
    bool innermost = true;    ///< contains no other loop
    bool hasCall = false;     ///< body calls out of the function
};

/**
 * Immediate dominator of every block (idom[0] == 0 for the entry;
 * -1 only for blocks unreachable from block 0, which buildBinFunc
 * does not produce).
 */
std::vector<int> immediateDominators(const cfg::BinFunc& fn);

/**
 * All natural loops of @p fn, outermost first. The straightened body
 * lists member blocks in RPO and instructions in text order within
 * each block — the steady-state execution order under the analyzer's
 * backward-taken / forward-not-taken branch assumption.
 */
std::vector<Loop> findLoops(const Program& prog, const cfg::BinFunc& fn);

} // namespace ch::analyze

#endif // CH_ANALYZE_LOOPS_H
