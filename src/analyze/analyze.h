#ifndef CH_ANALYZE_ANALYZE_H
#define CH_ANALYZE_ANALYZE_H

/**
 * @file
 * Static throughput and critical-path analysis of compiled programs
 * (docs/ANALYZER.md). For every natural loop the analyzer computes
 *
 *  - a resource bound: cycles/iteration needed by the front end
 *    (fetch groups end at statically-taken branches), the issue and
 *    commit widths, and each functional-unit pool, all read from the
 *    same MachineConfig tables CycleSim uses; and
 *  - a latency bound: the loop-carried dependence recurrence, found by
 *    replaying the straightened body symbolically with per-ISA
 *    architectural ready-time state (registers for RISC, the result
 *    ring + SP for STRAIGHT, the four hand rings for Clockhands).
 *
 * Predicted steady-state cycles/iteration is the max of the two;
 * predicted IPC is bodyInsts over that. The dominating term names the
 * bottleneck, mirroring the stall.* taxonomy of docs/OBSERVABILITY.md.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/cfg.h"
#include "analyze/loops.h"
#include "mem/program.h"
#include "uarch/config.h"

namespace ch::analyze {

// ---------------------------------------------------------------------
// The FU pool mirror of CycleSim (src/uarch/core.cc fuPoolId et al.).
// ---------------------------------------------------------------------

constexpr int kNumFuPools = 7;

/** Pool id of @p cls: 0 intAlu (incl. branches/moves), 1 iMul, ... */
int fuPoolId(OpClass cls);

/** Number of units in pool @p pool under @p cfg. */
int fuPoolLimit(const MachineConfig& cfg, int pool);

/** Short pool name for bottleneck labels ("intAlu", "load", ...). */
std::string_view fuPoolName(int pool);

/**
 * Static execution latency of @p cls: CycleSim's fuLatency, with loads
 * charged an L1-hit access (1 + l1dLatency) since the analyzer cannot
 * see cache misses.
 */
int staticLatency(const MachineConfig& cfg, OpClass cls);

// ---------------------------------------------------------------------
// Per-loop report
// ---------------------------------------------------------------------

enum class Bottleneck : uint8_t {
    Frontend,  ///< fetch-group bound (taken branches / fetch width)
    Fu,        ///< one functional-unit pool saturates
    Issue,     ///< issue width
    Commit,    ///< commit width
    DepChain,  ///< loop-carried dependence recurrence
};

/** Bounds and attribution for one natural loop. */
struct LoopReport {
    // Identity.
    size_t funcEntry = 0;  ///< entry instruction of the owning function
    size_t headInst = 0;   ///< first instruction of the header block
    int srcLine = 0;       ///< source line of headInst, 0 if unknown
    int depth = 1;
    bool innermost = true;
    bool hasCall = false;  ///< callee cycles are NOT modelled
    std::vector<int> body; ///< straightened static instruction indices

    // Resource bound terms, all in cycles per iteration.
    double fetchCycles = 0;
    double issueCycles = 0;
    double commitCycles = 0;
    double fuCycles[kNumFuPools] = {};
    double resourceCycles = 0;

    // Latency bound: the dependence-recurrence cycles per iteration.
    double latencyCycles = 0;

    double cyclesPerIter = 0;  ///< max(resource, latency), >= 1
    double predictedIpc = 0;   ///< body.size() / cyclesPerIter

    Bottleneck bottleneck = Bottleneck::Frontend;
    int bottleneckPool = 0;    ///< valid when bottleneck == Fu

    size_t bodyInsts() const { return body.size(); }

    /** Label: "frontend", "issue", "commit", "depchain", "fu.<pool>". */
    std::string bottleneckName() const;
};

// ---------------------------------------------------------------------
// Lints (implemented in lints.cc)
// ---------------------------------------------------------------------

enum class LintKind : uint8_t {
    JunkSlots,         ///< STRAIGHT loop wastes ring slots on no-values
    HandQuotaHotspot,  ///< Clockhands loop over-writes one hand
    LongLifetime,      ///< read distance within 2 of the window limit
};

std::string_view lintKindName(LintKind kind);

/** One advisory diagnostic, anchored to a static instruction. */
struct Lint {
    LintKind kind = LintKind::LongLifetime;
    size_t instIndex = 0;
    int srcLine = 0;
    std::string detail;
};

// ---------------------------------------------------------------------
// Whole-program analysis
// ---------------------------------------------------------------------

struct ProgramReport {
    std::vector<LoopReport> loops;  ///< all loops, all functions
    std::vector<Lint> lints;
    size_t numFuncs = 0;
    size_t numBlocks = 0;
    size_t cfgProblems = 0;  ///< structural defects; loops still reported

    bool ok() const { return cfgProblems == 0; }
};

/**
 * Analyze every function reachable from the program entry (direct
 * calls, transitively — the same discovery verifyProgram uses).
 */
ProgramReport analyzeProgram(const Program& prog,
                             const MachineConfig& cfg);

/** Bound one loop of @p fn (exposed for tests). */
LoopReport boundLoop(const Program& prog, const cfg::BinFunc& fn,
                     const Loop& loop, const MachineConfig& cfg);

/** Advisory lints over @p prog and its loop reports (lints.cc). */
std::vector<Lint> lintProgram(const Program& prog,
                              const MachineConfig& cfg,
                              const std::vector<LoopReport>& loops);

/** Human-readable report (one line per loop + lints). */
std::string formatReport(const Program& prog, const ProgramReport& rep,
                         bool allLoops);

/** JSON report (stable field order, LF line ends). */
std::string reportJson(const Program& prog, const std::string& label,
                       const ProgramReport& rep);

} // namespace ch::analyze

#endif // CH_ANALYZE_ANALYZE_H
