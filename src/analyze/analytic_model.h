#ifndef CH_ANALYZE_ANALYTIC_MODEL_H
#define CH_ANALYZE_ANALYTIC_MODEL_H

/**
 * @file
 * The fidelity ladder's zero-execution rung (docs/FIDELITY.md): a
 * CoreModel wrapper around the static throughput analyzer
 * (analyze/analyze.h, docs/ANALYZER.md). No pipeline state is simulated
 * at all — each committed instruction is attributed to the deepest
 * static loop containing its PC, and the cycle estimate is
 *
 *     sum over loops l of  dyn_insts(l) / predictedIpc(l)
 *   + out-of-loop insts   / sustained machine width,
 *
 * where predictedIpc is chanalyze's per-loop steady-state prediction
 * (max of resource and dependence-recurrence bounds — identical numbers
 * to fig_static_ipc, by construction). Per-instruction work is one
 * table lookup and a counter increment, so this rung runs at
 * trace-decode speed; the price is that everything outside steady-state
 * loop bodies (cold code, calls, cache behaviour, mispredictions) is
 * invisible to it.
 *
 * Counters emitted: sim.cycles, sim.insts, analytic.loops,
 * analytic.loopInsts, analytic.otherInsts. No stall.* counters — the
 * model has no notion of a stall — and stallCycles() returns 0, so this
 * rung cannot be sampled (simulateSampled() requires the stall-sum
 * invariant; bench_util.h rejects the combination at parse time).
 *
 * This rung lives in src/analyze (not src/uarch) because ch_analyze
 * already links ch_uarch; makeCoreModel() therefore cannot construct
 * it — use simulateAnalytic().
 */

#include <cstdint>
#include <vector>

#include "analyze/analyze.h"
#include "mem/program.h"
#include "uarch/config.h"
#include "uarch/core_model.h"

namespace ch::analyze {

/** The analytic rung: counts per-loop dynamic instructions, predicts
 *  cycles from the static per-loop IPC table. */
class AnalyticModel : public CoreModel
{
  public:
    AnalyticModel(const Program& prog, const MachineConfig& cfg);

    void onInst(const DynInst& di) override;

    /** Warming is counting: the model has no other state. */
    void warmInst(const DynInst& di) override { onInst(di); }

    uint64_t finish() override;

    uint64_t cycles() const override { return cycles_; }
    uint64_t instCount() const override { return insts_; }
    const StatGroup& stats() const override { return stats_; }
    StatGroup& stats() override { return stats_; }

    /** The analytic rung attributes no stall cycles. */
    uint64_t stallCycles(StallCat) const override { return 0; }

    /** The underlying static analysis (same report chanalyze prints). */
    const ProgramReport& report() const { return report_; }

  private:
    StatGroup stats_;
    ProgramReport report_;

    uint64_t textBase_;
    double width_;             ///< sustained width for out-of-loop code
    std::vector<int> loopOf_;  ///< static inst index -> deepest loop
    std::vector<double> ipc_;  ///< per-loop predicted IPC (clamped > 0)

    std::vector<uint64_t> loopDyn_;  ///< committed insts per loop
    uint64_t otherDyn_ = 0;          ///< committed insts outside loops
    uint64_t insts_ = 0;
    uint64_t cycles_ = 0;
};

/**
 * Time @p prog's committed stream with the analytic rung: replays
 * @p trace when given, otherwise runs the functional emulator up to
 * @p maxInsts. The drivers' analytic dispatch point (runner/runner.cc).
 */
SimResult simulateAnalytic(const Program& prog, const MachineConfig& cfg,
                           const TraceBuffer* trace,
                           uint64_t maxInsts = ~0ull);

} // namespace ch::analyze

#endif // CH_ANALYZE_ANALYTIC_MODEL_H
