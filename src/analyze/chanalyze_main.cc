/**
 * @file
 * chanalyze: static throughput & critical-path analyzer.
 *
 *   chanalyze [--isa=riscv|straight|clockhands] [options] file.s
 *   chanalyze --workloads [options]
 *
 * Options:
 *   --fetch=N      machine preset (Table 2 column), default 8
 *   --json         machine-readable report (ch-analyze-report-v1)
 *   --all-loops    report every loop, not only innermost ones
 *   --verify       also run chverify's dataflow and print pressure
 *
 * The first form assembles a .s file (paper syntax) and analyzes it;
 * the second analyzes every compiled workload for all three ISAs.
 * Exit status: 0 clean, 1 structural CFG problems found, 2 usage or
 * input error. Lints are advisory and do not affect the exit status.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analyze/analyze.h"
#include "asm/assembler.h"
#include "common/logging.h"
#include "verify/verify.h"
#include "workloads/workloads.h"

namespace {

struct Options {
    ch::MachineConfig cfg;
    bool json = false;
    bool allLoops = false;
    bool verify = false;
};

int
usage()
{
    std::cerr << "usage: chanalyze [--isa=riscv|straight|clockhands] "
                 "[--fetch=N] [--json]\n"
                 "                 [--all-loops] [--verify] file.s\n"
                 "       chanalyze --workloads [--fetch=N] [--json] "
                 "[--all-loops] [--verify]\n";
    return 2;
}

/** Analyze one program; returns 1 when the CFG is malformed. */
int
analyzeOne(const std::string& label, const ch::Program& prog,
           const Options& opt)
{
    const ch::analyze::ProgramReport rep =
        ch::analyze::analyzeProgram(prog, opt.cfg);
    if (opt.json) {
        std::cout << reportJson(prog, label, rep);
    } else {
        std::cout << label << " (" << ch::isaName(prog.isa) << "): "
                  << formatReport(prog, rep, opt.allLoops);
        if (opt.verify) {
            const ch::VerifyResult vr = ch::verifyProgram(prog);
            std::cout << formatPressure(prog, vr);
        }
    }
    return rep.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    ch::Isa isa = ch::Isa::Riscv;
    bool isaSet = false, allWorkloads = false;
    Options opt;
    std::string file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--isa=", 0) == 0) {
            const std::string name = arg.substr(6);
            if (name == "riscv") {
                isa = ch::Isa::Riscv;
            } else if (name == "straight") {
                isa = ch::Isa::Straight;
            } else if (name == "clockhands") {
                isa = ch::Isa::Clockhands;
            } else {
                return usage();
            }
            isaSet = true;
        } else if (arg.rfind("--fetch=", 0) == 0) {
            try {
                opt.cfg = ch::MachineConfig::preset(
                    std::stoi(arg.substr(8)));
            } catch (const std::exception&) {
                return usage();
            }
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--all-loops") {
            opt.allLoops = true;
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--workloads") {
            allWorkloads = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (file.empty()) {
            file = arg;
        } else {
            return usage();
        }
    }

    try {
        if (allWorkloads) {
            int rc = 0;
            for (const auto& wl : ch::workloads()) {
                for (const ch::Isa i : {ch::Isa::Riscv, ch::Isa::Straight,
                                        ch::Isa::Clockhands}) {
                    rc |= analyzeOne(wl.name,
                                     ch::compiledWorkload(wl.name, i),
                                     opt);
                }
            }
            return rc;
        }

        if (file.empty())
            return usage();
        if (!isaSet) {
            std::cerr << "chanalyze: --isa is required for .s input\n";
            return usage();
        }
        std::ifstream in(file);
        if (!in) {
            std::cerr << "chanalyze: cannot open " << file << "\n";
            return 2;
        }
        std::ostringstream src;
        src << in.rdbuf();
        const ch::Program prog = ch::assemble(isa, src.str());
        return analyzeOne(file, prog, opt);
    } catch (const ch::FatalError& e) {
        std::cerr << "chanalyze: " << e.what() << "\n";
        return 2;
    }
}
