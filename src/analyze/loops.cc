#include "analyze/loops.h"

#include <algorithm>
#include <map>
#include <set>

namespace ch::analyze {

namespace {

/** CHK two-finger walk to the common dominator of @p a and @p b. */
int
intersect(int a, int b, const std::vector<int>& idom)
{
    while (a != b) {
        while (a > b)
            a = idom[a];
        while (b > a)
            b = idom[b];
    }
    return a;
}

/** Whether @p h dominates @p b (reflexive). */
bool
dominates(int h, int b, const std::vector<int>& idom)
{
    while (b != h && b != 0)
        b = idom[b];
    return b == h;
}

} // namespace

std::vector<int>
immediateDominators(const cfg::BinFunc& fn)
{
    const size_t nb = fn.blocks.size();
    std::vector<int> idom(nb, -1);
    if (nb == 0)
        return idom;
    idom[0] = 0;

    std::vector<std::vector<int>> preds(nb);
    for (size_t b = 0; b < nb; ++b)
        for (const int s : fn.blocks[b].succs)
            preds[static_cast<size_t>(s)].push_back(static_cast<int>(b));

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 1; b < nb; ++b) {
            int d = -1;
            for (const int p : preds[b]) {
                if (idom[static_cast<size_t>(p)] < 0)
                    continue;
                d = d < 0 ? p : intersect(p, d, idom);
            }
            if (d >= 0 && idom[b] != d) {
                idom[b] = d;
                changed = true;
            }
        }
    }
    return idom;
}

std::vector<Loop>
findLoops(const Program& prog, const cfg::BinFunc& fn)
{
    const size_t nb = fn.blocks.size();
    std::vector<Loop> loops;
    if (nb == 0)
        return loops;

    const std::vector<int> idom = immediateDominators(fn);
    std::vector<std::vector<int>> preds(nb);
    for (size_t b = 0; b < nb; ++b)
        for (const int s : fn.blocks[b].succs)
            preds[static_cast<size_t>(s)].push_back(static_cast<int>(b));

    // Natural loop of every back edge, merged per header (a compiled
    // `continue` gives one header several latches).
    std::map<int, std::set<int>> byHeader;
    for (size_t b = 0; b < nb; ++b) {
        for (const int h : fn.blocks[b].succs) {
            if (!dominates(h, static_cast<int>(b), idom))
                continue;
            auto& members = byHeader[h];
            members.insert(h);
            std::vector<int> work;
            if (members.insert(static_cast<int>(b)).second)
                work.push_back(static_cast<int>(b));
            while (!work.empty()) {
                const int m = work.back();
                work.pop_back();
                if (m == h)
                    continue;
                for (const int p : preds[static_cast<size_t>(m)])
                    if (members.insert(p).second)
                        work.push_back(p);
            }
        }
    }

    for (const auto& [header, members] : byHeader) {
        Loop lp;
        lp.header = header;
        lp.blocks.assign(members.begin(), members.end());
        for (const int b : lp.blocks) {
            const cfg::BinBlock& blk = fn.blocks[static_cast<size_t>(b)];
            for (int i = blk.first; i <= blk.last; ++i) {
                lp.body.push_back(i);
                const BrKind br = prog.decoded[i].info().brKind;
                if (br == BrKind::Call || br == BrKind::IndCall)
                    lp.hasCall = true;
            }
        }
        loops.push_back(std::move(lp));
    }

    // Nesting: loop A contains B when A's member set is a strict
    // superset of B's. Headers are unique, so subset tests suffice.
    for (auto& a : loops) {
        for (const auto& b : loops) {
            if (a.header == b.header || a.blocks.size() <= b.blocks.size())
                continue;
            if (std::includes(a.blocks.begin(), a.blocks.end(),
                              b.blocks.begin(), b.blocks.end())) {
                a.innermost = false;
            }
        }
        for (const auto& b : loops) {
            if (a.header != b.header && b.blocks.size() > a.blocks.size() &&
                std::includes(b.blocks.begin(), b.blocks.end(),
                              a.blocks.begin(), a.blocks.end())) {
                ++a.depth;
            }
        }
    }
    std::stable_sort(loops.begin(), loops.end(),
                     [](const Loop& a, const Loop& b) {
                         return a.depth != b.depth ? a.depth < b.depth
                                                   : a.header < b.header;
                     });
    return loops;
}

} // namespace ch::analyze
