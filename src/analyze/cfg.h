#ifndef CH_ANALYZE_CFG_H
#define CH_ANALYZE_CFG_H

/**
 * @file
 * Binary control-flow-graph reconstruction from a decoded Program,
 * shared by the static verifier (src/verify) and the static throughput
 * analyzer (src/analyze). A function is everything reachable from one
 * entry instruction; blocks are emitted in reverse post-order with
 * block 0 the entry, which makes the forward dataflows of both clients
 * converge quickly and gives the loop finder a ready-made order.
 *
 * The CFG layer is deliberately diagnostic-agnostic: structural
 * problems (bad branch targets, control running off the end of the
 * text) are reported as neutral CfgProblem records, and each client
 * renders them in its own issue vocabulary.
 */

#include <cstdint>
#include <vector>

#include "mem/program.h"

namespace ch::cfg {

/** Control-flow behaviour of one decoded instruction. */
struct InstFlow {
    bool isCall = false;     ///< JAL / JALR (execution continues after)
    bool isExit = false;     ///< JR or ecall-exit: leaves the function
    int callTarget = -1;     ///< direct call target index, -1 = indirect
    int succ[2] = {-1, -1};  ///< intra-function successor indices
    int numSucc = 0;
    bool badTarget = false;  ///< direct target invalid (problem emitted)
    bool offEnd = false;     ///< sequential successor past end of text
};

/** Classify instruction @p i of @p prog. */
InstFlow instFlow(const Program& prog, size_t i);

/** Structural CFG defect kinds. */
enum class CfgProblemKind : uint8_t {
    BadEntry,    ///< function entry outside the text segment
    BadTarget,   ///< branch target outside text or misaligned
    FallOffEnd,  ///< control can run past the end of the text
};

/** One structural defect, anchored to a static instruction index. */
struct CfgProblem {
    CfgProblemKind kind = CfgProblemKind::BadTarget;
    size_t instIndex = 0;
};

/** One basic block: instructions [first, last], block successor ids. */
struct BinBlock {
    int first = 0;
    int last = 0;
    std::vector<int> succs;
};

/** One reconstructed function, blocks in reverse post-order (0=entry). */
struct BinFunc {
    size_t entryInst = 0;
    std::vector<BinBlock> blocks;
    std::vector<int> blockOfInst;      ///< per text index, -1 = not here
    std::vector<size_t> callTargets;   ///< direct callees discovered
    std::vector<CfgProblem> problems;  ///< structural defects, DFS order
};

/** Build the CFG of the function entered at instruction @p entry. */
BinFunc buildBinFunc(const Program& prog, size_t entry);

} // namespace ch::cfg

#endif // CH_ANALYZE_CFG_H
