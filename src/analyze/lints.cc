#include "analyze/analyze.h"

#include <set>
#include <sstream>

namespace ch::analyze {

std::string_view
lintKindName(LintKind kind)
{
    switch (kind) {
      case LintKind::JunkSlots: return "junk-slots";
      case LintKind::HandQuotaHotspot: return "hand-quota-hotspot";
      case LintKind::LongLifetime: return "long-lifetime";
    }
    return "?";
}

namespace {

/** Reads within this many slots of the window limit get flagged. */
constexpr int kLifetimeMargin = 2;

/** Loop junk-slot share (STRAIGHT) above which we complain. */
constexpr double kJunkShare = 0.30;

void
lintLifetimes(const Program& prog, std::vector<Lint>& out)
{
    if (prog.isa == Isa::Riscv)
        return;
    const int limit = prog.isa == Isa::Straight
                          ? kStraightMaxDist - kLifetimeMargin
                          : kHandDepth - 1 - kLifetimeMargin;
    for (size_t i = 0; i < prog.numInsts(); ++i) {
        const Inst& inst = prog.decoded[i];
        const OpInfo& info = inst.info();
        auto check = [&](uint8_t enc, uint8_t hand) {
            if (prog.isa == Isa::Straight &&
                (enc == kStraightZeroDist || enc == kStraightSpBase)) {
                return;
            }
            if (prog.isa == Isa::Clockhands && hand == HandS &&
                enc == kHandZeroDist) {
                return;
            }
            if (enc < limit)
                return;
            std::ostringstream os;
            os << "read distance " << static_cast<int>(enc)
               << " is within " << kLifetimeMargin + 1
               << " of the window limit ("
               << (prog.isa == Isa::Straight ? kStraightMaxDist
                                             : kHandDepth - 1)
               << "); a longer lifetime would force a relay or spill";
            Lint l;
            l.kind = LintKind::LongLifetime;
            l.instIndex = i;
            if (i < prog.srcLines.size())
                l.srcLine = prog.srcLines[i];
            l.detail = os.str();
            out.push_back(std::move(l));
        };
        if (info.numSrcs >= 1)
            check(inst.src1, inst.src1Hand);
        if (info.numSrcs >= 2)
            check(inst.src2, inst.src2Hand);
    }
}

void
lintJunkSlots(const Program& prog, const std::vector<LoopReport>& loops,
              std::vector<Lint>& out)
{
    std::set<size_t> flagged;
    for (const LoopReport& lp : loops) {
        if (!lp.innermost || lp.bodyInsts() < 4 ||
            !flagged.insert(lp.headInst).second) {
            continue;
        }
        size_t junk = 0;
        for (const int i : lp.body)
            if (!prog.decoded[static_cast<size_t>(i)].info().hasDst)
                ++junk;
        const double share =
            static_cast<double>(junk) / static_cast<double>(lp.bodyInsts());
        if (share <= kJunkShare)
            continue;
        std::ostringstream os;
        os << junk << " of " << lp.bodyInsts()
           << " ring slots per iteration carry no value; valueless "
              "instructions still consume STRAIGHT's register window";
        Lint l;
        l.kind = LintKind::JunkSlots;
        l.instIndex = lp.headInst;
        l.srcLine = lp.srcLine;
        l.detail = os.str();
        out.push_back(std::move(l));
    }
}

void
lintHandQuota(const Program& prog, const MachineConfig& cfg,
              const std::vector<LoopReport>& loops, std::vector<Lint>& out)
{
    std::set<size_t> flagged;
    for (const LoopReport& lp : loops) {
        if (!lp.innermost || !flagged.insert(lp.headInst).second)
            continue;
        int writes[kNumHands] = {};
        int total = 0;
        for (const int i : lp.body) {
            const Inst& inst = prog.decoded[static_cast<size_t>(i)];
            if (!inst.info().hasDst)
                continue;
            ++writes[inst.dst % kNumHands];
            ++total;
        }
        if (total < 8)
            continue;
        for (int h = 0; h < kNumHands; ++h) {
            const double share =
                static_cast<double>(writes[h]) / total;
            const double quotaShare =
                static_cast<double>(cfg.handQuota(h)) /
                cfg.physRegsRenameFree();
            if (writes[h] < 4 || share <= 2 * quotaShare)
                continue;
            std::ostringstream os;
            os << "hand " << handName(static_cast<uint8_t>(h))
               << " takes " << writes[h] << "/" << total
               << " writes per iteration but holds only "
               << cfg.handQuota(h) << "/" << cfg.physRegsRenameFree()
               << " of the physical registers; expect quota stalls";
            Lint l;
            l.kind = LintKind::HandQuotaHotspot;
            l.instIndex = lp.headInst;
            l.srcLine = lp.srcLine;
            l.detail = os.str();
            out.push_back(std::move(l));
        }
    }
}

} // namespace

std::vector<Lint>
lintProgram(const Program& prog, const MachineConfig& cfg,
            const std::vector<LoopReport>& loops)
{
    std::vector<Lint> out;
    lintLifetimes(prog, out);
    if (prog.isa == Isa::Straight)
        lintJunkSlots(prog, loops, out);
    if (prog.isa == Isa::Clockhands)
        lintHandQuota(prog, cfg, loops, out);
    return out;
}

} // namespace ch::analyze
