#include "analyze/cfg.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "isa/encoding.h"

namespace ch::cfg {

namespace {

/** Index of the instruction @p imm bytes away from instruction @p i. */
int
relTarget(const Program& prog, size_t i, int64_t imm, bool& bad)
{
    if (imm % 4 != 0) {
        bad = true;
        return -1;
    }
    const int64_t t = static_cast<int64_t>(i) + imm / 4;
    if (t < 0 || t >= static_cast<int64_t>(prog.numInsts())) {
        bad = true;
        return -1;
    }
    return static_cast<int>(t);
}

} // namespace

InstFlow
instFlow(const Program& prog, size_t i)
{
    const Inst& inst = prog.decoded[i];
    const OpInfo& info = inst.info();
    InstFlow f;

    auto fallsTo = [&](size_t n) {
        if (n < prog.numInsts())
            f.succ[f.numSucc++] = static_cast<int>(n);
        else
            f.offEnd = true;
    };

    switch (info.brKind) {
      case BrKind::Cond: {
        bool bad = false;
        const int t = relTarget(prog, i, inst.imm, bad);
        if (bad)
            f.badTarget = true;
        else
            f.succ[f.numSucc++] = t;
        fallsTo(i + 1);
        break;
      }
      case BrKind::Jump: {
        bool bad = false;
        const int t = relTarget(prog, i, inst.imm, bad);
        if (bad)
            f.badTarget = true;
        else
            f.succ[f.numSucc++] = t;
        break;
      }
      case BrKind::Call: {
        bool bad = false;
        const int t = relTarget(prog, i, inst.imm, bad);
        if (bad)
            f.badTarget = true;
        else
            f.callTarget = t;
        f.isCall = true;
        fallsTo(i + 1);
        break;
      }
      case BrKind::IndCall:
        f.isCall = true;
        fallsTo(i + 1);
        break;
      case BrKind::Ret:
        f.isExit = true;
        break;
      case BrKind::None:
        if (inst.op == Op::ECALL && inst.imm == 0) {
            f.isExit = true;  // Sys::Exit terminates the program
        } else {
            fallsTo(i + 1);
        }
        break;
    }
    return f;
}

BinFunc
buildBinFunc(const Program& prog, size_t entry)
{
    BinFunc fn;
    fn.entryInst = entry;
    const size_t n = prog.numInsts();
    fn.blockOfInst.assign(n, -1);

    if (entry >= n) {
        fn.problems.push_back({CfgProblemKind::BadEntry, 0});
        return fn;
    }

    // Pass 1: discover the reachable instruction set and flag targets.
    std::vector<uint8_t> reach(n, 0), leader(n, 0);
    std::vector<size_t> work{entry};
    reach[entry] = 1;
    leader[entry] = 1;
    while (!work.empty()) {
        const size_t i = work.back();
        work.pop_back();
        const InstFlow f = instFlow(prog, i);
        if (f.badTarget)
            fn.problems.push_back({CfgProblemKind::BadTarget, i});
        if (f.offEnd)
            fn.problems.push_back({CfgProblemKind::FallOffEnd, i});
        if (f.isCall && f.callTarget >= 0)
            fn.callTargets.push_back(static_cast<size_t>(f.callTarget));
        for (int k = 0; k < f.numSucc; ++k) {
            const auto s = static_cast<size_t>(f.succ[k]);
            // Any non-sequential transfer makes its target a leader, and
            // both arms of a conditional branch start blocks.
            if (s != i + 1 || f.numSucc > 1 ||
                prog.decoded[i].info().brKind != BrKind::None) {
                leader[s] = 1;
            }
            if (!reach[s]) {
                reach[s] = 1;
                work.push_back(s);
            }
        }
    }

    // Pass 2: carve blocks. A block runs from a leader to the next
    // terminator or to the instruction before the next leader.
    std::vector<int> blockAt(n, -1);
    for (size_t i = 0; i < n; ++i) {
        if (!reach[i] || !leader[i])
            continue;
        BinBlock b;
        b.first = static_cast<int>(i);
        size_t j = i;
        while (true) {
            blockAt[j] = static_cast<int>(fn.blocks.size());
            const InstFlow f = instFlow(prog, j);
            const bool terminates =
                f.isExit || f.numSucc == 0 ||
                prog.decoded[j].info().brKind == BrKind::Cond ||
                prog.decoded[j].info().brKind == BrKind::Jump;
            if (terminates || j + 1 >= n || !reach[j + 1] || leader[j + 1]) {
                b.last = static_cast<int>(j);
                break;
            }
            ++j;
        }
        fn.blocks.push_back(std::move(b));
    }

    // Pass 3: successor edges (block ids), then sort into RPO.
    for (auto& b : fn.blocks) {
        const InstFlow f = instFlow(prog, b.last);
        if (f.numSucc > 0) {
            for (int k = 0; k < f.numSucc; ++k)
                b.succs.push_back(blockAt[f.succ[k]]);
        } else if (!f.isExit && static_cast<size_t>(b.last) + 1 < n &&
                   reach[b.last + 1]) {
            b.succs.push_back(blockAt[b.last + 1]);
        }
        std::sort(b.succs.begin(), b.succs.end());
        b.succs.erase(std::unique(b.succs.begin(), b.succs.end()),
                      b.succs.end());
    }

    // Iterative post-order DFS from the entry block.
    std::vector<int> order;
    std::vector<uint8_t> state(fn.blocks.size(), 0);  // 0 new, 1 open, 2 done
    std::vector<std::pair<int, size_t>> stack{{blockAt[entry], 0}};
    state[blockAt[entry]] = 1;
    while (!stack.empty()) {
        auto& [b, next] = stack.back();
        if (next < fn.blocks[b].succs.size()) {
            const int s = fn.blocks[b].succs[next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[b] = 2;
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());

    std::vector<int> newId(fn.blocks.size(), -1);
    for (size_t k = 0; k < order.size(); ++k)
        newId[order[k]] = static_cast<int>(k);
    std::vector<BinBlock> rpo;
    rpo.reserve(order.size());
    for (const int old : order) {
        BinBlock b = std::move(fn.blocks[old]);
        for (auto& s : b.succs)
            s = newId[s];
        rpo.push_back(std::move(b));
    }
    fn.blocks = std::move(rpo);
    for (size_t k = 0; k < fn.blocks.size(); ++k)
        for (int i = fn.blocks[k].first; i <= fn.blocks[k].last; ++i)
            fn.blockOfInst[i] = static_cast<int>(k);
    return fn;
}

} // namespace ch::cfg
