#include "analyze/analytic_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "emu/emulator.h"

namespace ch::analyze {

AnalyticModel::AnalyticModel(const Program& prog, const MachineConfig& cfg)
    : report_(analyzeProgram(prog, cfg)),
      textBase_(prog.textBase),
      width_(static_cast<double>(
          std::min(cfg.fetchWidth,
                   std::min(cfg.issueWidth, cfg.commitWidth))))
{
    // Deepest-loop ownership map, as in fig_static_ipc's probe: an
    // instruction inside nested loops belongs to the innermost one, so
    // its dynamic count is charged at that loop's predicted IPC.
    loopOf_.assign(prog.numInsts(), -1);
    ipc_.reserve(report_.loops.size());
    for (size_t l = 0; l < report_.loops.size(); ++l) {
        const LoopReport& lp = report_.loops[l];
        for (const int i : lp.body) {
            const int cur = loopOf_[static_cast<size_t>(i)];
            if (cur < 0 ||
                lp.depth > report_.loops[static_cast<size_t>(cur)].depth)
                loopOf_[static_cast<size_t>(i)] = static_cast<int>(l);
        }
        ipc_.push_back(lp.predictedIpc > 0 ? lp.predictedIpc : width_);
    }
    loopDyn_.assign(report_.loops.size(), 0);
}

void
AnalyticModel::onInst(const DynInst& di)
{
    const size_t idx = (di.pc - textBase_) / 4;
    const int l = idx < loopOf_.size() ? loopOf_[idx] : -1;
    if (l >= 0)
        ++loopDyn_[static_cast<size_t>(l)];
    else
        ++otherDyn_;
    ++insts_;
}

uint64_t
AnalyticModel::finish()
{
    double cycles = static_cast<double>(otherDyn_) / width_;
    uint64_t loopInsts = 0;
    for (size_t l = 0; l < loopDyn_.size(); ++l) {
        cycles += static_cast<double>(loopDyn_[l]) / ipc_[l];
        loopInsts += loopDyn_[l];
    }
    cycles_ = static_cast<uint64_t>(std::llround(cycles));
    if (cycles_ == 0 && insts_ > 0)
        cycles_ = 1;

    stats_.counter("sim.cycles").set(cycles_);
    stats_.counter("sim.insts").set(insts_);
    stats_.counter("analytic.loops").set(report_.loops.size());
    stats_.counter("analytic.loopInsts").set(loopInsts);
    stats_.counter("analytic.otherInsts").set(otherDyn_);
    return cycles_;
}

SimResult
simulateAnalytic(const Program& prog, const MachineConfig& cfg,
                 const TraceBuffer* trace, uint64_t maxInsts)
{
    AnalyticModel model(prog, cfg);
    if (trace)
        return model.replayResult(*trace);

    Emulator emu(prog);
    RunResult run = emu.run(maxInsts, &model);
    model.finish();
    return model.packageResult(run.exited, run.exitCode);
}

} // namespace ch::analyze
