#include "analyze/analyze.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "isa/encoding.h"

namespace ch::analyze {

// ---------------------------------------------------------------------
// CycleSim's FU tables, mirrored (src/uarch/core.cc).
// ---------------------------------------------------------------------

int
fuPoolId(OpClass cls)
{
    switch (cls) {
      case OpClass::IntMul: return 1;
      case OpClass::IntDiv: return 2;
      case OpClass::FpAlu: return 3;
      case OpClass::FpDiv: return 4;
      case OpClass::Load: return 5;
      case OpClass::Store: return 6;
      default: return 0;  // ALU pool also runs branches, moves, syscalls
    }
}

int
fuPoolLimit(const MachineConfig& cfg, int pool)
{
    switch (pool) {
      case 1: return cfg.fu.iMul;
      case 2: return cfg.fu.iDiv;
      case 3: return cfg.fu.fp;
      case 4: return cfg.fu.fDiv;
      case 5: return cfg.fu.load;
      case 6: return cfg.fu.store;
      default: return cfg.fu.intAlu;
    }
}

std::string_view
fuPoolName(int pool)
{
    switch (pool) {
      case 1: return "iMul";
      case 2: return "iDiv";
      case 3: return "fp";
      case 4: return "fDiv";
      case 5: return "load";
      case 6: return "store";
      default: return "intAlu";
    }
}

int
staticLatency(const MachineConfig& cfg, OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return cfg.latIntAlu;
      case OpClass::Move:
      case OpClass::Nop: return cfg.latMove;
      case OpClass::Syscall: return cfg.latIntAlu;
      case OpClass::IntMul: return cfg.latIntMul;
      case OpClass::IntDiv: return cfg.latIntDiv;
      case OpClass::FpAlu: return cfg.latFpAlu;
      case OpClass::FpDiv: return cfg.latFpDiv;
      case OpClass::CondBr:
      case OpClass::Jump:
      case OpClass::Call:
      case OpClass::Ret: return cfg.latBranch;
      case OpClass::Store: return cfg.latStoreAgu;
      case OpClass::Load: return 1 + cfg.l1dLatency;  // assume L1 hit
    }
    return cfg.latIntAlu;
}

std::string
LoopReport::bottleneckName() const
{
    switch (bottleneck) {
      case Bottleneck::Frontend: return "frontend";
      case Bottleneck::Issue: return "issue";
      case Bottleneck::Commit: return "commit";
      case Bottleneck::DepChain: return "depchain";
      case Bottleneck::Fu:
        return "fu." + std::string(fuPoolName(bottleneckPool));
    }
    return "?";
}

namespace {

/**
 * Whether instruction @p i is statically taken under the analyzer's
 * steady-state branch model: unconditional transfers always, and
 * conditional branches only when they jump backwards (loop latches).
 */
bool
staticallyTaken(const Program& prog, int i)
{
    const Inst& inst = prog.decoded[static_cast<size_t>(i)];
    switch (inst.info().brKind) {
      case BrKind::Jump:
      case BrKind::Call:
      case BrKind::IndCall:
      case BrKind::Ret:
        return true;
      case BrKind::Cond:
        return inst.imm <= 0;  // backward taken, forward not-taken
      case BrKind::None:
        return false;
    }
    return false;
}

/**
 * Cycles per iteration the front end needs: fetch groups are capped at
 * fetchWidth and end at every statically-taken transfer (the model
 * CycleSim's stageFetch implements). The taken back edge closes the
 * final group, so the bound is always >= 1.
 */
double
fetchBound(const Program& prog, const std::vector<int>& body,
           const MachineConfig& cfg)
{
    double cycles = 0;
    int groupLen = 0;
    for (const int i : body) {
        ++groupLen;
        if (staticallyTaken(prog, i)) {
            cycles += (groupLen + cfg.fetchWidth - 1) / cfg.fetchWidth;
            groupLen = 0;
        }
    }
    if (groupLen > 0)
        cycles += (groupLen + cfg.fetchWidth - 1) / cfg.fetchWidth;
    return std::max(cycles, 1.0);
}

/**
 * Architectural ready-time state for the symbolic replay: when each
 * readable storage location's value becomes available, in cycles from
 * an arbitrary origin. Unwritten locations read as ready-at-0.
 *
 * Stack slots are tracked too: the rename-free backends relay long
 * lifetimes through SP-relative spill slots, so loop-carried chains
 * routinely pass through a store->load forwarding hop that a pure
 * register-dataflow replay would miss entirely (CycleSim forwards at
 * max(address ready, store data ready) + latForward).
 */
struct ReadyState {
    Isa isa;
    std::vector<double> regs;      ///< RISC: x0..x31, f0..f31
    std::vector<double> ring;      ///< STRAIGHT result ring (grows)
    double sp = 0;                 ///< STRAIGHT special SP
    std::vector<double> hands[kNumHands];  ///< Clockhands write rings
    std::map<int64_t, double> stackReady;  ///< SP-relative slot, by offset

    explicit ReadyState(Isa i) : isa(i)
    {
        if (isa == Isa::Riscv)
            regs.assign(kNumIntRegs + kNumFpRegs, 0.0);
    }

    double
    readSrc(const Inst& inst, int which) const
    {
        const uint8_t enc = which == 1 ? inst.src1 : inst.src2;
        switch (isa) {
          case Isa::Riscv:
            return enc == kRegZero ? 0.0 : regs[enc];
          case Isa::Straight: {
            if (enc == kStraightZeroDist)
                return 0.0;
            if (enc == kStraightSpBase)
                return sp;
            return enc <= ring.size() ? ring[ring.size() - enc] : 0.0;
          }
          case Isa::Clockhands: {
            const uint8_t hand =
                which == 1 ? inst.src1Hand : inst.src2Hand;
            if (hand == HandS && enc == kHandZeroDist)
                return 0.0;
            const auto& ours = hands[hand % kNumHands];
            return enc < ours.size() ? ours[ours.size() - 1 - enc] : 0.0;
          }
        }
        return 0.0;
    }

    /**
     * Whether a memory access through src1 is SP-relative: the RISC sp
     * register, STRAIGHT's special SP encoding, or any Clockhands
     * s-hand value (the paper folds SP into s; distinct s entries are
     * merged into one frame, a deliberate aliasing approximation).
     */
    bool
    spRelative(const Inst& inst) const
    {
        switch (isa) {
          case Isa::Riscv:
            return inst.src1 == kRegSp;
          case Isa::Straight:
            return inst.src1 == kStraightSpBase;
          case Isa::Clockhands:
            return inst.src1Hand == HandS && inst.src1 != kHandZeroDist;
        }
        return false;
    }

    void
    write(const Inst& inst, double t)
    {
        const OpInfo& info = inst.info();
        switch (isa) {
          case Isa::Riscv:
            if (info.hasDst && inst.dst != kRegZero)
                regs[inst.dst] = t;
            break;
          case Isa::Straight:
            if (inst.op == Op::SPADDI)
                sp = t;
            ring.push_back(t);  // every instruction allocates a slot
            break;
          case Isa::Clockhands:
            if (info.hasDst)
                hands[inst.dst % kNumHands].push_back(t);
            break;
        }
    }
};

/**
 * Loop-carried dependence recurrence of the straightened @p body:
 * replay K iterations tracking only dataflow ready times, and measure
 * the asymptotic growth per iteration of the completion frontier. With
 * no carried dependence every iteration is identical and the bound is
 * zero; a carried chain (e.g. i = i + 1 feeding a 4-cycle load) makes
 * the frontier climb by the chain latency each round.
 */
double
recurrenceBound(const Program& prog, const std::vector<int>& body,
                const MachineConfig& cfg)
{
    if (body.empty())
        return 0;
    constexpr int kIters = 48;
    constexpr int kSettle = 24;  // iterations discarded as warmup

    ReadyState st(prog.isa);
    double settleFinish = 0, finish = 0;
    for (int k = 0; k < kIters; ++k) {
        double iterMax = 0;
        for (const int i : body) {
            const Inst& inst = prog.decoded[static_cast<size_t>(i)];
            const OpInfo& info = inst.info();
            double ready = 0;
            if (inst.op == Op::SPADDI) {
                ready = st.sp;  // sp += imm reads the running SP
                st.stackReady.clear();  // frame offsets shift
            } else {
                if (info.numSrcs >= 1)
                    ready = std::max(ready, st.readSrc(inst, 1));
                if (info.numSrcs >= 2)
                    ready = std::max(ready, st.readSrc(inst, 2));
            }
            double t = ready + staticLatency(cfg, info.cls);
            if (info.isStore() && st.spRelative(inst)) {
                // Forwarding source: ready when AGU+data are (CycleSim's
                // StoreRec.dataReady is exactly this resultAt).
                st.stackReady[inst.imm] = t;
            } else if (info.isLoad() && st.spRelative(inst)) {
                const auto slot = st.stackReady.find(inst.imm);
                if (slot != st.stackReady.end()) {
                    // Store-to-load forwarding beats the cache access.
                    t = std::max(ready, slot->second) + cfg.latForward;
                }
            } else if (info.hasDst && prog.isa == Isa::Riscv &&
                       inst.dst == kRegSp) {
                st.stackReady.clear();  // frame offsets shift
            }
            st.write(inst, t);
            iterMax = std::max(iterMax, t);
        }
        finish = std::max(finish, iterMax);
        if (k + 1 == kSettle)
            settleFinish = finish;
        // Bound the STRAIGHT ring: distances reach back at most
        // kStraightMaxDist slots.
        if (st.ring.size() > 4096)
            st.ring.erase(st.ring.begin(),
                          st.ring.end() - kStraightMaxDist - 1);
    }
    const double rate = (finish - settleFinish) / (kIters - kSettle);
    return std::max(rate, 0.0);
}

} // namespace

LoopReport
boundLoop(const Program& prog, const cfg::BinFunc& fn, const Loop& loop,
          const MachineConfig& cfg)
{
    LoopReport r;
    r.funcEntry = fn.entryInst;
    r.headInst =
        static_cast<size_t>(fn.blocks[static_cast<size_t>(loop.header)]
                                .first);
    if (r.headInst < prog.srcLines.size())
        r.srcLine = prog.srcLines[r.headInst];
    r.depth = loop.depth;
    r.innermost = loop.innermost;
    r.hasCall = loop.hasCall;
    r.body = loop.body;

    const double n = static_cast<double>(r.body.size());
    r.fetchCycles = fetchBound(prog, r.body, cfg);
    r.issueCycles = n / cfg.issueWidth;
    r.commitCycles = n / cfg.commitWidth;
    int poolCount[kNumFuPools] = {};
    for (const int i : r.body)
        ++poolCount[fuPoolId(prog.decoded[static_cast<size_t>(i)]
                                 .info()
                                 .cls)];
    for (int p = 0; p < kNumFuPools; ++p)
        r.fuCycles[p] =
            static_cast<double>(poolCount[p]) / fuPoolLimit(cfg, p);

    r.resourceCycles = std::max({r.fetchCycles, r.issueCycles,
                                 r.commitCycles});
    for (int p = 0; p < kNumFuPools; ++p)
        r.resourceCycles = std::max(r.resourceCycles, r.fuCycles[p]);

    r.latencyCycles = recurrenceBound(prog, r.body, cfg);
    r.cyclesPerIter = std::max({r.resourceCycles, r.latencyCycles, 1.0});
    r.predictedIpc = n / r.cyclesPerIter;

    // Attribution: the term that sets cyclesPerIter, preferring the
    // more specific explanations when tied (a dependence chain over a
    // generic width limit, a single hot pool over the front end).
    if (r.latencyCycles > r.resourceCycles) {
        r.bottleneck = Bottleneck::DepChain;
    } else {
        int hotPool = 0;
        for (int p = 1; p < kNumFuPools; ++p)
            if (r.fuCycles[p] > r.fuCycles[hotPool])
                hotPool = p;
        if (r.fuCycles[hotPool] >= r.resourceCycles) {
            r.bottleneck = Bottleneck::Fu;
            r.bottleneckPool = hotPool;
        } else if (r.fetchCycles >= r.resourceCycles) {
            r.bottleneck = Bottleneck::Frontend;
        } else if (r.issueCycles >= r.resourceCycles) {
            r.bottleneck = Bottleneck::Issue;
        } else {
            r.bottleneck = Bottleneck::Commit;
        }
    }
    return r;
}

ProgramReport
analyzeProgram(const Program& prog, const MachineConfig& cfg)
{
    ProgramReport rep;
    const size_t n = prog.numInsts();
    if (!prog.validPc(prog.entry) || n == 0) {
        rep.cfgProblems = 1;
        return rep;
    }
    const size_t entryIdx = (prog.entry - prog.textBase) / 4;

    // Same function discovery as verifyProgram: the entry plus every
    // direct-call target, transitively.
    std::set<size_t> seen{entryIdx};
    std::vector<size_t> queue{entryIdx};
    while (!queue.empty()) {
        const size_t e = queue.back();
        queue.pop_back();
        const cfg::BinFunc fn = cfg::buildBinFunc(prog, e);
        rep.cfgProblems += fn.problems.size();
        rep.numBlocks += fn.blocks.size();
        ++rep.numFuncs;
        for (const size_t t : fn.callTargets)
            if (seen.insert(t).second)
                queue.push_back(t);
        for (const Loop& lp : findLoops(prog, fn))
            rep.loops.push_back(boundLoop(prog, fn, lp, cfg));
    }
    std::stable_sort(rep.loops.begin(), rep.loops.end(),
                     [](const LoopReport& a, const LoopReport& b) {
                         return a.headInst < b.headInst;
                     });
    rep.lints = lintProgram(prog, cfg, rep.loops);
    return rep;
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

namespace {

std::string
fmt2(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

} // namespace

std::string
formatReport(const Program& prog, const ProgramReport& rep, bool allLoops)
{
    std::ostringstream os;
    os << rep.numFuncs << " functions, " << rep.numBlocks << " blocks, "
       << rep.loops.size() << " loops";
    if (rep.cfgProblems > 0)
        os << ", " << rep.cfgProblems << " CFG problem(s)";
    os << "\n";
    for (const LoopReport& lp : rep.loops) {
        if (!allLoops && !lp.innermost)
            continue;
        os << "  loop @ inst " << lp.headInst;
        if (lp.srcLine > 0)
            os << " (line " << lp.srcLine << ")";
        os << " depth " << lp.depth << (lp.innermost ? "*" : "") << ", "
           << lp.bodyInsts() << " insts: IPC " << fmt2(lp.predictedIpc)
           << " (" << fmt2(lp.cyclesPerIter) << " cyc/iter, resource "
           << fmt2(lp.resourceCycles) << ", depchain "
           << fmt2(lp.latencyCycles) << ") <- " << lp.bottleneckName();
        if (lp.hasCall)
            os << " [calls out]";
        os << "\n";
    }
    for (const Lint& l : rep.lints) {
        os << "  lint " << lintKindName(l.kind) << " @ inst "
           << l.instIndex;
        if (l.srcLine > 0)
            os << " (line " << l.srcLine << ")";
        os << " `"
           << disassemble(prog.isa,
                          prog.decoded[l.instIndex])
           << "`: " << l.detail << "\n";
    }
    return os.str();
}

std::string
reportJson(const Program& prog, const std::string& label,
           const ProgramReport& rep)
{
    (void)prog;
    std::ostringstream os;
    os << "{\n  \"schema\": \"ch-analyze-report-v1\",\n  \"program\": \""
       << label << "\",\n  \"isa\": \"" << isaName(prog.isa)
       << "\",\n  \"funcs\": " << rep.numFuncs << ",\n  \"blocks\": "
       << rep.numBlocks << ",\n  \"cfgProblems\": " << rep.cfgProblems
       << ",\n  \"loops\": [";
    bool first = true;
    for (const LoopReport& lp : rep.loops) {
        os << (first ? "" : ",") << "\n    {\"headInst\": " << lp.headInst
           << ", \"line\": " << lp.srcLine << ", \"depth\": " << lp.depth
           << ", \"innermost\": " << (lp.innermost ? "true" : "false")
           << ", \"hasCall\": " << (lp.hasCall ? "true" : "false")
           << ", \"insts\": " << lp.bodyInsts()
           << ", \"cyclesPerIter\": " << fmt2(lp.cyclesPerIter)
           << ", \"resourceCycles\": " << fmt2(lp.resourceCycles)
           << ", \"latencyCycles\": " << fmt2(lp.latencyCycles)
           << ", \"predictedIpc\": " << fmt2(lp.predictedIpc)
           << ", \"bottleneck\": \"" << lp.bottleneckName() << "\"}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n  \"lints\": [";
    first = true;
    for (const Lint& l : rep.lints) {
        os << (first ? "" : ",") << "\n    {\"kind\": \""
           << lintKindName(l.kind) << "\", \"inst\": " << l.instIndex
           << ", \"line\": " << l.srcLine << ", \"detail\": \""
           << l.detail << "\"}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

} // namespace ch::analyze
