#ifndef CH_VERIFY_VERIFY_H
#define CH_VERIFY_VERIFY_H

/**
 * @file
 * Static well-formedness verifier for assembled programs of all three
 * ISAs (docs/VERIFIER.md has the full invariant catalogue with paper
 * references).
 *
 * The verifier reconstructs the control-flow graph of a Program from
 * its decoded text, partitions it into functions (program entry plus
 * every direct-call target), and runs an iterative forward dataflow per
 * function that models each ISA's architectural write history:
 *
 *  - STRAIGHT: the single result ring. Every executed instruction
 *    allocates a slot; slots of valueless instructions are "junk"
 *    (Section 2.2.1), so a distance that lands on one is a bug.
 *  - Clockhands: the four per-hand histories, advanced only by
 *    value-producing writes to that hand (Section 4.1).
 *  - RISC: the 64 logical registers (classic definite-assignment).
 *
 * Each abstract slot tracks which static instruction produced it.
 * Reads are checked against the lattice: reading a never-written slot,
 * a valueless (junk) slot, a call-clobbered slot, or a slot whose
 * producer differs incompatibly across incoming paths of a join all
 * produce diagnostics. Dead writes (values never consumed) and
 * per-hand pressure are reported as statistics.
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/program.h"

namespace ch {

/** What a verifier diagnostic is about. */
enum class IssueKind : uint8_t {
    UninitRead,        ///< read of a slot/register never written
    JunkRead,          ///< STRAIGHT: distance lands on a valueless slot
    ClobberedRead,     ///< read of a value that does not survive a call
    InconsistentJoin,  ///< producer/definedness differs across join paths
    BadTarget,         ///< branch target outside text or misaligned
    FallOffEnd,        ///< control can run past the end of the text
    UnknownSyscall,    ///< ecall with an unhandled syscall number
    NoConverge,        ///< internal: dataflow failed to reach a fixpoint
};

/** Human-readable name of an IssueKind. */
std::string_view issueKindName(IssueKind kind);

/** One diagnostic, anchored to a static instruction. */
struct VerifyIssue {
    IssueKind kind = IssueKind::UninitRead;
    size_t instIndex = 0;  ///< index into Program::decoded
    uint64_t pc = 0;
    int32_t line = 0;      ///< 1-based .s source line, 0 = unknown
    int operand = 0;       ///< 1 or 2 for src operands, 0 otherwise
    uint8_t hand = 0;      ///< Clockhands hand / RISC reg; 0 for STRAIGHT
    uint8_t dist = 0;      ///< offending distance (reg number for RISC)
    std::string detail;    ///< extra context (producer, paths, ...)
};

/** Per-hand write/read statistics (hand 0 for STRAIGHT and RISC). */
struct HandPressure {
    uint64_t writes = 0;      ///< reachable value-producing writes
    uint64_t reads = 0;       ///< static source operands reading the hand
    uint64_t deadWrites = 0;  ///< writes whose value is never consumed
    int maxDist = -1;         ///< largest distance any read uses
};

/** Everything verifyProgram() learns about one program. */
struct VerifyResult {
    std::vector<VerifyIssue> issues;
    std::array<HandPressure, kNumHands> pressure{};
    size_t numFuncs = 0;   ///< functions discovered (entry + call targets)
    size_t numBlocks = 0;  ///< basic blocks across all functions
    size_t numInsts = 0;   ///< reachable instructions

    bool ok() const { return issues.empty(); }
};

/** Run all static checks on @p prog. Never throws; issues are collected. */
VerifyResult verifyProgram(const Program& prog);

/** Format one issue as a single line ("line 12: pc 0x10028 ..."). */
std::string formatIssue(const Program& prog, const VerifyIssue& issue);

/** Format every issue, one per line. Empty string when clean. */
std::string formatIssues(const Program& prog, const VerifyResult& res);

/** One-paragraph per-hand pressure/dead-write summary for logs. */
std::string formatPressure(const Program& prog, const VerifyResult& res);

} // namespace ch

#endif // CH_VERIFY_VERIFY_H
