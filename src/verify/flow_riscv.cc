#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "isa/encoding.h"
#include "verify/internal.h"

/*
 * Classic definite-assignment dataflow over the 64 RISC logical
 * registers: the baseline analogue of the distance-window checks. A
 * read of a register that was never written (or written on only some
 * incoming paths, or only before an intervening call if it is
 * caller-saved) is diagnosed.
 *
 * The calling-convention summary mirrors src/backend/riscv.cc: x5-x7,
 * x10-x17, x28-x31 and ft0-9/fa0-7/ft10-11 are dead across calls, a0
 * and fa0 carry the return value, ra holds the link, and sp plus the
 * callee-saved sets survive.
 */

namespace ch::verify {

namespace {

constexpr int kNumRegs = kNumIntRegs + kNumFpRegs;

const uint8_t kIntCallerSaved[] = {5, 6, 7, 10, 11, 12, 13, 14, 15,
                                   16, 17, 28, 29, 30, 31};
const uint8_t kIntCalleeSaved[] = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25,
                                   26, 27};
const uint8_t kFpCallerSaved[] = {32, 33, 34, 35, 36, 37, 38, 39, 42, 43,
                                  44, 45, 46, 47, 48, 49, 60, 61, 62, 63};
const uint8_t kFpCalleeSaved[] = {40, 41, 50, 51, 52, 53, 54, 55, 56, 57,
                                  58, 59};
const uint8_t kIntArgRegs[] = {10, 11, 12, 13, 14, 15, 16, 17};
const uint8_t kFpArgRegs[] = {42, 43, 44, 45, 46, 47, 48, 49};

struct RState {
    bool live = false;
    std::array<Slot, kNumRegs> regs{};
};

RState
makeEntryState(bool isEntryFunc)
{
    RState st;
    st.live = true;
    if (isEntryFunc) {
        // Emulator reset state: sp = stack top, ra = 0, rest undefined.
        st.regs[kRegSp] = {SK::Init, 0};
        st.regs[kRegRa] = {SK::Init, 1};
        return st;
    }
    // Callee view: argument registers, sp, ra, and the callee-saved
    // sets (which prologues store before writing) hold symbolic caller
    // values; everything else is undefined garbage.
    for (const uint8_t r : kIntArgRegs)
        st.regs[r] = {SK::Entry, r};
    for (const uint8_t r : kFpArgRegs)
        st.regs[r] = {SK::Entry, r};
    for (const uint8_t r : kIntCalleeSaved)
        st.regs[r] = {SK::Entry, r};
    for (const uint8_t r : kFpCalleeSaved)
        st.regs[r] = {SK::Entry, r};
    st.regs[kRegSp] = {SK::Entry, kRegSp};
    st.regs[kRegRa] = {SK::Entry, kRegRa};
    return st;
}

struct RiscvFlow {
    FlowContext& cx;
    PhiBook book;
    std::unordered_set<int32_t> phiMarked;

    explicit RiscvFlow(FlowContext& c) : cx(c) {}

    void
    markUsed(const Slot& s)
    {
        switch (s.kind) {
          case SK::Value:
            cx.used[static_cast<size_t>(s.ref)] = 1;
            break;
          case SK::Phi:
          case SK::Partial: {
            if (!phiMarked.insert(s.ref).second)
                return;
            auto it = book.inputs.find(s.ref);
            if (it != book.inputs.end())
                for (const Slot& in : it->second)
                    markUsed(in);
            break;
          }
          default:
            break;
        }
    }

    bool
    mergeInto(RState& dst, const RState& src, int blockId)
    {
        if (!dst.live) {
            dst = src;
            return true;
        }
        bool changed = false;
        for (int r = 0; r < kNumRegs; ++r) {
            const int32_t ref =
                static_cast<int32_t>(blockId) * kNumRegs + r + 1;
            const Slot m = mergeSlot(dst.regs[static_cast<size_t>(r)],
                                     src.regs[static_cast<size_t>(r)], ref,
                                     book);
            if (!(m == dst.regs[static_cast<size_t>(r)])) {
                dst.regs[static_cast<size_t>(r)] = m;
                changed = true;
            }
        }
        return changed;
    }

    void
    readReg(RState& st, size_t i, int opnd, uint8_t reg, bool report)
    {
        if (reg == kRegZero)
            return;
        const Slot s = st.regs[reg];
        if (!report)
            return;
        markUsed(s);
        const size_t key = i * 2 + static_cast<size_t>(opnd - 1);
        if (cx.reported[key])
            return;
        cx.reported[key] = 1;
        ++cx.res.pressure[0].reads;
        const std::string name = riscRegName(reg);
        switch (s.kind) {
          case SK::Uninit:
            addIssue(cx, IssueKind::UninitRead, i, opnd, reg, reg,
                     concat("reads ", name,
                            ", which was never written on any path"));
            break;
          case SK::Partial:
            addIssue(cx, IssueKind::InconsistentJoin, i, opnd, reg, reg,
                     concat("reads ", name,
                            ", which is written on some but not all paths "
                            "reaching this join"));
            break;
          case SK::Clobbered:
            addIssue(cx, IssueKind::ClobberedRead, i, opnd, reg, reg,
                     concat("reads caller-saved ", name,
                            ", which holds no defined value here (stale "
                            "across a call boundary)"));
            break;
          case SK::Conflict:
            addIssue(cx, IssueKind::InconsistentJoin, i, opnd, reg, reg,
                     concat("reads ", name,
                            ", whose definedness differs between the paths "
                            "into this join"));
            break;
          default:
            break;
        }
    }

    void
    applyCall(RState& st, size_t i, bool report)
    {
        if (report) {
            for (const uint8_t r : kIntArgRegs)
                markUsed(st.regs[r]);
            for (const uint8_t r : kFpArgRegs)
                markUsed(st.regs[r]);
            markUsed(st.regs[kRegSp]);
        }
        const auto ref = static_cast<int32_t>(i);
        for (const uint8_t r : kIntCallerSaved)
            st.regs[r] = {SK::Clobbered, 0};
        for (const uint8_t r : kFpCallerSaved)
            st.regs[r] = {SK::Clobbered, 0};
        st.regs[kIntArgRegs[0]] = {SK::CallRet, ref};  // a0
        st.regs[kFpArgRegs[0]] = {SK::CallRet, ref};   // fa0
        st.regs[kRegRa] = {SK::Value, ref};            // link
    }

    void
    applyExit(RState& st, const Inst& inst, bool report)
    {
        if (!report || inst.info().brKind != BrKind::Ret)
            return;
        // The caller may consume the return value and every preserved
        // register after we return.
        markUsed(st.regs[kIntArgRegs[0]]);
        markUsed(st.regs[kFpArgRegs[0]]);
        markUsed(st.regs[kRegSp]);
        markUsed(st.regs[kRegRa]);
        for (const uint8_t r : kIntCalleeSaved)
            markUsed(st.regs[r]);
        for (const uint8_t r : kFpCalleeSaved)
            markUsed(st.regs[r]);
    }

    void
    transferInst(RState& st, size_t i, bool report)
    {
        const Inst& inst = cx.prog.decoded[i];
        const OpInfo& info = inst.info();
        if (info.numSrcs >= 1)
            readReg(st, i, 1, inst.src1, report);
        if (info.numSrcs >= 2)
            readReg(st, i, 2, inst.src2, report);
        if (report && inst.op == Op::ECALL && inst.imm != 0 && inst.imm != 1 &&
            !cx.reported[i * 2]) {
            cx.reported[i * 2] = 1;
            addIssue(cx, IssueKind::UnknownSyscall, i, 0, 0, 0,
                     concat("syscall ", inst.imm, " is not implemented"));
        }

        const InstFlow f = instFlow(cx.prog, i);
        if (f.isExit) {
            applyExit(st, inst, report);
            return;
        }
        if (f.isCall) {
            applyCall(st, i, report);
            return;
        }
        if (info.hasDst && inst.dst != kRegZero && inst.dst < kNumRegs)
            st.regs[inst.dst] = {SK::Value, static_cast<int32_t>(i)};
    }
};

} // namespace

void
runRiscvFlow(FlowContext& cx)
{
    const auto& blocks = cx.func.blocks;
    if (blocks.empty())
        return;

    RiscvFlow fl(cx);
    std::vector<RState> in(blocks.size());
    in[0] = makeEntryState(cx.isEntryFunc);

    bool changed = true;
    int pass = 0;
    constexpr int kMaxPasses = 300;
    while (changed && pass < kMaxPasses) {
        changed = false;
        ++pass;
        for (size_t b = 0; b < blocks.size(); ++b) {
            if (!in[b].live)
                continue;
            RState out = in[b];
            for (int i = blocks[b].first; i <= blocks[b].last; ++i)
                fl.transferInst(out, static_cast<size_t>(i), false);
            for (const int s : blocks[b].succs) {
                changed =
                    fl.mergeInto(in[static_cast<size_t>(s)], out, s) ||
                    changed;
            }
        }
    }
    if (changed) {
        addIssue(cx, IssueKind::NoConverge, cx.func.entryInst, 0, 0, 0,
                 concat("dataflow did not converge after ", kMaxPasses,
                        " passes"));
    }

    for (size_t b = 0; b < blocks.size(); ++b) {
        if (!in[b].live)
            continue;
        RState out = in[b];
        for (int i = blocks[b].first; i <= blocks[b].last; ++i)
            fl.transferInst(out, static_cast<size_t>(i), true);
    }
}

} // namespace ch::verify
