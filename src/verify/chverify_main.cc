/**
 * @file
 * chverify: standalone static well-formedness checker.
 *
 *   chverify [--isa=riscv|straight|clockhands] [--stats] file.s
 *   chverify --workloads [--stats]
 *
 * The first form assembles a .s file (paper syntax) and verifies it.
 * The second verifies every compiled workload for all three ISAs, as
 * the driver-integrated check does, and prints per-hand pressure.
 * Exit status: 0 clean, 1 diagnostics reported, 2 usage/input error.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "common/logging.h"
#include "verify/verify.h"
#include "workloads/workloads.h"

namespace {

int
usage()
{
    std::cerr
        << "usage: chverify [--isa=riscv|straight|clockhands] [--stats] "
           "file.s\n"
           "       chverify --workloads [--stats]\n";
    return 2;
}

/** Report on one program; returns 1 when issues were found. */
int
check(const std::string& label, const ch::Program& prog, bool stats)
{
    const ch::VerifyResult res = ch::verifyProgram(prog);
    if (!res.ok()) {
        std::cout << label << ": " << res.issues.size() << " issue(s)\n"
                  << formatIssues(prog, res);
    } else {
        std::cout << label << ": ok\n";
    }
    if (stats)
        std::cout << formatPressure(prog, res);
    return res.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    ch::Isa isa = ch::Isa::Riscv;
    bool isaSet = false, stats = false, allWorkloads = false;
    std::string file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--isa=", 0) == 0) {
            const std::string name = arg.substr(6);
            if (name == "riscv") {
                isa = ch::Isa::Riscv;
            } else if (name == "straight") {
                isa = ch::Isa::Straight;
            } else if (name == "clockhands") {
                isa = ch::Isa::Clockhands;
            } else {
                return usage();
            }
            isaSet = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--workloads") {
            allWorkloads = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (file.empty()) {
            file = arg;
        } else {
            return usage();
        }
    }

    try {
        if (allWorkloads) {
            int rc = 0;
            for (const auto& wl : ch::workloads()) {
                for (const ch::Isa i : {ch::Isa::Riscv, ch::Isa::Straight,
                                        ch::Isa::Clockhands}) {
                    const ch::Program& prog = ch::compiledWorkload(wl.name,
                                                                   i);
                    rc |= check(wl.name + " (" +
                                    std::string(ch::isaName(i)) + ")",
                                prog, stats);
                }
            }
            return rc;
        }

        if (file.empty())
            return usage();
        if (!isaSet) {
            std::cerr << "chverify: --isa is required for .s input\n";
            return usage();
        }
        std::ifstream in(file);
        if (!in) {
            std::cerr << "chverify: cannot open " << file << "\n";
            return 2;
        }
        std::ostringstream src;
        src << in.rdbuf();
        const ch::Program prog = ch::assemble(isa, src.str());
        return check(file, prog, stats);
    } catch (const ch::FatalError& e) {
        std::cerr << "chverify: " << e.what() << "\n";
        return 2;
    }
}
