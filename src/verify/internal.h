#ifndef CH_VERIFY_INTERNAL_H
#define CH_VERIFY_INTERNAL_H

/**
 * @file
 * Internals shared by the verifier's translation units: the abstract-
 * slot lattice used by the dataflow, over the shared binary CFG layer
 * (src/analyze/cfg.h — one reconstruction consumed by both chverify
 * and chanalyze). Not part of the public API.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analyze/cfg.h"
#include "mem/program.h"
#include "verify/verify.h"

namespace ch::verify {

// The verifier's dataflow runs on the shared CFG reconstruction.
using cfg::BinBlock;
using cfg::BinFunc;
using cfg::InstFlow;
using cfg::buildBinFunc;
using cfg::instFlow;

/** Render one structural CFG defect in the verifier's issue vocabulary. */
VerifyIssue cfgProblemIssue(const Program& prog, const cfg::CfgProblem& p);

// ---------------------------------------------------------------------
// Abstract slot lattice
// ---------------------------------------------------------------------

/**
 * What an architectural slot (ring entry, hand entry, or register)
 * holds at a program point. Ordering for the join operation:
 * concrete kinds < Phi < Partial < Clobbered < Conflict.
 */
enum class SK : uint8_t {
    Uninit,    ///< never written on this path
    Init,      ///< machine-initialized (SP, RISC ra=0)
    Entry,     ///< symbolic pre-entry value of a called function
    Value,     ///< produced by instruction `ref`
    Junk,      ///< STRAIGHT slot of valueless instruction `ref` (-1 any)
    CallRet,   ///< return value of the call at instruction `ref`
    CallSp,    ///< SP re-established by the call at `ref` (Clockhands)
    CallJunk,  ///< STRAIGHT: the callee's jr slot of call `ref`
    Phi,       ///< join of distinct readable values, `ref` = phi id
    Partial,   ///< written on some but not all incoming paths
    Clobbered, ///< defined but meaningless (stale across a call, etc.)
    Conflict,  ///< value on one path, valueless on another
};

struct Slot {
    SK kind = SK::Uninit;
    int32_t ref = 0;
    bool operator==(const Slot&) const = default;
};

/** Kinds a program may legitimately read. */
inline bool
readable(SK k)
{
    switch (k) {
      case SK::Init:
      case SK::Entry:
      case SK::Value:
      case SK::CallRet:
      case SK::CallSp:
      case SK::Phi:
        return true;
      default:
        return false;
    }
}

inline bool
junkish(SK k)
{
    return k == SK::Junk || k == SK::CallJunk;
}

/**
 * Records which concrete slots feed each phi so that dead-write
 * analysis can mark producers used transitively through joins.
 */
struct PhiBook {
    std::unordered_map<int32_t, std::vector<Slot>> inputs;

    void
    note(int32_t phi, const Slot& in)
    {
        auto& v = inputs[phi];
        for (const auto& s : v)
            if (s == in)
                return;
        v.push_back(in);
    }
};

/**
 * Join two slot states flowing into the point identified by @p phiRef.
 * Monotone: repeated joins climb the SK ordering and terminate.
 */
Slot mergeSlot(const Slot& a, const Slot& b, int32_t phiRef, PhiBook& book);

// ---------------------------------------------------------------------
// Dataflow driver context
// ---------------------------------------------------------------------

/** Shared mutable state threaded through the per-function flows. */
struct FlowContext {
    const Program& prog;
    const BinFunc& func;
    bool isEntryFunc;               ///< true for the program entry point
    VerifyResult& res;
    std::vector<uint8_t>& used;     ///< per-inst: value consumed somewhere
    std::vector<uint8_t>& reported; ///< per-inst*2: operand already reported
};

/** STRAIGHT / Clockhands ring-and-hands dataflow. */
void runDistanceFlow(FlowContext& cx);

/** RISC definite-assignment dataflow. */
void runRiscvFlow(FlowContext& cx);

/** Append an issue for instruction @p i (fills pc/line from the program). */
void addIssue(FlowContext& cx, IssueKind kind, size_t i, int operand,
              uint8_t hand, uint8_t dist, std::string detail);

} // namespace ch::verify

#endif // CH_VERIFY_INTERNAL_H
