#include "verify/verify.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "isa/encoding.h"
#include "verify/internal.h"

namespace ch {

namespace verify {

Slot
mergeSlot(const Slot& a, const Slot& b, int32_t phiRef, PhiBook& book)
{
    if (a == b)
        return a;
    const SK ka = a.kind, kb = b.kind;
    if (ka == SK::Conflict || kb == SK::Conflict)
        return {SK::Conflict, 0};
    if (ka == SK::Clobbered || kb == SK::Clobbered)
        return {SK::Clobbered, 0};

    const bool partialA = ka == SK::Uninit || ka == SK::Partial;
    const bool partialB = kb == SK::Uninit || kb == SK::Partial;
    if (partialA || partialB) {
        const Slot& defined = partialA ? b : a;
        if (junkish(defined.kind))
            return {SK::Conflict, 0};
        // Keep producers flowing into the phi book so that dead-write
        // analysis still sees values consumed through a partial join.
        if (defined.kind != SK::Uninit)
            book.note(phiRef, defined);
        if (ka == SK::Partial)
            book.note(phiRef, a);
        if (kb == SK::Partial)
            book.note(phiRef, b);
        return {SK::Partial, phiRef};
    }

    if (junkish(ka) && junkish(kb))
        return {SK::Junk, -1};  // different junk sources: still junk
    if (junkish(ka) || junkish(kb))
        return {SK::Conflict, 0};

    // Two distinct readable values: a phi at this join. The paper's
    // strict rule asks for one producer per distance; compiled code
    // implements phis by relaying each path's value into the same slot,
    // so a join of readable values is well-formed by construction.
    book.note(phiRef, a);
    book.note(phiRef, b);
    return {SK::Phi, phiRef};
}

void
addIssue(FlowContext& cx, IssueKind kind, size_t i, int operand, uint8_t hand,
         uint8_t dist, std::string detail)
{
    constexpr size_t kMaxIssues = 100;
    if (cx.res.issues.size() >= kMaxIssues)
        return;
    VerifyIssue is;
    is.kind = kind;
    is.instIndex = i;
    is.pc = cx.prog.textBase + 4 * i;
    if (i < cx.prog.srcLines.size())
        is.line = cx.prog.srcLines[i];
    is.operand = operand;
    is.hand = hand;
    is.dist = dist;
    is.detail = std::move(detail);
    cx.res.issues.push_back(std::move(is));
}

VerifyIssue
cfgProblemIssue(const Program& prog, const cfg::CfgProblem& p)
{
    VerifyIssue is;
    is.instIndex = p.instIndex;
    is.pc = prog.textBase + 4 * p.instIndex;
    if (p.instIndex < prog.srcLines.size())
        is.line = prog.srcLines[p.instIndex];
    switch (p.kind) {
      case cfg::CfgProblemKind::BadEntry:
        is.kind = IssueKind::BadTarget;
        is.detail = "function entry outside text";
        break;
      case cfg::CfgProblemKind::BadTarget:
        is.kind = IssueKind::BadTarget;
        is.detail = "branch target outside text or misaligned";
        break;
      case cfg::CfgProblemKind::FallOffEnd:
        is.kind = IssueKind::FallOffEnd;
        is.detail = "control runs past the end of the text segment";
        break;
    }
    return is;
}

} // namespace verify

using verify::BinFunc;
using verify::FlowContext;

std::string_view
issueKindName(IssueKind kind)
{
    switch (kind) {
      case IssueKind::UninitRead: return "uninitialized-read";
      case IssueKind::JunkRead: return "junk-read";
      case IssueKind::ClobberedRead: return "clobbered-read";
      case IssueKind::InconsistentJoin: return "inconsistent-join";
      case IssueKind::BadTarget: return "bad-target";
      case IssueKind::FallOffEnd: return "fall-off-end";
      case IssueKind::UnknownSyscall: return "unknown-syscall";
      case IssueKind::NoConverge: return "no-converge";
    }
    return "?";
}

VerifyResult
verifyProgram(const Program& prog)
{
    VerifyResult res;
    const size_t n = prog.numInsts();

    if (!prog.validPc(prog.entry) || n == 0) {
        VerifyIssue is;
        is.kind = IssueKind::BadTarget;
        is.instIndex = 0;
        is.pc = prog.entry;
        is.detail = n == 0 ? "program has no text"
                           : "entry point outside the text segment";
        res.issues.push_back(std::move(is));
        return res;
    }
    const size_t entryIdx = (prog.entry - prog.textBase) / 4;

    std::vector<uint8_t> used(n, 0), reported(2 * n, 0), reachable(n, 0);

    // Discover functions: the program entry plus every direct-call
    // target, transitively.
    std::set<size_t> seen{entryIdx};
    std::vector<size_t> queue{entryIdx};
    std::vector<BinFunc> funcs;
    while (!queue.empty()) {
        const size_t e = queue.back();
        queue.pop_back();
        funcs.push_back(verify::buildBinFunc(prog, e));
        for (const size_t t : funcs.back().callTargets)
            if (seen.insert(t).second)
                queue.push_back(t);
    }

    std::set<std::pair<int, size_t>> cfgSeen;
    for (const BinFunc& fn : funcs) {
        for (const cfg::CfgProblem& p : fn.problems) {
            VerifyIssue is = verify::cfgProblemIssue(prog, p);
            if (cfgSeen
                    .insert({static_cast<int>(is.kind), is.instIndex})
                    .second &&
                res.issues.size() < 100) {
                res.issues.push_back(std::move(is));
            }
        }
        res.numBlocks += fn.blocks.size();
        for (size_t i = 0; i < n; ++i)
            if (fn.blockOfInst[i] >= 0)
                reachable[i] = 1;

        FlowContext cx{prog, fn, fn.entryInst == entryIdx, res, used,
                       reported};
        if (prog.isa == Isa::Riscv)
            verify::runRiscvFlow(cx);
        else
            verify::runDistanceFlow(cx);
    }
    res.numFuncs = funcs.size();
    for (size_t i = 0; i < n; ++i)
        res.numInsts += reachable[i];

    // Write counts and dead-write detection over every reachable
    // value-producing instruction (calls and syscalls excluded: their
    // results cross boundaries the per-function flows cannot see).
    for (size_t i = 0; i < n; ++i) {
        if (!reachable[i])
            continue;
        const Inst& inst = prog.decoded[i];
        const OpInfo& info = inst.info();
        if (!info.hasDst || info.isBranch() || inst.op == Op::ECALL)
            continue;
        if (prog.isa == Isa::Riscv && inst.dst == kRegZero)
            continue;
        const uint8_t hand =
            prog.isa == Isa::Clockhands ? inst.dst : uint8_t{0};
        auto& pr = res.pressure[hand % kNumHands];
        ++pr.writes;
        if (!used[i])
            ++pr.deadWrites;
    }

    std::stable_sort(res.issues.begin(), res.issues.end(),
                     [](const VerifyIssue& a, const VerifyIssue& b) {
                         return a.instIndex != b.instIndex
                                    ? a.instIndex < b.instIndex
                                    : a.operand < b.operand;
                     });
    return res;
}

std::string
formatIssue(const Program& prog, const VerifyIssue& is)
{
    std::ostringstream os;
    if (is.line > 0)
        os << "line " << is.line << ": ";
    os << "pc 0x" << std::hex << is.pc << std::dec << " inst #"
       << is.instIndex;
    if (is.instIndex < prog.decoded.size())
        os << " `" << disassemble(prog.isa, prog.decoded[is.instIndex])
           << "`";
    os << ": ";
    if (is.operand > 0)
        os << "src" << is.operand << " ";
    os << is.detail << " [" << issueKindName(is.kind) << "]";
    return os.str();
}

std::string
formatIssues(const Program& prog, const VerifyResult& res)
{
    std::string out;
    for (const VerifyIssue& is : res.issues) {
        out += formatIssue(prog, is);
        out += '\n';
    }
    return out;
}

std::string
formatPressure(const Program& prog, const VerifyResult& res)
{
    std::ostringstream os;
    os << isaName(prog.isa) << ": " << res.numFuncs << " functions, "
       << res.numBlocks << " blocks, " << res.numInsts
       << " reachable instructions\n";
    auto line = [&](const std::string& name, const HandPressure& p) {
        os << "  " << name << ": " << p.writes << " writes, " << p.reads
           << " reads, " << p.deadWrites << " dead";
        if (p.maxDist >= 0)
            os << ", max distance " << p.maxDist;
        os << "\n";
    };
    switch (prog.isa) {
      case Isa::Riscv:
        line("regs", res.pressure[0]);
        break;
      case Isa::Straight:
        line("ring", res.pressure[0]);
        break;
      case Isa::Clockhands:
        for (int h = 0; h < kNumHands; ++h)
            line(std::string(1, handName(static_cast<uint8_t>(h))),
                 res.pressure[static_cast<size_t>(h)]);
        break;
    }
    return os.str();
}

} // namespace ch
