#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "isa/encoding.h"
#include "verify/internal.h"

/*
 * Forward dataflow over the write histories of the distance-referenced
 * ISAs (paper Sections 2.2 and 4).
 *
 * STRAIGHT models one ring of kStraightMaxDist slots: every executed
 * instruction pushes a slot, valueless instructions push "junk", and
 * the special SP is tracked separately. Clockhands models the four
 * hands of kHandDepth slots each; only value-producing writes rotate a
 * hand.
 *
 * Call boundaries use the backends' calling convention as a summary
 * (docs/BACKENDS.md Sections 5-6): after a STRAIGHT call the ring holds
 * [jr-slot, return value, <clobbered>...] and SP is preserved; after a
 * Clockhands call t/u are dead, s holds [SP, return value,
 * <clobbered>...], and v[0..7] survive. Function entries other than
 * the program entry point start from fully symbolic argument windows
 * because arity is not recorded in the binary.
 */

namespace ch::verify {

namespace {

/** Live distance window per hand for @p isa. */
int
window(Isa isa)
{
    return isa == Isa::Straight ? kStraightMaxDist : kHandDepth;
}

/** Abstract machine state at one program point. */
struct DState {
    bool live = false;
    std::array<std::vector<Slot>, kNumHands> hands;
    Slot sp;  ///< STRAIGHT special SP
};

/** Push @p s as the newest value of history @p h. */
void
push(std::vector<Slot>& h, Slot s)
{
    for (size_t k = h.size() - 1; k > 0; --k)
        h[k] = h[k - 1];
    h[0] = s;
}

DState
makeEntryState(Isa isa, bool isEntryFunc)
{
    DState st;
    st.live = true;
    const int numHands = isa == Isa::Straight ? 1 : kNumHands;
    for (int h = 0; h < numHands; ++h)
        st.hands[h].assign(static_cast<size_t>(window(isa)), Slot{});

    if (isa == Isa::Straight) {
        if (isEntryFunc) {
            st.sp = {SK::Init, 0};  // ring empty, SP pre-set
        } else {
            // Callee view: [ra, argN..arg1, caller values...]; arity is
            // unknown, so the whole window is symbolic.
            st.sp = {SK::Entry, 0x1000};
            for (int k = 0; k < window(isa); ++k)
                st.hands[0][static_cast<size_t>(k)] = {SK::Entry, k};
        }
        return st;
    }

    if (isEntryFunc) {
        // The emulator pre-writes SP into s so s[0] reads it at _start.
        st.hands[HandS][0] = {SK::Init, 0};
    } else {
        // Callee view (docs/BACKENDS.md Section 6): s carries
        // [callerSP, args..., ra], v[0..7] is the callee-saved window;
        // t, u, and v[8..15] hold stale caller values that must not be
        // read before being rewritten.
        for (int k = 0; k < kHandDepth; ++k) {
            const auto ku = static_cast<size_t>(k);
            st.hands[HandS][ku] = {SK::Entry, 0x300 + k};
            st.hands[HandV][ku] = k < 8 ? Slot{SK::Entry, 0x200 + k}
                                        : Slot{SK::Clobbered, 0};
            st.hands[HandT][ku] = {SK::Clobbered, 0};
            st.hands[HandU][ku] = {SK::Clobbered, 0};
        }
    }
    return st;
}

/** The per-function dataflow engine. */
struct DistanceFlow {
    FlowContext& cx;
    const Isa isa;
    const bool straight;
    PhiBook book;
    std::unordered_set<int32_t> phiMarked;

    explicit DistanceFlow(FlowContext& c)
        : cx(c), isa(c.prog.isa), straight(isa == Isa::Straight)
    {
    }

    /** Mark the producer(s) behind @p s as consumed. */
    void
    markUsed(const Slot& s)
    {
        switch (s.kind) {
          case SK::Value:
            cx.used[static_cast<size_t>(s.ref)] = 1;
            break;
          case SK::Phi:
          case SK::Partial: {
            if (!phiMarked.insert(s.ref).second)
                return;
            auto it = book.inputs.find(s.ref);
            if (it != book.inputs.end())
                for (const Slot& in : it->second)
                    markUsed(in);
            break;
          }
          default:
            break;
        }
    }

    /** Phi id for hand slot (@p block, @p hand, @p depth). */
    static int32_t
    phiRef(int block, int hand, int depth)
    {
        return (static_cast<int32_t>(block) * (kNumHands + 1) + hand) * 131 +
               depth + 1;
    }

    /** Merge @p src into @p dst (the in-state of block @p blockId). */
    bool
    mergeInto(DState& dst, const DState& src, int blockId)
    {
        if (!dst.live) {
            dst = src;
            return true;
        }
        bool changed = false;
        const int numHands = straight ? 1 : kNumHands;
        for (int h = 0; h < numHands; ++h) {
            auto& d = dst.hands[static_cast<size_t>(h)];
            const auto& s = src.hands[static_cast<size_t>(h)];
            for (size_t k = 0; k < d.size(); ++k) {
                const Slot m = mergeSlot(d[k], s[k],
                                         phiRef(blockId, h,
                                                static_cast<int>(k)),
                                         book);
                if (!(m == d[k])) {
                    d[k] = m;
                    changed = true;
                }
            }
        }
        if (straight) {
            const Slot m = mergeSlot(dst.sp, src.sp,
                                     phiRef(blockId, kNumHands, 0), book);
            if (!(m == dst.sp)) {
                dst.sp = m;
                changed = true;
            }
        }
        return changed;
    }

    /** Diagnose the read of @p s by operand @p opnd of instruction @p i. */
    void
    diagnose(const Slot& s, size_t i, int opnd, uint8_t hand, uint8_t dist)
    {
        const std::string ref =
            straight ? concat("[", static_cast<int>(dist), "]")
                     : concat(handName(hand), "[", static_cast<int>(dist),
                              "]");
        switch (s.kind) {
          case SK::Uninit:
            addIssue(cx, IssueKind::UninitRead, i, opnd, hand, dist,
                     concat("reads ", ref,
                            ", which was never written on any path"));
            break;
          case SK::Junk:
          case SK::CallJunk: {
            std::string who =
                s.kind == SK::CallJunk
                    ? concat("the jr slot of the call at instruction #",
                             s.ref)
                    : s.ref >= 0
                          ? concat("valueless instruction #", s.ref, " `",
                                   disassemble(isa,
                                               cx.prog.decoded[static_cast<
                                                   size_t>(s.ref)]),
                                   "`")
                          : std::string("a valueless instruction");
            addIssue(cx, IssueKind::JunkRead, i, opnd, hand, dist,
                     concat("reads ", ref, ", but that slot belongs to ",
                            who, " and holds no value"));
            break;
          }
          case SK::Clobbered:
            addIssue(cx, IssueKind::ClobberedRead, i, opnd, hand, dist,
                     concat("reads ", ref,
                            ", which holds no defined value here (stale "
                            "across a call boundary)"));
            break;
          case SK::Partial:
            addIssue(cx, IssueKind::InconsistentJoin, i, opnd, hand, dist,
                     concat("reads ", ref,
                            ", which is written on some but not all paths "
                            "reaching this join"));
            break;
          case SK::Conflict:
            addIssue(cx, IssueKind::InconsistentJoin, i, opnd, hand, dist,
                     concat("reads ", ref,
                            ", which resolves to a value on one path and a "
                            "valueless slot on another"));
            break;
          default:
            break;  // readable kinds are fine
        }
    }

    /** Resolve and (in report mode) check one source operand. */
    void
    readOperand(DState& st, size_t i, int opnd, uint8_t hand, uint8_t dist,
                bool report)
    {
        Slot s;
        uint8_t statHand = 0;
        int statDist = -1;
        if (straight) {
            if (dist == kStraightZeroDist)
                return;
            if (dist == kStraightSpBase) {
                s = st.sp;
            } else {
                s = st.hands[0][static_cast<size_t>(dist - 1)];
                statDist = dist;
            }
        } else {
            if (hand == HandS && dist == kHandZeroDist)
                return;
            statHand = hand;
            statDist = dist;
            s = st.hands[hand][dist];
        }
        if (!report)
            return;
        markUsed(s);
        const size_t key = i * 2 + static_cast<size_t>(opnd - 1);
        if (cx.reported[key])
            return;  // already counted/diagnosed (shared code)
        cx.reported[key] = 1;
        auto& pr = cx.res.pressure[statHand];
        ++pr.reads;
        pr.maxDist = std::max(pr.maxDist, statDist);
        diagnose(s, i, opnd, statHand, dist);
    }

    /** Calling-convention summary applied at JAL/JALR sites. */
    void
    applyCall(DState& st, size_t i, bool report)
    {
        const auto ref = static_cast<int32_t>(i);
        if (straight) {
            if (report) {
                // The argument window and SP escape into the callee.
                for (size_t k = 0; k < 10 && k < st.hands[0].size(); ++k)
                    markUsed(st.hands[0][k]);
                markUsed(st.sp);
            }
            std::fill(st.hands[0].begin(), st.hands[0].end(),
                      Slot{SK::Clobbered, 0});
            st.hands[0][1] = {SK::CallRet, ref};
            st.hands[0][0] = {SK::CallJunk, ref};
            // SP is preserved: the callee restores it before returning.
            return;
        }
        if (report) {
            for (int k = 0; k < 10; ++k)
                markUsed(st.hands[HandS][static_cast<size_t>(k)]);
            for (int k = 0; k < 8; ++k)
                markUsed(st.hands[HandV][static_cast<size_t>(k)]);
        }
        std::fill(st.hands[HandT].begin(), st.hands[HandT].end(),
                  Slot{SK::Clobbered, 0});
        std::fill(st.hands[HandU].begin(), st.hands[HandU].end(),
                  Slot{SK::Clobbered, 0});
        std::fill(st.hands[HandS].begin(), st.hands[HandS].end(),
                  Slot{SK::Clobbered, 0});
        st.hands[HandS][1] = {SK::CallRet, ref};
        st.hands[HandS][0] = {SK::CallSp, ref};
        // v[0..7] survive in value (the callee saves and restores them);
        // anything deeper, or never written by this caller, is garbage.
        for (int k = 0; k < kHandDepth; ++k) {
            auto& slot = st.hands[HandV][static_cast<size_t>(k)];
            if (k >= 8 || slot.kind == SK::Uninit)
                slot = {SK::Clobbered, 0};
        }
    }

    /** Escape marking at a function exit (jr). */
    void
    applyExit(DState& st, const Inst& inst, bool report)
    {
        if (!report || inst.info().brKind != BrKind::Ret)
            return;
        if (straight) {
            // Callers read [1] (our jr slot) .. [2] (return value).
            markUsed(st.hands[0][0]);
            markUsed(st.hands[0][1]);
            markUsed(st.sp);
        } else {
            // Callers read s[0] (SP), s[1] (return value), and the
            // preserved v window.
            markUsed(st.hands[HandS][0]);
            markUsed(st.hands[HandS][1]);
            for (int k = 0; k < 8; ++k)
                markUsed(st.hands[HandV][static_cast<size_t>(k)]);
        }
    }

    /** Abstractly execute instruction @p i on @p st. */
    void
    transferInst(DState& st, size_t i, bool report)
    {
        const Inst& inst = cx.prog.decoded[i];
        const OpInfo& info = inst.info();
        if (info.numSrcs >= 1)
            readOperand(st, i, 1, inst.src1Hand, inst.src1, report);
        if (info.numSrcs >= 2)
            readOperand(st, i, 2, inst.src2Hand, inst.src2, report);
        if (report && inst.op == Op::ECALL && inst.imm != 0 && inst.imm != 1 &&
            !cx.reported[i * 2]) {
            cx.reported[i * 2] = 1;
            addIssue(cx, IssueKind::UnknownSyscall, i, 0, 0, 0,
                     concat("syscall ", inst.imm, " is not implemented"));
        }

        const InstFlow f = instFlow(cx.prog, i);
        if (f.isExit) {
            applyExit(st, inst, report);
            return;
        }
        if (f.isCall) {
            applyCall(st, i, report);
            return;
        }
        if (inst.op == Op::SPADDI) {
            if (straight) {
                if (report)
                    markUsed(st.sp);
                st.sp = {SK::Value, static_cast<int32_t>(i)};
                push(st.hands[0], {SK::Junk, static_cast<int32_t>(i)});
            }
            return;
        }
        if (straight) {
            push(st.hands[0],
                 info.hasDst ? Slot{SK::Value, static_cast<int32_t>(i)}
                             : Slot{SK::Junk, static_cast<int32_t>(i)});
        } else if (info.hasDst) {
            push(st.hands[inst.dst], {SK::Value, static_cast<int32_t>(i)});
        }
    }
};

} // namespace

void
runDistanceFlow(FlowContext& cx)
{
    const auto& blocks = cx.func.blocks;
    if (blocks.empty())
        return;

    DistanceFlow fl(cx);
    std::vector<DState> in(blocks.size());
    in[0] = makeEntryState(cx.prog.isa, cx.isEntryFunc);

    bool changed = true;
    int pass = 0;
    constexpr int kMaxPasses = 300;
    while (changed && pass < kMaxPasses) {
        changed = false;
        ++pass;
        for (size_t b = 0; b < blocks.size(); ++b) {
            if (!in[b].live)
                continue;
            DState out = in[b];
            for (int i = blocks[b].first; i <= blocks[b].last; ++i)
                fl.transferInst(out, static_cast<size_t>(i), false);
            for (const int s : blocks[b].succs) {
                changed =
                    fl.mergeInto(in[static_cast<size_t>(s)], out, s) ||
                    changed;
            }
        }
    }
    if (changed) {
        addIssue(cx, IssueKind::NoConverge, cx.func.entryInst, 0, 0, 0,
                 concat("dataflow did not converge after ", kMaxPasses,
                        " passes"));
    }

    // Fixpoint reached: one reporting pass collects diagnostics, read
    // statistics, and use marks from the final in-states.
    for (size_t b = 0; b < blocks.size(); ++b) {
        if (!in[b].live)
            continue;
        DState out = in[b];
        for (int i = blocks[b].first; i <= blocks[b].last; ++i)
            fl.transferInst(out, static_cast<size_t>(i), true);
    }
}

} // namespace ch::verify
