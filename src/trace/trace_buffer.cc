#include "trace/trace_buffer.h"

#include "common/logging.h"
#include "isa/op.h"

namespace ch {

namespace {

static_assert(kNumOps <= 256, "op must fit the one-byte trace encoding");

// Per-record flags byte: which optional fields follow the op byte.
enum : uint8_t {
    kFlagTaken = 1u << 0,    ///< di.taken
    kFlagImm = 1u << 1,      ///< zigzag imm follows
    kFlagMem = 1u << 2,      ///< memAddr zigzag-delta + memValue follow
    kFlagProd1 = 1u << 3,    ///< seq - prod1 follows
    kFlagProd2 = 1u << 4,    ///< seq - prod2 follows
    kFlagNextPc = 1u << 5,   ///< nextPc != pc + 4; zigzag delta follows
    kFlagPc = 1u << 6,       ///< pc != previous nextPc; zigzag delta follows
    kFlagOps = 1u << 7,      ///< packed dst/src1/src2/hands word follows
};

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
putVarint(std::vector<uint8_t>& out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint64_t
getVarint(const uint8_t*& p)
{
    uint64_t v = 0;
    for (unsigned shift = 0;; shift += 7) {
        const uint8_t b = *p++;
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
}

} // namespace

void
TraceBuffer::append(const DynInst& di)
{
    if (overLimit_)
        return;
    CH_ASSERT(di.src1Hand < 4 && di.src2Hand < 4,
              "hand out of 2-bit trace encoding range");
    if (count_ == 0)
        firstSeq_ = di.seq;
    else
        CH_ASSERT(di.seq == firstSeq_ + count_,
                  "trace seq not contiguous: ", di.seq);

    uint8_t flags = 0;
    if (di.taken)
        flags |= kFlagTaken;
    if (di.imm != 0)
        flags |= kFlagImm;
    if (di.memAddr != 0 || di.memValue != 0)
        flags |= kFlagMem;
    if (di.prod1 != kNoProducer)
        flags |= kFlagProd1;
    if (di.prod2 != kNoProducer)
        flags |= kFlagProd2;
    if (di.nextPc != di.pc + 4)
        flags |= kFlagNextPc;
    if (di.pc != predPc_)
        flags |= kFlagPc;
    const uint32_t ops =
        static_cast<uint32_t>(di.dst) |
        static_cast<uint32_t>(di.src1) << 8 |
        static_cast<uint32_t>(di.src2) << 16 |
        static_cast<uint32_t>(di.src1Hand | (di.src2Hand << 2)) << 24;
    if (ops != 0)
        flags |= kFlagOps;

    bytes_.push_back(flags);
    bytes_.push_back(static_cast<uint8_t>(di.op));
    if (flags & kFlagPc) {
        putVarint(bytes_, zigzag(static_cast<int64_t>(di.pc - predPc_)));
    }
    if (flags & kFlagOps)
        putVarint(bytes_, ops);
    if (flags & kFlagImm)
        putVarint(bytes_, zigzag(di.imm));
    if (flags & kFlagProd1)
        putVarint(bytes_, di.seq - di.prod1);
    if (flags & kFlagProd2)
        putVarint(bytes_, di.seq - di.prod2);
    if (flags & kFlagMem) {
        putVarint(bytes_, zigzag(static_cast<int64_t>(di.memAddr -
                                                      lastMemAddr_)));
        putVarint(bytes_, di.memValue);
        lastMemAddr_ = di.memAddr;
    }
    if (flags & kFlagNextPc) {
        putVarint(bytes_,
                  zigzag(static_cast<int64_t>(di.nextPc - (di.pc + 4))));
    }

    predPc_ = di.nextPc;
    ++count_;
    if (byteLimit_ && bytes_.size() > byteLimit_)
        overLimit_ = true;
}

void
TraceBuffer::replay(TraceSink& sink) const
{
    CH_ASSERT(!overLimit_, "replaying a truncated trace");
    const uint8_t* p = bytes_.data();
    uint64_t predPc = 0;
    uint64_t lastMemAddr = 0;
    for (uint64_t i = 0; i < count_; ++i) {
        const uint8_t flags = *p++;
        DynInst di;
        di.seq = firstSeq_ + i;
        di.op = static_cast<Op>(*p++);
        di.pc = predPc;
        if (flags & kFlagPc)
            di.pc += static_cast<uint64_t>(unzigzag(getVarint(p)));
        if (flags & kFlagOps) {
            const auto ops = static_cast<uint32_t>(getVarint(p));
            di.dst = static_cast<uint8_t>(ops);
            di.src1 = static_cast<uint8_t>(ops >> 8);
            di.src2 = static_cast<uint8_t>(ops >> 16);
            di.src1Hand = static_cast<uint8_t>((ops >> 24) & 3);
            di.src2Hand = static_cast<uint8_t>((ops >> 26) & 3);
        }
        if (flags & kFlagImm)
            di.imm = unzigzag(getVarint(p));
        if (flags & kFlagProd1)
            di.prod1 = di.seq - getVarint(p);
        if (flags & kFlagProd2)
            di.prod2 = di.seq - getVarint(p);
        if (flags & kFlagMem) {
            di.memAddr = lastMemAddr +
                         static_cast<uint64_t>(unzigzag(getVarint(p)));
            di.memValue = getVarint(p);
            lastMemAddr = di.memAddr;
        }
        di.nextPc = di.pc + 4;
        if (flags & kFlagNextPc)
            di.nextPc += static_cast<uint64_t>(unzigzag(getVarint(p)));
        di.taken = (flags & kFlagTaken) != 0;

        predPc = di.nextPc;
        sink.onInst(di);
    }
    CH_ASSERT(p == bytes_.data() + bytes_.size(),
              "trace decode did not consume the full buffer");
}

} // namespace ch
