#include "trace/trace_buffer.h"

#include "common/logging.h"
#include "isa/op.h"

namespace ch {

using namespace tracedetail;

namespace {

static_assert(kNumOps <= 256, "op must fit the one-byte trace encoding");

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

void
putVarint(std::vector<uint8_t>& out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

} // namespace

void
TraceBuffer::append(const DynInst& di)
{
    CH_ASSERT(!ext_, "append to a store-backed (read-only) trace");
    if (overLimit_)
        return;
    CH_ASSERT(di.src1Hand < 4 && di.src2Hand < 4,
              "hand out of 2-bit trace encoding range");
    if (count_ == 0)
        firstSeq_ = di.seq;
    else
        CH_ASSERT(di.seq == firstSeq_ + count_,
                  "trace seq not contiguous: ", di.seq);

    // Decoder sync point: captured *before* encoding this record, so a
    // replayRange() seek resumes exactly where this record starts.
    if (count_ > 0 && count_ % keyframeInterval_ == 0)
        keyframes_.push_back({count_, bytes_.size(), predPc_,
                              lastMemAddr_});

    uint8_t flags = 0;
    if (di.taken)
        flags |= kFlagTaken;
    if (di.imm != 0)
        flags |= kFlagImm;
    if (di.memAddr != 0 || di.memValue != 0)
        flags |= kFlagMem;
    if (di.prod1 != kNoProducer)
        flags |= kFlagProd1;
    if (di.prod2 != kNoProducer)
        flags |= kFlagProd2;
    if (di.nextPc != di.pc + 4)
        flags |= kFlagNextPc;
    if (di.pc != predPc_)
        flags |= kFlagPc;
    const uint32_t ops =
        static_cast<uint32_t>(di.dst) |
        static_cast<uint32_t>(di.src1) << 8 |
        static_cast<uint32_t>(di.src2) << 16 |
        static_cast<uint32_t>(di.src1Hand | (di.src2Hand << 2)) << 24;
    if (ops != 0)
        flags |= kFlagOps;

    bytes_.push_back(flags);
    bytes_.push_back(static_cast<uint8_t>(di.op));
    if (flags & kFlagPc) {
        putVarint(bytes_, zigzag(static_cast<int64_t>(di.pc - predPc_)));
    }
    if (flags & kFlagOps)
        putVarint(bytes_, ops);
    if (flags & kFlagImm)
        putVarint(bytes_, zigzag(di.imm));
    if (flags & kFlagProd1)
        putVarint(bytes_, di.seq - di.prod1);
    if (flags & kFlagProd2)
        putVarint(bytes_, di.seq - di.prod2);
    if (flags & kFlagMem) {
        putVarint(bytes_, zigzag(static_cast<int64_t>(di.memAddr -
                                                      lastMemAddr_)));
        putVarint(bytes_, di.memValue);
        lastMemAddr_ = di.memAddr;
    }
    if (flags & kFlagNextPc) {
        putVarint(bytes_,
                  zigzag(static_cast<int64_t>(di.nextPc - (di.pc + 4))));
    }

    predPc_ = di.nextPc;
    ++count_;
    if (byteLimit_ && bytes_.size() > byteLimit_)
        overLimit_ = true;
}

void
TraceBuffer::replay(TraceSink& sink) const
{
    replayTo(sink);
}

} // namespace ch
