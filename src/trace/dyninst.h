#ifndef CH_TRACE_DYNINST_H
#define CH_TRACE_DYNINST_H

/**
 * @file
 * Dynamic (executed) instruction record streamed from the functional
 * emulators to trace analyzers and the timing model. The emulator
 * annotates each record with the dynamic sequence numbers of the
 * instructions that produced its source operands, so lifetime/loop
 * analyses can stay ISA-generic.
 */

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace ch {

/** Producer marker for operands with no dynamic producer (zero, imm). */
constexpr uint64_t kNoProducer = ~0ull;

/** One executed instruction. */
struct DynInst {
    uint64_t seq = 0;       ///< dynamic instruction index, from 0
    uint64_t pc = 0;
    Op op = Op::NOP;

    // Static operand fields, copied from the decoded instruction.
    uint8_t dst = 0;
    uint8_t src1 = 0, src2 = 0;
    uint8_t src1Hand = 0, src2Hand = 0;
    int64_t imm = 0;

    /** Dynamic seq of the producer of each register source operand. */
    uint64_t prod1 = kNoProducer;
    uint64_t prod2 = kNoProducer;

    /** Effective address for loads/stores. */
    uint64_t memAddr = 0;

    /** Data for loads/stores: the value loaded (after extension) or the
     *  value stored. The lockstep differential suite compares committed
     *  store sequences across ISAs through this field. */
    uint64_t memValue = 0;

    /** Architectural next PC (branch resolution ground truth). */
    uint64_t nextPc = 0;

    /** Conditional-branch outcome. */
    bool taken = false;

    const OpInfo& info() const { return opInfo(op); }
};

/** Consumer of the dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void onInst(const DynInst& di) = 0;
};

/** Fan-out sink feeding several analyzers in one emulator pass. */
class TeeSink : public TraceSink
{
  public:
    void add(TraceSink* sink) { sinks_.push_back(sink); }

    void
    onInst(const DynInst& di) override
    {
        for (auto* s : sinks_)
            s->onInst(di);
    }

  private:
    std::vector<TraceSink*> sinks_;
};

} // namespace ch

#endif // CH_TRACE_DYNINST_H
