#include "trace/analyzers.h"

#include "common/logging.h"

namespace ch {

// ---------------------------------------------------------------------
// LifetimeAnalyzer
// ---------------------------------------------------------------------

void
LifetimeAnalyzer::def(Slot& s, uint64_t seq, uint8_t hand)
{
    close(s);
    s.live = true;
    s.defSeq = seq;
    s.lastUse = seq;
    s.hand = hand;
}

void
LifetimeAnalyzer::use(Slot& s, uint64_t seq)
{
    if (s.live)
        s.lastUse = seq;
}

void
LifetimeAnalyzer::close(Slot& s)
{
    if (!s.live)
        return;
    const uint64_t lifetime = s.lastUse - s.defSeq;
    overall_.record(lifetime);
    if (isa_ == Isa::Clockhands)
        hand_[s.hand].record(lifetime);
    s.live = false;
}

void
LifetimeAnalyzer::onInst(const DynInst& di)
{
    ++total_;
    const OpInfo& info = di.info();
    const uint64_t seq = di.seq;

    // Source reads mark last-use times.
    auto useSrc = [&](uint8_t dist, uint8_t hand) {
        switch (isa_) {
          case Isa::Riscv:
            if (dist != kRegZero)
                use(regs_[dist], seq);
            break;
          case Isa::Straight:
            if (dist == kStraightZeroDist)
                return;
            if (dist == kStraightSpBase) {
                use(sp_, seq);
                return;
            }
            if (dist <= ringCount_)
                use(ring_[(ringCount_ - dist) % 128], seq);
            break;
          case Isa::Clockhands:
            if (hand == HandS && dist == kHandZeroDist)
                return;
            if (dist < handCount_[hand]) {
                use(hands_[hand][(handCount_[hand] - 1 - dist) % kHandDepth],
                    seq);
            }
            break;
        }
    };
    if (info.numSrcs >= 1)
        useSrc(di.src1, di.src1Hand);
    if (info.numSrcs >= 2)
        useSrc(di.src2, di.src2Hand);

    // Destination writes open (and close overwritten) definitions.
    switch (isa_) {
      case Isa::Riscv:
        if (info.hasDst && di.dst != kRegZero)
            def(regs_[di.dst], seq, 0);
        break;
      case Isa::Straight: {
        Slot& s = ring_[ringCount_ % 128];
        if (info.hasDst) {
            def(s, seq, 0);
        } else {
            close(s);  // slot consumed by a valueless instruction
        }
        ++ringCount_;
        if (di.op == Op::SPADDI)
            def(sp_, seq, 0);
        break;
      }
      case Isa::Clockhands:
        if (info.hasDst) {
            def(hands_[di.dst][handCount_[di.dst] % kHandDepth], seq,
                di.dst);
            ++handCount_[di.dst];
        }
        break;
    }
}

void
LifetimeAnalyzer::finish()
{
    for (auto& s : regs_)
        close(s);
    for (auto& s : ring_)
        close(s);
    close(sp_);
    for (auto& h : hands_)
        for (auto& s : h)
            close(s);
}

// ---------------------------------------------------------------------
// MixAnalyzer
// ---------------------------------------------------------------------

std::string_view
mixCatName(MixCat cat)
{
    switch (cat) {
      case MixCat::CallRet: return "Call+Ret";
      case MixCat::Jump: return "Jump";
      case MixCat::CondBr: return "CondBr";
      case MixCat::Load: return "Load";
      case MixCat::Store: return "Store";
      case MixCat::Alu: return "ALU";
      case MixCat::MulDiv: return "Mul+Div";
      case MixCat::Flops: return "FLOPs";
      case MixCat::Move: return "Move";
      case MixCat::Nop: return "NOP";
      case MixCat::Others: return "Others";
      default: return "?";
    }
}

MixCat
mixCategory(Op op)
{
    switch (opInfo(op).cls) {
      case OpClass::IntAlu: return MixCat::Alu;
      case OpClass::IntMul:
      case OpClass::IntDiv: return MixCat::MulDiv;
      case OpClass::FpAlu:
      case OpClass::FpDiv: return MixCat::Flops;
      case OpClass::Load: return MixCat::Load;
      case OpClass::Store: return MixCat::Store;
      case OpClass::CondBr: return MixCat::CondBr;
      case OpClass::Jump: return MixCat::Jump;
      case OpClass::Call:
      case OpClass::Ret: return MixCat::CallRet;
      case OpClass::Move: return MixCat::Move;
      case OpClass::Nop: return MixCat::Nop;
      case OpClass::Syscall: return MixCat::Others;
    }
    return MixCat::Others;
}

// ---------------------------------------------------------------------
// HandUsageAnalyzer
// ---------------------------------------------------------------------

void
HandUsageAnalyzer::onInst(const DynInst& di)
{
    ++total_;
    const OpInfo& info = di.info();
    auto read = [&](uint8_t dist, uint8_t hand) {
        if (hand == HandS && dist == kHandZeroDist)
            return;  // zero register, not a hand read
        ++reads_[hand];
    };
    if (info.numSrcs >= 1)
        read(di.src1, di.src1Hand);
    if (info.numSrcs >= 2)
        read(di.src2, di.src2Hand);
    if (info.hasDst)
        ++writes_[di.dst];
    else
        ++noDst_;
}

// ---------------------------------------------------------------------
// RelayAnalyzer
// ---------------------------------------------------------------------

RelayAnalyzer::RelayAnalyzer(const Program& prog, int maxDist)
    : prog_(prog), maxDist_(maxDist)
{
    CH_ASSERT(prog.isa == Isa::Riscv,
              "RelayAnalyzer expects a RISC trace (Section 2.2.3)");
    // Convergence points: static targets of conditional branches and
    // unconditional jumps (function entries via JAL are not fall-through
    // convergence points).
    for (size_t i = 0; i < prog.decoded.size(); ++i) {
        const Inst& inst = prog.decoded[i];
        const BrKind k = inst.info().brKind;
        if (k == BrKind::Cond || k == BrKind::Jump) {
            convergencePcs_.insert(prog.textBase + 4 * i +
                                   static_cast<uint64_t>(inst.imm));
        }
    }
    frames_.emplace_back();
}

int
RelayAnalyzer::crossingDepth(const Frame& f, uint64_t prodSeq) const
{
    int depth = 0;
    for (auto it = f.loops.rbegin(); it != f.loops.rend(); ++it) {
        if (it->entrySeq > prodSeq)
            ++depth;
        else
            break;
    }
    return depth;
}

void
RelayAnalyzer::noteUse(uint64_t prodSeq)
{
    if (prodSeq == kNoProducer || frames_.empty())
        return;
    Frame& f = frames_.back();
    if (f.loops.empty())
        return;
    const int depth = crossingDepth(f, prodSeq);
    if (depth >= 1)
        f.loops.back().constRefs.emplace(prodSeq, depth);
}

void
RelayAnalyzer::closeIteration(Loop& loop)
{
    report_.mvLoopConstant += loop.constRefs.size();
    for (const auto& [prod, depth] : loop.constRefs)
        ++report_.crossDepth[std::min(depth, 31)];
    loop.constRefs.clear();
}

void
RelayAnalyzer::onInst(const DynInst& di)
{
    const OpInfo& info = di.info();
    ++report_.totalInsts;

    // --- Fig 3 "nop": fall-through arrival at a convergence point.
    if (prevPc_ + 4 == di.pc && convergencePcs_.count(di.pc))
        ++report_.nopConvergence;
    prevPc_ = di.pc;

    // --- leave loops whose PC range we are no longer inside.
    Frame& f = frames_.back();
    while (!f.loops.empty() && (di.pc < f.loops.back().headerPc ||
                                di.pc > f.loops.back().backEdgePc)) {
        f.loops.pop_back();
    }

    lastArrival_[di.pc] = di.seq;

    // --- loop-constant references (values defined before loop entry).
    noteUse(di.prod1);
    noteUse(di.prod2);

    // --- architectural lifetimes for Fig 3 "mv-MaxDistance".
    auto useReg = [&](uint8_t r) {
        if (r != kRegZero && regs_[r].live)
            regs_[r].lastUse = di.seq;
    };
    if (info.numSrcs >= 1)
        useReg(di.src1);
    if (info.numSrcs >= 2)
        useReg(di.src2);
    if (info.hasDst && di.dst != kRegZero) {
        Slot& s = regs_[di.dst];
        if (s.live)
            report_.mvMaxDistance += (s.lastUse - s.defSeq) / maxDist_;
        s.live = true;
        s.defSeq = di.seq;
        s.lastUse = di.seq;
    }

    // --- control transfers: loop and call structure.
    if (info.brKind == BrKind::Call || info.brKind == BrKind::IndCall) {
        frames_.emplace_back();
        return;
    }
    if (info.brKind == BrKind::Ret) {
        if (frames_.size() > 1)
            frames_.pop_back();
        return;
    }
    const bool takenBackward =
        di.taken && info.brKind != BrKind::None && di.nextPc <= di.pc;
    if (!takenBackward)
        return;

    Frame& fr = frames_.back();
    const uint64_t target = di.nextPc;
    // Back edge of an active loop?
    for (size_t idx = fr.loops.size(); idx-- > 0;) {
        if (fr.loops[idx].headerPc == target) {
            // Inner loops (if any) ended with this jump.
            while (fr.loops.size() > idx + 1)
                fr.loops.pop_back();
            Loop& loop = fr.loops.back();
            loop.backEdgePc = std::max(loop.backEdgePc, di.pc);
            closeIteration(loop);
            return;
        }
    }
    // New loop: iteration 1 already ran without tracking (lower bound).
    Loop loop;
    loop.headerPc = target;
    loop.backEdgePc = di.pc;
    auto it = lastArrival_.find(target);
    loop.entrySeq = it != lastArrival_.end() ? it->second : di.seq;
    fr.loops.push_back(std::move(loop));
}

RelayReport
RelayAnalyzer::finish()
{
    for (auto& s : regs_) {
        if (s.live) {
            report_.mvMaxDistance += (s.lastUse - s.defSeq) / maxDist_;
            s.live = false;
        }
    }
    return report_;
}

} // namespace ch
