#ifndef CH_TRACE_TRACE_BUFFER_H
#define CH_TRACE_TRACE_BUFFER_H

/**
 * @file
 * Compact, append-only in-memory encoding of a committed DynInst stream.
 *
 * The committed stream of a (workload, ISA) pair depends only on the
 * program, never on the machine configuration, so a fig13-style grid can
 * execute the functional emulator once and replay the recorded stream
 * into a fresh CycleSim per config point (docs/PERFORMANCE.md). replay()
 * reproduces the exact onInst() sequence: every DynInst field round-trips
 * bit-for-bit, so timing metrics are byte-identical to a direct run.
 *
 * Encoding, per instruction (typically 3-6 bytes vs 104 for a raw
 * DynInst): one flags byte marking which optional fields are present,
 * the op byte, then LEB128 varints. The program counter is delta-encoded
 * against the previous record's nextPc (sequential flow costs 0 bytes),
 * producer seqs as backward distances from the current seq, and memory
 * addresses as zigzag deltas from the previous access. The dynamic seq
 * itself is implicit: the emulator numbers commits contiguously, which
 * append() asserts.
 *
 * Because each record is delta-encoded against decoder state, random
 * access needs a sync point: append() records a keyframe (byte offset,
 * record index, and the two delta predictors) every ~1M instructions,
 * so replayRange() can start mid-stream after skip-decoding at most one
 * keyframe interval instead of the whole prefix. The index rides along
 * through the persistent store (docs/SERVICE.md); traces captured or
 * stored without one fall back to skip-decoding from offset zero.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "trace/dyninst.h"

namespace ch {

/**
 * One decoder sync point: everything needed to resume decoding the
 * stream at record instIndex without touching the preceding bytes.
 * Trivially copyable by design — the persistent store serializes the
 * index as raw records (src/service/store.cc).
 */
struct TraceKeyframe {
    uint64_t instIndex;    ///< records encoded before this point
    uint64_t byteOffset;   ///< offset of record instIndex in data()
    uint64_t predPc;       ///< decoder pc-prediction state here
    uint64_t lastMemAddr;  ///< decoder memory-delta state here
};

namespace tracedetail {

// Per-record flags byte: which optional fields follow the op byte.
enum : uint8_t {
    kFlagTaken = 1u << 0,    ///< di.taken
    kFlagImm = 1u << 1,      ///< zigzag imm follows
    kFlagMem = 1u << 2,      ///< memAddr zigzag-delta + memValue follow
    kFlagProd1 = 1u << 3,    ///< seq - prod1 follows
    kFlagProd2 = 1u << 4,    ///< seq - prod2 follows
    kFlagNextPc = 1u << 5,   ///< nextPc != pc + 4; zigzag delta follows
    kFlagPc = 1u << 6,       ///< pc != previous nextPc; zigzag delta follows
    kFlagOps = 1u << 7,      ///< packed dst/src1/src2/hands word follows
};

inline int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline uint64_t
getVarint(const uint8_t*& p)
{
    uint64_t v = 0;
    for (unsigned shift = 0;; shift += 7) {
        const uint8_t b = *p++;
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
}

/**
 * Decode the record at @p p (advancing it past the record), mirroring
 * append()'s encoding exactly. The single decode routine is shared by
 * replayTo() and replayRange() so the full-stream and mid-stream paths
 * cannot drift; it is small enough to inline into both loops, keeping
 * the devirtualized `final`-sink replay as tight as before.
 */
inline DynInst
decodeRecord(const uint8_t*& p, uint64_t seq, uint64_t& predPc,
             uint64_t& lastMemAddr)
{
    const uint8_t flags = *p++;
    DynInst di;
    di.seq = seq;
    di.op = static_cast<Op>(*p++);
    di.pc = predPc;
    if (flags & kFlagPc)
        di.pc += static_cast<uint64_t>(unzigzag(getVarint(p)));
    if (flags & kFlagOps) {
        const auto ops = static_cast<uint32_t>(getVarint(p));
        di.dst = static_cast<uint8_t>(ops);
        di.src1 = static_cast<uint8_t>(ops >> 8);
        di.src2 = static_cast<uint8_t>(ops >> 16);
        di.src1Hand = static_cast<uint8_t>((ops >> 24) & 3);
        di.src2Hand = static_cast<uint8_t>((ops >> 26) & 3);
    }
    if (flags & kFlagImm)
        di.imm = unzigzag(getVarint(p));
    if (flags & kFlagProd1)
        di.prod1 = di.seq - getVarint(p);
    if (flags & kFlagProd2)
        di.prod2 = di.seq - getVarint(p);
    if (flags & kFlagMem) {
        di.memAddr = lastMemAddr +
                     static_cast<uint64_t>(unzigzag(getVarint(p)));
        di.memValue = getVarint(p);
        lastMemAddr = di.memAddr;
    }
    di.nextPc = di.pc + 4;
    if (flags & kFlagNextPc)
        di.nextPc += static_cast<uint64_t>(unzigzag(getVarint(p)));
    di.taken = (flags & kFlagTaken) != 0;

    predPc = di.nextPc;
    return di;
}

} // namespace tracedetail

/** Append-once, replay-many committed-trace recording; see file docs. */
class TraceBuffer : public TraceSink
{
  public:
    /** Record one committed instruction (TraceSink hook). */
    void onInst(const DynInst& di) override { append(di); }

    void append(const DynInst& di);

    /** Feed the recorded stream, in order, to @p sink. */
    void replay(TraceSink& sink) const;

    /**
     * replay() with the sink type known at compile time: the decode loop
     * calls @p Sink's onInst directly, so a `final` sink gets the call
     * devirtualized and inlined into the decode loop — worth ~25% of a
     * fast-rung replay. Decodes identically to replay() (which is this
     * template instantiated at Sink = TraceSink).
     */
    template <class Sink> void replayTo(Sink& sink) const;

    /**
     * Feed records [firstInst, firstInst + n) to @p sink, identical in
     * every DynInst field to the same records from a full replayTo().
     * Seeks via the keyframe index: O(log #keyframes) to find the last
     * sync point at or before firstInst, then skip-decodes at most one
     * keyframe interval. A buffer with no keyframes (old store-format
     * files) skip-decodes from the beginning instead — correct, just
     * not O(1).
     */
    template <class Sink>
    void replayRange(Sink& sink, uint64_t firstInst, uint64_t n) const;

    /** Recorded instructions. */
    uint64_t instCount() const { return count_; }

    /** Bytes of encoded trace (the cache budget accounting unit). */
    size_t byteSize() const { return ext_ ? extSize_ : bytes_.size(); }

    /** The raw encoding (serialization hook for the persistent store). */
    const uint8_t* data() const { return ext_ ? ext_ : bytes_.data(); }

    /** Dynamic seq of the first recorded instruction. */
    uint64_t firstSeq() const { return firstSeq_; }

    /** Default spacing of the decoder sync points recorded by append(). */
    static constexpr uint64_t kDefaultKeyframeInterval = 1ull << 20;

    /**
     * Override the keyframe spacing (test hook for exercising seeks on
     * small traces). Must be set before the first append().
     */
    void
    setKeyframeInterval(uint64_t insts)
    {
        CH_ASSERT(count_ == 0 && insts > 0,
                  "keyframe interval must be set on an empty buffer");
        keyframeInterval_ = insts;
    }

    /** The decoder sync points, ascending by instIndex (may be empty). */
    const std::vector<TraceKeyframe>& keyframes() const
    {
        return keyframes_;
    }

    /**
     * Back this buffer with an externally owned copy of the encoding —
     * typically an mmap'd file from the persistent trace store, so a
     * warm run replays straight out of the page cache without decoding
     * or copying (docs/SERVICE.md). @p owner keeps the bytes alive
     * (e.g. a shared_ptr whose deleter munmaps); the buffer becomes
     * read-only: append() on an external buffer is a logic error.
     * @p keyframes restores the serialized sync-point index; old-format
     * files pass none and replayRange() falls back to a full skip-decode.
     */
    void
    setExternal(std::shared_ptr<const void> owner, const uint8_t* data,
                size_t size, uint64_t count, uint64_t firstSeq,
                bool exited, int64_t exitCode,
                std::vector<TraceKeyframe> keyframes = {})
    {
        CH_ASSERT(count_ == 0 && bytes_.empty(),
                  "setExternal on a non-empty trace buffer");
        extOwner_ = std::move(owner);
        ext_ = data;
        extSize_ = size;
        count_ = count;
        firstSeq_ = firstSeq;
        exited_ = exited;
        exitCode_ = exitCode;
        keyframes_ = std::move(keyframes);
    }

    /**
     * Stop storing once the encoding exceeds @p maxBytes; further
     * append()s only flip overLimit(). 0 means unlimited.
     */
    void setByteLimit(size_t maxBytes) { byteLimit_ = maxBytes; }

    /** True when a byte limit stopped the recording (trace incomplete). */
    bool overLimit() const { return overLimit_; }

    /**
     * Outcome of the captured emulator run, so a replayed simulation can
     * report the same exited/exitCode as a direct one.
     */
    void
    setRunOutcome(bool exited, int64_t exitCode)
    {
        exited_ = exited;
        exitCode_ = exitCode;
    }

    bool exited() const { return exited_; }
    int64_t exitCode() const { return exitCode_; }

  private:
    /**
     * Replaying a truncated recording would silently time a partial
     * stream, so it is a hard structured error in every build type —
     * not a debug-only assert. Callers that set a byte limit must check
     * overLimit() and fall back to re-emulation (TraceCache does).
     */
    void
    requireComplete() const
    {
        if (overLimit_) {
            fatal("cannot replay a truncated trace: the byte budget "
                  "stopped recording after ", count_,
                  " instructions; re-capture without setByteLimit() or "
                  "raise the budget");
        }
    }

    std::vector<uint8_t> bytes_;
    uint64_t count_ = 0;
    uint64_t firstSeq_ = 0;
    size_t byteLimit_ = 0;
    bool overLimit_ = false;

    // External (store-backed) encoding; bytes_ stays empty when set.
    std::shared_ptr<const void> extOwner_;
    const uint8_t* ext_ = nullptr;
    size_t extSize_ = 0;

    // Encoder prediction state (decoder mirrors it in replay()).
    uint64_t predPc_ = 0;
    uint64_t lastMemAddr_ = 0;

    // Decoder sync points, one per keyframeInterval_ records.
    std::vector<TraceKeyframe> keyframes_;
    uint64_t keyframeInterval_ = kDefaultKeyframeInterval;

    bool exited_ = false;
    int64_t exitCode_ = 0;
};

template <class Sink>
void
TraceBuffer::replayTo(Sink& sink) const
{
    using namespace tracedetail;
    requireComplete();
    const uint8_t* p = data();
    uint64_t predPc = 0;
    uint64_t lastMemAddr = 0;
    for (uint64_t i = 0; i < count_; ++i)
        sink.onInst(decodeRecord(p, firstSeq_ + i, predPc, lastMemAddr));
    CH_ASSERT(p == data() + byteSize(),
              "trace decode did not consume the full buffer");
}

template <class Sink>
void
TraceBuffer::replayRange(Sink& sink, uint64_t firstInst, uint64_t n) const
{
    using namespace tracedetail;
    requireComplete();
    CH_ASSERT(firstInst <= count_ && n <= count_ - firstInst,
              "replayRange past the end of the trace: ", firstInst, "+",
              n, " > ", count_);
    const uint8_t* p = data();
    uint64_t predPc = 0;
    uint64_t lastMemAddr = 0;
    uint64_t i = 0;
    const auto it = std::upper_bound(
        keyframes_.begin(), keyframes_.end(), firstInst,
        [](uint64_t pos, const TraceKeyframe& k) {
            return pos < k.instIndex;
        });
    if (it != keyframes_.begin()) {
        const TraceKeyframe& k = *std::prev(it);
        p = data() + k.byteOffset;
        predPc = k.predPc;
        lastMemAddr = k.lastMemAddr;
        i = k.instIndex;
    }
    for (; i < firstInst; ++i)
        decodeRecord(p, firstSeq_ + i, predPc, lastMemAddr);
    for (const uint64_t end = firstInst + n; i < end; ++i)
        sink.onInst(decodeRecord(p, firstSeq_ + i, predPc, lastMemAddr));
    CH_ASSERT(p <= data() + byteSize(),
              "trace decode ran past the end of the buffer");
}

} // namespace ch

#endif // CH_TRACE_TRACE_BUFFER_H
