#ifndef CH_TRACE_TRACE_BUFFER_H
#define CH_TRACE_TRACE_BUFFER_H

/**
 * @file
 * Compact, append-only in-memory encoding of a committed DynInst stream.
 *
 * The committed stream of a (workload, ISA) pair depends only on the
 * program, never on the machine configuration, so a fig13-style grid can
 * execute the functional emulator once and replay the recorded stream
 * into a fresh CycleSim per config point (docs/PERFORMANCE.md). replay()
 * reproduces the exact onInst() sequence: every DynInst field round-trips
 * bit-for-bit, so timing metrics are byte-identical to a direct run.
 *
 * Encoding, per instruction (typically 3-6 bytes vs 104 for a raw
 * DynInst): one flags byte marking which optional fields are present,
 * the op byte, then LEB128 varints. The program counter is delta-encoded
 * against the previous record's nextPc (sequential flow costs 0 bytes),
 * producer seqs as backward distances from the current seq, and memory
 * addresses as zigzag deltas from the previous access. The dynamic seq
 * itself is implicit: the emulator numbers commits contiguously, which
 * append() asserts.
 */

#include <cstdint>
#include <vector>

#include "trace/dyninst.h"

namespace ch {

/** Append-once, replay-many committed-trace recording; see file docs. */
class TraceBuffer : public TraceSink
{
  public:
    /** Record one committed instruction (TraceSink hook). */
    void onInst(const DynInst& di) override { append(di); }

    void append(const DynInst& di);

    /** Feed the recorded stream, in order, to @p sink. */
    void replay(TraceSink& sink) const;

    /** Recorded instructions. */
    uint64_t instCount() const { return count_; }

    /** Bytes of encoded trace (the cache budget accounting unit). */
    size_t byteSize() const { return bytes_.size(); }

    /**
     * Stop storing once the encoding exceeds @p maxBytes; further
     * append()s only flip overLimit(). 0 means unlimited.
     */
    void setByteLimit(size_t maxBytes) { byteLimit_ = maxBytes; }

    /** True when a byte limit stopped the recording (trace incomplete). */
    bool overLimit() const { return overLimit_; }

    /**
     * Outcome of the captured emulator run, so a replayed simulation can
     * report the same exited/exitCode as a direct one.
     */
    void
    setRunOutcome(bool exited, int64_t exitCode)
    {
        exited_ = exited;
        exitCode_ = exitCode;
    }

    bool exited() const { return exited_; }
    int64_t exitCode() const { return exitCode_; }

  private:
    std::vector<uint8_t> bytes_;
    uint64_t count_ = 0;
    uint64_t firstSeq_ = 0;
    size_t byteLimit_ = 0;
    bool overLimit_ = false;

    // Encoder prediction state (decoder mirrors it in replay()).
    uint64_t predPc_ = 0;
    uint64_t lastMemAddr_ = 0;

    bool exited_ = false;
    int64_t exitCode_ = 0;
};

} // namespace ch

#endif // CH_TRACE_TRACE_BUFFER_H
