#include "trace/kanata.h"

#include <utility>

#include "common/logging.h"

namespace ch {

namespace {

/** Kanata fields are tab-separated; labels must not break the framing. */
std::string
sanitizeLabel(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out += (c == '\t' || c == '\n' || c == '\r') ? ' ' : c;
    return out;
}

} // namespace

KanataWriter::KanataWriter(std::ostream& os) : os_(os)
{
    os_ << "Kanata\t0004\n";
}

void
KanataWriter::emit(uint64_t cycle, std::string line)
{
    CH_ASSERT(cycle >= lowWater_, "Kanata event at cycle ", cycle,
              " recorded after flushBefore(", lowWater_, ")");
    pending_.emplace(cycle, std::move(line));
}

void
KanataWriter::insn(uint64_t id, uint64_t iid, int tid, uint64_t cycle)
{
    emit(cycle, concat("I\t", id, "\t", iid, "\t", tid));
}

void
KanataWriter::label(uint64_t id, int type, const std::string& text,
                    uint64_t cycle)
{
    emit(cycle, concat("L\t", id, "\t", type, "\t", sanitizeLabel(text)));
}

void
KanataWriter::stageStart(uint64_t id, int lane, const char* stage,
                         uint64_t cycle)
{
    emit(cycle, concat("S\t", id, "\t", lane, "\t", stage));
}

void
KanataWriter::stageEnd(uint64_t id, int lane, const char* stage,
                       uint64_t cycle)
{
    emit(cycle, concat("E\t", id, "\t", lane, "\t", stage));
}

void
KanataWriter::retire(uint64_t id, uint64_t rid, bool flushed,
                     uint64_t cycle)
{
    emit(cycle, concat("R\t", id, "\t", rid, "\t", flushed ? 1 : 0));
}

void
KanataWriter::dependency(uint64_t consumer, uint64_t producer, int type,
                         uint64_t cycle)
{
    emit(cycle, concat("W\t", consumer, "\t", producer, "\t", type));
}

void
KanataWriter::flushBefore(uint64_t cycle)
{
    auto end = pending_.lower_bound(cycle);
    for (auto it = pending_.begin(); it != end; ++it) {
        const uint64_t c = it->first;
        if (!cycleSet_) {
            os_ << "C=\t" << c << "\n";
            curCycle_ = c;
            cycleSet_ = true;
        } else if (c > curCycle_) {
            os_ << "C\t" << (c - curCycle_) << "\n";
            curCycle_ = c;
        }
        os_ << it->second << "\n";
        ++written_;
    }
    pending_.erase(pending_.begin(), end);
    // Remember the low-water mark so late events are caught (emit()).
    if (cycle > lowWater_)
        lowWater_ = cycle;
}

void
KanataWriter::finish()
{
    if (!pending_.empty())
        flushBefore(pending_.rbegin()->first + 1);
    os_.flush();
}

} // namespace ch
