#ifndef CH_TRACE_KANATA_H
#define CH_TRACE_KANATA_H

/**
 * @file
 * Writer for the Kanata pipeline-trace format (version 0004), the
 * cycle-by-cycle log emitted by Onikiri2 and rendered by the Konata
 * viewer. A Kanata file is a header line followed by commands whose
 * position in the file implies their cycle:
 *
 *   Kanata  0004            header + version
 *   C=      <cycle>         set the absolute start cycle
 *   C       <n>             advance the current cycle by n
 *   I       <id> <iid> <tid> begin instruction (simulator id, file-local
 *                            instruction id, thread id)
 *   L       <id> <type> <text> label; type 0 = left pane, 1 = hover
 *   S       <id> <lane> <stage> stage begins at the current cycle
 *   E       <id> <lane> <stage> stage ends at the current cycle
 *   R       <id> <rid> <type>   retire; type 0 = commit, 1 = flush
 *   W       <cons> <prod> <type> dependency edge (0 = data wakeup)
 *
 * Our timing model computes each instruction's full stage schedule at
 * once instead of stepping cycles, so events arrive out of cycle order
 * (instruction N's commit is recorded before instruction N+1's fetch).
 * KanataWriter therefore takes an absolute cycle with every event,
 * buffers, and serializes in cycle order; flushBefore() lets the caller
 * bound the buffer once a low-water cycle is known to be final.
 */

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace ch {

/** Buffering, reordering emitter of Kanata 0004 command streams. */
class KanataWriter
{
  public:
    /** Write the header; the stream must outlive the writer. */
    explicit KanataWriter(std::ostream& os);

    /** Begin instruction @p id (file id @p iid, thread @p tid). */
    void insn(uint64_t id, uint64_t iid, int tid, uint64_t cycle);

    /** Attach a label; type 0 = left pane text, 1 = hover detail. */
    void label(uint64_t id, int type, const std::string& text,
               uint64_t cycle);

    /** Stage @p stage of @p id begins at @p cycle on @p lane. */
    void stageStart(uint64_t id, int lane, const char* stage,
                    uint64_t cycle);

    /** Stage @p stage of @p id ends at @p cycle on @p lane. */
    void stageEnd(uint64_t id, int lane, const char* stage,
                  uint64_t cycle);

    /** Retire (@p flushed false) or squash (@p flushed true) @p id. */
    void retire(uint64_t id, uint64_t rid, bool flushed, uint64_t cycle);

    /** Dependency edge @p producer -> @p consumer (type 0 = wakeup). */
    void dependency(uint64_t consumer, uint64_t producer, int type,
                    uint64_t cycle);

    /**
     * Emit every buffered event with cycle < @p cycle. Call once no
     * future event can precede @p cycle (e.g. the current fetch cycle:
     * fetch is monotone and every later pipeline event is later still).
     */
    void flushBefore(uint64_t cycle);

    /** Drain the buffer completely; call once at end of run. */
    void finish();

    /** Buffered (not yet written) event count, for tests. */
    size_t pendingEvents() const { return pending_.size(); }

    /** Events written so far (excludes C/C= bookkeeping lines). */
    uint64_t writtenEvents() const { return written_; }

  private:
    void emit(uint64_t cycle, std::string line);

    std::ostream& os_;
    /** cycle -> command line; equal cycles keep insertion order. */
    std::multimap<uint64_t, std::string> pending_;
    uint64_t curCycle_ = 0;
    uint64_t lowWater_ = 0;   ///< events below this cycle were flushed
    uint64_t written_ = 0;
    bool cycleSet_ = false;
};

} // namespace ch

#endif // CH_TRACE_KANATA_H
