#ifndef CH_TRACE_ANALYZERS_H
#define CH_TRACE_ANALYZERS_H

/**
 * @file
 * Trace analyzers reproducing the paper's measurement methodology:
 *
 *  - LifetimeAnalyzer: register-lifetime complementary distribution
 *    (Figs 4, 17, 18), tracked architecturally (a value's lifetime ends
 *    at its last read before being overwritten).
 *  - MixAnalyzer: executed-instruction breakdown by type (Fig 15).
 *  - HandUsageAnalyzer: per-hand read/write counts (Fig 16).
 *  - RelayAnalyzer: conservative lower bound of the instructions STRAIGHT
 *    must add to a RISC trace (Fig 3: nop at convergence points,
 *    mv for max-distance relays, mv for loop constants) plus the
 *    loop-nesting-depth histogram behind the hand-count sweep (Fig 7).
 */

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/program.h"
#include "trace/dyninst.h"

namespace ch {

// ---------------------------------------------------------------------
// Lifetime distribution (Figs 4, 17, 18).
// ---------------------------------------------------------------------

/** Power-of-two bucketed histogram of per-definition lifetimes. */
class LifetimeHistogram
{
  public:
    static constexpr int kBuckets = 64;

    /** Record one definition whose lifetime is @p lifetime instructions. */
    void
    record(uint64_t lifetime)
    {
        ++defs_;
        if (lifetime == 0) {
            ++unused_;
            return;
        }
        ++buckets_[floorLog2(lifetime)];
    }

    uint64_t definitions() const { return defs_; }

    /** Number of definitions with lifetime >= 2^k. */
    uint64_t
    atLeast(int k) const
    {
        uint64_t n = 0;
        for (int i = k; i < kBuckets; ++i)
            n += buckets_[i];
        return n;
    }

    /**
     * Complementary distribution point: fraction of executed instructions
     * that define a register living >= 2^k instructions.
     */
    double
    ccdf(int k, uint64_t totalInsts) const
    {
        return totalInsts == 0
                   ? 0.0
                   : static_cast<double>(atLeast(k)) / totalInsts;
    }

    void
    merge(const LifetimeHistogram& other)
    {
        defs_ += other.defs_;
        unused_ += other.unused_;
        for (int i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
    }

  private:
    static int
    floorLog2(uint64_t v)
    {
        int r = 0;
        while (v >>= 1)
            ++r;
        return r;
    }

    uint64_t defs_ = 0;
    uint64_t unused_ = 0;
    std::array<uint64_t, kBuckets> buckets_{};
};

/**
 * Tracks per-architectural-location definitions and finalizes each
 * definition's lifetime when the location is overwritten (or when the
 * trace ends). ISA-aware: RISC registers, the STRAIGHT ring + SP, or the
 * four Clockhands hands (Fig 18 reports per-hand histograms).
 */
class LifetimeAnalyzer : public TraceSink
{
  public:
    explicit LifetimeAnalyzer(Isa isa) : isa_(isa) {}

    void onInst(const DynInst& di) override;

    /** Flush still-live definitions; call once after the run. */
    void finish();

    const LifetimeHistogram& overall() const { return overall_; }
    const LifetimeHistogram& perHand(int hand) const { return hand_[hand]; }
    uint64_t totalInsts() const { return total_; }

  private:
    struct Slot {
        bool live = false;
        uint64_t defSeq = 0;
        uint64_t lastUse = 0;
        uint8_t hand = 0;
    };

    void def(Slot& s, uint64_t seq, uint8_t hand);
    void use(Slot& s, uint64_t seq);
    void close(Slot& s);

    Isa isa_;
    uint64_t total_ = 0;
    LifetimeHistogram overall_;
    std::array<LifetimeHistogram, kNumHands> hand_;

    std::array<Slot, 64> regs_{};                    // RISC
    std::array<Slot, 128> ring_{};                   // STRAIGHT
    Slot sp_{};                                      // STRAIGHT SP
    uint64_t ringCount_ = 0;
    std::array<std::array<Slot, kHandDepth>, kNumHands> hands_{};  // CH
    std::array<uint64_t, kNumHands> handCount_{};
};

// ---------------------------------------------------------------------
// Instruction mix (Fig 15).
// ---------------------------------------------------------------------

/** Fig 15 instruction categories. */
enum class MixCat : int {
    CallRet, Jump, CondBr, Load, Store, Alu, MulDiv, Flops, Move, Nop,
    Others, kCount
};

/** Category display name. */
std::string_view mixCatName(MixCat cat);

/** Category of one op. */
MixCat mixCategory(Op op);

/** Counts executed instructions per Fig 15 category. */
class MixAnalyzer : public TraceSink
{
  public:
    void
    onInst(const DynInst& di) override
    {
        ++counts_[static_cast<int>(mixCategory(di.op))];
        ++total_;
    }

    uint64_t count(MixCat cat) const
    {
        return counts_[static_cast<int>(cat)];
    }
    uint64_t total() const { return total_; }

  private:
    std::array<uint64_t, static_cast<int>(MixCat::kCount)> counts_{};
    uint64_t total_ = 0;
};

// ---------------------------------------------------------------------
// Hand usage (Fig 16). Clockhands traces only.
// ---------------------------------------------------------------------

/** Counts per-hand source reads and destination writes. */
class HandUsageAnalyzer : public TraceSink
{
  public:
    void onInst(const DynInst& di) override;

    uint64_t reads(int hand) const { return reads_[hand]; }
    uint64_t writes(int hand) const { return writes_[hand]; }
    uint64_t noDst() const { return noDst_; }
    uint64_t total() const { return total_; }

  private:
    std::array<uint64_t, kNumHands> reads_{};
    std::array<uint64_t, kNumHands> writes_{};
    uint64_t noDst_ = 0;
    uint64_t total_ = 0;
};

// ---------------------------------------------------------------------
// STRAIGHT inevitable-increase lower bound (Fig 3) and the loop-constant
// nesting-depth histogram behind the hand sweep (Fig 7).
// ---------------------------------------------------------------------

/** Results of RelayAnalyzer over a RISC trace. */
struct RelayReport {
    uint64_t totalInsts = 0;

    /** Fig 3 "nop": fall-through arrivals at branch-convergence points. */
    uint64_t nopConvergence = 0;

    /** Fig 3 "mv-MaxDistance": sum over defs of floor(lifetime / M). */
    uint64_t mvMaxDistance = 0;

    /** Fig 3 "mv-LoopConstant": per-iteration relays of loop constants. */
    uint64_t mvLoopConstant = 0;

    /**
     * mvLoopConstant broken down by how many nested active loops the
     * referenced value's definition lies outside of (1 = constant of the
     * innermost loop only). Drives Fig 7.
     */
    std::array<uint64_t, 32> crossDepth{};

    /**
     * Fig 7: loop-constant relays remaining with @p hands hands.
     * @p spReserved reserves one hand for SP/args (the paper's second
     * series). With h general-purpose hands, constants spanning up to
     * h - 1 nesting levels get a dedicated hand; deeper ones still need
     * relays. hands=1 equals STRAIGHT (everything relayed).
     */
    uint64_t
    remainingWithHands(int hands, bool spReserved) const
    {
        const int general = hands - (spReserved ? 1 : 0);
        const int covered = general - 1;  // one hand rotates with the loop
        uint64_t n = 0;
        for (int d = 0; d < 32; ++d) {
            if (d > covered)
                n += crossDepth[d];
        }
        return n;
    }

    /** Total Fig 3 increase as a fraction of executed instructions. */
    double
    increaseFraction() const
    {
        return totalInsts == 0
                   ? 0.0
                   : static_cast<double>(nopConvergence + mvMaxDistance +
                                         mvLoopConstant) /
                         totalInsts;
    }
};

/**
 * Conservative (lower-bound) count of the extra instructions a STRAIGHT
 * conversion of a RISC trace must execute, following Section 2.2.3. Needs
 * the static Program to know direct-branch targets (convergence points).
 */
class RelayAnalyzer : public TraceSink
{
  public:
    /** @p maxDist is the STRAIGHT maximum reference distance M. */
    explicit RelayAnalyzer(const Program& prog,
                           int maxDist = kStraightMaxDist);

    void onInst(const DynInst& di) override;

    /** Flush live lifetimes; call once after the run. */
    RelayReport finish();

  private:
    struct Loop {
        uint64_t headerPc;
        uint64_t backEdgePc;
        uint64_t entrySeq;      ///< first arrival at the header
        /** Outside-defined producers referenced in the current iteration,
         *  with the crossing depth recorded at first reference. */
        std::unordered_map<uint64_t, int> constRefs;
    };

    struct Frame {
        std::vector<Loop> loops;  ///< active loop nest in this function
    };

    void closeIteration(Loop& loop);
    int crossingDepth(const Frame& f, uint64_t prodSeq) const;
    void noteUse(uint64_t prodSeq);

    const Program& prog_;
    const int maxDist_;

    std::unordered_set<uint64_t> convergencePcs_;
    uint64_t prevPc_ = ~0ull;
    bool prevWasBranch_ = false;

    std::vector<Frame> frames_;
    std::unordered_map<uint64_t, uint64_t> lastArrival_;  // pc -> seq

    // Architectural lifetime tracking for mv-MaxDistance (RISC regs).
    struct Slot {
        bool live = false;
        uint64_t defSeq = 0;
        uint64_t lastUse = 0;
    };
    std::array<Slot, 64> regs_{};

    RelayReport report_;
};

} // namespace ch

#endif // CH_TRACE_ANALYZERS_H
