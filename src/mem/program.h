#ifndef CH_MEM_PROGRAM_H
#define CH_MEM_PROGRAM_H

/**
 * @file
 * Executable program image produced by the assemblers and compiler
 * backends and consumed by the emulators: encoded text, predecoded
 * instructions, initialized data segments, and the symbol table.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/isa.h"
#include "mem/memory.h"

namespace ch {

/** Standard address-space layout shared by all programs in this repo. */
namespace layout {
constexpr uint64_t kTextBase = 0x10000;
constexpr uint64_t kDataBase = 0x100000;
constexpr uint64_t kHeapBase = 0x4000000;   // 64 MiB
constexpr uint64_t kStackTop = 0x8000000;   // 128 MiB, grows down
} // namespace layout

/** A loadable, runnable program for one of the three ISAs. */
struct Program {
    Isa isa = Isa::Riscv;
    uint64_t textBase = layout::kTextBase;
    uint64_t entry = layout::kTextBase;

    /** Encoded 32-bit instruction words, textBase onward. */
    std::vector<uint32_t> text;

    /** Predecoded view of `text` (index i is PC textBase + 4*i). */
    std::vector<Inst> decoded;

    /**
     * Optional 1-based source line per instruction (parallel to
     * `decoded`); filled by the text assembler, empty for compiled
     * programs. Used by the verifier for line-numbered diagnostics.
     */
    std::vector<int32_t> srcLines;

    /** Initialized data segments. */
    struct DataSeg {
        uint64_t base;
        std::vector<uint8_t> bytes;
    };
    std::vector<DataSeg> data;

    /** Label/symbol addresses. */
    std::map<std::string, uint64_t> symbols;

    /** Number of instructions in the text segment. */
    size_t numInsts() const { return decoded.size(); }

    /** True when @p pc addresses an instruction of this program. */
    bool
    validPc(uint64_t pc) const
    {
        return pc >= textBase && pc < textBase + 4 * text.size() &&
               (pc & 3) == 0;
    }

    /** Predecoded instruction at @p pc. */
    const Inst&
    instAt(uint64_t pc) const
    {
        CH_ASSERT(validPc(pc), "pc out of text: ", pc);
        return decoded[(pc - textBase) / 4];
    }

    /** Rebuild the predecoded view from `text`. */
    void
    redecode()
    {
        decoded.clear();
        decoded.reserve(text.size());
        for (uint32_t w : text)
            decoded.push_back(decode(isa, w));
    }

    /** Copy text and data into @p mem for execution. */
    void
    load(Memory& mem) const
    {
        for (size_t i = 0; i < text.size(); ++i)
            mem.write(textBase + 4 * i, 4, text[i]);
        for (const auto& seg : data)
            mem.writeBlock(seg.base, seg.bytes.data(), seg.bytes.size());
    }

    /** Address of a symbol; fatal() when undefined. */
    uint64_t
    symbol(const std::string& name) const
    {
        auto it = symbols.find(name);
        if (it == symbols.end())
            fatal("undefined symbol: ", name);
        return it->second;
    }
};

} // namespace ch

#endif // CH_MEM_PROGRAM_H
