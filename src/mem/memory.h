#ifndef CH_MEM_MEMORY_H
#define CH_MEM_MEMORY_H

/**
 * @file
 * Sparse, paged, little-endian flat memory used by the functional
 * emulators. Pages are allocated on first touch and zero-filled, so
 * uninitialized reads are deterministic.
 *
 * The page map is an unordered_map, but the emulator hot path almost
 * never touches it: a TLB-style 4-entry hot-page cache (MRU first, so
 * the common same-page access is one compare) front-ends pageFor().
 * Access-size validation uses CH_DASSERT, so Release builds pay no
 * per-access assert; block transfers move whole page chunks per memcpy.
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace ch {

/** Byte-addressable 64-bit sparse memory. */
class Memory
{
  public:
    static constexpr unsigned kPageBits = 12;
    static constexpr uint64_t kPageSize = 1ull << kPageBits;
    static constexpr uint64_t kPageMask = kPageSize - 1;

    /** Read @p size bytes (1/2/4/8) at @p addr, zero-extended. */
    uint64_t
    read(uint64_t addr, unsigned size)
    {
        CH_DASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                   "bad access size");
        if ((addr & kPageMask) + size <= kPageSize) {
            const uint8_t* p = pageFor(addr) + (addr & kPageMask);
            uint64_t v = 0;
            std::memcpy(&v, p, size);
            return v;
        }
        // Page-straddling access: assemble byte by byte.
        uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
        return v;
    }

    /** Write the low @p size bytes of @p value at @p addr. */
    void
    write(uint64_t addr, unsigned size, uint64_t value)
    {
        CH_DASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                   "bad access size");
        if ((addr & kPageMask) + size <= kPageSize) {
            uint8_t* p = pageFor(addr) + (addr & kPageMask);
            std::memcpy(p, &value, size);
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
    }

    uint8_t readByte(uint64_t addr) { return pageFor(addr)[addr & kPageMask]; }

    void
    writeByte(uint64_t addr, uint8_t value)
    {
        pageFor(addr)[addr & kPageMask] = value;
    }

    /** Bulk copy into memory (program loading), one memcpy per page. */
    void
    writeBlock(uint64_t addr, const void* src, size_t len)
    {
        const auto* bytes = static_cast<const uint8_t*>(src);
        while (len > 0) {
            const uint64_t off = addr & kPageMask;
            const size_t n =
                std::min<size_t>(len, static_cast<size_t>(kPageSize - off));
            std::memcpy(pageFor(addr) + off, bytes, n);
            addr += n;
            bytes += n;
            len -= n;
        }
    }

    /** Bulk copy out of memory, one memcpy per page. */
    void
    readBlock(uint64_t addr, void* dst, size_t len)
    {
        auto* bytes = static_cast<uint8_t*>(dst);
        while (len > 0) {
            const uint64_t off = addr & kPageMask;
            const size_t n =
                std::min<size_t>(len, static_cast<size_t>(kPageSize - off));
            std::memcpy(bytes, pageFor(addr) + off, n);
            addr += n;
            bytes += n;
            len -= n;
        }
    }

    /** Number of resident pages (for tests / footprint reporting). */
    size_t residentPages() const { return pages_.size(); }

    /**
     * Disable/re-enable the hot-page cache (tests cross-check that the
     * cache never changes an architecturally visible value). Also
     * resets the hit/miss counters.
     */
    void
    setPageCacheEnabled(bool enabled)
    {
        cacheEnabled_ = enabled;
        for (auto& e : hot_)
            e = HotPage{};
        cacheHits_ = 0;
        cacheMisses_ = 0;
    }

    /**
     * Opt-in hot-page cache hit/miss accounting. Off by default: the
     * hit counter would otherwise add a serializing read-modify-write
     * to the hottest path of both emulator engines. Enabling resets
     * both counters.
     */
    void
    setPageCacheStatsEnabled(bool enabled)
    {
        statsEnabled_ = enabled;
        cacheHits_ = 0;
        cacheMisses_ = 0;
    }

    /**
     * Hot-page cache hit/miss counters (with stats enabled).
     * Engine-agnostic by design: the counters move only inside
     * pageFor(), which both emulator engines reach through the same
     * read()/write() path, so two bit-identical executions produce
     * identical counts regardless of engine.
     */
    uint64_t pageCacheHits() const { return cacheHits_; }
    uint64_t pageCacheMisses() const { return cacheMisses_; }

  private:
    struct HotPage {
        uint64_t key = ~0ull;
        uint8_t* page = nullptr;
    };

    static constexpr size_t kHotWays = 4;

    uint8_t*
    pageFor(uint64_t addr)
    {
        const uint64_t key = addr >> kPageBits;
        if (cacheEnabled_) {
            // MRU-ordered: the same-page case is a single compare.
            if (hot_[0].key == key) {
                if (statsEnabled_)
                    ++cacheHits_;
                return hot_[0].page;
            }
            for (size_t i = 1; i < kHotWays; ++i) {
                if (hot_[i].key == key) {
                    const HotPage hit = hot_[i];
                    for (size_t j = i; j > 0; --j)
                        hot_[j] = hot_[j - 1];
                    hot_[0] = hit;
                    if (statsEnabled_)
                        ++cacheHits_;
                    return hit.page;
                }
            }
            if (statsEnabled_)
                ++cacheMisses_;
        }
        auto it = pages_.find(key);
        if (it == pages_.end()) {
            auto page = std::make_unique<uint8_t[]>(kPageSize);
            std::memset(page.get(), 0, kPageSize);
            it = pages_.emplace(key, std::move(page)).first;
        }
        uint8_t* page = it->second.get();  // stable: pages never move
        if (cacheEnabled_) {
            for (size_t j = kHotWays - 1; j > 0; --j)
                hot_[j] = hot_[j - 1];
            hot_[0] = HotPage{key, page};
        }
        return page;
    }

    std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
    std::array<HotPage, kHotWays> hot_{};
    bool cacheEnabled_ = true;
    bool statsEnabled_ = false;
    uint64_t cacheHits_ = 0;
    uint64_t cacheMisses_ = 0;
};

} // namespace ch

#endif // CH_MEM_MEMORY_H
