#ifndef CH_MEM_MEMORY_H
#define CH_MEM_MEMORY_H

/**
 * @file
 * Sparse, paged, little-endian flat memory used by the functional
 * emulators. Pages are allocated on first touch and zero-filled, so
 * uninitialized reads are deterministic.
 */

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace ch {

/** Byte-addressable 64-bit sparse memory. */
class Memory
{
  public:
    static constexpr unsigned kPageBits = 12;
    static constexpr uint64_t kPageSize = 1ull << kPageBits;
    static constexpr uint64_t kPageMask = kPageSize - 1;

    /** Read @p size bytes (1/2/4/8) at @p addr, zero-extended. */
    uint64_t
    read(uint64_t addr, unsigned size)
    {
        CH_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
        if ((addr & kPageMask) + size <= kPageSize) {
            const uint8_t* p = pageFor(addr) + (addr & kPageMask);
            uint64_t v = 0;
            std::memcpy(&v, p, size);
            return v;
        }
        // Page-straddling access: assemble byte by byte.
        uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
        return v;
    }

    /** Write the low @p size bytes of @p value at @p addr. */
    void
    write(uint64_t addr, unsigned size, uint64_t value)
    {
        CH_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
        if ((addr & kPageMask) + size <= kPageSize) {
            uint8_t* p = pageFor(addr) + (addr & kPageMask);
            std::memcpy(p, &value, size);
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
    }

    uint8_t readByte(uint64_t addr) { return pageFor(addr)[addr & kPageMask]; }

    void
    writeByte(uint64_t addr, uint8_t value)
    {
        pageFor(addr)[addr & kPageMask] = value;
    }

    /** Bulk copy into memory (program loading). */
    void
    writeBlock(uint64_t addr, const void* src, size_t len)
    {
        const auto* bytes = static_cast<const uint8_t*>(src);
        for (size_t i = 0; i < len; ++i)
            writeByte(addr + i, bytes[i]);
    }

    /** Bulk copy out of memory. */
    void
    readBlock(uint64_t addr, void* dst, size_t len)
    {
        auto* bytes = static_cast<uint8_t*>(dst);
        for (size_t i = 0; i < len; ++i)
            bytes[i] = readByte(addr + i);
    }

    /** Number of resident pages (for tests / footprint reporting). */
    size_t residentPages() const { return pages_.size(); }

  private:
    uint8_t*
    pageFor(uint64_t addr)
    {
        const uint64_t key = addr >> kPageBits;
        auto it = pages_.find(key);
        if (it == pages_.end()) {
            auto page = std::make_unique<uint8_t[]>(kPageSize);
            std::memset(page.get(), 0, kPageSize);
            it = pages_.emplace(key, std::move(page)).first;
        }
        return it->second.get();
    }

    std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
};

} // namespace ch

#endif // CH_MEM_MEMORY_H
