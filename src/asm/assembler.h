#ifndef CH_ASM_ASSEMBLER_H
#define CH_ASM_ASSEMBLER_H

/**
 * @file
 * Text assemblers for the three ISAs, accepting the paper's assembly
 * syntax (Fig. 1):
 *
 *   RISC:        addi a5, zero, 0      sw a5, 0(a0)     bne a1, a5, .L3
 *   STRAIGHT:    addi zero, 0          sw [5], 0([3])   bne [1], [4], .L2
 *   Clockhands:  addi t, zero, 0       sw t[1], 0(t[0]) bne t[0], v[1], .L3
 *
 * Supported directives: .text .data .globl .entry .align .byte .half
 * .word .dword .zero .asciz .equ. Supported pseudo-instructions:
 * li, la, call, ret, beqz, bnez. Comments start with '#' or "//".
 */

#include <string>
#include <string_view>

#include "mem/program.h"

namespace ch {

/**
 * Assemble @p source for @p isa. fatal() with a line-numbered message on
 * any syntax or range error. The program entry point defaults to the
 * first instruction and can be set with `.entry symbol`.
 */
Program assemble(Isa isa, std::string_view source);

/** Parse a RISC register name ("a0", "x7", "f3", ...); -1 when invalid. */
int parseRiscReg(std::string_view name);

} // namespace ch

#endif // CH_ASM_ASSEMBLER_H
