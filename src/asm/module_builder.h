#ifndef CH_ASM_MODULE_BUILDER_H
#define CH_ASM_MODULE_BUILDER_H

/**
 * @file
 * Incremental program construction with symbolic label references. Both
 * the text assemblers and the compiler backends emit through this class;
 * finalize() resolves fixups, range-checks every field, encodes the text,
 * and returns a runnable Program.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "mem/program.h"

namespace ch {

/** How an unresolved symbol patches into an instruction's immediate. */
enum class FixupKind : uint8_t {
    None,
    PcRel,    ///< imm = symbol + addend - pc (branches, jal, j)
    AbsHi20,  ///< imm = high 20 bits of (symbol + addend), lui-style
    AbsLo12,  ///< imm = low 12 bits of (symbol + addend), signed
};

/** Builder for one executable image. */
class ModuleBuilder
{
  public:
    explicit ModuleBuilder(Isa isa) : isa_(isa) {}

    Isa isa() const { return isa_; }

    // --- text -----------------------------------------------------------

    /** Bind @p name to the current end of text. */
    void defineLabel(const std::string& name);

    /** Append an instruction with no symbolic reference. */
    void emit(const Inst& inst);

    /**
     * Set the 1-based source line attached to subsequently emitted
     * instructions (0 = unknown). The text assembler calls this per
     * input line so verifier diagnostics can cite the .s source.
     */
    void setSourceLine(int32_t line) { srcLine_ = line; }

    /** Append an instruction whose immediate refers to @p symbol. */
    void emitFixup(const Inst& inst, FixupKind kind, const std::string& symbol,
                   int64_t addend = 0);

    /** Address the next emitted instruction will occupy. */
    uint64_t
    nextTextAddr() const
    {
        return layout::kTextBase + 4 * insts_.size();
    }

    /** Number of instructions emitted so far. */
    size_t numInsts() const { return insts_.size(); }

    // --- data -----------------------------------------------------------

    /** Bind @p name to the current end of the data segment. */
    void defineDataLabel(const std::string& name);

    void dataBytes(const void* bytes, size_t len);
    void dataByte(uint8_t v) { dataBytes(&v, 1); }
    void dataHalf(uint16_t v) { dataBytes(&v, 2); }
    void dataWord(uint32_t v) { dataBytes(&v, 4); }
    void dataDword(uint64_t v) { dataBytes(&v, 8); }
    void dataZero(size_t len);
    void dataAlign(size_t align);

    /** Current absolute address of the end of the data segment. */
    uint64_t dataAddr() const { return layout::kDataBase + data_.size(); }

    // --- symbols --------------------------------------------------------

    /** Define an absolute symbol (e.g. .equ). */
    void defineAbsolute(const std::string& name, uint64_t value);

    bool hasSymbol(const std::string& name) const;

    /** Set the entry point to @p symbol (default: first instruction). */
    void setEntry(const std::string& symbol) { entrySymbol_ = symbol; }

    // --- finalize -------------------------------------------------------

    /**
     * Resolve all fixups, encode the text, and produce a Program.
     * fatal() on undefined symbols or out-of-range immediates.
     */
    Program finalize();

  private:
    struct PendingFixup {
        size_t index;       ///< instruction index in insts_
        FixupKind kind;
        std::string symbol;
        int64_t addend;
    };

    Isa isa_;
    std::vector<Inst> insts_;
    std::vector<int32_t> lines_;
    int32_t srcLine_ = 0;
    std::vector<PendingFixup> fixups_;
    std::vector<uint8_t> data_;
    std::map<std::string, uint64_t> symbols_;
    std::string entrySymbol_;
};

/**
 * Emit a "load 64-bit constant" sequence ending with the constant in
 * @p dst (RISC: register; Clockhands: hand; STRAIGHT: @p dst ignored and
 * the constant lands in the newest ring slot). Returns the number of
 * instructions emitted. Intermediate steps of a multi-instruction
 * expansion reference their immediate predecessor, so distance-based ISAs
 * stay self-consistent.
 */
int emitLoadImm(ModuleBuilder& b, uint8_t dst, int64_t value);

} // namespace ch

#endif // CH_ASM_MODULE_BUILDER_H
