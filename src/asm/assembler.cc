#include "asm/assembler.h"

#include <cctype>
#include <map>
#include <optional>

#include "asm/module_builder.h"
#include "common/logging.h"
#include "common/strutil.h"
#include "isa/encoding.h"

namespace ch {

int
parseRiscReg(std::string_view name)
{
    static const std::map<std::string_view, int> abi = {
        {"zero", 0}, {"ra", 1}, {"sp", 2}, {"gp", 3}, {"tp", 4},
        {"t0", 5}, {"t1", 6}, {"t2", 7}, {"s0", 8}, {"fp", 8}, {"s1", 9},
        {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13}, {"a4", 14},
        {"a5", 15}, {"a6", 16}, {"a7", 17}, {"s2", 18}, {"s3", 19},
        {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23}, {"s8", 24},
        {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28}, {"t4", 29},
        {"t5", 30}, {"t6", 31},
    };
    auto it = abi.find(name);
    if (it != abi.end())
        return it->second;
    if ((name[0] == 'x' || name[0] == 'f') && name.size() >= 2) {
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return -1;
            n = n * 10 + (name[i] - '0');
        }
        if (n >= 32)
            return -1;
        return name[0] == 'x' ? n : 32 + n;
    }
    return -1;
}

namespace {

/** Parsed source-operand: a register/distance reference. */
struct SrcRef {
    uint8_t dist = 0;   // RISC: reg number; others: distance
    uint8_t hand = 0;   // Clockhands only
};

class Assembler
{
  public:
    Assembler(Isa isa, std::string_view source)
        : isa_(isa), source_(source), builder_(isa)
    {
    }

    Program
    run()
    {
        size_t start = 0;
        line_ = 0;
        while (start <= source_.size()) {
            size_t end = source_.find('\n', start);
            if (end == std::string_view::npos)
                end = source_.size();
            ++line_;
            builder_.setSourceLine(static_cast<int32_t>(line_));
            handleLine(source_.substr(start, end - start));
            start = end + 1;
        }
        return builder_.finalize();
    }

  private:
    [[noreturn]] void
    err(const std::string& msg)
    {
        fatal("asm line ", line_, ": ", msg);
    }

    // --- lexical helpers ------------------------------------------------

    static std::string_view
    stripComment(std::string_view s)
    {
        for (size_t i = 0; i < s.size(); ++i) {
            if (s[i] == '#' || (s[i] == '/' && i + 1 < s.size() &&
                                s[i + 1] == '/')) {
                return s.substr(0, i);
            }
        }
        return s;
    }

    std::optional<int64_t>
    tryParseInt(std::string_view s) const
    {
        s = trim(s);
        if (s.empty())
            return std::nullopt;
        bool neg = false;
        size_t i = 0;
        if (s[0] == '-' || s[0] == '+') {
            neg = s[0] == '-';
            i = 1;
        }
        if (i >= s.size())
            return std::nullopt;
        int64_t v = 0;
        if (s.size() > i + 1 && s[i] == '0' &&
            (s[i + 1] == 'x' || s[i + 1] == 'X')) {
            for (i += 2; i < s.size(); ++i) {
                const char c = std::tolower(static_cast<unsigned char>(s[i]));
                if (c >= '0' && c <= '9')
                    v = v * 16 + (c - '0');
                else if (c >= 'a' && c <= 'f')
                    v = v * 16 + (c - 'a' + 10);
                else
                    return std::nullopt;
            }
        } else {
            for (; i < s.size(); ++i) {
                if (!std::isdigit(static_cast<unsigned char>(s[i])))
                    return std::nullopt;
                v = v * 10 + (s[i] - '0');
            }
        }
        return neg ? -v : v;
    }

    int64_t
    parseInt(std::string_view s)
    {
        auto v = tryParseInt(s);
        if (!v)
            err(concat("expected integer, got '", std::string(s), "'"));
        return *v;
    }

    // --- operand parsing --------------------------------------------------

    /** Parse a source register reference in the current ISA's syntax. */
    SrcRef
    parseSrc(std::string_view s)
    {
        s = trim(s);
        if (s.empty())
            err("empty operand");
        SrcRef ref;
        switch (isa_) {
          case Isa::Riscv: {
            int reg = parseRiscReg(s);
            if (reg < 0)
                err(concat("bad register '", std::string(s), "'"));
            ref.dist = static_cast<uint8_t>(reg);
            return ref;
          }
          case Isa::Straight: {
            if (s == "zero") {
                ref.dist = kStraightZeroDist;
                return ref;
            }
            if (s == "sp") {
                ref.dist = kStraightSpBase;
                return ref;
            }
            if (s.front() == '[' && s.back() == ']') {
                int64_t d = parseInt(s.substr(1, s.size() - 2));
                if (d < 1 || d > kStraightMaxDist)
                    err(concat("distance out of range: ", d));
                ref.dist = static_cast<uint8_t>(d);
                return ref;
            }
            err(concat("bad STRAIGHT operand '", std::string(s), "'"));
          }
          case Isa::Clockhands: {
            if (s == "zero") {
                ref.hand = HandS;
                ref.dist = kHandZeroDist;
                return ref;
            }
            int hand = handIndex(s[0]);
            if (hand < 0 || s.size() < 4 || s[1] != '[' || s.back() != ']')
                err(concat("bad Clockhands operand '", std::string(s), "'"));
            int64_t d = parseInt(s.substr(2, s.size() - 3));
            const int maxDist = hand == HandS ? kHandDepth - 2
                                              : kHandDepth - 1;
            if (d < 0 || d > maxDist)
                err(concat("distance out of range: ", d));
            ref.hand = static_cast<uint8_t>(hand);
            ref.dist = static_cast<uint8_t>(d);
            return ref;
          }
        }
        err("unreachable");
    }

    static int
    handIndex(char c)
    {
        switch (c) {
          case 't': return HandT;
          case 'u': return HandU;
          case 'v': return HandV;
          case 's': return HandS;
          default: return -1;
        }
    }

    /** Parse a destination operand (register / hand). */
    uint8_t
    parseDst(std::string_view s)
    {
        s = trim(s);
        switch (isa_) {
          case Isa::Riscv: {
            int reg = parseRiscReg(s);
            if (reg < 0)
                err(concat("bad register '", std::string(s), "'"));
            return static_cast<uint8_t>(reg);
          }
          case Isa::Straight:
            err("STRAIGHT instructions have no destination operand");
          case Isa::Clockhands: {
            if (s.size() != 1 || handIndex(s[0]) < 0)
                err(concat("bad hand '", std::string(s), "'"));
            return static_cast<uint8_t>(handIndex(s[0]));
          }
        }
        err("unreachable");
    }

    /** Parse "disp(base)" or "(base)" or "disp". */
    void
    parseMem(std::string_view s, int64_t* disp, SrcRef* base)
    {
        s = trim(s);
        auto open = s.find('(');
        if (open == std::string_view::npos) {
            *disp = parseInt(s);
            *base = SrcRef{};
            if (isa_ == Isa::Riscv)
                base->dist = kRegZero;
            else if (isa_ == Isa::Straight)
                base->dist = kStraightZeroDist;
            else {
                base->hand = HandS;
                base->dist = kHandZeroDist;
            }
            return;
        }
        if (s.back() != ')')
            err("expected ')'");
        auto head = trim(s.substr(0, open));
        *disp = head.empty() ? 0 : parseInt(head);
        *base = parseSrc(s.substr(open + 1, s.size() - open - 2));
    }

    // --- line handling ----------------------------------------------------

    void
    handleLine(std::string_view raw)
    {
        std::string_view s = trim(stripComment(raw));
        while (!s.empty()) {
            // Leading labels.
            size_t colon = std::string_view::npos;
            for (size_t i = 0; i < s.size(); ++i) {
                char c = s[i];
                if (c == ':') {
                    colon = i;
                    break;
                }
                if (!(std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '_' || c == '.' || c == '$')) {
                    break;
                }
            }
            if (colon == std::string_view::npos)
                break;
            std::string name(trim(s.substr(0, colon)));
            if (name.empty())
                err("empty label");
            if (inData_)
                builder_.defineDataLabel(name);
            else
                builder_.defineLabel(name);
            s = trim(s.substr(colon + 1));
        }
        if (s.empty())
            return;
        if (s[0] == '.')
            handleDirectiveOrInst(s);
        else
            handleInst(s);
    }

    void
    handleDirectiveOrInst(std::string_view s)
    {
        size_t sp = s.find_first_of(" \t");
        std::string head(s.substr(0, sp));
        std::string_view rest =
            sp == std::string_view::npos ? std::string_view{} : trim(s.substr(sp));
        if (head == ".text") {
            inData_ = false;
        } else if (head == ".data") {
            inData_ = true;
        } else if (head == ".globl" || head == ".global" ||
                   head == ".type" || head == ".size" || head == ".option") {
            // accepted and ignored
        } else if (head == ".entry") {
            builder_.setEntry(std::string(rest));
        } else if (head == ".align") {
            const int64_t n = parseInt(rest);
            if (inData_)
                builder_.dataAlign(size_t{1} << n);
        } else if (head == ".byte" || head == ".half" || head == ".word" ||
                   head == ".dword") {
            for (const auto& part : split(rest, ',')) {
                const int64_t v = parseInt(part);
                if (head == ".byte")
                    builder_.dataByte(static_cast<uint8_t>(v));
                else if (head == ".half")
                    builder_.dataHalf(static_cast<uint16_t>(v));
                else if (head == ".word")
                    builder_.dataWord(static_cast<uint32_t>(v));
                else
                    builder_.dataDword(static_cast<uint64_t>(v));
            }
        } else if (head == ".zero" || head == ".space") {
            builder_.dataZero(static_cast<size_t>(parseInt(rest)));
        } else if (head == ".asciz" || head == ".ascii") {
            appendString(rest, head == ".asciz");
        } else if (head == ".equ" || head == ".set") {
            auto parts = split(rest, ',');
            if (parts.size() != 2)
                err(".equ needs name, value");
            builder_.defineAbsolute(parts[0], parseInt(parts[1]));
        } else {
            // Labels like ".L3" parsed elsewhere; anything else here is an
            // instruction with a dotted mnemonic (none exist) or an error.
            err(concat("unknown directive '", head, "'"));
        }
    }

    void
    appendString(std::string_view rest, bool zeroTerminate)
    {
        rest = trim(rest);
        if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"')
            err("expected quoted string");
        for (size_t i = 1; i + 1 < rest.size(); ++i) {
            char c = rest[i];
            if (c == '\\' && i + 2 < rest.size()) {
                ++i;
                switch (rest[i]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default: err("bad escape");
                }
            }
            builder_.dataByte(static_cast<uint8_t>(c));
        }
        if (zeroTerminate)
            builder_.dataByte(0);
    }

    // --- instruction assembly ----------------------------------------------

    static const std::map<std::string_view, Op>&
    mnemonicMap()
    {
        static const std::map<std::string_view, Op> m = [] {
            std::map<std::string_view, Op> out;
            for (int i = 0; i < kNumOps; ++i) {
                const Op op = static_cast<Op>(i);
                out[opInfo(op).mnemonic] = op;
            }
            return out;
        }();
        return m;
    }

    /** Split the operand list on commas that are not inside (). */
    std::vector<std::string>
    splitOperands(std::string_view s)
    {
        std::vector<std::string> out;
        int depth = 0;
        size_t start = 0;
        for (size_t i = 0; i <= s.size(); ++i) {
            if (i == s.size() || (s[i] == ',' && depth == 0)) {
                auto piece = trim(s.substr(start, i - start));
                if (!piece.empty())
                    out.emplace_back(piece);
                start = i + 1;
            } else if (s[i] == '(') {
                ++depth;
            } else if (s[i] == ')') {
                --depth;
            }
        }
        return out;
    }

    void
    handleInst(std::string_view s)
    {
        size_t sp = s.find_first_of(" \t");
        std::string mnem(s.substr(0, sp));
        std::vector<std::string> ops =
            sp == std::string_view::npos
                ? std::vector<std::string>{}
                : splitOperands(trim(s.substr(sp)));

        if (handlePseudo(mnem, ops))
            return;

        auto it = mnemonicMap().find(mnem);
        if (it == mnemonicMap().end())
            err(concat("unknown mnemonic '", mnem, "'"));
        assembleOp(it->second, ops);
    }

    bool
    handlePseudo(const std::string& mnem, std::vector<std::string>& ops)
    {
        if (mnem == "li") {
            // li dst, imm   (STRAIGHT: li imm)
            if (isa_ == Isa::Straight) {
                need(ops, 1);
                emitLoadImm(builder_, 0, parseInt(ops[0]));
            } else {
                need(ops, 2);
                emitLoadImm(builder_, parseDst(ops[0]), parseInt(ops[1]));
            }
            return true;
        }
        if (mnem == "la") {
            // la dst, symbol (STRAIGHT: la symbol)
            uint8_t dst = 0;
            std::string sym;
            if (isa_ == Isa::Straight) {
                need(ops, 1);
                sym = ops[0];
            } else {
                need(ops, 2);
                dst = parseDst(ops[0]);
                sym = ops[1];
            }
            Inst lui;
            lui.op = Op::LUI;
            lui.dst = dst;
            builder_.emitFixup(lui, FixupKind::AbsHi20, sym);
            Inst addi;
            addi.op = Op::ADDI;
            addi.dst = dst;
            switch (isa_) {
              case Isa::Riscv: addi.src1 = dst; break;
              case Isa::Straight: addi.src1 = 1; break;
              case Isa::Clockhands:
                addi.src1Hand = dst;
                addi.src1 = 0;
                break;
            }
            builder_.emitFixup(addi, FixupKind::AbsLo12, sym);
            return true;
        }
        if (mnem == "call") {
            // call symbol: jal to symbol with the conventional link target.
            need(ops, 1);
            Inst jal;
            jal.op = Op::JAL;
            jal.dst = isa_ == Isa::Riscv ? kRegRa : uint8_t{HandS};
            builder_.emitFixup(jal, FixupKind::PcRel, ops[0]);
            return true;
        }
        if (mnem == "ret") {
            Inst jr;
            jr.op = Op::JR;
            if (isa_ == Isa::Riscv) {
                need(ops, 0);
                jr.src1 = kRegRa;
            } else {
                need(ops, 1);
                SrcRef src = parseSrc(ops[0]);
                jr.src1 = src.dist;
                jr.src1Hand = src.hand;
            }
            builder_.emit(jr);
            return true;
        }
        if (mnem == "beqz" || mnem == "bnez") {
            need(ops, 2);
            Inst br;
            br.op = mnem == "beqz" ? Op::BEQ : Op::BNE;
            SrcRef src = parseSrc(ops[0]);
            br.src1 = src.dist;
            br.src1Hand = src.hand;
            if (isa_ == Isa::Riscv) {
                br.src2 = kRegZero;
            } else if (isa_ == Isa::Straight) {
                br.src2 = kStraightZeroDist;
            } else {
                br.src2Hand = HandS;
                br.src2 = kHandZeroDist;
            }
            emitBranchTarget(br, ops[1]);
            return true;
        }
        return false;
    }

    void
    need(const std::vector<std::string>& ops, size_t n)
    {
        if (ops.size() != n)
            err(concat("expected ", n, " operands, got ", ops.size()));
    }

    void
    emitBranchTarget(Inst inst, const std::string& target)
    {
        if (auto v = tryParseInt(target)) {
            inst.imm = *v;
            builder_.emit(inst);
        } else {
            builder_.emitFixup(inst, FixupKind::PcRel, target);
        }
    }

    void
    assembleOp(Op op, const std::vector<std::string>& ops)
    {
        const OpInfo& info = opInfo(op);
        Inst inst;
        inst.op = op;

        // Operand list shape per ISA: STRAIGHT drops the dst operand.
        const bool hasDstOperand = info.hasDst && isa_ != Isa::Straight;
        size_t i = 0;
        auto nextOp = [&]() -> const std::string& {
            if (i >= ops.size())
                err("missing operand");
            return ops[i++];
        };

        switch (info.fmt) {
          case Fmt::R: {
            if (hasDstOperand)
                inst.dst = parseDst(nextOp());
            if (info.numSrcs >= 1) {
                SrcRef s1 = parseSrc(nextOp());
                inst.src1 = s1.dist;
                inst.src1Hand = s1.hand;
            }
            if (info.numSrcs >= 2) {
                SrcRef s2 = parseSrc(nextOp());
                inst.src2 = s2.dist;
                inst.src2Hand = s2.hand;
            }
            break;
          }
          case Fmt::I: {
            if (hasDstOperand)
                inst.dst = parseDst(nextOp());
            if (info.isLoad() || op == Op::JALR || op == Op::JR) {
                int64_t disp;
                SrcRef base;
                parseMem(nextOp(), &disp, &base);
                inst.imm = disp;
                inst.src1 = base.dist;
                inst.src1Hand = base.hand;
            } else if (op == Op::MV) {
                SrcRef s1 = parseSrc(nextOp());
                inst.src1 = s1.dist;
                inst.src1Hand = s1.hand;
            } else {
                SrcRef s1 = parseSrc(nextOp());
                inst.src1 = s1.dist;
                inst.src1Hand = s1.hand;
                inst.imm = parseInt(nextOp());
            }
            break;
          }
          case Fmt::S: {
            // op data, disp(base)
            SrcRef data = parseSrc(nextOp());
            inst.src2 = data.dist;
            inst.src2Hand = data.hand;
            int64_t disp;
            SrcRef base;
            parseMem(nextOp(), &disp, &base);
            inst.imm = disp;
            inst.src1 = base.dist;
            inst.src1Hand = base.hand;
            break;
          }
          case Fmt::B: {
            SrcRef s1 = parseSrc(nextOp());
            inst.src1 = s1.dist;
            inst.src1Hand = s1.hand;
            SrcRef s2 = parseSrc(nextOp());
            inst.src2 = s2.dist;
            inst.src2Hand = s2.hand;
            emitBranchTarget(inst, nextOp());
            if (i != ops.size())
                err("extra operands");
            return;
          }
          case Fmt::U: {
            if (hasDstOperand)
                inst.dst = parseDst(nextOp());
            inst.imm = parseInt(nextOp());
            break;
          }
          case Fmt::J: {
            if (op == Op::SPADDI) {
                if (isa_ != Isa::Straight)
                    err("spaddi is STRAIGHT-only");
                inst.imm = parseInt(nextOp());
                break;
            }
            if (hasDstOperand) {
                // "jal target" sugar: default link register/hand.
                if (ops.size() == 1) {
                    inst.dst =
                        isa_ == Isa::Riscv ? kRegRa : uint8_t{HandS};
                } else {
                    inst.dst = parseDst(nextOp());
                }
            }
            emitBranchTarget(inst, nextOp());
            if (i != ops.size())
                err("extra operands");
            return;
          }
          case Fmt::None:
            break;
        }
        if (i != ops.size())
            err("extra operands");
        builder_.emit(inst);
    }

    Isa isa_;
    std::string_view source_;
    ModuleBuilder builder_;
    size_t line_ = 0;
    bool inData_ = false;
};

} // namespace

Program
assemble(Isa isa, std::string_view source)
{
    Assembler assembler(isa, source);
    return assembler.run();
}

} // namespace ch
