#include "asm/module_builder.h"

#include "common/bitutil.h"
#include "common/logging.h"
#include "isa/encoding.h"

namespace ch {

void
ModuleBuilder::defineLabel(const std::string& name)
{
    if (symbols_.count(name))
        fatal("duplicate label: ", name);
    symbols_[name] = nextTextAddr();
}

void
ModuleBuilder::emit(const Inst& inst)
{
    insts_.push_back(inst);
    lines_.push_back(srcLine_);
}

void
ModuleBuilder::emitFixup(const Inst& inst, FixupKind kind,
                         const std::string& symbol, int64_t addend)
{
    fixups_.push_back({insts_.size(), kind, symbol, addend});
    insts_.push_back(inst);
    lines_.push_back(srcLine_);
}

void
ModuleBuilder::defineDataLabel(const std::string& name)
{
    if (symbols_.count(name))
        fatal("duplicate label: ", name);
    symbols_[name] = dataAddr();
}

void
ModuleBuilder::dataBytes(const void* bytes, size_t len)
{
    const auto* p = static_cast<const uint8_t*>(bytes);
    data_.insert(data_.end(), p, p + len);
}

void
ModuleBuilder::dataZero(size_t len)
{
    data_.insert(data_.end(), len, 0);
}

void
ModuleBuilder::dataAlign(size_t align)
{
    CH_ASSERT(isPowerOf2(align), "alignment must be a power of two");
    while (data_.size() & (align - 1))
        data_.push_back(0);
}

void
ModuleBuilder::defineAbsolute(const std::string& name, uint64_t value)
{
    if (symbols_.count(name))
        fatal("duplicate symbol: ", name);
    symbols_[name] = value;
}

bool
ModuleBuilder::hasSymbol(const std::string& name) const
{
    return symbols_.count(name) != 0;
}

Program
ModuleBuilder::finalize()
{
    for (const auto& fx : fixups_) {
        auto it = symbols_.find(fx.symbol);
        if (it == symbols_.end())
            fatal("undefined symbol: ", fx.symbol);
        const int64_t target = static_cast<int64_t>(it->second) + fx.addend;
        Inst& inst = insts_[fx.index];
        const int64_t pc =
            static_cast<int64_t>(layout::kTextBase) + 4 * fx.index;
        switch (fx.kind) {
          case FixupKind::PcRel:
            inst.imm = target - pc;
            break;
          case FixupKind::AbsHi20:
            inst.imm = (target + 0x800) >> 12;
            break;
          case FixupKind::AbsLo12:
            inst.imm = signExtend(static_cast<uint64_t>(target) & 0xfff, 12);
            break;
          case FixupKind::None:
            break;
        }
    }

    Program prog;
    prog.isa = isa_;
    prog.textBase = layout::kTextBase;
    prog.text.reserve(insts_.size());
    for (size_t i = 0; i < insts_.size(); ++i) {
        if (!encodable(isa_, insts_[i])) {
            fatal("instruction ", i, " (pc ", layout::kTextBase + 4 * i,
                  ") not encodable for ", isaName(isa_), ": ",
                  disassemble(isa_, insts_[i]));
        }
        prog.text.push_back(encode(isa_, insts_[i]));
    }
    prog.decoded = insts_;
    prog.srcLines = lines_;
    if (!data_.empty())
        prog.data.push_back({layout::kDataBase, data_});
    prog.symbols = symbols_;
    prog.entry = entrySymbol_.empty() ? prog.textBase
                                      : prog.symbol(entrySymbol_);
    return prog;
}

namespace {

/** Make a source operand reading the architectural zero. */
void
setZeroSrc1(Isa isa, Inst& inst)
{
    switch (isa) {
      case Isa::Riscv:
        inst.src1 = kRegZero;
        break;
      case Isa::Straight:
        inst.src1 = kStraightZeroDist;
        break;
      case Isa::Clockhands:
        inst.src1Hand = HandS;
        inst.src1 = kHandZeroDist;
        break;
    }
}

/** Make src1 reference the result of the previous instruction / @p dst. */
void
setPrevSrc1(Isa isa, uint8_t dst, Inst& inst)
{
    switch (isa) {
      case Isa::Riscv:
        inst.src1 = dst;
        break;
      case Isa::Straight:
        inst.src1 = 1;
        break;
      case Isa::Clockhands:
        inst.src1Hand = dst;
        inst.src1 = 0;
        break;
    }
}

int
loadImmRec(ModuleBuilder& b, uint8_t dst, int64_t value)
{
    const Isa isa = b.isa();
    // Small constants: one addi from zero. Use the narrowest I-format
    // immediate of the three ISAs so behaviour matches across targets.
    if (fitsSigned(value, 12)) {
        Inst inst;
        inst.op = Op::ADDI;
        inst.dst = dst;
        inst.imm = value;
        setZeroSrc1(isa, inst);
        b.emit(inst);
        return 1;
    }
    // 32-bit signed constants: lui (+ addiw). The high part wraps modulo
    // 2^20 and addiw re-truncates to 32 bits, so values near 2^31 (whose
    // hi+0x800 carries out of the 20-bit field) still materialize exactly.
    if (fitsSigned(value, 32)) {
        const int64_t hi =
            signExtend(static_cast<uint64_t>((value + 0x800) >> 12) & 0xfffff,
                       20);
        const int64_t lo = signExtend(static_cast<uint64_t>(value) & 0xfff,
                                      12);
        Inst lui;
        lui.op = Op::LUI;
        lui.dst = dst;
        lui.imm = hi;
        b.emit(lui);
        if (lo == 0)
            return 1;
        Inst addi;
        addi.op = Op::ADDIW;
        addi.dst = dst;
        addi.imm = lo;
        setPrevSrc1(isa, dst, addi);
        b.emit(addi);
        return 2;
    }
    // Wide constants: materialize the upper part, shift, then or-in the
    // low 12 bits, recursively (standard RV64 expansion).
    const int64_t lo = signExtend(static_cast<uint64_t>(value) & 0xfff, 12);
    // Subtract in uint64_t: value - lo overflows int64_t for values near
    // INT64_MAX with a negative lo (the wrap-around is the intended
    // two's-complement result).
    const int64_t rest = static_cast<int64_t>(static_cast<uint64_t>(value) -
                                              static_cast<uint64_t>(lo)) >>
                         12;
    int n = loadImmRec(b, dst, rest);
    Inst slli;
    slli.op = Op::SLLI;
    slli.dst = dst;
    slli.imm = 12;
    setPrevSrc1(isa, dst, slli);
    b.emit(slli);
    ++n;
    if (lo != 0) {
        Inst addi;
        addi.op = Op::ADDI;
        addi.dst = dst;
        addi.imm = lo;
        setPrevSrc1(isa, dst, addi);
        b.emit(addi);
        ++n;
    }
    return n;
}

} // namespace

int
emitLoadImm(ModuleBuilder& b, uint8_t dst, int64_t value)
{
    return loadImmRec(b, dst, value);
}

} // namespace ch
