#include "ir/vcode.h"

#include <sstream>

namespace ch {

std::string
dumpVFunc(const VFunc& f)
{
    std::ostringstream os;
    os << "func " << f.name << " (params " << f.numParams << ", vregs "
       << f.numVRegs << ", slots " << f.frameSlots.size() << ")\n";
    for (const auto& b : f.blocks) {
        os << "  bb" << b.id;
        if (!b.name.empty())
            os << " <" << b.name << ">";
        os << ":";
        if (b.fallThrough >= 0)
            os << "  (fallthrough bb" << b.fallThrough << ")";
        os << "\n";
        for (const auto& inst : b.insts) {
            os << "    ";
            switch (inst.vop) {
              case VOp::Machine:
                os << opName(inst.op);
                if (inst.dst >= 0)
                    os << " v" << inst.dst;
                if (inst.src1 >= 0)
                    os << (inst.dst >= 0 ? ", v" : " v") << inst.src1;
                if (inst.src2 >= 0)
                    os << ", v" << inst.src2;
                if (inst.imm != 0 || inst.info().fmt == Fmt::I ||
                    inst.info().fmt == Fmt::S || inst.info().fmt == Fmt::U) {
                    os << ", " << inst.imm;
                }
                if (inst.target >= 0)
                    os << " -> bb" << inst.target;
                if (inst.frameSlot >= 0)
                    os << " [slot " << inst.frameSlot << "]";
                break;
              case VOp::LoadImm:
                os << "loadimm v" << inst.dst << ", " << inst.imm;
                break;
              case VOp::LoadAddr:
                os << "loadaddr v" << inst.dst << ", " << inst.sym;
                break;
              case VOp::FrameAddr:
                os << "frameaddr v" << inst.dst << ", slot "
                   << inst.frameSlot;
                break;
              case VOp::Call:
                os << "call ";
                if (inst.dst >= 0)
                    os << "v" << inst.dst << " = ";
                os << inst.sym << "(";
                for (size_t i = 0; i < inst.args.size(); ++i)
                    os << (i ? ", v" : "v") << inst.args[i];
                os << ")";
                break;
              case VOp::Ret:
                os << "ret";
                if (inst.src1 >= 0)
                    os << " v" << inst.src1;
                break;
            }
            os << "\n";
        }
    }
    return os.str();
}

} // namespace ch
