#ifndef CH_IR_ANALYSIS_H
#define CH_IR_ANALYSIS_H

/**
 * @file
 * Control-flow and dataflow analyses over VCode: predecessor/successor
 * maps, iterative dominators (Cooper-Harvey-Kennedy), natural-loop
 * discovery with nesting depths, and per-block virtual-register liveness.
 * The Clockhands hand-assignment pass (Section 6.2) and both distance
 * schedulers are built on these.
 */

#include <cstdint>
#include <vector>

#include "ir/vcode.h"

namespace ch {

/** Predecessor/successor adjacency for a VFunc. */
struct CfgInfo {
    std::vector<std::vector<int>> succs;
    std::vector<std::vector<int>> preds;
    std::vector<int> rpo;        ///< reverse postorder of reachable blocks
    std::vector<int> rpoIndex;   ///< block id -> position in rpo (-1 dead)

    bool reachable(int block) const { return rpoIndex[block] >= 0; }
};

CfgInfo buildCfg(const VFunc& f);

/** Immediate-dominator tree (entry dominates everything reachable). */
struct DomTree {
    std::vector<int> idom;  ///< per block; entry's idom is itself

    /** True when @p a dominates @p b (both reachable). */
    bool
    dominates(int a, int b) const
    {
        while (true) {
            if (a == b)
                return true;
            if (idom[b] == b)
                return false;
            b = idom[b];
        }
    }
};

DomTree buildDomTree(const VFunc& f, const CfgInfo& cfg);

/** Natural loops found from back edges (latch -> dominating header). */
struct LoopInfo {
    struct Loop {
        int header = -1;
        int parent = -1;            ///< enclosing loop index or -1
        int depth = 1;              ///< 1 = outermost
        std::vector<int> blocks;    ///< member block ids (incl. header)
    };

    std::vector<Loop> loops;
    /** Innermost loop index containing each block (-1 = none). */
    std::vector<int> innermost;

    int
    depthOf(int block) const
    {
        return innermost[block] < 0 ? 0 : loops[innermost[block]].depth;
    }

    /** True when @p block belongs to loop @p loopIdx (any nesting). */
    bool
    contains(int loopIdx, int block) const
    {
        int l = innermost[block];
        while (l >= 0) {
            if (l == loopIdx)
                return true;
            l = loops[l].parent;
        }
        return false;
    }
};

LoopInfo findLoops(const VFunc& f, const CfgInfo& cfg, const DomTree& dom);

/** Per-block live-in/live-out virtual-register sets (bitset rows). */
class LiveSets
{
  public:
    explicit LiveSets(const VFunc& f);

    bool
    liveIn(int block, int vreg) const
    {
        return test(liveIn_[block], vreg);
    }

    bool
    liveOut(int block, int vreg) const
    {
        return test(liveOut_[block], vreg);
    }

    /** All vregs live into @p block. */
    std::vector<int> liveInRegs(int block) const;
    /** All vregs live out of @p block. */
    std::vector<int> liveOutRegs(int block) const;

  private:
    using Row = std::vector<uint64_t>;

    static bool
    test(const Row& row, int vreg)
    {
        return (row[vreg / 64] >> (vreg % 64)) & 1;
    }

    std::vector<int> regsOf(const Row& row) const;

    int numVRegs_;
    std::vector<Row> liveIn_;
    std::vector<Row> liveOut_;
};

/** Virtual registers read by @p inst (including call arguments). */
std::vector<int> vinstUses(const VInst& inst);

/** Virtual register written by @p inst, or -1. */
int vinstDef(const VInst& inst);

} // namespace ch

#endif // CH_IR_ANALYSIS_H
