#ifndef CH_IR_VCODE_H
#define CH_IR_VCODE_H

/**
 * @file
 * VCode: the machine-generic intermediate representation shared by the
 * three compiler backends. Mirroring the paper's Fig. 10, the front end
 * and instruction selection are common; VCode is their output. It is a
 * CFG of basic blocks holding instructions over an unbounded set of
 * virtual registers, using the shared micro-op vocabulary plus a few
 * pseudo-ops (constants, addresses, frame slots, calls) that each backend
 * expands according to its own register model and calling convention.
 *
 * VCode is not SSA: a virtual register may be assigned repeatedly (loop
 * induction variables). Backends run liveness/loop analyses as needed.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace ch {

/**
 * Source-operand marker meaning "the architectural zero register" (x0 /
 * STRAIGHT distance 0 / Clockhands s[15]). Usable wherever a vreg id is.
 */
constexpr int kVZero = -2;

/** Pseudo-operations that exist only at the VCode level. */
enum class VOp : uint8_t {
    Machine,    ///< a real shared-ISA op (VInst::op)
    LoadImm,    ///< dst = 64-bit constant imm
    LoadAddr,   ///< dst = address of global symbol sym
    FrameAddr,  ///< dst = address of frame slot `frameSlot`
    Call,       ///< call sym(args...) -> optional dst
    Ret,        ///< return optional src1
};

/** One VCode instruction. Operands are virtual register ids (-1 = none). */
struct VInst {
    VOp vop = VOp::Machine;
    Op op = Op::NOP;       ///< meaningful when vop == Machine
    int dst = -1;
    int src1 = -1;
    int src2 = -1;
    int64_t imm = 0;
    std::string sym;       ///< LoadAddr / Call target
    int target = -1;       ///< successor block id for branch machine ops
    int frameSlot = -1;    ///< FrameAddr slot; or folded base for mem ops
    std::vector<int> args; ///< Call arguments

    bool isMachine() const { return vop == VOp::Machine; }
    const OpInfo& info() const { return opInfo(op); }

    /** True for machine branches that end a block (Cond / Jump). */
    bool
    isTerminatorBranch() const
    {
        if (vop != VOp::Machine)
            return false;
        return info().brKind == BrKind::Cond || info().brKind == BrKind::Jump;
    }
};

/** Frame slot: stack storage for arrays and address-taken locals. */
struct FrameSlot {
    int64_t size = 8;
    int64_t align = 8;
    std::string name;  ///< debugging aid
};

/**
 * A basic block. The last instruction may be a conditional branch (taken
 * successor in `inst.target`, fall-through in `fallThrough`) or an
 * unconditional jump; a block whose terminator is VOp::Ret has no
 * successors. Otherwise control falls through to `fallThrough`.
 */
struct VBlock {
    int id = 0;
    std::string name;
    std::vector<VInst> insts;
    int fallThrough = -1;  ///< -1 for return blocks / unconditional jumps

    /** Successor block ids (taken target first). */
    std::vector<int>
    successors() const
    {
        std::vector<int> out;
        if (!insts.empty() && insts.back().isTerminatorBranch()) {
            out.push_back(insts.back().target);
            if (insts.back().info().brKind == BrKind::Cond &&
                fallThrough >= 0) {
                out.push_back(fallThrough);
            }
        } else if (fallThrough >= 0) {
            out.push_back(fallThrough);
        }
        return out;
    }
};

/** A function in VCode form. Block 0 is the entry. */
struct VFunc {
    std::string name;
    int numParams = 0;           ///< params are vregs 0..numParams-1
    int numVRegs = 0;
    std::vector<bool> vregIsFp;  ///< per-vreg: FP (double) class
    std::vector<VBlock> blocks;
    std::vector<FrameSlot> frameSlots;

    int
    newVReg(bool fp)
    {
        vregIsFp.push_back(fp);
        return numVRegs++;
    }

    bool isFp(int vreg) const { return vregIsFp[vreg]; }
};

/** Global variable image. */
struct VGlobal {
    std::string name;
    std::vector<uint8_t> init;  ///< zero-filled if all zero
    int64_t size = 0;
    int64_t align = 8;
};

/** A whole translation unit. */
struct VModule {
    std::vector<VFunc> funcs;
    std::vector<VGlobal> globals;

    const VFunc*
    findFunc(const std::string& name) const
    {
        for (const auto& f : funcs)
            if (f.name == name)
                return &f;
        return nullptr;
    }
};

/** Human-readable dump (tests, debugging). */
std::string dumpVFunc(const VFunc& f);

} // namespace ch

#endif // CH_IR_VCODE_H
