#ifndef CH_IR_VCODE_VERIFY_H
#define CH_IR_VCODE_VERIFY_H

/**
 * @file
 * Structural invariant checker for VCode functions, run by the compiler
 * driver between the front end and the backends so that IR breakage is
 * caught before it turns into a miscompiled binary (docs/VERIFIER.md).
 *
 * Checked invariants: block ids match their indices, terminators are
 * last in their block and their targets are in range, non-returning
 * blocks have a successor, operands respect each op's arity, vreg ids
 * are in range, and every use is definitely assigned on all paths from
 * the entry (parameters count as assigned).
 */

#include <string>
#include <vector>

#include "ir/vcode.h"

namespace ch {

/** All violated invariants of @p f, one message each. Empty = clean. */
std::vector<std::string> verifyVFunc(const VFunc& f);

} // namespace ch

#endif // CH_IR_VCODE_VERIFY_H
