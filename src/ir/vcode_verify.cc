#include "ir/vcode_verify.h"

#include <cstdint>

#include "common/logging.h"
#include "ir/analysis.h"

namespace ch {

namespace {

/** Appends one formatted violation per call. */
struct Reporter {
    const VFunc& f;
    std::vector<std::string>& out;

    template <typename... Parts>
    void
    add(int block, int inst, const Parts&... parts)
    {
        if (out.size() >= 50)
            return;
        out.push_back(concat(f.name, " block ", block,
                             inst >= 0 ? concat(" inst ", inst) : "", ": ",
                             parts...));
    }
};

/** True when @p v is a valid source operand id of @p f. */
bool
validSrc(const VFunc& f, int v)
{
    return v == kVZero || (v >= 0 && v < f.numVRegs);
}

void
checkOperands(const VFunc& f, Reporter& rep)
{
    const auto numBlocks = static_cast<int>(f.blocks.size());
    for (int bi = 0; bi < numBlocks; ++bi) {
        const VBlock& b = f.blocks[bi];
        if (b.id != bi)
            rep.add(bi, -1, "block id ", b.id, " != position ", bi);
        if (b.fallThrough >= numBlocks)
            rep.add(bi, -1, "fallThrough ", b.fallThrough, " out of range");
        for (size_t ii = 0; ii < b.insts.size(); ++ii) {
            const VInst& inst = b.insts[ii];
            const bool last = ii + 1 == b.insts.size();
            const int i = static_cast<int>(ii);

            if (inst.dst != -1 && (inst.dst < 0 || inst.dst >= f.numVRegs))
                rep.add(bi, i, "dst vreg ", inst.dst, " out of range");
            if (inst.src1 != -1 && !validSrc(f, inst.src1))
                rep.add(bi, i, "src1 vreg ", inst.src1, " out of range");
            if (inst.src2 != -1 && !validSrc(f, inst.src2))
                rep.add(bi, i, "src2 vreg ", inst.src2, " out of range");
            for (const int a : inst.args)
                if (!validSrc(f, a))
                    rep.add(bi, i, "call arg vreg ", a, " out of range");

            switch (inst.vop) {
              case VOp::Machine: {
                const OpInfo& info = inst.info();
                if (inst.isTerminatorBranch() && !last)
                    rep.add(bi, i, "terminator ", info.mnemonic,
                            " is not the last instruction of its block");
                if (inst.isTerminatorBranch() &&
                    (inst.target < 0 || inst.target >= numBlocks))
                    rep.add(bi, i, "branch target ", inst.target,
                            " out of range");
                // Memory ops may fold their base into a frame slot.
                const bool foldedBase = info.isMem() && inst.frameSlot >= 0;
                if (info.numSrcs >= 1 && inst.src1 == -1 && !foldedBase)
                    rep.add(bi, i, info.mnemonic, " is missing src1");
                if (info.numSrcs >= 2 && inst.src2 == -1)
                    rep.add(bi, i, info.mnemonic, " is missing src2");
                if (info.hasDst && inst.dst == -1)
                    rep.add(bi, i, info.mnemonic,
                            " is missing a destination");
                break;
              }
              case VOp::LoadImm:
                if (inst.dst < 0)
                    rep.add(bi, i, "LoadImm without destination");
                break;
              case VOp::LoadAddr:
                if (inst.dst < 0 || inst.sym.empty())
                    rep.add(bi, i, "LoadAddr needs a dst and a symbol");
                break;
              case VOp::FrameAddr:
                if (inst.dst < 0)
                    rep.add(bi, i, "FrameAddr without destination");
                if (inst.frameSlot < 0 ||
                    static_cast<size_t>(inst.frameSlot) >=
                        f.frameSlots.size())
                    rep.add(bi, i, "FrameAddr slot ", inst.frameSlot,
                            " out of range");
                break;
              case VOp::Call:
                if (inst.sym.empty())
                    rep.add(bi, i, "Call without a target symbol");
                break;
              case VOp::Ret:
                if (!last)
                    rep.add(bi, i,
                            "Ret is not the last instruction of its block");
                break;
            }
        }

        // A reachable block must leave somewhere: end in Ret, end in a
        // terminator branch, or have a fall-through successor.
        const bool endsRet = !b.insts.empty() &&
                             b.insts.back().vop == VOp::Ret;
        const bool endsJump = !b.insts.empty() &&
                              b.insts.back().isTerminatorBranch() &&
                              b.insts.back().info().brKind == BrKind::Jump;
        if (!endsRet && !endsJump && b.fallThrough < 0)
            rep.add(bi, -1,
                    "block neither returns, jumps, nor falls through");
    }
}

void
checkDefiniteAssignment(const VFunc& f, Reporter& rep)
{
    const CfgInfo cfg = buildCfg(f);
    const int n = static_cast<int>(f.blocks.size());
    const int words = (f.numVRegs + 63) / 64;
    using Row = std::vector<uint64_t>;

    auto test = [&](const Row& r, int v) {
        return (r[static_cast<size_t>(v / 64)] >> (v % 64)) & 1;
    };
    auto set = [&](Row& r, int v) {
        r[static_cast<size_t>(v / 64)] |=
            uint64_t{1} << (v % 64);
    };

    // definedOut[b]: vregs definitely assigned when leaving b on every
    // path from the entry. Merge is intersection; the entry starts from
    // the parameter set, unvisited predecessors are ignored.
    std::vector<Row> definedOut(static_cast<size_t>(n),
                                Row(static_cast<size_t>(words), 0));
    std::vector<uint8_t> visited(static_cast<size_t>(n), 0);

    auto inSetOf = [&](int b) {
        Row in(static_cast<size_t>(words), 0);
        if (b == 0) {
            for (int p = 0; p < f.numParams; ++p)
                set(in, p);
            return in;
        }
        bool first = true;
        for (const int p : cfg.preds[static_cast<size_t>(b)]) {
            if (!visited[static_cast<size_t>(p)])
                continue;
            if (first) {
                in = definedOut[static_cast<size_t>(p)];
                first = false;
            } else {
                for (int w = 0; w < words; ++w)
                    in[static_cast<size_t>(w)] &=
                        definedOut[static_cast<size_t>(p)]
                                  [static_cast<size_t>(w)];
            }
        }
        return in;
    };

    bool changed = true;
    int pass = 0;
    while (changed && pass < 100) {
        changed = false;
        ++pass;
        for (const int b : cfg.rpo) {
            Row in = inSetOf(b);
            for (const VInst& inst : f.blocks[static_cast<size_t>(b)].insts) {
                const int d = vinstDef(inst);
                if (d >= 0)
                    set(in, d);
            }
            if (!visited[static_cast<size_t>(b)] ||
                in != definedOut[static_cast<size_t>(b)]) {
                visited[static_cast<size_t>(b)] = 1;
                definedOut[static_cast<size_t>(b)] = std::move(in);
                changed = true;
            }
        }
    }

    // Report pass: walk each reachable block from its final in-set.
    for (const int b : cfg.rpo) {
        Row in = inSetOf(b);
        const VBlock& blk = f.blocks[static_cast<size_t>(b)];
        for (size_t ii = 0; ii < blk.insts.size(); ++ii) {
            const VInst& inst = blk.insts[ii];
            for (const int u : vinstUses(inst)) {
                if (u >= 0 && u < f.numVRegs && !test(in, u))
                    rep.add(b, static_cast<int>(ii), "vreg v", u,
                            " may be used before it is assigned");
            }
            const int d = vinstDef(inst);
            if (d >= 0)
                set(in, d);
        }
    }
}

} // namespace

std::vector<std::string>
verifyVFunc(const VFunc& f)
{
    std::vector<std::string> out;
    Reporter rep{f, out};
    if (f.blocks.empty()) {
        rep.add(0, -1, "function has no blocks");
        return out;
    }
    checkOperands(f, rep);
    // Operand-level breakage (bad ids) would confuse the dataflow; only
    // run it on structurally sound functions.
    if (out.empty())
        checkDefiniteAssignment(f, rep);
    return out;
}

} // namespace ch
