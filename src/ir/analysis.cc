#include "ir/analysis.h"

#include <algorithm>

#include "common/logging.h"

namespace ch {

std::vector<int>
vinstUses(const VInst& inst)
{
    std::vector<int> out;
    if (inst.src1 >= 0)
        out.push_back(inst.src1);
    if (inst.src2 >= 0)
        out.push_back(inst.src2);
    for (int a : inst.args)
        out.push_back(a);
    return out;
}

int
vinstDef(const VInst& inst)
{
    return inst.dst;
}

CfgInfo
buildCfg(const VFunc& f)
{
    CfgInfo cfg;
    const int n = static_cast<int>(f.blocks.size());
    cfg.succs.resize(n);
    cfg.preds.resize(n);
    for (const auto& b : f.blocks)
        cfg.succs[b.id] = b.successors();
    for (int b = 0; b < n; ++b)
        for (int s : cfg.succs[b])
            cfg.preds[s].push_back(b);

    // Reverse postorder via iterative DFS from the entry block.
    cfg.rpoIndex.assign(n, -1);
    std::vector<int> post;
    std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
    std::vector<std::pair<int, size_t>> stack;
    if (n > 0) {
        stack.push_back({0, 0});
        state[0] = 1;
    }
    while (!stack.empty()) {
        auto& [blk, idx] = stack.back();
        if (idx < cfg.succs[blk].size()) {
            const int s = cfg.succs[blk][idx++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[blk] = 2;
            post.push_back(blk);
            stack.pop_back();
        }
    }
    cfg.rpo.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < cfg.rpo.size(); ++i)
        cfg.rpoIndex[cfg.rpo[i]] = static_cast<int>(i);
    return cfg;
}

DomTree
buildDomTree(const VFunc& f, const CfgInfo& cfg)
{
    const int n = static_cast<int>(f.blocks.size());
    DomTree dom;
    dom.idom.assign(n, -1);
    if (n == 0)
        return dom;
    dom.idom[0] = 0;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (cfg.rpoIndex[a] > cfg.rpoIndex[b])
                a = dom.idom[a];
            while (cfg.rpoIndex[b] > cfg.rpoIndex[a])
                b = dom.idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : cfg.rpo) {
            if (b == 0)
                continue;
            int newIdom = -1;
            for (int p : cfg.preds[b]) {
                if (!cfg.reachable(p) || dom.idom[p] < 0)
                    continue;
                newIdom = newIdom < 0 ? p : intersect(newIdom, p);
            }
            if (newIdom >= 0 && dom.idom[b] != newIdom) {
                dom.idom[b] = newIdom;
                changed = true;
            }
        }
    }
    return dom;
}

LoopInfo
findLoops(const VFunc& f, const CfgInfo& cfg, const DomTree& dom)
{
    const int n = static_cast<int>(f.blocks.size());
    LoopInfo info;
    info.innermost.assign(n, -1);

    // Find back edges and collect each natural loop's body.
    struct RawLoop {
        int header;
        std::vector<int> blocks;
    };
    std::vector<RawLoop> raw;
    std::vector<int> headerLoop(n, -1);  // header block -> raw index

    for (int b = 0; b < n; ++b) {
        if (!cfg.reachable(b))
            continue;
        for (int s : cfg.succs[b]) {
            if (!dom.dominates(s, b))
                continue;  // not a back edge
            // Natural loop of back edge b -> s.
            int li = headerLoop[s];
            if (li < 0) {
                li = static_cast<int>(raw.size());
                headerLoop[s] = li;
                raw.push_back({s, {s}});
            }
            // Walk predecessors from the latch up to the header.
            std::vector<bool> inLoop(n, false);
            for (int blk : raw[li].blocks)
                inLoop[blk] = true;
            std::vector<int> work;
            if (!inLoop[b]) {
                inLoop[b] = true;
                raw[li].blocks.push_back(b);
                work.push_back(b);
            }
            while (!work.empty()) {
                const int x = work.back();
                work.pop_back();
                for (int p : cfg.preds[x]) {
                    if (!cfg.reachable(p) || inLoop[p])
                        continue;
                    inLoop[p] = true;
                    raw[li].blocks.push_back(p);
                    work.push_back(p);
                }
            }
        }
    }

    // Sort loops by body size so inner (smaller) loops come first; assign
    // innermost-loop indices in that order, then derive parents/depths.
    std::vector<int> order(raw.size());
    for (size_t i = 0; i < raw.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return raw[a].blocks.size() < raw[b].blocks.size();
    });

    info.loops.resize(raw.size());
    std::vector<int> rawToFinal(raw.size());
    for (size_t pos = 0; pos < order.size(); ++pos) {
        const int r = order[pos];
        rawToFinal[r] = static_cast<int>(pos);
        auto& loop = info.loops[pos];
        loop.header = raw[r].header;
        loop.blocks = raw[r].blocks;
        std::sort(loop.blocks.begin(), loop.blocks.end());
        for (int blk : loop.blocks) {
            if (info.innermost[blk] < 0)
                info.innermost[blk] = static_cast<int>(pos);
        }
    }
    // Parent: the innermost strictly-larger loop containing the header.
    for (size_t i = 0; i < info.loops.size(); ++i) {
        auto& loop = info.loops[i];
        for (size_t j = i + 1; j < info.loops.size(); ++j) {
            const auto& outer = info.loops[j];
            if (std::binary_search(outer.blocks.begin(), outer.blocks.end(),
                                   loop.header) &&
                outer.header != loop.header) {
                loop.parent = static_cast<int>(j);
                break;
            }
        }
    }
    // Depths via parent chains.
    for (auto& loop : info.loops) {
        int d = 1;
        for (int p = loop.parent; p >= 0; p = info.loops[p].parent)
            ++d;
        loop.depth = d;
    }
    return info;
}

LiveSets::LiveSets(const VFunc& f) : numVRegs_(f.numVRegs)
{
    const int n = static_cast<int>(f.blocks.size());
    const int words = (numVRegs_ + 63) / 64;
    liveIn_.assign(n, Row(words, 0));
    liveOut_.assign(n, Row(words, 0));

    // Per-block use (upward-exposed) and def sets.
    std::vector<Row> use(n, Row(words, 0));
    std::vector<Row> def(n, Row(words, 0));
    auto setBit = [&](Row& row, int v) { row[v / 64] |= 1ull << (v % 64); };
    auto testBit = [&](const Row& row, int v) {
        return (row[v / 64] >> (v % 64)) & 1;
    };
    for (const auto& b : f.blocks) {
        for (const auto& inst : b.insts) {
            for (int u : vinstUses(inst)) {
                if (!testBit(def[b.id], u))
                    setBit(use[b.id], u);
            }
            const int d = vinstDef(inst);
            if (d >= 0)
                setBit(def[b.id], d);
        }
    }

    CfgInfo cfg = buildCfg(f);
    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate in postorder (reverse of rpo) for fast convergence.
        for (auto it = cfg.rpo.rbegin(); it != cfg.rpo.rend(); ++it) {
            const int b = *it;
            Row out(words, 0);
            for (int s : cfg.succs[b]) {
                for (int w = 0; w < words; ++w)
                    out[w] |= liveIn_[s][w];
            }
            Row in = out;
            for (int w = 0; w < words; ++w)
                in[w] = use[b][w] | (out[w] & ~def[b][w]);
            if (in != liveIn_[b] || out != liveOut_[b]) {
                liveIn_[b] = std::move(in);
                liveOut_[b] = std::move(out);
                changed = true;
            }
        }
    }
}

std::vector<int>
LiveSets::regsOf(const Row& row) const
{
    std::vector<int> out;
    for (int v = 0; v < numVRegs_; ++v) {
        if (test(row, v))
            out.push_back(v);
    }
    return out;
}

std::vector<int>
LiveSets::liveInRegs(int block) const
{
    return regsOf(liveIn_[block]);
}

std::vector<int>
LiveSets::liveOutRegs(int block) const
{
    return regsOf(liveOut_[block]);
}

} // namespace ch
